//! Cross-validation of the three solvers on randomized small instances:
//! the P#1 MILP (`MilpHermes`), the combinatorial exact search
//! (`OptimalSolver`), and the greedy heuristic must agree that
//! `Optimal == MILP <= Hermes`.

use hermes::core::{
    verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, MilpHermes, OptimalSolver,
    SearchContext, Solver,
};
use hermes::dataplane::action::Action;
use hermes::dataplane::fields::Field;
use hermes::dataplane::mat::{Mat, MatchKind};
use hermes::dataplane::program::Program;
use hermes::net::{Network, Switch};
use hermes::tdg::{AnalysisMode, Tdg};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// A random 4–6-node DAG program with random metadata sizes.
fn random_instance(seed: u64) -> (Tdg, Network) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(4..=6usize);
    let mut fields: Vec<Vec<Field>> = vec![Vec::new(); n];
    let mut builder = Program::builder("rand");
    #[allow(clippy::needless_range_loop)] // paired (i, j) indices drive the dependency draws
    for i in 0..n {
        let mut mat = Mat::builder(format!("t{i}")).resource(0.5);
        for f in &fields[i] {
            mat = mat.match_field(f.clone(), MatchKind::Exact);
        }
        let mut writes = Vec::new();
        for j in (i + 1)..n {
            if rng.random_bool(0.4) {
                let size = rng.random_range(1..=12u32);
                let f = Field::metadata(format!("m{i}_{j}"), size);
                writes.push(f.clone());
                fields[j].push(f);
            }
        }
        mat = mat.action(Action::writing("w", writes));
        builder = builder.table(mat.build().unwrap());
    }
    let tdg = Tdg::from_program(&builder.build().unwrap(), AnalysisMode::Intersection);

    let mut net = Network::new();
    let switches = rng.random_range(2..=3usize);
    let ids: Vec<_> = (0..switches)
        .map(|i| {
            net.add_switch(Switch {
                stages: 3,
                stage_capacity: 0.5,
                ..Switch::tofino(format!("s{i}"))
            })
        })
        .collect();
    for w in ids.windows(2) {
        net.add_link(w[0], w[1], 10.0).unwrap();
    }
    (tdg, net)
}

#[test]
fn solvers_agree_on_random_small_instances() {
    let eps = Epsilon::loose();
    let mut compared = 0;
    for seed in 0..8u64 {
        let (tdg, net) = random_instance(seed);
        let ctx = SearchContext::with_time_limit(Duration::from_secs(20));
        let exact = match OptimalSolver::new().solve(&tdg, &net, &eps, &ctx) {
            Ok(o) => o,
            Err(_) => continue, // instance infeasible: nothing to compare
        };
        assert!(exact.proven_optimal, "seed {seed} should be tiny enough to prove");

        let milp =
            MilpHermes::default().deploy(&tdg, &net, &eps).expect("milp agrees on feasibility");
        assert_eq!(
            milp.max_inter_switch_bytes(&tdg),
            exact.objective,
            "seed {seed}: MILP vs exact"
        );
        assert!(verify(&tdg, &net, &milp, &eps).is_empty());

        if let Ok(heuristic) = GreedyHeuristic::new().deploy(&tdg, &net, &eps) {
            assert!(
                heuristic.max_inter_switch_bytes(&tdg) >= exact.objective,
                "seed {seed}: heuristic beat the proven optimum?!"
            );
        }
        compared += 1;
    }
    assert!(compared >= 4, "too few feasible instances ({compared}) — generator broken?");
}
