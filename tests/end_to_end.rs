//! End-to-end pipeline tests spanning every crate: programs → analyzer →
//! deployment algorithms → verifier → simulator.

use hermes::baselines::standard_suite;
use hermes::core::{verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
use hermes::dataplane::library;
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::net::topology;
use hermes::sim::testbed::{normalized_impact, TestbedConfig};
use std::time::Duration;

fn testbed_workload() -> hermes::tdg::Tdg {
    ProgramAnalyzer::new().analyze(&library::real_programs())
}

#[test]
fn every_algorithm_produces_verified_plans_on_the_testbed() {
    let tdg = testbed_workload();
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    for algo in standard_suite(Duration::from_secs(1)) {
        let plan =
            algo.deploy(&tdg, &net, &eps).unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
        let violations = verify(&tdg, &net, &plan, &eps);
        assert!(violations.is_empty(), "{}: {violations:?}", algo.name());
    }
}

#[test]
fn hermes_dominates_overhead_oblivious_baselines() {
    let tdg = testbed_workload();
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let suite = standard_suite(Duration::from_secs(1));
    let overhead = |name: &str| -> u64 {
        suite
            .iter()
            .find(|a| a.name() == name)
            .unwrap()
            .deploy(&tdg, &net, &eps)
            .unwrap()
            .max_inter_switch_bytes(&tdg)
    };
    let hermes = overhead("Hermes");
    for baseline in ["FFL", "FFLS", "MS", "Sonata"] {
        assert!(hermes <= overhead(baseline), "Hermes {hermes} vs {baseline}");
    }
    assert!(overhead("Optimal") <= hermes);
}

#[test]
fn wan_scale_deployment_works_for_all_topologies() {
    let mut generator = SyntheticGenerator::new(1, SyntheticConfig::default());
    let mut programs = library::real_programs();
    programs.extend(generator.programs(20));
    let tdg = ProgramAnalyzer::new().analyze(&programs);
    for i in 0..10 {
        let net = topology::table3_wan(i);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new()
            .deploy(&tdg, &net, &eps)
            .unwrap_or_else(|e| panic!("topology {i}: {e}"));
        let violations = verify(&tdg, &net, &plan, &eps);
        assert!(violations.is_empty(), "topology {i}: {violations:?}");
    }
}

#[test]
fn plan_overhead_feeds_the_simulator_sensibly() {
    let tdg = testbed_workload();
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
    let bytes = plan.max_inter_switch_bytes(&tdg) as u32;
    let sim = TestbedConfig { packets: 1_000, ..Default::default() };
    let perf = normalized_impact(&sim, 1024, bytes);
    assert!(perf.fct_ratio >= 1.0);
    assert!(perf.goodput_ratio <= 1.0);
    // A 200-byte overhead must hurt strictly more than the plan's.
    let worse = normalized_impact(&sim, 1024, bytes + 200);
    assert!(worse.fct_ratio > perf.fct_ratio);
}

#[test]
fn merging_reduces_and_never_inflates_resources() {
    let programs = library::real_programs();
    let standalone: f64 = programs.iter().map(|p| p.total_resource()).sum();
    let tdg = ProgramAnalyzer::new().analyze(&programs);
    assert!(tdg.total_resource() <= standalone + 1e-9);

    let net = topology::linear(3, 10.0);
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
    let deployed: f64 = plan.placements().iter().map(|p| p.fraction).sum();
    assert!(
        (deployed - tdg.total_resource()).abs() < 1e-6,
        "deployment must not add switch logic: {deployed} vs {}",
        tdg.total_resource()
    );
}
