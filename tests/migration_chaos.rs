//! Mid-migration chaos soak: live reconfiguration must be *atomic*.
//!
//! Plan A is installed cleanly, then the injector and a lossy channel are
//! armed and an A→B migration runs under fire. Across 50 seeded fault
//! schedules and two capacity-bound topologies, every run must end in
//! exactly one of two states — never a mix:
//!
//! 1. **plan B installed**: the runtime serves plan B and every live
//!    switch plan B occupies provably serves the migration epoch, or
//! 2. **plan A restored**: the runtime serves plan A exactly as before
//!    and no surviving agent serves the abandoned migration epoch.
//!
//! The workload is a metadata-only chain, so the mixed-epoch prefix gate
//! admits the schedule and an abort (which only happens pre-commit, on a
//! pristine network) is impossible — the soak asserts it never occurs.
//! Every seed must also be byte-reproducible: same outcome, same log.

use hermes::core::test_support::chain_tdg;
use hermes::core::{
    DeploymentAlgorithm, DeploymentPlan, Epsilon, GreedyHeuristic, IncrementalDeployer,
    RedeployOptions,
};
use hermes::net::{topology, Network, SwitchId};
use hermes::runtime::{
    ChannelProfile, DeploymentRuntime, FaultInjector, FaultProfile, MigrationConfig,
    MigrationOutcome, RetryPolicy,
};
use hermes::tdg::Tdg;

const SEEDS: u64 = 50;

/// Reshapes every switch so packing binds and plan B spreads across
/// several switches (stock capacities would make the migration one step).
fn shape(mut net: Network, stages: usize, cap: f64) -> Network {
    let ids: Vec<SwitchId> = net.switch_ids().collect();
    for id in ids {
        let sw = net.switch_mut(id);
        sw.stages = stages;
        sw.stage_capacity = cap;
    }
    net
}

/// Plan A (greedy) and plan B (plan A's last occupied switch drained).
fn endpoints(tdg: &Tdg, net: &Network) -> (DeploymentPlan, DeploymentPlan) {
    let eps = Epsilon::loose();
    let plan_a = GreedyHeuristic::new().deploy(tdg, net, &eps).expect("plan A");
    let drained = *plan_a.occupied_switches().last().expect("non-empty plan");
    let plan_b = IncrementalDeployer::new()
        .redeploy_with(tdg, &plan_a, tdg, net, &eps, &RedeployOptions::excluding([drained]))
        .expect("drain is feasible")
        .plan;
    assert_ne!(plan_a, plan_b, "draining must change the plan");
    (plan_a, plan_b)
}

/// Clean install of A, then a seeded chaos + lossy-channel migration to B.
fn run_once(
    tdg: &Tdg,
    net: &Network,
    plan_a: &DeploymentPlan,
    plan_b: &DeploymentPlan,
    seed: u64,
) -> (DeploymentRuntime, MigrationOutcome) {
    let mut rt = DeploymentRuntime::new(
        net.clone(),
        Epsilon::loose(),
        FaultInjector::disabled(),
        RetryPolicy::default(),
    );
    assert!(rt.rollout(tdg, plan_a.clone()).is_committed(), "clean install of plan A failed");
    rt.set_injector(FaultInjector::new(seed, FaultProfile::chaos()));
    rt.set_channel_profile(ChannelProfile::lossy());
    let outcome = rt.migrate(tdg, plan_b.clone(), &MigrationConfig::default());
    (rt, outcome)
}

fn soak(net: &Network, tdg: &Tdg, label: &str) -> (u64, u64) {
    let (plan_a, plan_b) = endpoints(tdg, net);
    let mut migrated = 0u64;
    let mut rolled_back = 0u64;
    for seed in 0..SEEDS {
        let (rt, outcome) = run_once(tdg, net, &plan_a, &plan_b, seed);
        match &outcome {
            MigrationOutcome::Migrated { epoch, .. } => {
                migrated += 1;
                // Terminal state 1: plan B, whole and serving.
                assert_eq!(
                    rt.active_plan(),
                    Some(&plan_b),
                    "{label} seed {seed}: migrated but plan B is not active"
                );
                let down = rt.network().down_switches();
                for switch in plan_b.occupied_switches() {
                    if !down.contains(&switch) {
                        assert_eq!(
                            rt.agent(switch).and_then(|a| a.active_epoch()),
                            Some(*epoch),
                            "{label} seed {seed}: switch {switch} missed epoch {epoch}"
                        );
                    }
                }
            }
            MigrationOutcome::RolledBack { epoch, .. } => {
                rolled_back += 1;
                // Terminal state 2: plan A, whole — and the abandoned
                // epoch fenced everywhere, even where the revert message
                // was lost.
                assert_eq!(
                    rt.active_plan(),
                    Some(&plan_a),
                    "{label} seed {seed}: rollback did not restore plan A"
                );
                for agent in rt.agents() {
                    if !agent.is_crashed() {
                        assert_ne!(
                            agent.active_epoch(),
                            Some(*epoch),
                            "{label} seed {seed}: an agent serves abandoned epoch {epoch}"
                        );
                    }
                }
            }
            MigrationOutcome::Aborted { reason, .. } => {
                // The gate and validator run before any fault can fire,
                // and this workload passes both — an abort here would
                // mean the executor bailed instead of rolling back.
                panic!("{label} seed {seed}: unexpected abort: {reason}");
            }
            MigrationOutcome::ControllerCrashed { .. } => {
                unreachable!("{label} seed {seed}: no controller crash was injected")
            }
        }
        // Reproducibility: same seed, same outcome, byte-identical log.
        let (rt2, outcome2) = run_once(tdg, net, &plan_a, &plan_b, seed);
        assert_eq!(outcome, outcome2, "{label} seed {seed}: outcome not reproducible");
        assert_eq!(
            rt.log().to_json(),
            rt2.log().to_json(),
            "{label} seed {seed}: event log not reproducible"
        );
    }
    println!("{label}: {migrated} migrated, {rolled_back} rolled back");
    assert!(migrated > 0, "{label}: no seed ever completed the migration");
    (migrated, rolled_back)
}

#[test]
fn soak_linear() {
    let net = shape(topology::linear(5, 10.0), 5, 0.45);
    let tdg = chain_tdg(&[6, 2, 9, 3, 5, 4, 7, 2, 8], 0.4);
    let (_, rolled_back) = soak(&net, &tdg, "linear:5");
    // Chaos plus loss across 50 seeds must actually force the rollback
    // path at least once on the multi-step topology.
    assert!(rolled_back > 0, "linear:5: chaos never forced a rollback");
}

#[test]
fn soak_star() {
    let net = shape(topology::star(4, 10.0), 5, 0.45);
    let tdg = chain_tdg(&[4, 7, 3, 8, 2, 6, 5], 0.4);
    soak(&net, &tdg, "star:4");
}
