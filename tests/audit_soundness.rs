//! Soundness suite for the workload audit engine:
//!
//! - the bitset dataflow pass must emit byte-identical diagnostics to the
//!   naive `BTreeSet` oracle on random synthetic workloads (merged and
//!   per-program);
//! - every pre-solve infeasibility certificate must be confirmed by
//!   exhaustive search — a certificate on an instance the search can
//!   deploy would be a false infeasible, the one bug class the precheck
//!   must never have;
//! - the `AmaxFloor` objective floor must never exceed the true optimum
//!   on feasible instances (otherwise the portfolio would mark suboptimal
//!   plans proven-optimal);
//! - the portfolio must turn a certificate into a `ProvenInfeasible`
//!   verdict in well under 1 % of its wall-clock budget.

use hermes::analysis::{audit_programs, dataflow_diagnostics, dataflow_reference};
use hermes::core::precheck::Precheck;
use hermes::core::test_support::{chain_tdg, tiny_switches};
use hermes::core::{
    DeployError, Epsilon, OptimalSolver, Portfolio, ProgramAnalyzer, SearchContext, Solver,
};
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::tdg::{AnalysisMode, Tdg};
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn synthetic_programs(seed: u64, count: usize) -> Vec<hermes::dataplane::Program> {
    let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
    generator.programs(count)
}

/// Small random instances the exact search can exhaust in milliseconds:
/// a dependency chain with the given per-edge bytes and per-node resource
/// on a uniform testbed.
fn small_instance(seed: u64) -> (Tdg, hermes::net::Network, Epsilon) {
    let mut s = seed;
    let mut next = |m: u64| {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % m
    };
    let edges = 1 + next(4) as usize; // 2..=5 nodes
    let bytes: Vec<u32> = (0..edges).map(|_| 1 + next(16) as u32).collect();
    let resource = [0.2, 0.4, 0.55, 0.7][next(4) as usize];
    let tdg = chain_tdg(&bytes, resource);
    let switches = 1 + next(3) as usize; // 1..=3
    let stages = 1 + next(3) as usize; // 1..=3
    let cap = [0.3, 0.5, 1.0][next(3) as usize];
    let net = tiny_switches(switches, stages, cap);
    let eps1 = [5.0, 30.0, f64::INFINITY][next(3) as usize];
    let eps2 = [1, 2, usize::MAX][next(3) as usize];
    (tdg, net, Epsilon::new(eps1, eps2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The production dataflow pass and the oracle agree on merged
    /// synthetic workloads of every size, byte for byte.
    #[test]
    fn dataflow_matches_oracle_on_synthetic_workloads(
        seed in 0u64..1000,
        count in 1usize..5,
    ) {
        let programs = synthetic_programs(seed, count);
        let merged = ProgramAnalyzer::new().analyze(&programs);
        prop_assert_eq!(dataflow_diagnostics(&merged), dataflow_reference(&merged));
        for p in &programs {
            for mode in [AnalysisMode::PaperLiteral, AnalysisMode::Intersection] {
                let tdg = Tdg::from_program(p, mode);
                prop_assert_eq!(dataflow_diagnostics(&tdg), dataflow_reference(&tdg));
            }
        }
    }

    /// No false infeasibles: whenever the precheck certifies an instance
    /// infeasible, the exhaustive search must also fail to find a plan.
    /// And the `A_max` floor must never exceed a proven optimum.
    #[test]
    fn certificates_confirmed_by_exhaustive_search(seed in 0u64..400) {
        let (tdg, net, eps) = small_instance(seed);
        let pre = Precheck::run(&tdg, &net, &eps);
        let ctx = SearchContext::with_time_limit(Duration::from_secs(10));
        let outcome = OptimalSolver::bare().solve(&tdg, &net, &eps, &ctx);
        if let Some(cert) = pre.infeasible() {
            prop_assert!(
                outcome.is_err(),
                "false infeasible {:?} on seed {}: search found a plan",
                cert, seed
            );
        }
        if let Ok(outcome) = outcome {
            // Feasible instance: every floor must stay below the optimum.
            if outcome.proven_optimal {
                prop_assert!(
                    pre.amax_floor() <= outcome.objective,
                    "floor {} exceeds proven optimum {} on seed {}",
                    pre.amax_floor(), outcome.objective, seed
                );
            }
        }
    }

    /// Synthetic workloads never trip the audit's error class (the
    /// generator only builds well-formed programs), so the audit is safe
    /// to put in front of every synthetic benchmark run.
    #[test]
    fn synthetic_workloads_audit_clean_of_graph_errors(seed in 0u64..1000) {
        let programs = synthetic_programs(seed, 2);
        let report = audit_programs(&programs, AnalysisMode::PaperLiteral);
        for d in &report.diagnostics {
            // Error-severity graph-soundness findings would mean the
            // pipeline itself is broken; lint/dataflow findings and
            // transitive-redundancy infos (HG205) are fine.
            prop_assert!(
                !(d.code.starts_with("HG") && d.severity == hermes::analysis::Severity::Error),
                "graph-soundness error on seed {}: {}",
                seed, d
            );
        }
    }
}

/// The acceptance criterion from the issue: on a crafted infeasible
/// workload the portfolio returns proven-infeasible via certificate in
/// under 1 % of the time budget.
#[test]
fn portfolio_settles_infeasible_instance_within_one_percent_of_budget() {
    let budget = Duration::from_secs(10);
    // Four 0.5-resource MATs need two 1.0-capacity switches; eps2 = 1.
    let tdg = chain_tdg(&[1, 1, 1], 0.5);
    let net = tiny_switches(3, 2, 0.5);
    let eps = Epsilon::new(f64::INFINITY, 1);
    let ctx = SearchContext::with_time_limit(budget);
    let start = Instant::now();
    let outcome = Portfolio::greedy_exact().race(&tdg, &net, &eps, &ctx);
    let wall = start.elapsed();
    match outcome {
        Err(DeployError::ProvenInfeasible { certificate }) => {
            assert_eq!(certificate.code(), "HC305");
        }
        other => panic!("expected ProvenInfeasible, got {other:?}"),
    }
    assert!(wall < budget / 100, "verdict took {wall:?}, over 1 % of the {budget:?} budget");
}

/// A floor that equals the optimum upgrades the winning plan to
/// proven-optimal without an exhaustion proof.
#[test]
fn floor_certified_win_is_proven_optimal() {
    // Two 0.7-resource MATs cannot share a 1.0-capacity switch: the
    // 9-byte edge must cross, so the floor is 9 and any 9-byte plan is
    // optimal by construction.
    let tdg = chain_tdg(&[9], 0.7);
    let net = tiny_switches(2, 2, 0.5);
    let eps = Epsilon::loose();
    let ctx = SearchContext::with_time_limit(Duration::from_secs(10));
    let race = Portfolio::greedy_exact().race(&tdg, &net, &eps, &ctx).expect("feasible");
    assert_eq!(race.outcome.objective, 9);
    assert!(race.outcome.proven_optimal);
}
