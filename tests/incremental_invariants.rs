//! Property tests over incremental redeployment and healing.
//!
//! Invariants, for arbitrary synthetic workloads:
//!
//! 1. **Coverage** — `reused + placed` accounts for every node of the
//!    merged TDG, and every node has a switch in the new plan.
//! 2. **Pinning** — unless the deployer fell back to a full redeploy,
//!    MATs carried over (same qualified name and signature) never move.
//! 3. **Healing** — a redeploy excluding down switches never places a
//!    MAT on one of them, and the healed plan still verifies.

use hermes::core::{
    verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, IncrementalDeployer, ProgramAnalyzer,
    RedeployOptions,
};
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::net::topology;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn redeploy_covers_merged_tdg_and_never_moves_pinned_mats(
        seed in 0u64..2_000,
        n_old in 1usize..4,
        extra in 1usize..4,
    ) {
        let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
        let programs = generator.programs(n_old + extra);
        let old_tdg = ProgramAnalyzer::new().analyze(&programs[..n_old]);
        let new_tdg = ProgramAnalyzer::new().analyze(&programs);
        let net = topology::linear(4, 10.0);
        let eps = Epsilon::loose();
        let Ok(old_plan) = GreedyHeuristic::new().deploy(&old_tdg, &net, &eps) else {
            return Ok(()); // capacity-infeasible seeds are not the property
        };
        prop_assume!(verify(&old_tdg, &net, &old_plan, &eps).is_empty());
        let Ok(out) =
            IncrementalDeployer::new().redeploy(&old_tdg, &old_plan, &new_tdg, &net, &eps)
        else {
            return Ok(()); // the merged workload may simply not fit
        };

        // Invariant 1: coverage of the merged TDG.
        prop_assert_eq!(out.reused + out.placed, new_tdg.node_count());
        for id in new_tdg.node_ids() {
            prop_assert!(
                out.plan.switch_of(id).is_some(),
                "seed {}: node {} has no switch",
                seed,
                new_tdg.node(id).name
            );
        }
        prop_assert!(verify(&new_tdg, &net, &out.plan, &eps).is_empty());

        // Invariant 2: carried-over MATs stay put unless full redeploy.
        if !out.full_redeploy {
            for old_id in old_tdg.node_ids() {
                let node = old_tdg.node(old_id);
                let Some(new_id) = new_tdg.node_by_name(&node.name) else { continue };
                if node.mat.signature() == new_tdg.node(new_id).mat.signature() {
                    prop_assert_eq!(
                        old_plan.switch_of(old_id),
                        out.plan.switch_of(new_id),
                        "seed {}: pinned MAT {} moved",
                        seed,
                        node.name
                    );
                }
            }
        }
    }

    #[test]
    fn healing_never_places_on_a_down_switch(
        seed in 0u64..2_000,
        programs in 1usize..5,
        kill in 0usize..4,
    ) {
        let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
        let tdg = ProgramAnalyzer::new().analyze(&generator.programs(programs));
        let mut net = topology::linear(4, 10.0);
        let eps = Epsilon::loose();
        let Ok(plan) = GreedyHeuristic::new().deploy(&tdg, &net, &eps) else {
            return Ok(());
        };
        prop_assume!(verify(&tdg, &net, &plan, &eps).is_empty());

        let dead = net.switch_ids().nth(kill).expect("linear:4 has 4 switches");
        net.fail_switch(dead);
        let opts = RedeployOptions::excluding([dead]);
        let Ok(out) =
            IncrementalDeployer::new().redeploy_with(&tdg, &plan, &tdg, &net, &eps, &opts)
        else {
            return Ok(()); // residual capacity may not allow healing
        };

        // Invariant 3: the dead switch hosts nothing, and the healed plan
        // verifies on the degraded network (which also rules out routes
        // through the dead switch).
        prop_assert!(
            !out.plan.occupied_switches().contains(&dead),
            "seed {seed}: healed plan occupies down switch {dead}"
        );
        prop_assert!(
            verify(&tdg, &net, &out.plan, &eps).is_empty(),
            "seed {seed}: healed plan does not verify"
        );
        prop_assert_eq!(out.reused + out.placed, tdg.node_count());
    }
}
