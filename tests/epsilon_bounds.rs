//! The ε-constraint method (Eq. 4–5) across algorithms: bounds are either
//! honoured by the produced plan or reported as infeasible — never
//! silently violated.

use hermes::core::{verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
use hermes::dataplane::library;
use hermes::net::topology;

fn workload() -> hermes::tdg::Tdg {
    ProgramAnalyzer::new().analyze(&library::real_programs())
}

#[test]
fn eps2_sweep_monotone_feasibility() {
    let tdg = workload();
    let net = topology::linear(5, 10.0);
    // Once feasible at some eps2, it stays feasible for larger eps2.
    let mut first_feasible = None;
    for eps2 in 1..=5usize {
        let eps = Epsilon::new(f64::INFINITY, eps2);
        match GreedyHeuristic::new().deploy(&tdg, &net, &eps) {
            Ok(plan) => {
                assert!(plan.occupied_switch_count() <= eps2);
                assert!(verify(&tdg, &net, &plan, &eps).is_empty());
                first_feasible.get_or_insert(eps2);
            }
            Err(_) => {
                assert!(first_feasible.is_none(), "feasibility must be monotone in eps2");
            }
        }
    }
    assert!(first_feasible.is_some(), "five switches must suffice");
}

#[test]
fn eps1_zero_forces_single_switch_or_infeasible() {
    let tdg = workload();
    let net = topology::linear(5, 10.0);
    // With zero latency budget, any plan must avoid coordination entirely.
    let eps = Epsilon::new(0.0, usize::MAX);
    // An error is equally acceptable: the workload may need > 1 switch.
    if let Ok(plan) = GreedyHeuristic::new().deploy(&tdg, &net, &eps) {
        assert_eq!(plan.routes().len(), 0);
        assert_eq!(plan.occupied_switch_count(), 1);
    }
}

#[test]
fn loose_bounds_never_fail_on_sufficient_hardware() {
    let tdg = workload();
    for switches in [3usize, 4, 8] {
        let net = topology::linear(switches, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert!(verify(&tdg, &net, &plan, &Epsilon::loose()).is_empty());
    }
}

#[test]
fn verifier_flags_epsilon_violations_post_hoc() {
    let tdg = workload();
    let net = topology::linear(3, 10.0);
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
    let occupied = plan.occupied_switch_count();
    if occupied > 1 {
        let tight = Epsilon::new(f64::INFINITY, occupied - 1);
        assert!(!verify(&tdg, &net, &plan, &tight).is_empty());
    }
}
