//! Property suite for the unified solver architecture: on random small
//! TDGs and topologies every [`Solver`]'s plan verifies, objectives obey
//! `exact <= portfolio <= greedy`, and the portfolio's winning output is
//! byte-identical across repeated runs with the same seed and budget.

use hermes::baselines::{FirstFitByLevel, FirstFitByLevelAndSize, IlpBaseline, IlpConfig, Sonata};
use hermes::core::test_support::{chain_tdg, tiny_switches};
use hermes::core::ProgramAnalyzer;
use hermes::core::{
    verify, Epsilon, GreedyHeuristic, MilpHermes, OptimalSolver, Portfolio, SearchContext, Solver,
};
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::net::Network;
use hermes::tdg::Tdg;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// A random single-program chain (2–5 dependency edges, 1–12 B each) on a
/// linear network sized so every placement problem stays tiny but feasible.
fn random_chain_instance(seed: u64) -> (Tdg, Network) {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = rng.random_range(2..=5usize);
    let bytes: Vec<u32> = (0..edges).map(|_| rng.random_range(1..=12u32)).collect();
    let switches = rng.random_range(2..=3usize);
    // `switches * stages` slots for `edges + 1` half-capacity MATs.
    let stages = edges / switches + 2;
    (chain_tdg(&bytes, 0.5), tiny_switches(switches, stages, 0.5))
}

/// A random multi-program synthetic TDG on a three-switch linear network
/// with deep pipelines (feasibility is all but guaranteed).
fn random_synthetic_instance(seed: u64, programs: usize) -> (Tdg, Network) {
    let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
    let tdg = ProgramAnalyzer::new().analyze(&generator.programs(programs));
    (tdg, tiny_switches(3, 12, 1.0))
}

/// Every registered [`Solver`], exercised through the one unified entry
/// point (no solver-private budget knobs anywhere).
fn all_solvers() -> Vec<Box<dyn Solver>> {
    let fast = IlpConfig { time_limit: Duration::from_secs(1), ..Default::default() };
    vec![
        Box::new(GreedyHeuristic::new()),
        Box::new(OptimalSolver::new()),
        Box::new(MilpHermes::default()),
        Box::new(FirstFitByLevel),
        Box::new(FirstFitByLevelAndSize),
        Box::new(IlpBaseline::min_stage(fast)),
        Box::new(Sonata::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever a solver returns must be a verified plan whose recorded
    /// objective matches the plan's recomputed `A_max`. Budgets are tight:
    /// this property needs feasible incumbents, not optimality proofs.
    #[test]
    fn every_solver_plan_verifies(seed in 0u64..1_000, programs in 1usize..3) {
        let (tdg, net) = random_synthetic_instance(seed, programs);
        let eps = Epsilon::loose();
        for solver in all_solvers() {
            let ctx = SearchContext::with_time_limit(Duration::from_secs(1));
            if let Ok(outcome) = solver.solve(&tdg, &net, &eps, &ctx) {
                let violations = verify(&tdg, &net, &outcome.plan, &eps);
                prop_assert!(violations.is_empty(), "{}: {violations:?}", solver.name());
                prop_assert_eq!(outcome.objective, outcome.plan.max_inter_switch_bytes(&tdg));
            }
        }
    }

    /// The proven exact optimum lower-bounds the portfolio, which never
    /// loses to the greedy heuristic it contains.
    #[test]
    fn objectives_ordered_exact_portfolio_greedy(seed in 0u64..1_000) {
        let (tdg, net) = random_chain_instance(seed);
        let eps = Epsilon::loose();
        let exact = OptimalSolver::new()
            .solve(&tdg, &net, &eps, &SearchContext::with_time_limit(Duration::from_secs(20)))
            .expect("chain instances are feasible by construction");
        prop_assert!(exact.proven_optimal, "tiny instance not proven");
        let portfolio = Portfolio::greedy_exact()
            .solve(&tdg, &net, &eps, &SearchContext::with_time_limit(Duration::from_secs(20)))
            .expect("same instance");
        let greedy = GreedyHeuristic::new()
            .solve(&tdg, &net, &eps, &SearchContext::unbounded())
            .expect("same instance");
        prop_assert!(exact.objective <= portfolio.objective);
        prop_assert!(portfolio.objective <= greedy.objective);
    }

    /// Determinism: the winning racer, objective, and plan serialize to
    /// byte-identical JSON across repeated races with the same seed and
    /// budget (per the determinism rules, stats are exempt).
    #[test]
    fn portfolio_output_is_byte_identical_across_runs(seed in 0u64..1_000) {
        let (tdg, net) = random_chain_instance(seed);
        let eps = Epsilon::loose();
        let budget = Duration::from_secs(10);
        let fingerprint = || {
            let race = Portfolio::greedy_exact()
                .race(&tdg, &net, &eps, &SearchContext::with_time_limit(budget))
                .expect("chain instances are feasible by construction");
            serde_json::to_string(&(race.winner, race.outcome.objective, &race.outcome.plan))
                .expect("plans serialize")
        };
        let first = fingerprint();
        for _ in 0..2 {
            prop_assert_eq!(fingerprint(), first.clone());
        }
    }
}
