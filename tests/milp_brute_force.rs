//! Property test: the MILP solver against exhaustive enumeration.
//!
//! Random small pure-binary programs are solved both by branch and bound
//! and by brute force over all 2^n assignments; objective values must
//! agree exactly (both are exact methods).

use hermes::milp::{solve, Direction, LinExpr, Model, Sense, SolveStatus, SolverConfig, VarId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomMip {
    n: usize,
    costs: Vec<i32>,
    // Each constraint: coefficients and rhs for `sum coeff*x <= rhs`.
    constraints: Vec<(Vec<i32>, i32)>,
    maximize: bool,
}

fn random_mip() -> impl Strategy<Value = RandomMip> {
    (2usize..=6).prop_flat_map(|n| {
        let costs = proptest::collection::vec(-9i32..=9, n);
        let constraint = (proptest::collection::vec(-5i32..=5, n), -4i32..=12);
        let constraints = proptest::collection::vec(constraint, 1..=3);
        (costs, constraints, any::<bool>()).prop_map(move |(costs, constraints, maximize)| {
            RandomMip { n, costs, constraints, maximize }
        })
    })
}

fn brute_force(mip: &RandomMip) -> Option<i64> {
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << mip.n) {
        let x = |i: usize| -> i64 { i64::from((mask >> i) & 1) };
        let feasible = mip.constraints.iter().all(|(coeffs, rhs)| {
            let lhs: i64 = coeffs.iter().enumerate().map(|(i, &c)| i64::from(c) * x(i)).sum();
            lhs <= i64::from(*rhs)
        });
        if !feasible {
            continue;
        }
        let obj: i64 = mip.costs.iter().enumerate().map(|(i, &c)| i64::from(c) * x(i)).sum();
        best = Some(match best {
            None => obj,
            Some(b) if mip.maximize => b.max(obj),
            Some(b) => b.min(obj),
        });
    }
    best
}

fn build(mip: &RandomMip) -> (Model, Vec<VarId>) {
    let mut model = Model::new("random");
    let vars: Vec<VarId> = (0..mip.n).map(|i| model.binary(format!("x{i}"))).collect();
    for (k, (coeffs, rhs)) in mip.constraints.iter().enumerate() {
        model.add_constraint(
            format!("c{k}"),
            LinExpr::sum(vars.iter().enumerate().map(|(i, &v)| (v, f64::from(coeffs[i])))),
            Sense::Le,
            f64::from(*rhs),
        );
    }
    let obj = LinExpr::sum(vars.iter().enumerate().map(|(i, &v)| (v, f64::from(mip.costs[i]))));
    model.set_objective(if mip.maximize { Direction::Maximize } else { Direction::Minimize }, obj);
    (model, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn branch_and_bound_matches_brute_force(mip in random_mip()) {
        let expected = brute_force(&mip);
        let (model, vars) = build(&mip);
        let solution = solve(&model, &SolverConfig::default()).expect("valid model");
        match expected {
            None => prop_assert_eq!(solution.status, SolveStatus::Infeasible),
            Some(obj) => {
                prop_assert_eq!(solution.status, SolveStatus::Optimal);
                prop_assert!(
                    (solution.objective - obj as f64).abs() < 1e-6,
                    "solver {} vs brute force {}", solution.objective, obj
                );
                // The incumbent itself is feasible and achieves the value.
                let achieved: f64 = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| solution.value(v) * f64::from(mip.costs[i]))
                    .sum();
                prop_assert!((achieved - obj as f64).abs() < 1e-6);
                prop_assert!(model.is_feasible(&solution.values, 1e-6));
            }
        }
    }
}
