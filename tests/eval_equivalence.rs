//! Property suite pinning the hot-path evaluation core to its reference
//! implementations:
//!
//! - interned-bitset dependency typing ([`classify_profiles`] /
//!   [`metadata_amount_profiles`]) against the `BTreeSet` reference
//!   ([`classify`] / [`metadata_amount`]) on random synthetic programs;
//! - [`IncrementalEval`]'s running `A_max` and switch-order acyclicity
//!   against from-scratch recomputation over random place/unplace
//!   sequences;
//! - the memoized [`StageFeasCache`] against [`stage_feasible`] on random
//!   node subsets and pipeline shapes;
//! - the work-stealing parallel exact search against its single-threaded
//!   engine: byte-identical `SolveOutcome`s at worker counts 2–8, across
//!   pre-published incumbents, pre-expired deadlines, and pre-cancelled
//!   contexts;
//!
//! plus a regression test that the fixed-seed portfolio smoke output is
//! byte-identical to the fixture recorded when the portfolio runner
//! landed (`tests/fixtures/portfolio_smoke.json`).

use hermes::core::eval::UNASSIGNED;
use hermes::core::test_support::{chain_tdg, tiny_switches};
use hermes::core::{
    stage_feasible, DeployError, Epsilon, IncrementalEval, OptimalSolver, Portfolio,
    ProgramAnalyzer, SearchContext, SolveOutcome, Solver, StageFeasCache,
};
use hermes::dataplane::fieldset::FieldTable;
use hermes::dataplane::library;
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::net::topology;
use hermes::net::TargetModel;
use hermes::tdg::{
    classify, classify_profiles, metadata_amount, metadata_amount_profiles, AnalysisMode,
    MatProfile, NodeId, Tdg,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// Splitmix64 — deterministic op streams without threading `StdRng`
/// through every property.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synthetic_tdg(seed: u64, programs: usize) -> Tdg {
    let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
    ProgramAnalyzer::new().analyze(&generator.programs(programs))
}

/// Deterministic stop shapes for the parallel-equivalence property.
/// `Expired` and `Cancelled` stop the search before its first node;
/// `Generous` and `Unbounded` let it run to exhaustion. Mid-flight expiry
/// is inherently timing-dependent, so these four are the only stop shapes
/// whose outcome is well-defined enough to compare byte-for-byte.
fn stop_context(stop: usize) -> SearchContext {
    match stop % 4 {
        0 => SearchContext::unbounded(),
        1 => SearchContext::with_time_limit(Duration::from_secs(30)),
        2 => SearchContext::with_deadline(Instant::now()),
        _ => {
            let ctx = SearchContext::unbounded();
            ctx.cancel_token().cancel();
            ctx
        }
    }
}

/// Zeroes the two legitimately nondeterministic stats (raw node count and
/// wall clock); everything else — plan bytes, objective, optimality flag,
/// proven bound, error variant — must match exactly.
fn normalized(result: Result<SolveOutcome, DeployError>) -> Result<SolveOutcome, DeployError> {
    result.map(|mut outcome| {
        outcome.stats.nodes_explored = 0;
        outcome.stats.wall = Duration::ZERO;
        outcome
    })
}

/// From-scratch `A_max`: rebuild the ordered-pair byte matrix per probe.
fn scratch_amax(tdg: &Tdg, assign: &[usize], q: usize) -> u64 {
    let mut pair = vec![0u64; q * q];
    for e in tdg.edges() {
        let (a, b) = (assign[e.from.index()], assign[e.to.index()]);
        if a != UNASSIGNED && b != UNASSIGNED && a != b {
            pair[a * q + b] += u64::from(e.bytes);
        }
    }
    pair.into_iter().max().unwrap_or(0)
}

/// From-scratch switch-order acyclicity: Kahn over the rebuilt relation.
fn scratch_acyclic(tdg: &Tdg, assign: &[usize], q: usize) -> bool {
    let mut edges = vec![false; q * q];
    for e in tdg.edges() {
        let (a, b) = (assign[e.from.index()], assign[e.to.index()]);
        if a != UNASSIGNED && b != UNASSIGNED && a != b {
            edges[a * q + b] = true;
        }
    }
    let mut indeg = vec![0u32; q];
    for a in 0..q {
        for b in 0..q {
            if edges[a * q + b] {
                indeg[b] += 1;
            }
        }
    }
    let mut stack: Vec<usize> = (0..q).filter(|&b| indeg[b] == 0).collect();
    let mut seen = 0;
    while let Some(a) = stack.pop() {
        seen += 1;
        for b in 0..q {
            if edges[a * q + b] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    stack.push(b);
                }
            }
        }
    }
    seen == q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bitset typing and sizing agree with the `BTreeSet` reference on
    /// every MAT pair of random synthetic programs, for both analysis
    /// modes and both gate settings.
    #[test]
    fn bitset_typing_matches_reference(seed in 0u64..1024, programs in 1usize..4) {
        let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
        for program in generator.programs(programs) {
            let mats = program.tables();
            let mut table = FieldTable::new();
            let profiles: Vec<MatProfile> =
                mats.iter().map(|m| MatProfile::build(m, &mut table)).collect();
            for (i, a) in mats.iter().enumerate() {
                for (j, b) in mats.iter().enumerate() {
                    for gated in [false, true] {
                        let reference = classify(a, b, gated);
                        let interned = classify_profiles(&profiles[i], &profiles[j], gated);
                        prop_assert_eq!(interned, reference, "classify {}->{} gated={}", i, j, gated);
                        let Some(dep) = reference else { continue };
                        for mode in [AnalysisMode::PaperLiteral, AnalysisMode::Intersection] {
                            prop_assert_eq!(
                                metadata_amount_profiles(&table, &profiles[i], &profiles[j], dep, mode),
                                metadata_amount(a, b, dep, mode),
                                "amount {}->{} {:?} {:?}", i, j, dep, mode
                            );
                        }
                    }
                }
            }
        }
    }

    /// `IncrementalEval` matches from-scratch `A_max` and acyclicity after
    /// every step of a random place/unplace sequence.
    #[test]
    fn incremental_eval_matches_scratch(seed in 0u64..1024, q in 2usize..5) {
        let tdg = synthetic_tdg(seed, 2);
        let n = tdg.node_count();
        prop_assume!(n > 0);
        let mut eval = IncrementalEval::new(&tdg, q);
        let mut state = seed ^ 0xDEAD_BEEF;
        for _ in 0..200 {
            let node = (splitmix64(&mut state) as usize) % n;
            if eval.assignment()[node] == UNASSIGNED {
                eval.place(node, (splitmix64(&mut state) as usize) % q);
            } else {
                eval.unplace(node);
            }
            prop_assert_eq!(eval.amax(), scratch_amax(&tdg, eval.assignment(), q));
            prop_assert_eq!(eval.is_acyclic(), scratch_acyclic(&tdg, eval.assignment(), q));
        }
    }

    /// The memoized stage-feasibility cache answers exactly like the
    /// from-scratch `stage_feasible` on random subsets and pipeline
    /// shapes — including repeated probes served from the cache.
    #[test]
    fn stage_cache_matches_stage_feasible(
        seed in 0u64..1024,
        stages in 2usize..6,
        cap_tenths in 4u32..13,
    ) {
        let tdg = synthetic_tdg(seed, 2);
        let n = tdg.node_count();
        prop_assume!(n > 0);
        let model = TargetModel::pipeline(stages, f64::from(cap_tenths) / 10.0);
        let mut cache = StageFeasCache::new(&tdg);
        let mut state = seed ^ 0x5EED_CAFE;
        for _ in 0..40 {
            let mut set = BTreeSet::new();
            for id in tdg.node_ids() {
                if splitmix64(&mut state) & 1 == 1 {
                    set.insert(id);
                }
            }
            let expect = stage_feasible(&tdg, &set, &model);
            prop_assert_eq!(cache.feasible_set(&tdg, &model, &set), expect);
            // Second probe of the same set must come back identical.
            prop_assert_eq!(cache.feasible_set(&tdg, &model, &set), expect);
        }
    }

    /// The work-stealing parallel exact search returns byte-identical
    /// `SolveOutcome`s (plan, objective, optimality proof, proven bound —
    /// every stat except raw node counts and wall clock) to the
    /// single-threaded engine at worker counts 2–8, across random chains,
    /// switch counts, pre-published incumbents, pre-expired deadlines, and
    /// pre-cancelled contexts, for both the seeded and the bare solver.
    #[test]
    fn parallel_exact_is_byte_identical_to_sequential(
        seed in 0u64..2048,
        threads in 2usize..9,
        q in 2usize..4,
        stop in 0usize..4,
        bare in any::<bool>(),
        prebound_raw in 0u64..64,
    ) {
        // The vendored proptest shim has no `prop::option`; fold the top
        // quarter of the range into "no pre-published incumbent".
        let prebound = (prebound_raw < 48).then_some(prebound_raw);
        let mut state = seed ^ 0x9E37_0001;
        let len = 3 + (splitmix64(&mut state) as usize) % 4;
        // Edge widths must be nonzero (`Field::new` rejects zero-width fields).
        let bytes: Vec<u32> = (0..len).map(|_| 1 + (splitmix64(&mut state) % 15) as u32).collect();
        let tdg = chain_tdg(&bytes, 0.2 + 0.1 * ((splitmix64(&mut state) % 4) as f64));
        let stages = 2 + (splitmix64(&mut state) as usize) % 2;
        let net = tiny_switches(q, stages, 0.5 + 0.1 * ((splitmix64(&mut state) % 4) as f64));
        let solver = if bare { OptimalSolver::bare() } else { OptimalSolver::default() };
        let eps = Epsilon::loose();

        let run = |workers: usize| {
            let ctx = stop_context(stop)
                .with_threads(NonZeroUsize::new(workers).expect("workers >= 1"));
            if let Some(bound) = prebound {
                ctx.publish_incumbent(bound);
            }
            normalized(solver.solve(&tdg, &net, &eps, &ctx))
        };

        let reference = run(1);
        let parallel = run(threads);
        prop_assert_eq!(
            parallel, reference,
            "threads={} stop={} bare={} prebound={:?}", threads, stop, bare, prebound
        );
    }

    /// `feasible_with` (the incremental "does node n still fit" fast path)
    /// agrees with `stage_feasible` of the grown set when nodes arrive in
    /// topological order — the exact solver's probe pattern.
    #[test]
    fn stage_cache_topo_extend_matches_reference(
        seed in 0u64..1024,
        stages in 2usize..6,
        cap_tenths in 4u32..13,
    ) {
        let tdg = synthetic_tdg(seed, 2);
        prop_assume!(tdg.node_count() > 0);
        let model = TargetModel::pipeline(stages, f64::from(cap_tenths) / 10.0);
        let mut cache = StageFeasCache::new(&tdg);
        let mut words = vec![0u64; cache.word_len()];
        let mut set = BTreeSet::new();
        let mut state = seed ^ 0x0DDC_0FFE;
        for id in tdg.topo_order().expect("TDGs are DAGs") {
            if splitmix64(&mut state).is_multiple_of(3) {
                continue; // leave some nodes out of the growing set
            }
            let mut grown = set.clone();
            grown.insert(id);
            let expect = stage_feasible(&tdg, &grown, &model);
            prop_assert_eq!(cache.feasible_with(&tdg, &model, &words, id), expect);
            if expect {
                words[id.index() / 64] |= 1u64 << (id.index() % 64);
                set = grown;
            }
        }
    }
}

/// The fixed-seed two-thread portfolio race on the ten-program library
/// still produces byte-identical timing-independent output to the fixture
/// recorded when the portfolio runner landed — the hot-path rewrite must
/// not change a single accepted leaf.
#[test]
fn portfolio_smoke_matches_recorded_fixture() {
    let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
    let net = topology::linear(3, 10.0);
    let race = Portfolio::greedy_exact()
        .race(
            &tdg,
            &net,
            &Epsilon::loose(),
            &SearchContext::with_time_limit(Duration::from_secs(2)),
        )
        .expect("library workload is feasible");

    // Assembled by hand (not via a derive) so the field order matches the
    // smoke binary's struct exactly, byte for byte.
    let rendered = format!(
        "{{\"winner\":{},\"objective\":{},\"proven_optimal\":{},\"plan\":{}}}",
        serde_json::to_string(&race.reports[race.winner].name).expect("name serializes"),
        race.outcome.objective,
        race.outcome.proven_optimal,
        serde_json::to_string(&race.outcome.plan).expect("plan serializes"),
    );
    let fixture = include_str!("fixtures/portfolio_smoke.json");
    assert_eq!(
        rendered,
        fixture.trim_end(),
        "portfolio smoke output drifted from the PR 3 fixture"
    );
}

/// `NodeId` sanity for the suite above: dense indices cover `0..n`.
#[test]
fn synthetic_tdg_ids_are_dense() {
    let tdg = synthetic_tdg(7, 2);
    let ids: Vec<NodeId> = tdg.node_ids().collect();
    assert_eq!(ids.len(), tdg.node_count());
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(id.index(), i);
    }
}
