//! Property tests over the backend: for random workloads, the distributed
//! deployment must process packets exactly like a single logical switch,
//! and the generated configurations must be internally consistent.

use hermes::backend::{config::generate, emulator};
use hermes::core::{verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::net::topology;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn distributed_execution_equals_reference(seed in 0u64..3_000, programs in 1usize..5) {
        let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
        let tdg = ProgramAnalyzer::new().analyze(&generator.programs(programs));
        let net = topology::linear(4, 10.0);
        let eps = Epsilon::loose();
        let Ok(plan) = GreedyHeuristic::new().deploy(&tdg, &net, &eps) else {
            return Ok(()); // capacity-infeasible seeds are not the property
        };
        prop_assume!(verify(&tdg, &net, &plan, &eps).is_empty());
        let artifacts = generate(&tdg, &net, &plan);

        for packet_seed in [0u64, 1, 2] {
            prop_assert!(
                emulator::equivalent(&tdg, &plan, &artifacts, emulator::test_packet(packet_seed)),
                "seed {seed}: distributed execution diverged"
            );
        }
        // Wire accounting dominates the per-pair field unions. (Not the
        // paper's per-edge sum, which double-counts fields shared by
        // several crossing edges.)
        let trace = emulator::run_distributed(&tdg, &plan, &artifacts, emulator::test_packet(0));
        prop_assert!(
            u64::from(trace.max_wire_bytes())
                >= emulator::pairwise_field_bytes(&tdg, &plan)
        );
        // Configs stay mutually consistent: appended fields are parsed.
        for config in artifacts.switches.values() {
            for (next, fields) in &config.appends {
                for f in fields {
                    prop_assert!(
                        artifacts.switches[next].parses.contains(f),
                        "{} appended but not parsed downstream",
                        f.name()
                    );
                }
            }
        }
    }
}

/// The minimized case recorded in `backend_equivalence.proptest-regressions`
/// (`shrinks to seed = 935, programs = 4`), pinned as an explicit unit test.
/// The vendored proptest shim generates its own deterministic case stream
/// and cannot replay upstream proptest's persisted seeds, so recorded
/// regressions are promoted to plain tests like this one.
#[test]
fn recorded_regression_seed_935_programs_4() {
    let mut generator = SyntheticGenerator::new(935, SyntheticConfig::default());
    let tdg = ProgramAnalyzer::new().analyze(&generator.programs(4));
    let net = topology::linear(4, 10.0);
    let eps = Epsilon::loose();
    let Ok(plan) = GreedyHeuristic::new().deploy(&tdg, &net, &eps) else {
        panic!("recorded regression must be deployable");
    };
    assert!(verify(&tdg, &net, &plan, &eps).is_empty());
    let artifacts = generate(&tdg, &net, &plan);
    for packet_seed in [0u64, 1, 2] {
        assert!(
            emulator::equivalent(&tdg, &plan, &artifacts, emulator::test_packet(packet_seed)),
            "seed 935: distributed execution diverged"
        );
    }
}
