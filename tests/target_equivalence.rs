//! Heterogeneous-target equivalence and mixed-topology smoke suite.
//!
//! Two guarantees, per the target-model refactor contract:
//!
//! 1. **Byte identity on defaults.** Explicitly retargeting every switch
//!    with the pipeline [`TargetModel`] carrying its own numbers changes
//!    nothing: every solver's plan, its JSON serialization, its verify
//!    verdicts, and the precheck certificates are byte-identical to the
//!    untouched default network. The pre-refactor scalar path *is* the
//!    default target, so this pins the refactor to the old behavior.
//! 2. **Mixed topologies are first-class.** On a Tofino+SmartNIC+software
//!    mix, all seven solvers plus the portfolio return verified plans,
//!    deterministically, and the migration scheduler stages a drain.

use hermes::baselines::{FirstFitByLevel, FirstFitByLevelAndSize, IlpBaseline, IlpConfig, Sonata};
use hermes::core::test_support::{chain_tdg, tiny_switches};
use hermes::core::{
    verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, IncrementalDeployer, MigrationOrder,
    MigrationProblem, MigrationScheduler, MilpHermes, OptimalSolver, Portfolio, Precheck,
    RedeployOptions, SearchContext, Solver,
};
use hermes::net::{parse_target, topology, Network, TargetKind, TargetModel};
use hermes::tdg::Tdg;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

fn all_solvers() -> Vec<Box<dyn Solver>> {
    let fast = IlpConfig { time_limit: Duration::from_secs(1), ..Default::default() };
    vec![
        Box::new(GreedyHeuristic::new()),
        Box::new(OptimalSolver::new()),
        Box::new(MilpHermes::default()),
        Box::new(FirstFitByLevel),
        Box::new(FirstFitByLevelAndSize),
        Box::new(IlpBaseline::min_stage(fast)),
        Box::new(Sonata::default()),
    ]
}

fn ctx() -> SearchContext {
    SearchContext::with_time_limit(Duration::from_secs(2))
}

/// A random chain workload on a tight linear network, the same family the
/// solver-portfolio suite uses.
fn random_instance(seed: u64) -> (Tdg, Network) {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = rng.random_range(2..=5usize);
    let bytes: Vec<u32> = (0..edges).map(|_| rng.random_range(1..=12u32)).collect();
    let switches = rng.random_range(2..=3usize);
    let stages = edges / switches + 2;
    (chain_tdg(&bytes, 0.5), tiny_switches(switches, stages, 0.5))
}

/// `net`, with every switch re-stamped through the explicit pipeline
/// [`TargetModel`] built from that switch's own numbers. A faithful
/// refactor makes this a no-op.
fn explicitly_retargeted(net: &Network) -> Network {
    let mut out = net.clone();
    for id in out.switch_ids().collect::<Vec<_>>() {
        let (stages, cap) = {
            let s = out.switch(id);
            (s.stages, s.stage_capacity)
        };
        TargetModel::pipeline(stages, cap).apply_to(out.switch_mut(id));
    }
    out
}

/// Three programmable switches in a line: a Tofino, a SmartNIC (4 deep
/// stages, 6.0-unit budget), and a software switch (unbounded stages,
/// 64-unit budget, 20x latency).
fn mixed_network() -> Network {
    let mut net = topology::linear(3, 10.0);
    parse_target("mix:tofino+smartnic+soft").expect("builtin mix").apply(&mut net);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Explicitly stamping the default pipeline target onto every switch
    /// leaves every solver's plan, serialization, and verdicts
    /// byte-identical — the unit-Tofino model *is* the pre-refactor path.
    #[test]
    fn unit_pipeline_target_is_byte_identical_to_defaults(seed in 0u64..1_000) {
        let (tdg, net) = random_instance(seed);
        let retargeted = explicitly_retargeted(&net);
        prop_assert_eq!(
            serde_json::to_string(&net).unwrap(),
            serde_json::to_string(&retargeted).unwrap(),
            "explicit pipeline targets must not change the wire form"
        );
        let eps = Epsilon::loose();
        for solver in all_solvers() {
            let a = solver.solve(&tdg, &net, &eps, &ctx());
            let b = solver.solve(&tdg, &retargeted, &eps, &ctx());
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(
                        serde_json::to_string(&a.plan).unwrap(),
                        serde_json::to_string(&b.plan).unwrap(),
                        "{} diverged on retargeted defaults", solver.name()
                    );
                    prop_assert_eq!(a.objective, b.objective);
                    let va = verify(&tdg, &net, &a.plan, &eps);
                    let vb = verify(&tdg, &retargeted, &b.plan, &eps);
                    prop_assert_eq!(format!("{va:?}"), format!("{vb:?}"));
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(false, "{}: {a:?} vs {b:?}", solver.name()),
            }
        }
    }

    /// Precheck certificates are identical too, including on infeasible
    /// instances (oversized MATs against shrunken switches).
    #[test]
    fn precheck_certificates_match_on_defaults(seed in 0u64..1_000, cap_tenths in 2u32..12) {
        let (tdg, mut net) = random_instance(seed);
        let cap = f64::from(cap_tenths) / 10.0;
        for id in net.switch_ids().collect::<Vec<_>>() {
            net.switch_mut(id).stage_capacity = cap;
        }
        let retargeted = explicitly_retargeted(&net);
        let eps = Epsilon::loose();
        let a = Precheck::run(&tdg, &net, &eps);
        let b = Precheck::run(&tdg, &retargeted, &eps);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

#[test]
fn all_solvers_accept_a_mixed_target_topology() {
    let net = mixed_network();
    let tdg = chain_tdg(&[6, 3, 8, 2], 0.5);
    let eps = Epsilon::loose();
    for solver in all_solvers() {
        let outcome = solver
            .solve(&tdg, &net, &eps, &ctx())
            .unwrap_or_else(|e| panic!("{} refused the mixed topology: {e}", solver.name()));
        let violations = verify(&tdg, &net, &outcome.plan, &eps);
        assert!(violations.is_empty(), "{}: {violations:?}", solver.name());
        // Determinism: the same solve twice is byte-identical.
        let again = solver.solve(&tdg, &net, &eps, &ctx()).unwrap();
        assert_eq!(
            serde_json::to_string(&outcome.plan).unwrap(),
            serde_json::to_string(&again.plan).unwrap(),
            "{} is nondeterministic on the mixed topology",
            solver.name()
        );
    }
}

#[test]
fn portfolio_wins_verified_on_a_mixed_target_topology() {
    let net = mixed_network();
    let tdg = chain_tdg(&[6, 3, 8, 2], 0.5);
    let eps = Epsilon::loose();
    let outcome = Portfolio::standard(3).solve(&tdg, &net, &eps, &ctx()).expect("portfolio");
    assert!(verify(&tdg, &net, &outcome.plan, &eps).is_empty());
    let again = Portfolio::standard(3).solve(&tdg, &net, &eps, &ctx()).expect("portfolio");
    assert_eq!(
        serde_json::to_string(&outcome.plan).unwrap(),
        serde_json::to_string(&again.plan).unwrap()
    );
}

#[test]
fn smartnic_budget_binds_during_planning() {
    // An eight-MAT unit chain on two 4-stage SmartNICs is stage-feasible
    // (four chain links per pipeline), but 3.0-unit budgets only admit
    // three MATs per switch — the budget, not the pipeline, must refuse.
    let mut net = topology::linear(2, 10.0);
    parse_target("smartnic:budget=3").expect("knob").apply(&mut net);
    let tdg = chain_tdg(&[4; 7], 1.0); // 8 MATs x 1.0 units
    let eps = Epsilon::loose();
    assert!(
        GreedyHeuristic::new().deploy(&tdg, &net, &eps).is_err(),
        "8 units must not fit two 3.0-unit budgets"
    );
    // The stock SmartNIC budget (6.0 units per switch) accepts it.
    parse_target("smartnic").expect("builtin").apply(&mut net);
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("stock budgets fit");
    assert!(verify(&tdg, &net, &plan, &eps).is_empty());
}

#[test]
fn mixed_target_topology_matches_the_golden_serde_fixture() {
    let net = mixed_network();
    let json = format!("{}\n", serde_json::to_string_pretty(&net).expect("networks serialize"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/targets_golden.json");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("fixture is writable");
    }
    let fixture = std::fs::read_to_string(path).expect("run with REGEN_GOLDEN=1 to create");
    assert_eq!(
        json, fixture,
        "mixed-target wire form drifted from tests/fixtures/targets_golden.json; \
         re-generate with REGEN_GOLDEN=1 if the change is intentional"
    );
    let back: Network = serde_json::from_str(&fixture).expect("fixture deserializes");
    assert_eq!(net, back, "round trip must preserve target kind and budget");
}

#[test]
fn migration_drains_a_switch_on_a_mixed_topology() {
    let net = mixed_network();
    assert_eq!(net.switch(net.switch_ids().nth(1).unwrap()).target, TargetKind::SmartNic);
    let tdg = chain_tdg(&[6, 2, 9, 3, 5, 4], 0.4);
    let eps = Epsilon::loose();
    let plan_a = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("plan A");
    let drained = *plan_a.occupied_switches().last().expect("non-empty plan");
    let plan_b = IncrementalDeployer::new()
        .redeploy_with(&tdg, &plan_a, &tdg, &net, &eps, &RedeployOptions::excluding([drained]))
        .expect("drain is feasible on the mix")
        .plan;
    let problem = MigrationProblem { tdg: &tdg, net: &net, from: &plan_a, to: &plan_b };
    let schedule = MigrationScheduler::new().plan(&problem, &ctx()).expect("schedulable");
    let again = MigrationScheduler::with_order(MigrationOrder::Auto)
        .plan(&problem, &ctx())
        .expect("schedulable");
    assert_eq!(schedule, again, "mixed-topology schedules must be deterministic");
    assert!(verify(&tdg, &net, &plan_b, &eps).is_empty());
}
