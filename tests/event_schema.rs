//! Schema-drift gate for the event log (`EVENT_SCHEMA_VERSION` 3).
//!
//! PR 6 diffed hand-picked JSON fields; that misses the silent-drift
//! class where a variant is renamed, a field is added with a default, or
//! serde attributes change representation. The stronger property: any
//! *recorded* log — produced by real rollouts, heals, migrations,
//! controller crashes, and recoveries, not synthetic values — must
//! round-trip through serde to an equal value AND re-serialize
//! byte-identically.

use hermes::core::test_support::chain_tdg;
use hermes::core::{
    DeploymentAlgorithm, Epsilon, GreedyHeuristic, IncrementalDeployer, ProgramAnalyzer,
    RedeployOptions,
};
use hermes::dataplane::library;
use hermes::net::topology;
use hermes::runtime::{
    ChannelProfile, CrashTiming, DeploymentRuntime, Event, EventLog, FaultInjector, FaultProfile,
    MigrationConfig, RetryPolicy, EVENT_SCHEMA_VERSION,
};
use proptest::prelude::*;

/// The round-trip property itself.
fn assert_round_trips(log: &EventLog, context: &str) {
    assert_eq!(log.schema_version, EVENT_SCHEMA_VERSION, "{context}");
    let json = log.to_json();
    let back: EventLog =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("{context}: deserialize: {e}"));
    assert_eq!(&back, log, "{context}: serde round trip changed the log");
    assert_eq!(back.to_json(), json, "{context}: re-serialization is not byte-identical");
}

/// A crash + recovery run: covers `ControllerCrashed`, `Recovery*`,
/// `AgentReconciled` on top of the usual transaction events.
#[test]
fn crash_recovery_logs_round_trip() {
    let programs = library::real_programs();
    let tdg = ProgramAnalyzer::new().analyze(&programs[..2.min(programs.len())]);
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("deploys");
    let mut rt = DeploymentRuntime::new(
        net,
        eps,
        FaultInjector::new(11, FaultProfile::none()),
        RetryPolicy::default(),
    );
    assert!(rt.rollout(&tdg, plan.clone()).is_committed());
    let n = plan.occupied_switch_count() as u64;
    rt.injector_mut().arm_controller_crash_at(2 + n, CrashTiming::AfterWrite);
    rt.rollout(&tdg, plan);
    rt.recover(&tdg).expect("recovery succeeds");
    let log = rt.log();
    assert!(
        log.count(|e| matches!(e, Event::ControllerCrashed { .. })) > 0
            && log.count(|e| matches!(e, Event::RecoveryFinished { .. })) > 0,
        "the scenario must actually record the new variants"
    );
    assert_round_trips(log, "crash+recovery");
}

/// A chaotic migration run: covers the `Migration*` family plus faults,
/// retries, fencing, and leases under a lossy channel.
#[test]
fn migration_logs_round_trip() {
    let tdg = chain_tdg(&[6, 2, 9, 3, 5, 4], 0.3);
    let net = topology::linear(4, 10.0);
    let eps = Epsilon::loose();
    let plan_a = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("plan A");
    let drained = *plan_a.occupied_switches().last().expect("non-empty plan");
    let plan_b = IncrementalDeployer::new()
        .redeploy_with(&tdg, &plan_a, &tdg, &net, &eps, &RedeployOptions::excluding([drained]))
        .expect("drain is feasible")
        .plan;
    let mut rt =
        DeploymentRuntime::new(net, eps, FaultInjector::disabled(), RetryPolicy::default());
    assert!(rt.rollout(&tdg, plan_a).is_committed());
    rt.set_injector(FaultInjector::new(5, FaultProfile::chaos()));
    rt.set_channel_profile(ChannelProfile::lossy());
    rt.migrate(&tdg, plan_b, &MigrationConfig::default());
    assert_round_trips(rt.log(), "migration");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every seeded chaos rollout's log round-trips, whatever mix of
    /// events the fault schedule produced.
    #[test]
    fn chaos_logs_round_trip(seed in 0u64..1_000) {
        let programs = library::real_programs();
        let tdg = ProgramAnalyzer::new().analyze(&programs[..2.min(programs.len())]);
        let net = topology::linear(3, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("deploys");
        let mut rt = DeploymentRuntime::new(
            net,
            eps,
            FaultInjector::new(seed, FaultProfile::chaos()),
            RetryPolicy::default(),
        )
        .with_channel_profile(ChannelProfile::lossy());
        rt.rollout(&tdg, plan);
        assert_round_trips(rt.log(), &format!("chaos seed {seed}"));
    }
}
