//! Property-based tests over randomly generated workloads: structural
//! invariants that must hold for *every* input, not just the library.

use hermes::core::{
    verify, DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer, SplitStrategy,
};
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::net::topology::{random_wan, WanConfig};
use hermes::tdg::merge_all;
use hermes::tdg::{AnalysisMode, Tdg};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn synthetic_tdg(seed: u64, programs: usize) -> Tdg {
    let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
    ProgramAnalyzer::new().analyze(&generator.programs(programs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merged_tdgs_are_always_dags(seed in 0u64..5_000, programs in 1usize..8) {
        let tdg = synthetic_tdg(seed, programs);
        prop_assert!(tdg.is_dag());
        // Topological order covers every node exactly once.
        let order = tdg.topo_order().unwrap();
        prop_assert_eq!(order.len(), tdg.node_count());
        let unique: BTreeSet<_> = order.iter().copied().collect();
        prop_assert_eq!(unique.len(), order.len());
    }

    #[test]
    fn splits_partition_the_node_set(seed in 0u64..5_000, programs in 1usize..6) {
        let tdg = synthetic_tdg(seed, programs);
        for strategy in [SplitStrategy::MinMetadata, SplitStrategy::Balanced, SplitStrategy::Random(seed)] {
            let segments = GreedyHeuristic::with_strategy(strategy)
                .split(&tdg, &hermes::net::TargetModel::tofino())
                .expect("synthetic MATs fit a Tofino pipeline");
            let mut seen = BTreeSet::new();
            for seg in &segments {
                prop_assert!(!seg.is_empty(), "empty segment from {strategy:?}");
                for &id in seg {
                    prop_assert!(seen.insert(id), "node duplicated across segments");
                }
            }
            prop_assert_eq!(seen.len(), tdg.node_count());
        }
    }

    #[test]
    fn heuristic_plans_always_verify(seed in 0u64..2_000, programs in 1usize..6) {
        let tdg = synthetic_tdg(seed, programs);
        // Enough hardware that feasibility is guaranteed.
        let net = random_wan(30, 45, seed ^ 0xA5, &WanConfig::default());
        let eps = Epsilon::loose();
        if let Ok(plan) = GreedyHeuristic::new().deploy(&tdg, &net, &eps) {
            let violations = verify(&tdg, &net, &plan, &eps);
            prop_assert!(violations.is_empty(), "{violations:?}");
            // Objective consistency: reported metrics match recomputation.
            let m = plan.metrics(&tdg);
            prop_assert_eq!(m.max_overhead_bytes, plan.max_inter_switch_bytes(&tdg));
        }
    }

    #[test]
    fn merge_is_node_conservative(seed in 0u64..5_000, programs in 2usize..6) {
        let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
        let programs = generator.programs(programs);
        let tdgs: Vec<Tdg> = programs
            .iter()
            .map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral))
            .collect();
        let total: usize = tdgs.iter().map(Tdg::node_count).sum();
        let merged = merge_all(tdgs);
        prop_assert!(merged.node_count() <= total);
        prop_assert!(merged.is_dag());
        // Resources only shrink (duplicates removed), never grow.
        let standalone: f64 = programs.iter().map(|p| p.total_resource()).sum();
        prop_assert!(merged.total_resource() <= standalone + 1e-9);
    }

    #[test]
    fn uniform_reweighting_keeps_structure(seed in 0u64..5_000) {
        let tdg = synthetic_tdg(seed, 3);
        let unit = tdg.with_uniform_edge_bytes(1);
        prop_assert_eq!(unit.node_count(), tdg.node_count());
        prop_assert_eq!(unit.edge_count(), tdg.edge_count());
        prop_assert!(unit.edges().iter().all(|e| e.bytes == 1));
    }
}
