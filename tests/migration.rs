//! Migration scheduler and executor properties.
//!
//! The scheduler side: schedules are deterministic, every step's
//! transient `A_max` is exact (explicit re-evaluation reproduces it), the
//! staged peak never exceeds the all-at-once baseline, and infeasible
//! staging windows are refused up front. The executor side: a clean
//! migration lands plan B with the full event trail (including the
//! mixed-epoch prefix gate), and a workload the gate refuses is aborted
//! with plan A untouched.

use hermes::backend::{check_transition, config::generate, validate_plan, EpochTransition};
use hermes::core::test_support::{chain_tdg, tiny_switches};
use hermes::core::{
    DeploymentAlgorithm, DeploymentPlan, Epsilon, GreedyHeuristic, IncrementalDeployer,
    MigrateError, MigrationOrder, MigrationProblem, MigrationScheduler, ProgramAnalyzer,
    RedeployOptions, SearchContext,
};
use hermes::dataplane::library;
use hermes::net::{topology, Network};
use hermes::runtime::{
    DeploymentRuntime, Event, FaultInjector, MigrationConfig, RetryPolicy, EVENT_SCHEMA_VERSION,
};
use hermes::tdg::Tdg;
use std::time::Duration;

fn ctx() -> SearchContext {
    SearchContext::with_time_limit(Duration::from_secs(10))
}

/// The standard instance: a ten-MAT metadata chain on five tight
/// switches, plan A from greedy, plan B draining A's last occupied
/// switch. Metadata-only writes keep the mixed-epoch gate satisfied under
/// any commit order, so the full pipeline can execute.
fn drain_instance() -> (Tdg, Network, DeploymentPlan, DeploymentPlan) {
    let tdg = chain_tdg(&[6, 2, 9, 3, 5, 4, 7, 2, 8], 0.4);
    let net = tiny_switches(5, 5, 0.45);
    let eps = Epsilon::loose();
    let plan_a = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("plan A");
    let drained = *plan_a.occupied_switches().last().expect("non-empty plan");
    let plan_b = IncrementalDeployer::new()
        .redeploy_with(&tdg, &plan_a, &tdg, &net, &eps, &RedeployOptions::excluding([drained]))
        .expect("drain is feasible")
        .plan;
    assert_ne!(plan_a, plan_b, "draining must change the plan");
    (tdg, net, plan_a, plan_b)
}

#[test]
fn schedules_are_deterministic_and_never_worse_than_all_at_once() {
    let (tdg, net, plan_a, plan_b) = drain_instance();
    let problem = MigrationProblem { tdg: &tdg, net: &net, from: &plan_a, to: &plan_b };
    let first = MigrationScheduler::new().plan(&problem, &ctx()).expect("schedulable");
    for _ in 0..3 {
        let again = MigrationScheduler::new().plan(&problem, &ctx()).expect("schedulable");
        assert_eq!(first, again, "Auto race must pick a timing-independent winner");
    }
    let all_at_once = first.all_at_once_peak.expect("in-order is valid on a chain");
    assert!(
        first.peak_transient_amax <= all_at_once,
        "staged {} > all-at-once {all_at_once}",
        first.peak_transient_amax
    );
    // The curve starts at plan A's A_max, ends at plan B's, and its max
    // is exactly the reported peak.
    let curve = first.transient_curve();
    assert_eq!(curve.first(), Some(&first.from_amax));
    assert_eq!(curve.last(), Some(&first.to_amax));
    assert_eq!(curve.iter().max(), Some(&first.peak_transient_amax));
    // Every target-occupied switch commits exactly once.
    let mut order = first.commit_order();
    order.sort_unstable();
    order.dedup();
    let occupied: Vec<_> = plan_b.occupied_switches().into_iter().collect();
    assert_eq!(order, occupied, "steps must cover plan B exactly once");
}

#[test]
fn ordering_policies_are_consistent() {
    let (tdg, net, plan_a, plan_b) = drain_instance();
    let problem = MigrationProblem { tdg: &tdg, net: &net, from: &plan_a, to: &plan_b };
    let peak = |order: MigrationOrder| {
        MigrationScheduler::with_order(order).plan(&problem, &ctx()).map(|s| s.peak_transient_amax)
    };
    // In-order and exact always succeed on a schedulable instance; the
    // myopic greedy may dead-end on the acyclicity constraint.
    let auto = peak(MigrationOrder::Auto).expect("auto");
    let exact = peak(MigrationOrder::Exact).expect("exact");
    let in_order = peak(MigrationOrder::InOrder).expect("in-order");
    // Exact is optimal over the searched space, which contains both the
    // in-order permutation and (when it succeeds) greedy's choice — so it
    // lower-bounds them, and Auto's best racer matches it.
    assert!(exact <= in_order, "exact {exact} worse than in-order {in_order}");
    if let Ok(greedy) = peak(MigrationOrder::Greedy) {
        assert!(exact <= greedy, "exact {exact} worse than greedy {greedy}");
    }
    assert_eq!(auto, exact, "auto must find the optimum");
}

#[test]
fn explicit_orders_reproduce_and_mismatches_are_typed() {
    let (tdg, net, plan_a, plan_b) = drain_instance();
    let problem = MigrationProblem { tdg: &tdg, net: &net, from: &plan_a, to: &plan_b };
    let auto = MigrationScheduler::new().plan(&problem, &ctx()).expect("schedulable");
    // Re-planning with the winner's own order (restricted to the moving
    // switches) must reproduce its peak exactly.
    let moving: Vec<_> =
        auto.steps.iter().filter(|s| !s.moved.is_empty()).map(|s| s.switch).collect();
    let replay = MigrationScheduler::with_order(MigrationOrder::Explicit(moving.clone()))
        .plan(&problem, &ctx())
        .expect("explicit replay");
    assert_eq!(replay.peak_transient_amax, auto.peak_transient_amax);
    assert_eq!(replay.commit_order(), auto.commit_order());
    // Dropping a switch from the explicit order is a typed refusal.
    if moving.len() > 1 {
        let err = MigrationScheduler::with_order(MigrationOrder::Explicit(moving[1..].to_vec()))
            .plan(&problem, &ctx())
            .expect_err("incomplete order");
        assert!(matches!(err, MigrateError::OrderMismatch(_)), "{err}");
    }
}

#[test]
fn identical_plans_are_a_noop() {
    let (tdg, net, plan_a, _) = drain_instance();
    let problem = MigrationProblem { tdg: &tdg, net: &net, from: &plan_a, to: &plan_a };
    let schedule = MigrationScheduler::new().plan(&problem, &ctx()).expect("noop");
    assert!(schedule.steps.iter().all(|s| s.moved.is_empty()), "nothing may move");
    assert_eq!(schedule.peak_transient_amax, schedule.from_amax);
    assert_eq!(schedule.from_amax, schedule.to_amax);
}

#[test]
fn staging_overflow_is_a_typed_refusal() {
    // Four chain MATs on two-slot switches: plan A fills s0+s1, plan B
    // (computed with s0 masked off) fills s1+s2 with *different* MATs, so
    // s1's make-before-break window needs four slots it does not have.
    let tdg = chain_tdg(&[9, 1, 9], 0.4);
    let net = tiny_switches(3, 2, 0.45);
    let eps = Epsilon::loose();
    let plan_a = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("plan A");
    let mut masked = net.clone();
    let first = net.switch_ids().next().expect("switches");
    masked.switch_mut(first).programmable = false;
    let plan_b = GreedyHeuristic::new().deploy(&tdg, &masked, &eps).expect("plan B");
    assert_ne!(plan_a, plan_b);
    let problem = MigrationProblem { tdg: &tdg, net: &net, from: &plan_a, to: &plan_b };
    let err = MigrationScheduler::new().plan(&problem, &ctx()).expect_err("must refuse");
    assert!(matches!(err, MigrateError::StagingInfeasible(_)), "{err}");
}

#[test]
fn every_schedule_prefix_passes_the_mixed_epoch_gate() {
    let (tdg, net, plan_a, plan_b) = drain_instance();
    let problem = MigrationProblem { tdg: &tdg, net: &net, from: &plan_a, to: &plan_b };
    let schedule = MigrationScheduler::new().plan(&problem, &ctx()).expect("schedulable");
    let old_artifacts = generate(&tdg, &net, &plan_a);
    let seeds: Vec<u64> = (0..16).collect();
    let (report, new_artifacts) = validate_plan(&tdg, &net, &plan_b, &Epsilon::loose(), &seeds);
    assert!(report.is_ok(), "{report:?}");
    let transition = EpochTransition {
        tdg: &tdg,
        old_plan: &plan_a,
        old_artifacts: &old_artifacts,
        new_plan: &plan_b,
        new_artifacts: &new_artifacts,
    };
    let windows = check_transition(&transition, &schedule.commit_order(), &seeds)
        .expect("metadata-only chain is observably epoch-clean in every window");
    assert!(windows > 0, "the gate must actually have checked windows");
}

#[test]
fn clean_migration_lands_plan_b_with_a_full_event_trail() {
    let (tdg, net, plan_a, plan_b) = drain_instance();
    let eps = Epsilon::loose();
    let mut rt =
        DeploymentRuntime::new(net, eps, FaultInjector::disabled(), RetryPolicy::default());
    assert!(rt.rollout(&tdg, plan_a.clone()).is_committed());
    let epoch_a = rt.active_epoch().expect("A active");

    let outcome = rt.migrate(&tdg, plan_b.clone(), &MigrationConfig::default());
    assert!(outcome.is_migrated(), "{outcome}");
    assert_eq!(rt.active_plan(), Some(&plan_b));
    assert!(rt.active_epoch().expect("B active") > epoch_a);

    let log = rt.log();
    assert_eq!(log.count(|e| matches!(e, Event::MigrationStarted { .. })), 1);
    assert_eq!(log.count(|e| matches!(e, Event::MixedEpochChecked { .. })), 1);
    assert_eq!(log.count(|e| matches!(e, Event::MigrationCompleted { .. })), 1);
    let steps = log.count(|e| matches!(e, Event::MigrationStepCommitted { .. }));
    assert!(steps > 0, "at least one step must commit");
    // The serialized log is schema-stamped for golden diffing.
    let json = log.to_json();
    assert!(
        json.contains(&format!("\"schema_version\": {EVENT_SCHEMA_VERSION}")),
        "{}",
        &json[..200.min(json.len())]
    );

    // Migrating again to the same plan is a trivial no-op success.
    let noop = rt.migrate(&tdg, plan_b.clone(), &MigrationConfig::default());
    match noop {
        hermes::runtime::MigrationOutcome::Migrated { steps, .. } => assert_eq!(steps, 0),
        other => panic!("expected trivial success, got {other}"),
    }
}

#[test]
fn gate_refused_workloads_abort_with_plan_a_untouched() {
    // Real programs route packets through their MATs via metadata
    // contracts; re-homing the *first* occupied switch's MATs downstream
    // double- or skip-executes them mid-window, so the mixed-epoch gate
    // must refuse and the migration must abort before any commit.
    let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
    let net = topology::linear(4, 10.0);
    let eps = Epsilon::loose();
    // Both plans are computed on the stock (tight) pipelines so the drain
    // interleaves: s0's MATs re-home downstream while their neighbors
    // stay put, which is exactly the move the gate refuses.
    let plan_a = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("plan A");
    let drained = *plan_a.occupied_switches().iter().next().expect("non-empty");
    let plan_b = IncrementalDeployer::new()
        .redeploy_with(&tdg, &plan_a, &tdg, &net, &eps, &RedeployOptions::excluding([drained]))
        .expect("drain is feasible")
        .plan;
    assert_ne!(plan_a, plan_b);
    // The runtime gets widened pipelines (both plans stay valid) so the
    // make-before-break staging window fits and the scheduler lets the
    // migration reach the gate — the refusal under test is the
    // packet-consistency one, not capacity.
    let mut wide = net.clone();
    let ids: Vec<_> = wide.switch_ids().collect();
    for id in ids {
        wide.switch_mut(id).stages *= 4;
        wide.switch_mut(id).stage_capacity *= 2.0;
    }

    let mut rt =
        DeploymentRuntime::new(wide, eps, FaultInjector::disabled(), RetryPolicy::default());
    assert!(rt.rollout(&tdg, plan_a.clone()).is_committed());
    let epoch_a = rt.active_epoch().expect("A active");

    let outcome = rt.migrate(&tdg, plan_b, &MigrationConfig::default());
    match &outcome {
        hermes::runtime::MigrationOutcome::Aborted { reason, .. } => {
            assert!(reason.contains("mixed-epoch"), "{reason}");
        }
        other => panic!("expected a gate abort, got {other}"),
    }
    // Plan A still serves, same epoch, and the refusal is on the record.
    assert_eq!(rt.active_plan(), Some(&plan_a));
    assert_eq!(rt.active_epoch(), Some(epoch_a));
    assert_eq!(rt.log().count(|e| matches!(e, Event::MixedEpochViolated { .. })), 1);
    assert_eq!(rt.log().count(|e| matches!(e, Event::MigrationAborted { .. })), 1);
    assert_eq!(rt.log().count(|e| matches!(e, Event::MigrationStepCommitted { .. })), 0);
}

#[test]
fn migrating_without_an_active_deployment_is_refused() {
    let (tdg, net, _, plan_b) = drain_instance();
    let mut rt = DeploymentRuntime::new(
        net,
        Epsilon::loose(),
        FaultInjector::disabled(),
        RetryPolicy::default(),
    );
    let outcome = rt.migrate(&tdg, plan_b, &MigrationConfig::default());
    assert!(matches!(outcome, hermes::runtime::MigrationOutcome::Aborted { .. }), "{outcome}");
    assert!(rt.active_plan().is_none());
}
