//! Chaos soak: the failure-aware runtime must be *bimodal*.
//!
//! Across many seeded fault schedules and more than one topology, every
//! rollout must end in exactly one of two states:
//!
//! 1. a committed plan that passes the ε-verifier **and** packet-level
//!    equivalence on the (possibly degraded) network, or
//! 2. a clean rollback leaving the previously active plan untouched.
//!
//! And the whole run must be reproducible: the same seed produces a
//! byte-identical event log.

use hermes::backend::validate_plan;
use hermes::core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
use hermes::dataplane::library;
use hermes::net::{topology, Network};
use hermes::runtime::{
    ChannelProfile, DeploymentRuntime, FaultInjector, FaultProfile, RetryPolicy, RolloutOutcome,
};
use hermes::tdg::Tdg;

const SEEDS: u64 = 50;

fn workload() -> Tdg {
    ProgramAnalyzer::new().analyze(&library::real_programs())
}

/// One seeded rollout; returns the runtime and its outcome.
fn run_once(tdg: &Tdg, net: &Network, seed: u64) -> (DeploymentRuntime, RolloutOutcome) {
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new().deploy(tdg, net, &eps).expect("healthy topology deploys");
    let injector = FaultInjector::new(seed, FaultProfile::chaos());
    let mut rt = DeploymentRuntime::new(net.clone(), eps, injector, RetryPolicy::default());
    let outcome = rt.rollout(tdg, plan);
    (rt, outcome)
}

fn soak(net: &Network, label: &str) {
    let tdg = workload();
    let mut committed = 0u64;
    let mut rolled_back = 0u64;
    for seed in 0..SEEDS {
        let (rt, outcome) = run_once(&tdg, net, seed);
        match outcome {
            RolloutOutcome::Committed { .. } => {
                committed += 1;
                let active =
                    rt.active_plan().unwrap_or_else(|| panic!("{label} seed {seed}: no plan"));
                // Terminal state 1: the active plan passes constraint
                // verification AND packet-level equivalence on the
                // network as it is *now* (post-faults).
                let (report, _) =
                    validate_plan(&tdg, rt.network(), active, rt.epsilon(), &[0, 1, 2, 3]);
                assert!(
                    report.is_ok(),
                    "{label} seed {seed}: committed plan failed validation: {report}"
                );
                for down in rt.network().down_switches() {
                    assert!(
                        !active.occupied_switches().contains(&down),
                        "{label} seed {seed}: active plan occupies down switch {down}"
                    );
                }
            }
            RolloutOutcome::RolledBack { .. } => {
                rolled_back += 1;
                // Terminal state 2: clean rollback — nothing was active
                // before, so nothing may be active now.
                assert!(
                    rt.active_plan().is_none(),
                    "{label} seed {seed}: rollback left a plan active"
                );
            }
            RolloutOutcome::ControllerCrashed { .. } => {
                unreachable!("{label} seed {seed}: no controller crash was injected")
            }
        }
        // Reproducibility: the same seed yields a byte-identical log.
        let (rt2, _) = run_once(&tdg, net, seed);
        assert_eq!(
            rt.log().to_json(),
            rt2.log().to_json(),
            "{label} seed {seed}: event log not reproducible"
        );
    }
    // The chaos profile must actually exercise both terminal states.
    assert!(committed > 0, "{label}: no seed committed");
    assert!(rolled_back > 0, "{label}: no seed rolled back");
}

#[test]
fn soak_linear() {
    soak(&topology::linear(4, 10.0), "linear:4");
}

#[test]
fn soak_fattree() {
    soak(&topology::fat_tree(4, 10.0), "fattree:4");
}

/// Lossy soak: chaos faults *and* a channel that drops, duplicates,
/// reorders, and delays control messages. Every seed must still terminate
/// in one of the two states, no agent may ever serve a fenced
/// (rolled-back) epoch, and the event log must stay byte-reproducible.
fn lossy_soak(net: &Network, label: &str) {
    let tdg = workload();
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new().deploy(&tdg, net, &eps).expect("healthy topology deploys");
    let run_once = |seed: u64| {
        let injector = FaultInjector::new(seed, FaultProfile::chaos());
        let mut rt = DeploymentRuntime::new(net.clone(), eps, injector, RetryPolicy::default())
            .with_channel_profile(ChannelProfile::lossy());
        let outcome = rt.rollout(&tdg, plan.clone());
        (rt, outcome)
    };
    let mut committed = 0u64;
    let mut rolled_back = 0u64;
    for seed in 0..SEEDS {
        let (rt, outcome) = run_once(seed);
        match outcome {
            RolloutOutcome::Committed { epoch, .. } => {
                committed += 1;
                let active =
                    rt.active_plan().unwrap_or_else(|| panic!("{label} seed {seed}: no plan"));
                let (report, _) =
                    validate_plan(&tdg, rt.network(), active, rt.epsilon(), &[0, 1, 2, 3]);
                assert!(report.is_ok(), "{label} seed {seed}: {report}");
                // Every live occupied switch provably serves the final
                // epoch — a lost commit ack may not leave a switch behind.
                let down = rt.network().down_switches();
                for switch in active.occupied_switches() {
                    if !down.contains(&switch) {
                        assert_eq!(
                            rt.agent(switch).and_then(|a| a.active_epoch()),
                            Some(epoch),
                            "{label} seed {seed}: switch {switch} missed epoch {epoch}"
                        );
                    }
                }
            }
            RolloutOutcome::RolledBack { epoch, .. } => {
                rolled_back += 1;
                assert!(rt.active_plan().is_none(), "{label} seed {seed}: rollback left a plan");
                // The fencing invariant: even an agent that never heard
                // the abort must not serve the abandoned epoch.
                for agent in rt.agents() {
                    assert_ne!(
                        agent.active_epoch(),
                        Some(epoch),
                        "{label} seed {seed}: an agent serves fenced epoch {epoch}"
                    );
                }
            }
            RolloutOutcome::ControllerCrashed { .. } => {
                unreachable!("{label} seed {seed}: no controller crash was injected")
            }
        }
        let (rt2, outcome2) = run_once(seed);
        assert_eq!(outcome, outcome2, "{label} seed {seed}: outcome not reproducible");
        assert_eq!(
            rt.log().to_json(),
            rt2.log().to_json(),
            "{label} seed {seed}: event log not reproducible"
        );
    }
    assert!(committed > 0, "{label}: no seed survived the lossy channel");
    assert!(rolled_back > 0, "{label}: chaos + loss never forced a rollback");
}

#[test]
fn lossy_soak_linear() {
    lossy_soak(&topology::linear(4, 10.0), "lossy linear:4");
}

#[test]
fn lossy_soak_fattree() {
    lossy_soak(&topology::fat_tree(4, 10.0), "lossy fattree:4");
}

/// A rollback in a later epoch leaves the earlier committed plan serving,
/// exactly as it was.
#[test]
fn rollback_preserves_previous_epoch() {
    let tdg = workload();
    let net = topology::linear(4, 10.0);
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
    for seed in 0..SEEDS {
        // Epoch 1 installs fault-free; epoch 2 runs under chaos.
        let mut rt = DeploymentRuntime::new(
            net.clone(),
            eps,
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        assert!(rt.rollout(&tdg, plan.clone()).is_committed());
        let before = rt.active_plan().cloned();
        rt.set_injector(FaultInjector::new(seed, FaultProfile::chaos()));
        match rt.rollout(&tdg, plan.clone()) {
            RolloutOutcome::Committed { .. } => {
                let (report, _) =
                    validate_plan(&tdg, rt.network(), rt.active_plan().unwrap(), &eps, &[0, 1]);
                assert!(report.is_ok(), "seed {seed}: {report}");
            }
            RolloutOutcome::RolledBack { .. } => {
                assert_eq!(
                    rt.active_plan(),
                    before.as_ref(),
                    "seed {seed}: rollback must restore the prior plan"
                );
            }
            RolloutOutcome::ControllerCrashed { .. } => {
                unreachable!("seed {seed}: no controller crash was injected")
            }
        }
    }
}
