//! Soundness suite for the state-access classification pass and the
//! `RelaxedState` analysis mode built on it.
//!
//! Three pillars, per the pass's contract:
//!
//! 1. **Oracle equivalence** — the fast single-pass classifier in
//!    `hermes_tdg::stateaccess` agrees field-for-field with the naive
//!    per-field rescan oracle in `hermes_analysis::stateaccess` on
//!    arbitrary workloads (property-tested over a generator that emits
//!    every primitive-op shape, fold kinds included).
//! 2. **Relaxed plans stay sound** — any plan computed from a
//!    `RelaxedState` TDG passes the full hard-constraint verifier, which
//!    independently re-certifies every relaxed edge against a fresh
//!    classification (HV414 on failure).
//! 3. **The default mode is untouched** — conservative-mode TDGs contain
//!    no relaxed edges, and every solver in the portfolio produces
//!    byte-identical plan serializations run-to-run; on fold-free
//!    workloads the relaxed mode is a byte-level no-op.

use hermes::analysis::oracle_classification;
use hermes::baselines::{FirstFitByLevel, FirstFitByLevelAndSize, IlpConfig, Sonata};
use hermes::core::{
    verify, Budgeted, DeploymentAlgorithm, Epsilon, GreedyHeuristic, MilpHermes, OptimalSolver,
    Portfolio, ProgramAnalyzer,
};
use hermes::dataplane::action::{Action, FoldOp, PrimitiveOp};
use hermes::dataplane::fields::Field;
use hermes::dataplane::library::{self, aggregation};
use hermes::dataplane::mat::{Mat, MatchKind};
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::net::topology;
use hermes::tdg::{AnalysisMode, StateClassification, Tdg};
use proptest::prelude::*;
use std::time::Duration;

/// The small, fixed pool of fields random MATs draw from: enough aliasing
/// that generated workloads share accumulators and contend on state.
fn field_pool() -> Vec<Field> {
    vec![
        Field::header("pkt.h0", 2),
        Field::header("pkt.h1", 4),
        Field::metadata("meta.m0", 4),
        Field::metadata("meta.m1", 2),
        Field::metadata("meta.m2", 4),
    ]
}

/// One primitive op, decoded from proptest-drawn indices.
fn decode_op(kind: usize, dst: usize, src: usize, fold: usize) -> PrimitiveOp {
    let pool = field_pool();
    let dst = pool[dst % pool.len()].clone();
    let src_f = pool[src % pool.len()].clone();
    let fold_op = [FoldOp::Add, FoldOp::Max, FoldOp::Min, FoldOp::Or][fold % 4];
    match kind % 7 {
        0 => PrimitiveOp::SetConst { dst },
        1 => PrimitiveOp::Copy { dst, src: src_f },
        2 => PrimitiveOp::Compute { dst, srcs: vec![src_f] },
        3 => PrimitiveOp::Hash { dst, srcs: vec![src_f] },
        4 => PrimitiveOp::RegisterOp { index: src_f, out: Some(dst) },
        5 => PrimitiveOp::Fold { dst, srcs: vec![src_f], op: fold_op },
        // Fold with two sources, one of which may alias the accumulator —
        // the self-consuming case the commutativity rule must reject.
        _ => PrimitiveOp::Fold { dst: dst.clone(), srcs: vec![src_f, dst], op: fold_op },
    }
}

/// Builds a random MAT: an optional exact match (`match_on == 5` means
/// matchless) plus up to three ops.
fn decode_mat(i: usize, match_on: usize, ops: &[(usize, usize, usize, usize)]) -> Mat {
    let pool = field_pool();
    let mut action = Action::new(format!("a{i}"));
    for &(kind, dst, src, fold) in ops {
        action = action.with_op(decode_op(kind, dst, src, fold));
    }
    let mut builder = Mat::builder(format!("t{i}")).action(action).resource(0.3).capacity(8 + i);
    if match_on < pool.len() {
        builder = builder.match_field(pool[match_on].clone(), MatchKind::Exact);
    }
    builder.build().expect("generated MATs are structurally valid")
}

type MatSpec = (usize, Vec<(usize, usize, usize, usize)>);

fn mat_spec() -> impl Strategy<Value = MatSpec> {
    (0usize..6, proptest::collection::vec((0usize..7, 0usize..5, 0usize..5, 0usize..4), 0..3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pillar 1: fast classifier ≡ naive oracle, field for field, on
    /// workloads drawn from the full op grammar.
    #[test]
    fn fast_classifier_agrees_with_oracle(specs in proptest::collection::vec(mat_spec(), 1..7)) {
        let mats: Vec<Mat> = specs
            .iter()
            .enumerate()
            .map(|(i, (m, ops))| decode_mat(i, *m, ops))
            .collect();
        let fast = StateClassification::of_mats(mats.iter());
        let oracle = oracle_classification(mats.iter());
        prop_assert_eq!(fast.len(), oracle.len(), "field sets diverge");
        for (field, verdict) in &oracle {
            prop_assert_eq!(
                fast.class(field),
                *verdict,
                "verdict diverges on `{}`",
                field.name()
            );
        }
    }

    /// Pillar 2 (random workloads): whatever the generator produces,
    /// relaxed-mode plans must satisfy the verifier — including its
    /// per-edge re-certification of every claimed relaxation.
    #[test]
    fn relaxed_plans_verify_on_synthetic_workloads(seed in 0u64..1_000, programs in 1usize..5) {
        let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
        let programs = generator.programs(programs);
        let tdg = ProgramAnalyzer::with_mode(AnalysisMode::RelaxedState).analyze(&programs);
        let net = topology::fat_tree(4, 10.0);
        let eps = Epsilon::loose();
        if let Ok(plan) = GreedyHeuristic::new().deploy(&tdg, &net, &eps) {
            let violations = verify(&tdg, &net, &plan, &eps);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
    }

    /// Pillar 3 (random workloads): the default mode never relaxes.
    #[test]
    fn conservative_mode_has_no_relaxed_edges(seed in 0u64..1_000, programs in 1usize..5) {
        let mut generator = SyntheticGenerator::new(seed, SyntheticConfig::default());
        let tdg = ProgramAnalyzer::new().analyze(&generator.programs(programs));
        prop_assert!(tdg.edges().iter().all(|e| !e.dep.is_relaxed()));
    }
}

/// The solver roster the byte-identity gate runs: the seven distinct
/// engines behind the CLI's `--solver` names.
fn solver_roster() -> Vec<Box<dyn DeploymentAlgorithm>> {
    let budget = Duration::from_secs(5);
    vec![
        Box::new(GreedyHeuristic::new()),
        Box::new(Budgeted::new(OptimalSolver::default(), budget)),
        Box::new(Budgeted::new(MilpHermes::default(), budget)),
        Box::new(Budgeted::new(Portfolio::greedy_exact(), budget)),
        Box::new(FirstFitByLevel),
        Box::new(FirstFitByLevelAndSize),
        Box::new(Sonata::new(IlpConfig { time_limit: budget, ..Default::default() })),
    ]
}

/// Pillar 2 (library workloads): every solver's relaxed-mode plan on the
/// aggregation exemplars passes the verifier, relaxed edges included.
/// The workload pairs the commutative-fold program with the replicated-
/// config one so both relaxation families appear, and stays small enough
/// for the roster's exhaustive engines (the MILP is dense-tableau-capped).
#[test]
fn relaxed_aggregation_plans_verify_under_every_solver() {
    let programs = vec![aggregation::allreduce(), aggregation::replicated_config()];
    let tdg = ProgramAnalyzer::with_mode(AnalysisMode::RelaxedState).analyze(&programs);
    assert!(
        tdg.edges().iter().any(|e| e.dep.is_relaxed()),
        "the aggregation suite must exercise at least one relaxed edge"
    );
    // Small topology on purpose: the dense-tableau MILP in the roster is
    // size-capped, and three switches already force cross-switch traffic.
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    for solver in solver_roster() {
        let plan = solver
            .deploy(&tdg, &net, &eps)
            .unwrap_or_else(|e| panic!("{} failed on the relaxed TDG: {e}", solver.name()));
        let violations = verify(&tdg, &net, &plan, &eps);
        assert!(violations.is_empty(), "{}: {violations:?}", solver.name());
    }
}

/// Pillar 3 (library workloads): the default mode never relaxes, even on
/// the fold-heavy aggregation suite — relaxation is strictly opt-in.
#[test]
fn conservative_mode_never_relaxes_the_library() {
    for programs in [library::real_programs(), aggregation::all()] {
        let tdg = ProgramAnalyzer::new().analyze(&programs);
        assert!(tdg.edges().iter().all(|e| !e.dep.is_relaxed()));
    }
}

/// Pillar 3 (library workloads): run-to-run byte identity of every
/// solver's conservative-mode plan, and zero relaxed edges to begin with.
/// Small classic workload for the same reason as the relaxed roster test:
/// the exhaustive engines only fit small instances.
#[test]
fn conservative_plans_are_byte_identical_across_runs() {
    let programs = vec![library::l3_router(), library::acl()];
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    for solver in solver_roster() {
        let serialize = || {
            let tdg = ProgramAnalyzer::new().analyze(&programs);
            assert!(tdg.edges().iter().all(|e| !e.dep.is_relaxed()), "{}", solver.name());
            let plan = solver.deploy(&tdg, &net, &eps).expect("library workload deploys");
            serde_json::to_string(&plan).expect("plans serialize")
        };
        assert_eq!(serialize(), serialize(), "{} is not reproducible", solver.name());
    }
}

/// Pillar 3 (no-op guarantee): on a workload with nothing to relax, the
/// relaxed mode produces a byte-identical TDG serialization and plan.
#[test]
fn relaxed_mode_is_a_noop_without_relaxable_state() {
    // The classic library programs carry register state and read-write
    // metadata chains; select the ones whose TDGs relax nothing.
    let programs = vec![library::l3_router(), library::acl(), library::nat()];
    let literal = ProgramAnalyzer::with_mode(AnalysisMode::PaperLiteral).analyze(&programs);
    let relaxed = ProgramAnalyzer::with_mode(AnalysisMode::RelaxedState).analyze(&programs);
    if relaxed.edges().iter().any(|e| e.dep.is_relaxed()) {
        // Workload gained relaxable state — this test's premise is gone.
        panic!("expected a fold-free control workload with no relaxable edges");
    }
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let plan_l = GreedyHeuristic::new().deploy(&literal, &net, &eps).expect("deploys");
    let plan_r = GreedyHeuristic::new().deploy(&relaxed, &net, &eps).expect("deploys");
    assert_eq!(
        serde_json::to_string(&plan_l).unwrap(),
        serde_json::to_string(&plan_r).unwrap(),
        "relaxed mode must be a byte-level no-op when nothing qualifies"
    );
}

/// The headline claim: on the all-reduce aggregation workload, relaxing
/// the commutative accumulator strictly lowers A_max on a topology that
/// forces the workers apart — and the cheaper plan still verifies.
#[test]
fn relaxation_strictly_lowers_amax_on_allreduce() {
    let programs = vec![aggregation::allreduce()];
    // Three 5.0-unit workers + emit cannot share one 12-stage Tofino:
    // at least one worker lands on the second switch.
    let net = topology::linear(2, 10.0);
    let eps = Epsilon::loose();

    let conservative = ProgramAnalyzer::with_mode(AnalysisMode::PaperLiteral).analyze(&programs);
    let relaxed = ProgramAnalyzer::with_mode(AnalysisMode::RelaxedState).analyze(&programs);

    let plan_c = GreedyHeuristic::new().deploy(&conservative, &net, &eps).expect("deploys");
    let plan_r = GreedyHeuristic::new().deploy(&relaxed, &net, &eps).expect("deploys");

    assert!(verify(&conservative, &net, &plan_c, &eps).is_empty());
    assert!(verify(&relaxed, &net, &plan_r, &eps).is_empty());

    let amax_c = plan_c.max_inter_switch_bytes(&conservative);
    let amax_r = plan_r.max_inter_switch_bytes(&relaxed);
    assert!(
        amax_r < amax_c,
        "relaxation must strictly lower A_max (conservative {amax_c} B, relaxed {amax_r} B)"
    );
}

/// A hand-crafted unsound relaxation — a plain setter feeding an exact
/// matcher, claimed relaxed — is rejected by the verifier with HV414.
#[test]
fn uncertified_relaxation_is_rejected_end_to_end() {
    use hermes::tdg::DependencyType;
    let flag = Field::metadata("meta.flag", 4);
    let setter = Mat::builder("setter")
        .action(Action::new("set").with_op(PrimitiveOp::SetConst { dst: flag.clone() }))
        .resource(0.2)
        .capacity(4)
        .build()
        .unwrap();
    let reader = Mat::builder("reader")
        .match_field(flag, MatchKind::Exact)
        .action(Action::new("use"))
        .resource(0.2)
        .capacity(8)
        .build()
        .unwrap();
    // meta.flag has one writer and one reader: not ReadMostlyReplicable,
    // not CommutativeUpdate — the claimed RelaxedMatch is a lie.
    let tdg = Tdg::from_mats_and_edges(
        vec![("setter".to_owned(), setter), ("reader".to_owned(), reader)],
        vec![(0, 1, DependencyType::RelaxedMatch)],
        AnalysisMode::RelaxedState,
    );
    let net = topology::linear(2, 10.0);
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("deploys");
    let violations = verify(&tdg, &net, &plan, &eps);
    assert!(
        violations.iter().any(|v| v.code() == "HV414"),
        "expected HV414 for the uncertified relaxation, got {violations:?}"
    );
}
