//! Reproducibility: identical inputs must yield identical outputs across
//! the whole stack — workloads, topologies, plans, and simulations.

use hermes::baselines::standard_suite;
use hermes::core::{Epsilon, ProgramAnalyzer};
use hermes::dataplane::library;
use hermes::dataplane::synthetic::{SyntheticConfig, SyntheticGenerator};
use hermes::net::topology;
use hermes::sim::testbed::{run_flow, TestbedConfig};
use std::time::Duration;

#[test]
fn plans_are_identical_across_runs_for_every_algorithm() {
    let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    for algo in standard_suite(Duration::from_millis(500)) {
        // Exhaustive solvers may improve with more time, so rerun only the
        // deterministic ones exactly; solvers still must not *crash*.
        if algo.is_exhaustive() {
            let _ = algo.deploy(&tdg, &net, &eps);
            continue;
        }
        let a = algo.deploy(&tdg, &net, &eps).unwrap();
        let b = algo.deploy(&tdg, &net, &eps).unwrap();
        assert_eq!(a, b, "{} is nondeterministic", algo.name());
    }
}

#[test]
fn synthetic_workloads_and_topologies_reproduce() {
    let w1 = SyntheticGenerator::new(42, SyntheticConfig::default()).programs(10);
    let w2 = SyntheticGenerator::new(42, SyntheticConfig::default()).programs(10);
    assert_eq!(w1, w2);
    assert_eq!(topology::table3_wan(3), topology::table3_wan(3));
}

#[test]
fn analyzer_is_deterministic() {
    let a = ProgramAnalyzer::new().analyze(&library::real_programs());
    let b = ProgramAnalyzer::new().analyze(&library::real_programs());
    assert_eq!(a, b);
}

#[test]
fn simulator_is_deterministic() {
    let config = TestbedConfig { packets: 2_000, ..Default::default() };
    let a = run_flow(&config, 1024, 48);
    let b = run_flow(&config, 1024, 48);
    assert_eq!(a, b);
}
