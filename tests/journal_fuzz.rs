//! Torn-write hardening for the write-ahead intent journal.
//!
//! The journal is the only thing a crashed controller gets back, so its
//! decoder must survive arbitrary damage: truncation at **every** byte
//! offset and a bit flip at **every** byte offset must either replay
//! cleanly (a torn tail is discarded, with the discarded length
//! reported) or fail with a typed [`JournalError`] — never a panic, and
//! never a silent misparse that folds corrupt bytes into intent.

use hermes::core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
use hermes::dataplane::library;
use hermes::net::topology;
use hermes::runtime::{
    replay_bytes, CrashTiming, DeploymentRuntime, FaultInjector, FaultProfile, RecoveredIntent,
    RetryPolicy, RolloutOutcome,
};
use proptest::prelude::*;

/// A realistic journal: a committed deploy (snapshot + compaction), a
/// second rollout crashed mid-protocol (in-flight txn records), and a
/// completed recovery (recovery + snapshot records). Built once — the
/// scenario is deterministic.
fn rich_journal() -> &'static [u8] {
    static JOURNAL: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    JOURNAL.get_or_init(build_journal)
}

fn build_journal() -> Vec<u8> {
    // Two library programs on a small topology keep the journal a few KB
    // so the every-byte sweeps below stay exhaustive AND affordable.
    let programs = library::real_programs();
    let tdg = ProgramAnalyzer::new().analyze(&programs[..2.min(programs.len())]);
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("healthy topology deploys");
    let mut rt = DeploymentRuntime::new(
        net,
        eps,
        FaultInjector::new(0, FaultProfile::none()),
        RetryPolicy::default(),
    );
    assert!(rt.rollout(&tdg, plan.clone()).is_committed());
    let n = plan.occupied_switch_count() as u64;
    rt.injector_mut().arm_controller_crash_at(2 + n, CrashTiming::BeforeWrite);
    let outcome = rt.rollout(&tdg, plan);
    assert!(matches!(outcome, RolloutOutcome::ControllerCrashed { .. }));
    rt.recover(&tdg).expect("recovery over an intact journal succeeds");
    rt.journal().bytes().to_vec()
}

/// Decoding must be total: whatever `bytes` holds, `replay_bytes` either
/// returns a replay (whose records then fold into intent without
/// panicking) or a typed error. Returns `Ok(records)` for inspection.
fn decode_is_total(bytes: &[u8]) -> Option<usize> {
    let outcome = std::panic::catch_unwind(|| match replay_bytes(bytes) {
        Ok(replay) => {
            // Folding damaged-but-framed records must not panic either.
            let intent = RecoveredIntent::from_replay(&replay);
            intent.planned_action();
            Some(replay.records.len())
        }
        Err(_) => None,
    });
    match outcome {
        Ok(records) => records,
        Err(_) => panic!("journal decoding panicked"),
    }
}

#[test]
fn truncation_at_every_byte_offset_is_a_typed_outcome() {
    let bytes = rich_journal();
    let full = decode_is_total(bytes).expect("the intact journal replays");
    assert!(full > 0, "the scenario must journal something");
    let mut torn_tails = 0usize;
    for cut in 0..bytes.len() {
        match decode_is_total(&bytes[..cut]) {
            // A prefix can only ever hold a prefix of the intent; the
            // lost suffix is a torn tail, not invented records.
            Some(records) => {
                assert!(
                    records <= full,
                    "cut at {cut}: {records} records from a prefix of a {full}-record journal"
                );
                torn_tails += 1;
            }
            // Cuts inside the 8-byte header (or a corrupted compaction
            // base) are typed errors.
            None => assert!(cut < bytes.len(), "cut at {cut} errored but shorter cuts replayed"),
        }
    }
    assert!(torn_tails > 0, "some truncations must replay as torn tails");
}

#[test]
fn bit_flip_at_every_byte_offset_is_a_typed_outcome() {
    let bytes = rich_journal();
    let full = decode_is_total(bytes).expect("the intact journal replays");
    for (i, _) in bytes.iter().enumerate() {
        for bit in [0x01u8, 0x80u8] {
            let mut damaged = bytes.to_vec();
            damaged[i] ^= bit;
            if let Some(records) = decode_is_total(&damaged) {
                // The CRC can only miss if the flip landed in a frame the
                // decoder then discards as a torn tail — the surviving
                // record count never exceeds the original.
                assert!(
                    records <= full,
                    "flip at byte {i}: {records} records out of a {full}-record journal"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random compound damage — truncate, then flip several bytes —
    /// still yields a typed outcome, never a panic.
    #[test]
    fn compound_damage_never_panics(
        cut_frac in 0.0f64..1.0,
        flips in proptest::collection::vec((0usize..4096, 1u8..=255), 0..8)
    ) {
        let bytes = rich_journal();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let mut damaged = bytes[..cut.min(bytes.len())].to_vec();
        for (offset, mask) in flips {
            if !damaged.is_empty() {
                let at = offset % damaged.len();
                damaged[at] ^= mask;
            }
        }
        decode_is_total(&damaged);
    }
}
