//! Controller-crash soak: recovery must keep the runtime *bimodal*.
//!
//! PR 2 proved rollouts are exactly-A-or-exactly-B under switch and
//! channel faults; PR 6 proved it for staged migrations. This soak
//! extends the invariant across **controller** crashes: a crash is
//! injected at a journal-write boundary during a deploy, a post-commit
//! heal, or a mid-flight migration — combined with a lossy channel —
//! and after [`DeploymentRuntime::recover`] replays the journal and
//! reconciles the agents, every run must satisfy:
//!
//! 1. **no mixed state**: the active plan is byte-exactly one journaled
//!    intent (a snapshot, a transaction target, or a migration target),
//!    or there is no active plan at all;
//! 2. **no orphaned epochs**: every agent serves the fresh recovery
//!    epoch or nothing — the crashed epoch is gone from the fleet;
//! 3. **reproducibility**: the same seed and crash point produce the
//!    same outcome, recovery report, event log, and journal, byte for
//!    byte.
//!
//! Coverage is two-pronged: a deterministic sweep arms a crash at
//! *every* boundary of each scenario (asserting strict plan equality,
//! since the fault schedule is clean), and a 50-seed chaos soak places a
//! seed-derived crash in each scenario under the full chaos profile.

use hermes::core::{
    DeploymentAlgorithm, DeploymentPlan, Epsilon, GreedyHeuristic, IncrementalDeployer,
    ProgramAnalyzer, RedeployOptions,
};
use hermes::dataplane::library;
use hermes::net::{topology, Network};
use hermes::runtime::{
    replay_bytes, ChannelProfile, CrashTiming, DeploymentRuntime, FaultInjector, FaultProfile,
    JournalRecord, MigrationConfig, MigrationOutcome, RecoveryReport, RetryPolicy, RolloutOutcome,
};
use hermes::tdg::Tdg;

const SEEDS: u64 = 50;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Scenario {
    Deploy,
    Heal,
    Migrate,
}

const SCENARIOS: [Scenario; 3] = [Scenario::Deploy, Scenario::Heal, Scenario::Migrate];

struct Workload {
    tdg: Tdg,
    net: Network,
    plan_a: DeploymentPlan,
    plan_b: DeploymentPlan,
}

fn workload() -> Workload {
    let programs = library::real_programs();
    let tdg = ProgramAnalyzer::new().analyze(&programs[..2.min(programs.len())]);
    let net = topology::linear(3, 10.0);
    let eps = Epsilon::loose();
    let plan_a = GreedyHeuristic::new().deploy(&tdg, &net, &eps).expect("plan A deploys");
    let drained = *plan_a.occupied_switches().last().expect("non-empty plan");
    let plan_b = IncrementalDeployer::new()
        .redeploy_with(&tdg, &plan_a, &tdg, &net, &eps, &RedeployOptions::excluding([drained]))
        .expect("drain is feasible")
        .plan;
    assert_ne!(plan_a, plan_b, "draining must change the plan");
    Workload { tdg, net, plan_a, plan_b }
}

/// Runs one scenario with an optional armed crash; `chaotic` picks the
/// full chaos profile + lossy channel over a clean control plane.
/// Returns the runtime and whether the controller crashed.
fn run_scenario(
    w: &Workload,
    sc: Scenario,
    seed: u64,
    chaotic: bool,
    arm: Option<(u64, CrashTiming)>,
) -> (DeploymentRuntime, bool) {
    let eps = Epsilon::loose();
    let channel = if chaotic { ChannelProfile::lossy() } else { ChannelProfile::none() };
    match sc {
        Scenario::Deploy => {
            let profile = if chaotic { FaultProfile::chaos() } else { FaultProfile::none() };
            let mut rt = DeploymentRuntime::new(
                w.net.clone(),
                eps,
                FaultInjector::new(seed, profile),
                RetryPolicy::default(),
            )
            .with_channel_profile(channel);
            if let Some((nth, timing)) = arm {
                rt.injector_mut().arm_controller_crash_at(nth, timing);
            }
            let outcome = rt.rollout(&w.tdg, w.plan_a.clone());
            let crashed = matches!(outcome, RolloutOutcome::ControllerCrashed { .. });
            (rt, crashed)
        }
        Scenario::Heal => {
            // Every commit kills a hosting switch, so the rollout always
            // enters the healing path; the armed crash then lands inside
            // the initial transaction or one of the heal transactions.
            let profile = FaultProfile {
                post_commit_crash_prob: 1.0,
                ..if chaotic { FaultProfile::chaos() } else { FaultProfile::none() }
            };
            let mut rt = DeploymentRuntime::new(
                w.net.clone(),
                eps,
                FaultInjector::new(seed, profile),
                RetryPolicy::default(),
            )
            .with_channel_profile(channel);
            if let Some((nth, timing)) = arm {
                rt.injector_mut().arm_controller_crash_at(nth, timing);
            }
            let outcome = rt.rollout(&w.tdg, w.plan_a.clone());
            let crashed = matches!(outcome, RolloutOutcome::ControllerCrashed { .. });
            (rt, crashed)
        }
        Scenario::Migrate => {
            let mut rt = DeploymentRuntime::new(
                w.net.clone(),
                eps,
                FaultInjector::disabled(),
                RetryPolicy::default(),
            );
            assert!(rt.rollout(&w.tdg, w.plan_a.clone()).is_committed(), "clean install of A");
            let profile = if chaotic { FaultProfile::chaos() } else { FaultProfile::none() };
            rt.set_injector(FaultInjector::new(seed, profile));
            rt.set_channel_profile(channel);
            if let Some((nth, timing)) = arm {
                rt.injector_mut().arm_controller_crash_at(nth, timing);
            }
            let outcome = rt.migrate(&w.tdg, w.plan_b.clone(), &MigrationConfig::default());
            let crashed = matches!(outcome, MigrationOutcome::ControllerCrashed { .. });
            (rt, crashed)
        }
    }
}

/// How many journal-write boundaries the scenario crosses crash-free.
fn boundaries(w: &Workload, sc: Scenario, seed: u64, chaotic: bool) -> u64 {
    let (rt, crashed) = run_scenario(w, sc, seed, chaotic, None);
    assert!(!crashed, "no crash was armed");
    rt.injector().journal_writes()
}

/// The post-recovery invariants shared by every run.
fn assert_recovered(rt: &DeploymentRuntime, report: &RecoveryReport, label: &str) {
    // No orphaned epochs: every *live* agent serves the fresh epoch or
    // nothing at all. (A crashed switch is down, not serving — its stale
    // epoch is unreachable and gets wiped if the switch is ever revived.)
    for agent in rt.agents() {
        if agent.is_crashed() {
            continue;
        }
        let epoch = agent.active_epoch();
        assert!(
            epoch.is_none() || epoch == Some(report.epoch),
            "{label}: a live agent serves epoch {epoch:?}, not the recovery epoch {}",
            report.epoch
        );
    }
    // No mixed state: whatever is active is byte-exactly one intent the
    // journal ever held — never a hybrid.
    let replay = replay_bytes(rt.journal().bytes()).expect("the post-recovery journal replays");
    let journaled: Vec<&DeploymentPlan> = replay
        .records
        .iter()
        .filter_map(|record| match record {
            JournalRecord::TxnBegun { plan, .. }
            | JournalRecord::Snapshot { plan, .. }
            | JournalRecord::MigrationBegun { plan, .. } => Some(plan),
            _ => None,
        })
        .collect();
    if let Some(active) = rt.active_plan() {
        assert!(
            journaled.contains(&active),
            "{label}: the active plan is not any journaled intent"
        );
        // Every live switch the plan occupies serves the fresh epoch.
        let down = rt.network().down_switches();
        for switch in active.occupied_switches() {
            if !down.contains(&switch) {
                assert_eq!(
                    rt.agent(switch).and_then(|a| a.active_epoch()),
                    Some(report.epoch),
                    "{label}: switch {switch} does not serve the recovered plan"
                );
            }
        }
    }
}

/// Deterministic sweep: a crash at *every* journal boundary of every
/// scenario, clean fault schedule — so the terminal state must be
/// *strictly* plan A, plan B, or nothing, by plan equality.
#[test]
fn every_boundary_recovers_to_exactly_a_or_exactly_b() {
    let w = workload();
    for sc in SCENARIOS {
        let writes = boundaries(&w, sc, 7, false);
        assert!(writes > 0, "{sc:?}: the scenario must journal something");
        for nth in 0..writes {
            let timing =
                if nth % 2 == 0 { CrashTiming::BeforeWrite } else { CrashTiming::AfterWrite };
            let label = format!("{sc:?} boundary {nth} ({timing:?})");
            let (mut rt, crashed) = run_scenario(&w, sc, 7, false, Some((nth, timing)));
            assert!(crashed, "{label}: the armed crash must fire");
            let report = rt.recover(&w.tdg).expect("recovery succeeds");
            assert_recovered(&rt, &report, &label);
            let active = rt.active_plan();
            // Heal rewrites the plan around the dead switch, so its
            // terminal plans are asserted via journal membership in
            // assert_recovered; deploy and migrate are exact.
            match sc {
                Scenario::Deploy => assert!(
                    active.is_none() || active == Some(&w.plan_a),
                    "{label}: terminal state is neither nothing nor plan A"
                ),
                Scenario::Heal => {}
                Scenario::Migrate => assert!(
                    active == Some(&w.plan_a) || active == Some(&w.plan_b),
                    "{label}: terminal state is neither plan A nor plan B"
                ),
            }
        }
    }
}

/// 50-seed chaos soak: a seed-derived crash point per scenario, under
/// the full chaos profile and a lossy channel, each run executed twice
/// to prove byte-reproducibility of outcome, report, log, and journal.
#[test]
fn fifty_seed_crash_soak_is_bimodal_and_reproducible() {
    let w = workload();
    let mut crashes = 0u64;
    for seed in 0..SEEDS {
        for sc in SCENARIOS {
            let writes = boundaries(&w, sc, seed, true);
            if writes == 0 {
                continue;
            }
            let nth = seed % writes;
            let timing =
                if seed % 2 == 0 { CrashTiming::BeforeWrite } else { CrashTiming::AfterWrite };
            let label = format!("{sc:?} seed {seed} boundary {nth} ({timing:?})");
            let run = |w: &Workload| {
                let (mut rt, crashed) = run_scenario(w, sc, seed, true, Some((nth, timing)));
                assert!(crashed, "{label}: the armed crash must fire");
                let report = rt.recover(&w.tdg).expect("recovery succeeds");
                (rt, report)
            };
            let (rt, report) = run(&w);
            let (rt2, report2) = run(&w);
            assert_eq!(
                serde_json::to_string(&report).expect("report serializes"),
                serde_json::to_string(&report2).expect("report serializes"),
                "{label}: recovery report is not reproducible"
            );
            assert_eq!(
                rt.log().to_json(),
                rt2.log().to_json(),
                "{label}: event log is not byte-reproducible"
            );
            assert_eq!(
                rt.journal().bytes(),
                rt2.journal().bytes(),
                "{label}: journal is not byte-reproducible"
            );
            assert_recovered(&rt, &report, &label);
            crashes += 1;
        }
    }
    assert_eq!(crashes, SEEDS * SCENARIOS.len() as u64, "every run must crash and recover");
}
