#!/usr/bin/env bash
# Offline CI: formatting, lints, and the tier-1 gate.
# No network access is required — all dependencies are vendored.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> SIMD feature gate: simd-fieldset build + dataplane tests"
# The explicit SSE2 kernels live behind a feature flag; the gate keeps the
# cfg matrix (feature on/off) compiling and byte-equivalent everywhere.
cargo build --release --features simd-fieldset
cargo test -q --release -p hermes-dataplane --features simd-fieldset

echo "==> solver property suite"
cargo test -q --release --test solver_portfolio

echo "==> hot-path equivalence suite"
cargo test -q --release --test eval_equivalence

echo "==> migration property suite + mid-migration chaos soak"
cargo test -q --release --test migration --test migration_chaos

echo "==> target-model equivalence suite (default byte-identity + mixed topology + serde golden)"
cargo test -q --release --test target_equivalence

echo "==> durability suites: journal fuzz, event-schema round trip, recovery soak"
cargo test -q --release --test journal_fuzz --test event_schema --test recovery_chaos

echo "==> state-access soundness suite (fast-pass/oracle equivalence, relaxed-plan verification)"
cargo test -q --release --test stateaccess_soundness

echo "==> hot-path evaluator + parallel-search smoke (double run, byte-diff)"
# The smoke probe solves the library workload at 1/2/4/8 workers and
# prints only deterministic fields; two runs must be byte-identical.
hot_a="$(cargo run -q --release -p hermes-bench --bin hotpath -- --smoke)"
hot_b="$(cargo run -q --release -p hermes-bench --bin hotpath -- --smoke)"
if [[ "$hot_a" != "$hot_b" ]]; then
  echo "hotpath smoke is nondeterministic:" >&2
  diff <(printf '%s\n' "$hot_a") <(printf '%s\n' "$hot_b") >&2 || true
  exit 1
fi
echo "smoke output stable: $hot_a"

echo "==> parallel deploy determinism smoke (--threads 4 vs --threads 1, byte-diff)"
# A 4-worker deploy must emit byte-identical artifacts to a single-worker
# deploy of the same workload — the CLI face of the determinism guarantee.
dep_1="$(cargo run -q --release -p hermes-cli --bin hermes -- \
  deploy tests/fixtures/audit_workload.p4dsl --topology linear:3 \
  --solver exact --threads 1 --json)"
dep_4a="$(cargo run -q --release -p hermes-cli --bin hermes -- \
  deploy tests/fixtures/audit_workload.p4dsl --topology linear:3 \
  --solver exact --threads 4 --json)"
dep_4b="$(cargo run -q --release -p hermes-cli --bin hermes -- \
  deploy tests/fixtures/audit_workload.p4dsl --topology linear:3 \
  --solver exact --threads 4 --json)"
if [[ "$dep_1" != "$dep_4a" || "$dep_4a" != "$dep_4b" ]]; then
  echo "deploy --threads output diverges across worker counts or runs:" >&2
  diff <(printf '%s\n' "$dep_1") <(printf '%s\n' "$dep_4a") >&2 || true
  diff <(printf '%s\n' "$dep_4a") <(printf '%s\n' "$dep_4b") >&2 || true
  exit 1
fi
echo "deploy --threads 4 matches --threads 1 byte-for-byte"

echo "==> chaos rollout smoke under --threads 4 (fixed seed)"
cargo run -q --release -p hermes-cli --bin hermes -- \
  chaos tests/fixtures/audit_workload.p4dsl --topology linear:3 \
  --solver exact --threads 4 --seed 7 > /dev/null
echo "chaos rollout with a 4-worker solver completed"

echo "==> audit-engine smoke (oracle equivalence + certificate fast-path)"
cargo run -q --release -p hermes-bench --bin audit -- --smoke

echo "==> workload audit golden diff (library + fixture, fat-tree k=4)"
# The CLI itself exits nonzero if any error-severity diagnostic fires;
# the diff additionally catches drift in warning/info findings so new
# diagnostics land with a reviewed golden update.
audit_out="$(cargo run -q --release -p hermes-cli --bin hermes -- \
  audit tests/fixtures/audit_workload.p4dsl --library --topology fattree:4 --json)"
if ! diff <(printf '%s\n' "$audit_out") tests/fixtures/audit_golden.json; then
  echo "audit output drifted from tests/fixtures/audit_golden.json" >&2
  echo "re-generate the golden if the new diagnostics are intentional" >&2
  exit 1
fi
echo "audit golden matches"

echo "==> state-access report golden diff (aggregation fixture, linear:3, relaxed mode)"
# Pins the classifier verdicts, the HS5xx diagnostics, the HC310
# certificate, and the relaxed-edge accounting in one artifact.
# REGEN_GOLDEN=1 ./ci.sh rewrites the fixture instead of failing.
state_out="$(cargo run -q --release -p hermes-cli --bin hermes -- \
  audit tests/fixtures/stateaccess_workload.p4dsl \
  --state-report --relax-state --topology linear:3 --json)"
if [[ "${REGEN_GOLDEN:-0}" == "1" ]]; then
  printf '%s\n' "$state_out" > tests/fixtures/stateaccess_golden.json
  echo "state-access golden regenerated"
elif ! diff <(printf '%s\n' "$state_out") tests/fixtures/stateaccess_golden.json; then
  echo "state report drifted from tests/fixtures/stateaccess_golden.json" >&2
  echo "re-generate with REGEN_GOLDEN=1 if the new verdicts are intentional" >&2
  exit 1
else
  echo "state-access golden matches"
fi

echo "==> portfolio determinism smoke (fixed seed, 2 threads, 2 s budget)"
smoke_a="$(cargo run -q --release -p hermes-bench --bin portfolio -- --smoke)"
smoke_b="$(cargo run -q --release -p hermes-bench --bin portfolio -- --smoke)"
if [[ "$smoke_a" != "$smoke_b" ]]; then
  echo "portfolio smoke is nondeterministic:" >&2
  diff <(printf '%s\n' "$smoke_a") <(printf '%s\n' "$smoke_b") >&2 || true
  exit 1
fi
echo "smoke output stable: $smoke_a"

echo "==> migration determinism smoke (staged vs all-at-once, virtual clock)"
mig_a="$(cargo run -q --release -p hermes-bench --bin migration -- --smoke)"
mig_b="$(cargo run -q --release -p hermes-bench --bin migration -- --smoke)"
if [[ "$mig_a" != "$mig_b" ]]; then
  echo "migration smoke is nondeterministic:" >&2
  diff <(printf '%s\n' "$mig_a") <(printf '%s\n' "$mig_b") >&2 || true
  exit 1
fi
echo "smoke output stable: $mig_a"

echo "==> target frontier determinism smoke (per-target greedy plans, fixed workload)"
tgt_a="$(cargo run -q --release -p hermes-bench --bin targets -- --smoke)"
tgt_b="$(cargo run -q --release -p hermes-bench --bin targets -- --smoke)"
if [[ "$tgt_a" != "$tgt_b" ]]; then
  echo "targets smoke is nondeterministic:" >&2
  diff <(printf '%s\n' "$tgt_a") <(printf '%s\n' "$tgt_b") >&2 || true
  exit 1
fi
echo "smoke output stable: ${tgt_a:0:120}..."

echo "==> recovery determinism smoke (crash at every boundary, virtual clock)"
rec_a="$(cargo run -q --release -p hermes-bench --bin recovery -- --smoke)"
rec_b="$(cargo run -q --release -p hermes-bench --bin recovery -- --smoke)"
if [[ "$rec_a" != "$rec_b" ]]; then
  echo "recovery smoke is nondeterministic:" >&2
  diff <(printf '%s\n' "$rec_a") <(printf '%s\n' "$rec_b") >&2 || true
  exit 1
fi
echo "smoke output stable: ${rec_a:0:120}..."

echo "==> golden journal + schema gate"
# The journal of a clean deploy is byte-exact per format version; the
# dump also pins JOURNAL_FORMAT_VERSION and EVENT_SCHEMA_VERSION, so any
# wire or schema change lands with a reviewed fixture update.
if ! diff <(cargo run -q --release -p hermes-bench --bin recovery -- --golden) \
          tests/fixtures/journal_golden.txt; then
  echo "journal bytes or schema versions drifted from tests/fixtures/journal_golden.txt" >&2
  echo "re-generate with: cargo run --release -p hermes-bench --bin recovery -- --golden" >&2
  exit 1
fi
echo "journal golden matches"

echo "CI OK"
