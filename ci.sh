#!/usr/bin/env bash
# Offline CI: formatting, lints, and the tier-1 gate.
# No network access is required — all dependencies are vendored.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "CI OK"
