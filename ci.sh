#!/usr/bin/env bash
# Offline CI: formatting, lints, and the tier-1 gate.
# No network access is required — all dependencies are vendored.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> solver property suite"
cargo test -q --release --test solver_portfolio

echo "==> hot-path equivalence suite"
cargo test -q --release --test eval_equivalence

echo "==> hot-path evaluator smoke"
cargo run -q --release -p hermes-bench --bin hotpath -- --smoke

echo "==> portfolio determinism smoke (fixed seed, 2 threads, 2 s budget)"
smoke_a="$(cargo run -q --release -p hermes-bench --bin portfolio -- --smoke)"
smoke_b="$(cargo run -q --release -p hermes-bench --bin portfolio -- --smoke)"
if [[ "$smoke_a" != "$smoke_b" ]]; then
  echo "portfolio smoke is nondeterministic:" >&2
  diff <(printf '%s\n' "$smoke_a") <(printf '%s\n' "$smoke_b") >&2 || true
  exit 1
fi
echo "smoke output stable: $smoke_a"

echo "CI OK"
