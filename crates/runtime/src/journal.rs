//! The controller's durable write-ahead intent journal.
//!
//! Every state transition the controller makes — epoch advances,
//! transaction begin/prepare/commit/abort, lease grants, migration step
//! checkpoints, activation snapshots — is appended here as a
//! [`JournalRecord`] *before* the transition takes effect (write-ahead
//! discipline). After a controller crash, [`crate::recovery`] replays the
//! journal to rebuild the intended state and reconciles it against the
//! live agents.
//!
//! # On-disk format
//!
//! ```text
//! header : JOURNAL_MAGIC (4) | format version u16 LE | reserved u16
//! frame  : FRAME_MAGIC (2) | payload len u32 LE | CRC32 u32 LE | payload
//! ```
//!
//! The payload is the canonical JSON serialization of one
//! [`JournalRecord`]; the CRC32 (IEEE) covers the payload bytes. The
//! format is deliberately append-only and self-framing so a crash mid
//! write leaves at worst a torn final frame.
//!
//! # Corruption semantics
//!
//! [`replay_bytes`] distinguishes two failure shapes:
//!
//! - **Torn tail** — the undecodable region extends to the end of the
//!   journal with no intact frame after it. This is what a crash during
//!   an append produces; the tail is discarded (reported via
//!   [`Replay::discarded_tail_bytes`]) and replay succeeds with every
//!   record that landed before it.
//! - **Mid-log corruption** — an intact frame exists *after* the
//!   undecodable region, so the damage cannot be a torn append. Replay
//!   fails with a typed [`JournalError::CorruptFrame`]; silently skipping
//!   records would let recovery act on a rewritten history.
//!
//! Headers with the wrong magic or an unsupported format version fail
//! with their own typed errors. Nothing on this path panics (enforced by
//! the crate's `clippy.toml` unwrap/expect ban).
//!
//! # Compaction
//!
//! Activation writes a [`JournalRecord::Snapshot`] carrying the full
//! active deployment. Once the bytes *preceding* the latest snapshot
//! exceed a threshold, the journal drops them: replay then starts from a
//! self-contained snapshot instead of the beginning of time, bounding
//! both journal size and recovery replay work.

use hermes_backend::DeploymentArtifacts;
use hermes_core::DeploymentPlan;
use hermes_net::SwitchId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// File magic: the first four bytes of every journal.
pub const JOURNAL_MAGIC: [u8; 4] = *b"HJL1";

/// Version of the journal byte format (header + framing + record schema).
///
/// History: 1 — original format (PR 7).
pub const JOURNAL_FORMAT_VERSION: u16 = 1;

/// Per-frame magic, chosen to be invalid UTF-8 so it cannot collide with
/// JSON payload bytes.
const FRAME_MAGIC: [u8; 2] = [0xA7, 0x4A];

/// Header: magic (4) + version u16 LE + reserved u16.
const HEADER_LEN: usize = 8;

/// Frame header: magic (2) + payload length u32 LE + CRC32 u32 LE.
const FRAME_HEADER_LEN: usize = 2 + 4 + 4;

/// An upper bound on a sane payload; a length field beyond this is
/// corruption, not a large record.
const MAX_PAYLOAD_LEN: usize = 64 * 1024 * 1024;

/// CRC32 (IEEE 802.3, reflected) over `bytes`. Guarantees detection of
/// any single-bit error in the covered payload.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Where in the protocol a journal write (and therefore a potential
/// controller crash) sits. Every [`JournalRecord`] maps to exactly one
/// crash point; the fault injector can strike at any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CrashPoint {
    /// Advancing the controller epoch counter.
    EpochAdvance,
    /// Recording a transaction's intent (plan + artifacts) before the
    /// first prepare.
    TxnBegin,
    /// Recording one switch's prepare acknowledgement.
    Prepare,
    /// The point of no return: the decision to start committing.
    CommitDecision,
    /// Recording one switch's commit acknowledgement.
    CommitAck,
    /// Recording a commit-window lease grant.
    LeaseGrant,
    /// Recording that the whole transaction committed.
    TxnCommit,
    /// Recording a pre-commit abort.
    TxnAbort,
    /// Writing an activation snapshot (or the cleared-state marker).
    Snapshot,
    /// Recording a migration's intent (target plan + commit order).
    MigrationBegin,
    /// Recording one migration step checkpoint.
    MigrationStep,
    /// Recording the decision to roll a migration back.
    MigrationRollback,
    /// Recording that every migration step committed.
    MigrationEnd,
    /// Recording recovery progress (only reachable with crash injection
    /// disarmed; recovery assumes the single-fault model).
    Recovery,
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CrashPoint::EpochAdvance => "epoch-advance",
            CrashPoint::TxnBegin => "txn-begin",
            CrashPoint::Prepare => "prepare",
            CrashPoint::CommitDecision => "commit-decision",
            CrashPoint::CommitAck => "commit-ack",
            CrashPoint::LeaseGrant => "lease-grant",
            CrashPoint::TxnCommit => "txn-commit",
            CrashPoint::TxnAbort => "txn-abort",
            CrashPoint::Snapshot => "snapshot",
            CrashPoint::MigrationBegin => "migration-begin",
            CrashPoint::MigrationStep => "migration-step",
            CrashPoint::MigrationRollback => "migration-rollback",
            CrashPoint::MigrationEnd => "migration-end",
            CrashPoint::Recovery => "recovery",
        })
    }
}

/// Whether an injected controller crash strikes before or after the
/// journal record lands. Before-write crashes lose the record (the
/// transition never happened, durably speaking); after-write crashes
/// persist intent the controller never got to act on. Recovery must be
/// correct either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashTiming {
    /// The crash strikes with the record unwritten.
    BeforeWrite,
    /// The crash strikes with the record durable.
    AfterWrite,
}

/// What kind of transaction a [`JournalRecord::TxnBegun`] opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnKind {
    /// An operator-initiated rollout of a new plan.
    Deploy,
    /// A healing transaction re-homing MATs lost to down switches.
    Heal,
    /// A reinstall driven by post-crash recovery.
    Recovery,
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TxnKind::Deploy => "deploy",
            TxnKind::Heal => "heal",
            TxnKind::Recovery => "recovery",
        })
    }
}

/// One durable state transition. Records carry everything recovery needs
/// to rebuild intent without the controller's memory: transaction records
/// embed the full serialized plan and per-switch artifacts, snapshots
/// embed the whole active deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// The controller is about to start using `epoch` (write-ahead: the
    /// in-memory counter advances only after this lands).
    EpochAdvanced {
        /// The epoch about to be used.
        epoch: u64,
    },
    /// A two-phase transaction is about to start preparing.
    TxnBegun {
        /// The transaction epoch.
        epoch: u64,
        /// What initiated the transaction.
        kind: TxnKind,
        /// Fingerprint of the TDG the plan was validated against.
        tdg_fp: u64,
        /// Fingerprint of `plan`.
        plan_fp: u64,
        /// The target plan.
        plan: DeploymentPlan,
        /// The compiled per-switch configs.
        artifacts: DeploymentArtifacts,
    },
    /// One switch acknowledged its prepare.
    Prepared {
        /// The transaction epoch.
        epoch: u64,
        /// The switch that staged.
        switch: SwitchId,
    },
    /// The point of no return: every switch prepared, validation and the
    /// mixed-epoch gate passed, commits are about to be sent in `order`.
    CommitDecided {
        /// The transaction epoch.
        epoch: u64,
        /// The commit order.
        order: Vec<SwitchId>,
    },
    /// One switch acknowledged its commit.
    CommitAcked {
        /// The transaction epoch.
        epoch: u64,
        /// The switch now serving the epoch.
        switch: SwitchId,
    },
    /// A commit-window lease was granted (the agent self-fences if the
    /// controller stops renewing it — the property recovery leans on).
    LeaseGranted {
        /// The leased epoch.
        epoch: u64,
        /// The leased switch.
        switch: SwitchId,
        /// Virtual-clock lease deadline.
        until_us: u64,
    },
    /// The whole transaction committed (leases swept; `dead` lists
    /// switches declared down during the commit window).
    TxnCommitted {
        /// The committed epoch.
        epoch: u64,
        /// Switches lost during the commit window.
        dead: Vec<SwitchId>,
    },
    /// The transaction aborted before any commit was sent.
    TxnAborted {
        /// The abandoned epoch.
        epoch: u64,
        /// Why.
        reason: String,
    },
    /// The active deployment after an activation — a self-contained
    /// restart point (compaction drops everything before the latest one).
    Snapshot {
        /// The active epoch.
        epoch: u64,
        /// Fingerprint of the TDG.
        tdg_fp: u64,
        /// Fingerprint of `plan`.
        plan_fp: u64,
        /// The active plan.
        plan: DeploymentPlan,
        /// The active per-switch configs.
        artifacts: DeploymentArtifacts,
        /// Virtual time of the activation.
        clock_us: u64,
    },
    /// The controller deliberately has no active deployment (a rollback
    /// with nothing to restore).
    Cleared {
        /// The epoch that was abandoned when state was cleared.
        epoch: u64,
    },
    /// A staged migration passed its gate and is about to execute.
    MigrationBegun {
        /// The migration epoch.
        epoch: u64,
        /// Fingerprint of the TDG.
        tdg_fp: u64,
        /// Fingerprint of the target plan.
        plan_fp: u64,
        /// The target plan.
        plan: DeploymentPlan,
        /// The target per-switch configs.
        artifacts: DeploymentArtifacts,
        /// The scheduled commit order.
        order: Vec<SwitchId>,
    },
    /// One migration step committed (a checkpoint).
    MigrationStepCommitted {
        /// The migration epoch.
        epoch: u64,
        /// 0-based step index.
        step: usize,
        /// The switch now serving its target config.
        switch: SwitchId,
    },
    /// The controller decided to roll the migration back.
    MigrationRolledBack {
        /// The abandoned migration epoch.
        epoch: u64,
        /// `true` when the out-of-band full restore was chosen over
        /// stepwise undo.
        forced: bool,
    },
    /// Every migration step committed; activation follows.
    MigrationCompleted {
        /// The migrated epoch.
        epoch: u64,
        /// Steps executed.
        steps: usize,
    },
    /// Post-crash recovery started replaying this journal.
    RecoveryBegun {
        /// The fresh epoch recovery will reinstall under.
        epoch: u64,
    },
    /// Recovery finished; the journal is consistent again.
    RecoveryCompleted {
        /// The epoch now serving.
        epoch: u64,
        /// Rendered [`crate::recovery::RecoveryAction`].
        action: String,
    },
}

impl JournalRecord {
    /// The crash point a write of this record represents.
    pub fn crash_point(&self) -> CrashPoint {
        match self {
            JournalRecord::EpochAdvanced { .. } => CrashPoint::EpochAdvance,
            JournalRecord::TxnBegun { .. } => CrashPoint::TxnBegin,
            JournalRecord::Prepared { .. } => CrashPoint::Prepare,
            JournalRecord::CommitDecided { .. } => CrashPoint::CommitDecision,
            JournalRecord::CommitAcked { .. } => CrashPoint::CommitAck,
            JournalRecord::LeaseGranted { .. } => CrashPoint::LeaseGrant,
            JournalRecord::TxnCommitted { .. } => CrashPoint::TxnCommit,
            JournalRecord::TxnAborted { .. } => CrashPoint::TxnAbort,
            JournalRecord::Snapshot { .. } | JournalRecord::Cleared { .. } => CrashPoint::Snapshot,
            JournalRecord::MigrationBegun { .. } => CrashPoint::MigrationBegin,
            JournalRecord::MigrationStepCommitted { .. } => CrashPoint::MigrationStep,
            JournalRecord::MigrationRolledBack { .. } => CrashPoint::MigrationRollback,
            JournalRecord::MigrationCompleted { .. } => CrashPoint::MigrationEnd,
            JournalRecord::RecoveryBegun { .. } | JournalRecord::RecoveryCompleted { .. } => {
                CrashPoint::Recovery
            }
        }
    }

    /// The epoch the record belongs to.
    pub fn epoch(&self) -> u64 {
        match self {
            JournalRecord::EpochAdvanced { epoch }
            | JournalRecord::TxnBegun { epoch, .. }
            | JournalRecord::Prepared { epoch, .. }
            | JournalRecord::CommitDecided { epoch, .. }
            | JournalRecord::CommitAcked { epoch, .. }
            | JournalRecord::LeaseGranted { epoch, .. }
            | JournalRecord::TxnCommitted { epoch, .. }
            | JournalRecord::TxnAborted { epoch, .. }
            | JournalRecord::Snapshot { epoch, .. }
            | JournalRecord::Cleared { epoch }
            | JournalRecord::MigrationBegun { epoch, .. }
            | JournalRecord::MigrationStepCommitted { epoch, .. }
            | JournalRecord::MigrationRolledBack { epoch, .. }
            | JournalRecord::MigrationCompleted { epoch, .. }
            | JournalRecord::RecoveryBegun { epoch }
            | JournalRecord::RecoveryCompleted { epoch, .. } => *epoch,
        }
    }
}

/// Typed replay failure. Recovery either succeeds (possibly discarding a
/// torn tail) or fails with one of these — never a panic, never a
/// silently misparsed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The journal is shorter than its fixed header.
    TooShort {
        /// Bytes present.
        len: usize,
    },
    /// The header magic is not [`JOURNAL_MAGIC`] — this is not a journal
    /// (or its header was damaged).
    BadMagic {
        /// The four bytes found.
        found: [u8; 4],
    },
    /// The header declares a format this code does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u16,
        /// The version supported ([`JOURNAL_FORMAT_VERSION`]).
        supported: u16,
    },
    /// A frame in the *middle* of the journal is undecodable while an
    /// intact frame exists after it: mid-log corruption, not a torn
    /// append. Replaying past it would rewrite history.
    CorruptFrame {
        /// Byte offset of the undecodable frame.
        offset: usize,
        /// Byte offset of the next intact frame (the proof this is not a
        /// tail).
        next_intact: usize,
        /// What failed to decode.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::TooShort { len } => {
                write!(f, "journal too short: {len} bytes, header needs {HEADER_LEN}")
            }
            JournalError::BadMagic { found } => {
                write!(f, "bad journal magic {found:02x?} (expected {JOURNAL_MAGIC:02x?})")
            }
            JournalError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported journal format version {found} (supported: {supported})")
            }
            JournalError::CorruptFrame { offset, next_intact, detail } => write!(
                f,
                "corrupt journal frame at byte {offset} ({detail}); an intact frame at byte \
                 {next_intact} proves this is not a torn tail"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// The result of a successful replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn tail discarded (0 for a cleanly closed journal).
    pub discarded_tail_bytes: usize,
}

/// Decodes one frame at `off`. `Ok((record, next_off))` or a rendered
/// reason why the bytes at `off` are not an intact frame.
fn decode_frame(bytes: &[u8], off: usize) -> Result<(JournalRecord, usize), String> {
    let remaining = bytes.len() - off;
    if remaining < FRAME_HEADER_LEN {
        return Err(format!("{remaining} bytes left, frame header needs {FRAME_HEADER_LEN}"));
    }
    if bytes[off..off + 2] != FRAME_MAGIC {
        return Err(format!(
            "frame magic mismatch: {:02x?} (expected {FRAME_MAGIC:02x?})",
            &bytes[off..off + 2]
        ));
    }
    let len = u32::from_le_bytes([bytes[off + 2], bytes[off + 3], bytes[off + 4], bytes[off + 5]])
        as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(format!("declared payload length {len} exceeds the {MAX_PAYLOAD_LEN} cap"));
    }
    if remaining < FRAME_HEADER_LEN + len {
        return Err(format!(
            "declared payload length {len} overruns the journal ({} bytes left)",
            remaining - FRAME_HEADER_LEN
        ));
    }
    let stored_crc =
        u32::from_le_bytes([bytes[off + 6], bytes[off + 7], bytes[off + 8], bytes[off + 9]]);
    let payload = &bytes[off + FRAME_HEADER_LEN..off + FRAME_HEADER_LEN + len];
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(format!("CRC mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"));
    }
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload not UTF-8: {e}"))?;
    let record: JournalRecord =
        serde_json::from_str(text).map_err(|e| format!("payload not a record: {e}"))?;
    Ok((record, off + FRAME_HEADER_LEN + len))
}

/// Scans for the first intact frame strictly after `from`.
fn find_intact_frame_after(bytes: &[u8], from: usize) -> Option<usize> {
    let mut i = from + 1;
    while i + FRAME_HEADER_LEN <= bytes.len() {
        if bytes[i..i + 2] == FRAME_MAGIC && decode_frame(bytes, i).is_ok() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Replays a raw journal image. See the module docs for the torn-tail
/// vs. mid-log-corruption contract.
///
/// # Errors
///
/// [`JournalError::TooShort`] / [`JournalError::BadMagic`] /
/// [`JournalError::UnsupportedVersion`] for a damaged header, and
/// [`JournalError::CorruptFrame`] for provable mid-log corruption.
pub fn replay_bytes(bytes: &[u8]) -> Result<Replay, JournalError> {
    if bytes.len() < HEADER_LEN {
        return Err(JournalError::TooShort { len: bytes.len() });
    }
    if bytes[0..4] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic { found: [bytes[0], bytes[1], bytes[2], bytes[3]] });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != JOURNAL_FORMAT_VERSION {
        return Err(JournalError::UnsupportedVersion {
            found: version,
            supported: JOURNAL_FORMAT_VERSION,
        });
    }
    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    while off < bytes.len() {
        match decode_frame(bytes, off) {
            Ok((record, next)) => {
                records.push(record);
                off = next;
            }
            Err(detail) => {
                return match find_intact_frame_after(bytes, off) {
                    Some(next_intact) => {
                        Err(JournalError::CorruptFrame { offset: off, next_intact, detail })
                    }
                    None => Ok(Replay { records, discarded_tail_bytes: bytes.len() - off }),
                };
            }
        }
    }
    Ok(Replay { records, discarded_tail_bytes: 0 })
}

/// Default compaction threshold: once more than this many bytes precede
/// the latest snapshot, they are dropped.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 64 * 1024;

/// The in-memory journal image the runtime appends to. `bytes()` is the
/// durable representation — what a resident server would fsync and what
/// the CLI's `--journal` flag writes to disk.
#[derive(Debug, Clone)]
pub struct Journal {
    bytes: Vec<u8>,
    records: usize,
    appends: u64,
    compactions: u64,
    encode_failures: u64,
    compact_threshold: usize,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// An empty journal (header only) with the default compaction
    /// threshold.
    pub fn new() -> Self {
        Journal::with_compact_threshold(DEFAULT_COMPACT_THRESHOLD)
    }

    /// An empty journal that compacts once more than `threshold` bytes
    /// precede the latest snapshot.
    pub fn with_compact_threshold(threshold: usize) -> Self {
        let mut bytes = Vec::with_capacity(HEADER_LEN);
        bytes.extend_from_slice(&JOURNAL_MAGIC);
        bytes.extend_from_slice(&JOURNAL_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        Journal {
            bytes,
            records: 0,
            appends: 0,
            compactions: 0,
            encode_failures: 0,
            compact_threshold: threshold,
        }
    }

    /// Appends one record. A [`JournalRecord::Snapshot`] additionally
    /// triggers compaction when enough history precedes it.
    pub fn append(&mut self, record: &JournalRecord) {
        let payload = match serde_json::to_string(record) {
            Ok(p) => p,
            Err(_) => {
                // Derived serialization of journal records cannot fail; if
                // it somehow does, dropping the record (and counting it)
                // beats writing a frame that will never decode.
                self.encode_failures += 1;
                return;
            }
        };
        let frame_off = self.bytes.len();
        self.bytes.extend_from_slice(&FRAME_MAGIC);
        self.bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(&crc32(payload.as_bytes()).to_le_bytes());
        self.bytes.extend_from_slice(payload.as_bytes());
        self.records += 1;
        self.appends += 1;
        if matches!(record, JournalRecord::Snapshot { .. })
            && frame_off - HEADER_LEN > self.compact_threshold
        {
            // Drop everything between the header and this snapshot frame:
            // the snapshot is a self-contained restart point.
            self.bytes.drain(HEADER_LEN..frame_off);
            self.records = 1;
            self.compactions += 1;
        }
    }

    /// The durable byte image (header + frames).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Records currently in the image (after compaction).
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Total appends over the journal's lifetime (compaction does not
    /// reset this).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Times compaction dropped pre-snapshot history.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Records dropped because they failed to serialize (always 0 in
    /// practice; see [`Journal::append`]).
    pub fn encode_failures(&self) -> u64 {
        self.encode_failures
    }

    /// Replays the in-memory image.
    ///
    /// # Errors
    ///
    /// Propagates [`replay_bytes`]'s typed errors.
    pub fn replay(&self) -> Result<Replay, JournalError> {
        replay_bytes(&self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64) -> JournalRecord {
        JournalRecord::EpochAdvanced { epoch }
    }

    fn snapshot(epoch: u64) -> JournalRecord {
        JournalRecord::Snapshot {
            epoch,
            tdg_fp: 11,
            plan_fp: 22,
            plan: DeploymentPlan::new(),
            artifacts: DeploymentArtifacts {
                switches: std::collections::BTreeMap::new(),
                routes: Vec::new(),
            },
            clock_us: 5,
        }
    }

    #[test]
    fn append_replay_round_trips_in_order() {
        let mut j = Journal::new();
        let records = vec![
            record(1),
            JournalRecord::TxnAborted { epoch: 1, reason: "no".into() },
            JournalRecord::CommitDecided { epoch: 2, order: vec![] },
            snapshot(2),
        ];
        for r in &records {
            j.append(r);
        }
        let replay = match j.replay() {
            Ok(r) => r,
            Err(e) => panic!("clean journal must replay: {e}"),
        };
        assert_eq!(replay.records, records);
        assert_eq!(replay.discarded_tail_bytes, 0);
        assert_eq!(j.record_count(), 4);
        assert_eq!(j.encode_failures(), 0);
    }

    #[test]
    fn empty_journal_replays_to_nothing() {
        let j = Journal::new();
        let replay = j.replay().ok().filter(|r| r.records.is_empty());
        assert!(replay.is_some(), "header-only journal must replay cleanly");
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let mut j = Journal::new();
        j.append(&record(1));
        j.append(&record(2));
        let full = j.bytes().to_vec();
        // Truncate inside the final frame: a torn append.
        for cut in (full.len() - 10)..full.len() {
            let torn = &full[..cut];
            let replay = match replay_bytes(torn) {
                Ok(r) => r,
                Err(e) => panic!("torn tail at {cut} must not be fatal: {e}"),
            };
            assert_eq!(replay.records, vec![record(1)], "cut at {cut}");
            assert!(replay.discarded_tail_bytes > 0, "cut at {cut}");
        }
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let mut j = Journal::new();
        j.append(&record(1));
        j.append(&record(2));
        let mut bytes = j.bytes().to_vec();
        // Flip a payload bit of the FIRST frame; the intact second frame
        // proves this is not a torn tail.
        bytes[HEADER_LEN + FRAME_HEADER_LEN + 2] ^= 0x01;
        match replay_bytes(&bytes) {
            Err(JournalError::CorruptFrame { offset, next_intact, .. }) => {
                assert_eq!(offset, HEADER_LEN);
                assert!(next_intact > offset);
            }
            other => panic!("mid-log corruption must be typed, got {other:?}"),
        }
    }

    #[test]
    fn header_damage_is_typed() {
        let j = Journal::new();
        let good = j.bytes().to_vec();

        assert_eq!(replay_bytes(&good[..4]), Err(JournalError::TooShort { len: 4 }));

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(replay_bytes(&bad_magic), Err(JournalError::BadMagic { .. })));

        let mut bad_version = good;
        bad_version[4] = 0xFF;
        assert!(matches!(
            replay_bytes(&bad_version),
            Err(JournalError::UnsupportedVersion { found: 0xFF, .. })
        ));
    }

    #[test]
    fn snapshot_compaction_drops_history_and_keeps_replayability() {
        let mut j = Journal::with_compact_threshold(256);
        for epoch in 1..=40 {
            j.append(&record(epoch));
        }
        let before = j.bytes().len();
        j.append(&snapshot(41));
        assert!(j.bytes().len() < before, "compaction must shrink the image");
        assert_eq!(j.compactions(), 1);
        assert_eq!(j.record_count(), 1);
        let replay = match j.replay() {
            Ok(r) => r,
            Err(e) => panic!("compacted journal must replay: {e}"),
        };
        assert_eq!(replay.records.len(), 1);
        assert!(matches!(replay.records[0], JournalRecord::Snapshot { epoch: 41, .. }));
        // Appends after compaction land after the snapshot.
        j.append(&record(42));
        let replay = match j.replay() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(replay.records.len(), 2);
    }

    #[test]
    fn crash_points_cover_every_record_kind() {
        assert_eq!(record(1).crash_point(), CrashPoint::EpochAdvance);
        assert_eq!(snapshot(1).crash_point(), CrashPoint::Snapshot);
        assert_eq!(JournalRecord::RecoveryBegun { epoch: 3 }.crash_point(), CrashPoint::Recovery);
        assert_eq!(JournalRecord::Cleared { epoch: 3 }.epoch(), 3);
    }
}
