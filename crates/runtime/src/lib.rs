//! Failure-aware deployment runtime: fault injection, transactional
//! rollout, and incremental healing.
//!
//! The paper's pipeline ends at a verified [`DeploymentPlan`]
//! (hermes-core) and per-switch configs (hermes-backend). This crate adds
//! the operational layer in between a plan and a running network:
//!
//! - [`agent`] — emulated per-switch install agents, each a
//!   message-driven state machine: `(epoch, seq)`-stamped requests are
//!   deduplicated and answered idempotently, stale epochs are fenced (an
//!   agent that missed an abort can never activate the abandoned epoch),
//!   and a commit-time lease makes an unrenewed agent self-fence instead
//!   of serving as a zombie.
//! - [`channel`] — the seeded, lossy [`ControlChannel`] every
//!   prepare/commit/abort/probe travels: a [`ChannelProfile`] decides per
//!   message whether it is dropped, duplicated, reordered, or delayed,
//!   deterministically per seed.
//! - [`fault`] — a seeded, deterministic [`FaultInjector`] modelling
//!   install rejections, switch crashes, link failures, slow responses,
//!   and partial-stage installs. Profiles are validated at construction.
//! - [`runtime`] — [`DeploymentRuntime`], which installs a plan as a
//!   two-phase transaction with bounded retry and exponential backoff on
//!   a virtual clock, refuses same-program plan changes whose mixed-epoch
//!   commit window would break Reitblatt-style per-packet consistency
//!   ([`hermes_backend::check_transition`]), rolls back atomically when
//!   the transaction cannot commit, and — when a switch dies after commit
//!   or stops answering probes — heals by re-running the incremental
//!   deployer with surviving placements pinned and revalidating
//!   (ε-verifier + packet-level equivalence) before activating the healed
//!   plan.
//! - [`migrate`] — staged live reconfiguration: executes a
//!   [`hermes_core::MigrationSchedule`] switch by switch over the same
//!   lossy channel and fault injector, gating every prefix of the commit
//!   order through the mixed-epoch check, checkpointing after each
//!   committed step, and rolling back to the prior plan (stepwise, or by
//!   full restore past an abort threshold) when a step fails for good.
//! - [`event`] — the structured, deterministic [`EventLog`] recording
//!   epochs, retries, message fates, fencing, leases, rollbacks, recovery
//!   latency, and `A_max` before/after healing. Same seed, byte-identical
//!   JSON.
//! - [`journal`] — the durable write-ahead intent [`Journal`]: every
//!   controller state transition (epoch advance, prepare, commit
//!   decision, lease grant, migration step, snapshot) is recorded as a
//!   length-framed, CRC-checked record *before* the transition takes
//!   effect, with snapshot compaction bounding replay cost. A torn tail
//!   is discarded silently; mid-log corruption is a typed
//!   [`JournalError`], never a panic.
//! - [`recovery`] — restart-time replay and reconciliation:
//!   [`DeploymentRuntime::recover`] rebuilds intent from the journal,
//!   probes every agent under a fresh fencing epoch, resumes
//!   transactions whose commit decision was journaled, rolls back those
//!   without one, and force-restores past an abort threshold — so the
//!   "exactly plan A or exactly plan B" invariant holds across
//!   controller crashes too.
//!
//! # Example
//!
//! ```
//! use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
//! use hermes_dataplane::library;
//! use hermes_net::topology;
//! use hermes_runtime::{DeploymentRuntime, FaultInjector, FaultProfile, RetryPolicy};
//!
//! let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
//! let net = topology::linear(4, 10.0);
//! let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose())?;
//!
//! let injector = FaultInjector::new(7, FaultProfile::chaos());
//! let mut runtime =
//!     DeploymentRuntime::new(net, Epsilon::loose(), injector, RetryPolicy::default());
//! let outcome = runtime.rollout(&tdg, plan);
//! // Exactly one of two terminal states: a committed, validated plan, or
//! // a clean rollback to the previous deployment.
//! if outcome.is_committed() {
//!     assert!(runtime.active_plan().is_some());
//! } else {
//!     assert!(runtime.active_plan().is_none());
//! }
//! println!("{}", runtime.log().to_json());
//! # Ok::<(), hermes_core::DeployError>(())
//! ```
//!
//! [`DeploymentPlan`]: hermes_core::DeploymentPlan

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod channel;
pub mod event;
pub mod fault;
pub mod journal;
pub mod migrate;
pub mod recovery;
pub mod runtime;

pub use agent::{
    AgentError, HandleNote, Reply, ReplyEnvelope, Request, RequestEnvelope, SwitchAgent,
};
pub use channel::{ChannelProfile, ControlChannel, Message, SendReceipt};
pub use event::{Event, EventLog, MessageKind, EVENT_SCHEMA_VERSION};
pub use fault::{Fault, FaultInjector, FaultProfile, ProfileError};
pub use journal::{
    replay_bytes, CrashPoint, CrashTiming, Journal, JournalError, JournalRecord, Replay, TxnKind,
    JOURNAL_FORMAT_VERSION,
};
pub use migrate::{MigrationConfig, MigrationOutcome};
pub use recovery::{
    InFlight, RecoveredIntent, RecoveryAction, RecoveryError, RecoveryReport, SnapshotState,
    RECOVERY_ABORT_THRESHOLD,
};
pub use runtime::{ControllerCrash, DeploymentRuntime, RetryPolicy, RolloutOutcome};
