//! Emulated per-switch install agents.
//!
//! Each programmable switch is fronted by a [`SwitchAgent`] holding at
//! most two configurations: the *active* one (serving traffic) and a
//! *staged* one (written by the prepare phase of a transaction). Commit
//! atomically swaps staged to active; abort discards staged and leaves
//! the active config untouched — the agent-level half of the runtime's
//! two-phase protocol.

use hermes_backend::SwitchConfig;
use hermes_net::SwitchId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors an agent can answer with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AgentError {
    /// The switch is down; no operation is possible.
    Crashed,
    /// Commit was requested with no staged configuration.
    NothingStaged,
    /// Commit was requested for a different epoch than was staged.
    EpochMismatch {
        /// The epoch staged on the agent.
        staged: u64,
        /// The epoch the runtime asked to commit.
        requested: u64,
    },
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Crashed => f.write_str("switch is down"),
            AgentError::NothingStaged => f.write_str("no staged configuration"),
            AgentError::EpochMismatch { staged, requested } => {
                write!(f, "staged epoch {staged} but commit requested epoch {requested}")
            }
        }
    }
}

impl std::error::Error for AgentError {}

/// The install agent of one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchAgent {
    id: SwitchId,
    crashed: bool,
    staged: Option<(u64, SwitchConfig)>,
    active: Option<(u64, SwitchConfig)>,
}

impl SwitchAgent {
    /// A fresh agent with nothing installed.
    pub fn new(id: SwitchId) -> Self {
        SwitchAgent { id, crashed: false, staged: None, active: None }
    }

    /// The switch this agent fronts.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Stages `config` for `epoch` without touching the active config.
    ///
    /// # Errors
    ///
    /// [`AgentError::Crashed`] if the switch is down.
    pub fn prepare(&mut self, epoch: u64, config: SwitchConfig) -> Result<(), AgentError> {
        if self.crashed {
            return Err(AgentError::Crashed);
        }
        self.staged = Some((epoch, config));
        Ok(())
    }

    /// Atomically activates the staged config of `epoch`.
    ///
    /// # Errors
    ///
    /// Fails when down, when nothing is staged, or on an epoch mismatch;
    /// the active config is untouched in every error case.
    pub fn commit(&mut self, epoch: u64) -> Result<(), AgentError> {
        if self.crashed {
            return Err(AgentError::Crashed);
        }
        match &self.staged {
            None => Err(AgentError::NothingStaged),
            Some((staged, _)) if *staged != epoch => {
                Err(AgentError::EpochMismatch { staged: *staged, requested: epoch })
            }
            Some(_) => {
                self.active = self.staged.take();
                Ok(())
            }
        }
    }

    /// Discards any staged config; the active config keeps serving.
    pub fn abort(&mut self) {
        self.staged = None;
    }

    /// Kills the switch: staged state is lost, the active config stops
    /// serving (the switch is gone from the data plane).
    pub fn crash(&mut self) {
        self.crashed = true;
        self.staged = None;
    }

    /// `true` iff the switch is down.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Directly restores an active config (the runtime's rollback path to
    /// a last-known-good deployment; bypasses staging).
    pub fn force_activate(&mut self, epoch: u64, config: Option<SwitchConfig>) {
        if self.crashed {
            return;
        }
        self.staged = None;
        self.active = config.map(|c| (epoch, c));
    }

    /// The epoch of the active config, if any.
    pub fn active_epoch(&self) -> Option<u64> {
        self.active.as_ref().map(|(e, _)| *e)
    }

    /// The active config, if any.
    pub fn active_config(&self) -> Option<&SwitchConfig> {
        self.active.as_ref().map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::topology;
    use std::collections::{BTreeMap, BTreeSet};

    fn some_switch() -> SwitchId {
        topology::linear(1, 10.0).switch_ids().next().unwrap()
    }

    fn config(name: &str) -> SwitchConfig {
        SwitchConfig {
            switch: some_switch(),
            switch_name: name.to_string(),
            stages: BTreeMap::new(),
            parses: BTreeSet::new(),
            appends: BTreeMap::new(),
        }
    }

    fn agent() -> SwitchAgent {
        SwitchAgent::new(some_switch())
    }

    #[test]
    fn prepare_commit_swaps_atomically() {
        let mut a = agent();
        a.prepare(1, config("one")).unwrap();
        assert_eq!(a.active_epoch(), None, "staging must not activate");
        a.commit(1).unwrap();
        assert_eq!(a.active_epoch(), Some(1));
        assert_eq!(a.active_config().unwrap().switch_name, "one");
    }

    #[test]
    fn abort_keeps_active() {
        let mut a = agent();
        a.prepare(1, config("one")).unwrap();
        a.commit(1).unwrap();
        a.prepare(2, config("two")).unwrap();
        a.abort();
        assert_eq!(a.commit(2), Err(AgentError::NothingStaged));
        assert_eq!(a.active_config().unwrap().switch_name, "one");
    }

    #[test]
    fn epoch_mismatch_is_rejected() {
        let mut a = agent();
        a.prepare(3, config("three")).unwrap();
        assert_eq!(a.commit(4), Err(AgentError::EpochMismatch { staged: 3, requested: 4 }));
        assert_eq!(a.active_epoch(), None);
    }

    #[test]
    fn crash_loses_staged_state_and_blocks_everything() {
        let mut a = agent();
        a.prepare(1, config("one")).unwrap();
        a.crash();
        assert!(a.is_crashed());
        assert_eq!(a.commit(1), Err(AgentError::Crashed));
        assert_eq!(a.prepare(2, config("two")), Err(AgentError::Crashed));
        a.force_activate(2, Some(config("two")));
        assert_eq!(a.active_config(), None, "force_activate is a no-op on a dead switch");
    }
}
