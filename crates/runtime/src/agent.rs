//! Emulated per-switch install agents: message-driven state machines.
//!
//! Each programmable switch is fronted by a [`SwitchAgent`] holding at
//! most two configurations: the *active* one (serving traffic) and a
//! *staged* one (written by the prepare phase of a transaction). The
//! agent no longer assumes a reliable controller: every operation arrives
//! as a [`RequestEnvelope`] stamped with `(epoch, seq)` over a channel
//! that may drop, duplicate, reorder, or delay it, and the agent must
//! behave correctly anyway:
//!
//! - **Idempotence / dedup** — an exact `(epoch, seq)` replay re-answers
//!   the cached reply without re-executing; a retransmission under a new
//!   `seq` is answered idempotently from current state (e.g. `Commit` for
//!   the already-active epoch acks again).
//! - **Epoch fencing** — observing epoch `e` proves every epoch `< e`
//!   terminated at the controller, so epochs `< e` are *fenced*: a
//!   delayed `Prepare`/`Commit` for a fenced epoch is refused. An
//!   explicit `Abort(e)` fences `e` itself, so an agent that missed an
//!   abort can never activate the abandoned epoch once it hears anything
//!   newer — and one that missed *everything* still cannot activate,
//!   because no `Commit(e)` was ever sent for an aborted epoch.
//! - **Commit leases** — activating a config starts a lease on the
//!   virtual clock, renewed by controller probes. If the lease lapses
//!   (controller unreachable), the agent self-fences: the active config
//!   stops serving rather than becoming a zombie serving stale state
//!   while the controller heals around it.

// The crate-level clippy.toml bans unwrap/expect so the recovery path
// (journal.rs, recovery.rs) can never panic; this pre-durability module
// keeps its intentional `expect`s on internal invariants.
#![allow(clippy::disallowed_methods)]

use hermes_backend::SwitchConfig;
use hermes_net::SwitchId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors an agent can answer with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AgentError {
    /// The switch is down; no operation is possible.
    Crashed,
    /// Commit was requested with no staged configuration.
    NothingStaged,
    /// Commit was requested for a different epoch than was staged.
    EpochMismatch {
        /// The epoch staged on the agent.
        staged: u64,
        /// The epoch the runtime asked to commit.
        requested: u64,
    },
    /// The requested epoch is fenced: the agent has proof it terminated
    /// (an abort arrived, or a newer epoch was observed) and will never
    /// stage or activate it again.
    EpochFenced {
        /// The highest fenced epoch.
        fenced: u64,
        /// The stale epoch the request carried.
        requested: u64,
    },
    /// The fault injector made the agent refuse this install attempt
    /// (transient; the controller retries).
    InstallRejected,
    /// A probe asked about an epoch the agent is not serving.
    NotServing {
        /// The epoch the probe asked about.
        requested: u64,
    },
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Crashed => f.write_str("switch is down"),
            AgentError::NothingStaged => f.write_str("no staged configuration"),
            AgentError::EpochMismatch { staged, requested } => {
                write!(f, "staged epoch {staged} but commit requested epoch {requested}")
            }
            AgentError::EpochFenced { fenced, requested } => {
                write!(f, "epoch {requested} is fenced (epochs <= {fenced} can never activate)")
            }
            AgentError::InstallRejected => f.write_str("install rejected"),
            AgentError::NotServing { requested } => {
                write!(f, "not serving epoch {requested}")
            }
        }
    }
}

impl std::error::Error for AgentError {}

/// Operation a [`RequestEnvelope`] asks the agent to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Stage this config for the envelope's epoch.
    Prepare(Box<SwitchConfig>),
    /// Atomically activate the staged config of the envelope's epoch and
    /// start its lease.
    Commit,
    /// Discard staged state for the epoch and fence it forever.
    Abort,
    /// Liveness check; renews the lease when the agent serves the
    /// envelope's epoch.
    Probe,
}

impl Request {
    /// Short tag for logs and displays.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Prepare(_) => "prepare",
            Request::Commit => "commit",
            Request::Abort => "abort",
            Request::Probe => "probe",
        }
    }
}

/// One controller-to-agent message.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// The transaction epoch the request belongs to.
    pub epoch: u64,
    /// Controller-unique sequence number (dedup key together with epoch).
    pub seq: u64,
    /// Target switch.
    pub switch: SwitchId,
    /// The operation.
    pub body: Request,
}

/// Agent answer to one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// The operation took effect (or had already taken effect).
    Ack {
        /// The epoch the agent actively serves after the operation.
        active_epoch: Option<u64>,
    },
    /// The operation was refused; agent state is unchanged except for
    /// fencing bookkeeping.
    Nack {
        /// Why.
        error: AgentError,
        /// The epoch the agent actively serves.
        active_epoch: Option<u64>,
    },
}

impl Reply {
    /// `true` for the ack case.
    pub fn is_ack(&self) -> bool {
        matches!(self, Reply::Ack { .. })
    }

    /// The active epoch the agent reported alongside the reply.
    pub fn active_epoch(&self) -> Option<u64> {
        match self {
            Reply::Ack { active_epoch } | Reply::Nack { active_epoch, .. } => *active_epoch,
        }
    }
}

/// One agent-to-controller message.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyEnvelope {
    /// Epoch of the request being answered.
    pub epoch: u64,
    /// Sequence number of the request being answered.
    pub seq: u64,
    /// The answering switch.
    pub switch: SwitchId,
    /// The answer.
    pub body: Reply,
}

/// Side observation from handling one request, surfaced so the runtime
/// can put protocol-level decisions into the event log (the agent itself
/// has no log access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandleNote {
    /// The request was an exact `(epoch, seq)` replay; the cached reply
    /// was re-sent without re-executing.
    Replayed,
    /// A stale epoch was refused by the fence.
    FencedStale {
        /// The refused epoch.
        stale_epoch: u64,
    },
    /// The staged config was activated and its lease started.
    Activated,
    /// A probe renewed the active lease.
    LeaseRenewed,
    /// The active lease had lapsed before this request arrived; the agent
    /// self-fenced and dropped the active config.
    LeaseExpired {
        /// The epoch that stopped serving.
        epoch: u64,
    },
}

/// The install agent of one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchAgent {
    id: SwitchId,
    crashed: bool,
    staged: Option<(u64, SwitchConfig)>,
    active: Option<(u64, SwitchConfig)>,
    /// Highest epoch with termination proof: epochs `<= fence` can never
    /// stage or activate again (the already-active epoch keeps serving).
    fence: u64,
    /// Virtual-clock deadline of the active config's lease; `None` means
    /// no lease (force-activated or nothing active).
    lease_until: Option<u64>,
    /// Replay cache: exact `(epoch, seq)` duplicates re-answer from here.
    seen: BTreeMap<(u64, u64), Reply>,
}

impl SwitchAgent {
    /// A fresh agent with nothing installed.
    pub fn new(id: SwitchId) -> Self {
        SwitchAgent {
            id,
            crashed: false,
            staged: None,
            active: None,
            fence: 0,
            lease_until: None,
            seen: BTreeMap::new(),
        }
    }

    /// The switch this agent fronts.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Handles one delivered request at virtual time `now_us`. Commit
    /// starts (and probe renews) a lease of `lease_us`. Returns the reply
    /// to send back plus protocol observations for the runtime's log.
    pub fn handle(
        &mut self,
        req: &RequestEnvelope,
        now_us: u64,
        lease_us: u64,
    ) -> (ReplyEnvelope, Vec<HandleNote>) {
        let mut notes = Vec::new();
        if self.crashed {
            // Crashed agents answer nothing in a real network; the Nack is
            // the emulation's way of letting the pump observe the state.
            return (
                self.reply(req, Reply::Nack { error: AgentError::Crashed, active_epoch: None }),
                notes,
            );
        }
        if let Some(epoch) = self.expire_lease(now_us) {
            notes.push(HandleNote::LeaseExpired { epoch });
        }
        if let Some(cached) = self.seen.get(&(req.epoch, req.seq)) {
            notes.push(HandleNote::Replayed);
            return (self.reply(req, cached.clone()), notes);
        }

        let body = match &req.body {
            Request::Prepare(config) => self.on_prepare(req.epoch, config, &mut notes),
            Request::Commit => self.on_commit(req.epoch, now_us, lease_us, &mut notes),
            Request::Abort => self.on_abort(req.epoch),
            Request::Probe => self.on_probe(req.epoch, now_us, lease_us, &mut notes),
        };
        self.seen.insert((req.epoch, req.seq), body.clone());
        (self.reply(req, body), notes)
    }

    fn reply(&self, req: &RequestEnvelope, body: Reply) -> ReplyEnvelope {
        ReplyEnvelope { epoch: req.epoch, seq: req.seq, switch: self.id, body }
    }

    fn on_prepare(
        &mut self,
        epoch: u64,
        config: &SwitchConfig,
        notes: &mut Vec<HandleNote>,
    ) -> Reply {
        if epoch <= self.fence {
            notes.push(HandleNote::FencedStale { stale_epoch: epoch });
            return self.nack(AgentError::EpochFenced { fenced: self.fence, requested: epoch });
        }
        // Seeing epoch `e` proves epochs `< e` terminated at the
        // controller: fence them (the active one keeps serving).
        self.fence = self.fence.max(epoch.saturating_sub(1));
        self.staged = Some((epoch, config.clone()));
        self.ack()
    }

    fn on_commit(
        &mut self,
        epoch: u64,
        now_us: u64,
        lease_us: u64,
        notes: &mut Vec<HandleNote>,
    ) -> Reply {
        if self.active_epoch() == Some(epoch) {
            // Idempotent replay of a commit that already landed. Renew the
            // lease only while commit-window supervision is still running:
            // a straggler duplicate arriving after the controller released
            // the lease must not start a new one nobody will renew.
            if self.lease_until.is_some() {
                self.lease_until = Some(now_us + lease_us);
            }
            return self.ack();
        }
        if epoch <= self.fence {
            notes.push(HandleNote::FencedStale { stale_epoch: epoch });
            return self.nack(AgentError::EpochFenced { fenced: self.fence, requested: epoch });
        }
        match &self.staged {
            None => self.nack(AgentError::NothingStaged),
            Some((staged, _)) if *staged != epoch => {
                let staged = *staged;
                self.nack(AgentError::EpochMismatch { staged, requested: epoch })
            }
            Some(_) => {
                self.active = self.staged.take();
                self.fence = self.fence.max(epoch.saturating_sub(1));
                self.lease_until = Some(now_us + lease_us);
                notes.push(HandleNote::Activated);
                self.ack()
            }
        }
    }

    fn on_abort(&mut self, epoch: u64) -> Reply {
        // Aborting is always idempotent and always fences: even if the
        // staged config was lost (or never arrived), epoch `epoch` can
        // never activate after this.
        self.fence = self.fence.max(epoch);
        if self.staged.as_ref().is_some_and(|(e, _)| *e <= epoch) {
            self.staged = None;
        }
        self.ack()
    }

    fn on_probe(
        &mut self,
        epoch: u64,
        now_us: u64,
        lease_us: u64,
        notes: &mut Vec<HandleNote>,
    ) -> Reply {
        if self.active_epoch() == Some(epoch) {
            // Same steady-state rule as idempotent commits: only a running
            // lease is renewed.
            if self.lease_until.is_some() {
                self.lease_until = Some(now_us + lease_us);
                notes.push(HandleNote::LeaseRenewed);
            }
            self.ack()
        } else {
            self.nack(AgentError::NotServing { requested: epoch })
        }
    }

    fn ack(&self) -> Reply {
        Reply::Ack { active_epoch: self.active_epoch() }
    }

    fn nack(&self, error: AgentError) -> Reply {
        Reply::Nack { error, active_epoch: self.active_epoch() }
    }

    /// Drops the active config if its lease lapsed before `now_us`
    /// (self-fencing against zombie service). Returns the epoch that
    /// stopped serving, if any.
    pub fn expire_lease(&mut self, now_us: u64) -> Option<u64> {
        let (epoch, _) = self.active.as_ref()?;
        let deadline = self.lease_until?;
        if now_us <= deadline {
            return None;
        }
        let epoch = *epoch;
        self.fence = self.fence.max(epoch);
        self.active = None;
        self.lease_until = None;
        Some(epoch)
    }

    /// `true` iff `(epoch, seq)` is already in the replay cache (the
    /// runtime's pump uses this to decide whether a delivery re-executes
    /// install machinery or replays a cached answer).
    pub fn has_seen(&self, epoch: u64, seq: u64) -> bool {
        self.seen.contains_key(&(epoch, seq))
    }

    /// Ends commit-window supervision: the active config keeps serving
    /// with no lease running (steady state — later failures are the
    /// post-commit crash / healing model's job, not the lease's).
    pub fn release_lease(&mut self) {
        self.lease_until = None;
    }

    /// Kills the switch: staged state is lost, the active config stops
    /// serving (the switch is gone from the data plane).
    pub fn crash(&mut self) {
        self.crashed = true;
        self.staged = None;
    }

    /// `true` iff the switch is down.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Directly restores an active config (the runtime's out-of-band
    /// rollback path to a last-known-good deployment; bypasses staging,
    /// the channel, and the lease).
    pub fn force_activate(&mut self, epoch: u64, config: Option<SwitchConfig>) {
        if self.crashed {
            return;
        }
        self.staged = None;
        self.lease_until = None;
        self.active = config.map(|c| (epoch, c));
    }

    /// The epoch of the active config, if any.
    pub fn active_epoch(&self) -> Option<u64> {
        self.active.as_ref().map(|(e, _)| *e)
    }

    /// The active config, if any.
    pub fn active_config(&self) -> Option<&SwitchConfig> {
        self.active.as_ref().map(|(_, c)| c)
    }

    /// The epoch of the staged config, if any.
    pub fn staged_epoch(&self) -> Option<u64> {
        self.staged.as_ref().map(|(e, _)| *e)
    }

    /// The highest fenced epoch: epochs `<=` this can never activate.
    pub fn fenced_epoch(&self) -> u64 {
        self.fence
    }

    /// The lease deadline of the active config, if one is running.
    pub fn lease_until(&self) -> Option<u64> {
        self.lease_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::topology;
    use std::collections::{BTreeMap, BTreeSet};

    const LEASE: u64 = 1_000;

    fn some_switch() -> SwitchId {
        topology::linear(1, 10.0).switch_ids().next().unwrap()
    }

    fn config(name: &str) -> SwitchConfig {
        SwitchConfig {
            switch: some_switch(),
            switch_name: name.to_string(),
            stages: BTreeMap::new(),
            parses: BTreeSet::new(),
            appends: BTreeMap::new(),
        }
    }

    fn agent() -> SwitchAgent {
        SwitchAgent::new(some_switch())
    }

    fn req(epoch: u64, seq: u64, body: Request) -> RequestEnvelope {
        RequestEnvelope { epoch, seq, switch: some_switch(), body }
    }

    fn prepare(epoch: u64, seq: u64, name: &str) -> RequestEnvelope {
        req(epoch, seq, Request::Prepare(Box::new(config(name))))
    }

    #[test]
    fn prepare_commit_swaps_atomically_and_starts_lease() {
        let mut a = agent();
        let (reply, _) = a.handle(&prepare(1, 1, "one"), 0, LEASE);
        assert!(reply.body.is_ack());
        assert_eq!(a.active_epoch(), None, "staging must not activate");
        let (reply, notes) = a.handle(&req(1, 2, Request::Commit), 10, LEASE);
        assert!(reply.body.is_ack());
        assert!(notes.contains(&HandleNote::Activated));
        assert_eq!(a.active_epoch(), Some(1));
        assert_eq!(a.active_config().unwrap().switch_name, "one");
        assert_eq!(a.lease_until(), Some(10 + LEASE));
    }

    #[test]
    fn abort_after_prepare_keeps_active_and_fences() {
        let mut a = agent();
        a.handle(&prepare(1, 1, "one"), 0, LEASE);
        a.handle(&req(1, 2, Request::Commit), 0, LEASE);
        a.handle(&prepare(2, 3, "two"), 0, LEASE);
        let (reply, _) = a.handle(&req(2, 4, Request::Abort), 0, LEASE);
        assert!(reply.body.is_ack(), "abort is always acked");
        // A delayed commit for the aborted epoch can never activate it.
        let (reply, notes) = a.handle(&req(2, 5, Request::Commit), 0, LEASE);
        assert_eq!(
            reply.body,
            Reply::Nack {
                error: AgentError::EpochFenced { fenced: 2, requested: 2 },
                active_epoch: Some(1)
            }
        );
        assert!(notes.contains(&HandleNote::FencedStale { stale_epoch: 2 }));
        assert_eq!(a.active_config().unwrap().switch_name, "one");
    }

    #[test]
    fn commit_with_epoch_mismatch_is_refused() {
        let mut a = agent();
        a.handle(&prepare(3, 1, "three"), 0, LEASE);
        let (reply, _) = a.handle(&req(4, 2, Request::Commit), 0, LEASE);
        assert_eq!(
            reply.body,
            Reply::Nack {
                error: AgentError::EpochMismatch { staged: 3, requested: 4 },
                active_epoch: None
            }
        );
        assert_eq!(a.active_epoch(), None);
    }

    #[test]
    fn commit_with_nothing_staged_is_refused() {
        let mut a = agent();
        let (reply, _) = a.handle(&req(1, 1, Request::Commit), 0, LEASE);
        assert_eq!(
            reply.body,
            Reply::Nack { error: AgentError::NothingStaged, active_epoch: None }
        );
    }

    #[test]
    fn crashed_switch_refuses_prepare_and_commit() {
        let mut a = agent();
        a.handle(&prepare(1, 1, "one"), 0, LEASE);
        a.crash();
        assert!(a.is_crashed());
        let (reply, _) = a.handle(&req(1, 2, Request::Commit), 0, LEASE);
        assert_eq!(reply.body, Reply::Nack { error: AgentError::Crashed, active_epoch: None });
        let (reply, _) = a.handle(&prepare(2, 3, "two"), 0, LEASE);
        assert_eq!(reply.body, Reply::Nack { error: AgentError::Crashed, active_epoch: None });
        a.force_activate(2, Some(config("two")));
        assert_eq!(a.active_config(), None, "force_activate is a no-op on a dead switch");
    }

    #[test]
    fn exact_duplicates_replay_the_cached_reply() {
        let mut a = agent();
        let (first, _) = a.handle(&prepare(1, 7, "one"), 0, LEASE);
        a.handle(&req(1, 8, Request::Commit), 5, LEASE);
        // The duplicate prepare arrives late; replaying it must not
        // clobber the now-active config with a fresh staged copy.
        let staged_before = a.staged_epoch();
        let (dup, notes) = a.handle(&prepare(1, 7, "one"), 20, LEASE);
        assert_eq!(dup, first, "replay must re-answer the original reply");
        assert!(notes.contains(&HandleNote::Replayed));
        assert_eq!(a.staged_epoch(), staged_before, "replay must not re-execute");
        assert_eq!(a.active_epoch(), Some(1));

        // A replayed commit under a fresh seq acks idempotently.
        let (again, notes) = a.handle(&req(1, 9, Request::Commit), 25, LEASE);
        assert_eq!(again.body, Reply::Ack { active_epoch: Some(1) });
        assert!(!notes.contains(&HandleNote::Activated), "nothing re-activates");
        assert_eq!(a.lease_until(), Some(25 + LEASE), "idempotent commit renews the lease");
    }

    #[test]
    fn newer_epoch_fences_older_prepare_and_commit() {
        let mut a = agent();
        a.handle(&prepare(1, 1, "one"), 0, LEASE);
        // Controller moved on to epoch 3; the agent hears about it first
        // through a prepare.
        a.handle(&prepare(3, 2, "three"), 0, LEASE);
        // Delayed messages from epoch 1 (never committed anywhere) must
        // never activate it.
        let (reply, _) = a.handle(&req(1, 3, Request::Commit), 0, LEASE);
        assert_eq!(
            reply.body,
            Reply::Nack {
                error: AgentError::EpochFenced { fenced: 2, requested: 1 },
                active_epoch: None
            }
        );
        let (reply, _) = a.handle(&prepare(1, 4, "stale"), 0, LEASE);
        assert!(!reply.body.is_ack());
        assert_eq!(a.staged_epoch(), Some(3), "the fresh epoch stays staged");
    }

    #[test]
    fn lease_expiry_self_fences_the_active_config() {
        let mut a = agent();
        a.handle(&prepare(1, 1, "one"), 0, LEASE);
        a.handle(&req(1, 2, Request::Commit), 0, LEASE);
        // Probes renew the lease.
        let (reply, notes) = a.handle(&req(1, 3, Request::Probe), LEASE / 2, LEASE);
        assert_eq!(reply.body, Reply::Ack { active_epoch: Some(1) });
        assert!(notes.contains(&HandleNote::LeaseRenewed));
        // Without renewal, the lease lapses and the agent stops serving
        // rather than becoming a zombie.
        assert_eq!(a.expire_lease(LEASE / 2 + LEASE + 1), Some(1));
        assert_eq!(a.active_epoch(), None);
        assert!(a.fenced_epoch() >= 1, "the lapsed epoch is fenced");
        // A probe for the lapsed epoch reports not-serving.
        let (reply, _) = a.handle(&req(1, 4, Request::Probe), 3 * LEASE, LEASE);
        assert_eq!(
            reply.body,
            Reply::Nack { error: AgentError::NotServing { requested: 1 }, active_epoch: None }
        );
    }

    #[test]
    fn probe_for_wrong_epoch_is_not_serving() {
        let mut a = agent();
        a.handle(&prepare(1, 1, "one"), 0, LEASE);
        a.handle(&req(1, 2, Request::Commit), 0, LEASE);
        let (reply, _) = a.handle(&req(2, 3, Request::Probe), 1, LEASE);
        assert_eq!(
            reply.body,
            Reply::Nack { error: AgentError::NotServing { requested: 2 }, active_epoch: Some(1) }
        );
    }
}
