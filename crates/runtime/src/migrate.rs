//! Staged execution of A→B migration schedules with checkpoints and
//! rollback.
//!
//! [`DeploymentRuntime::migrate`] takes the scheduler's output
//! ([`MigrationSchedule`], planned in `hermes-core`) and executes it over
//! the same lossy channel, fault injector, and epoch-fenced agents the
//! all-at-once rollout uses — but switch by switch:
//!
//! 1. **Plan** — a [`MigrationScheduler`] orders the per-switch commits
//!    to minimize the peak transient `A_max`, proving every intermediate
//!    state stage-feasible and acyclic.
//! 2. **Gate** — before the first commit, every prefix of the chosen
//!    order is replayed through the mixed-epoch per-packet-consistency
//!    check ([`hermes_backend::check_transition`]). A violating window
//!    aborts the migration with plan A untouched.
//! 3. **Execute** — each step prepares and commits one switch with the
//!    runtime's bounded retry/backoff. A committed step is a
//!    **checkpoint**: the mixed state it reaches was verified safe, so
//!    the migration can hold there through arbitrarily many retries of
//!    the next step.
//! 4. **Roll back** — when a step fails for good (its switch crashed, or
//!    the retry budget drained), committed steps are undone in reverse
//!    order by re-installing their plan-A configs under a fresh epoch.
//!    If the undo itself fails, or total failures cross the abort
//!    threshold, the runtime falls back to the out-of-band full restore
//!    (clear the channel, force-activate plan A everywhere). Either way
//!    the terminal state is exactly plan B installed or exactly plan A
//!    serving — never a mix.
//!
//! Unlike [`DeploymentRuntime::rollout`], migration never heals: healing
//! changes the target mid-flight, and the contract here is bimodal (B or
//! A). A post-migration switch failure is the next rollout's problem.

// The crate-level clippy.toml bans unwrap/expect so the recovery path
// (journal.rs, recovery.rs) can never panic; this pre-durability module
// keeps its intentional `expect`s on internal invariants.
#![allow(clippy::disallowed_methods)]

use crate::event::Event;
use crate::journal::{CrashPoint, JournalRecord};
use crate::runtime::{ActiveDeployment, ControllerCrash, DeploymentRuntime};
use hermes_backend::{check_transition, validate_plan, EpochTransition};
use hermes_core::{
    verify, DeploymentPlan, MigrationOrder, MigrationProblem, MigrationSchedule,
    MigrationScheduler, SearchContext,
};
use hermes_net::SwitchId;
use hermes_tdg::Tdg;
use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

/// Tuning knobs for one migration run.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationConfig {
    /// Budget for the schedule search, milliseconds.
    pub plan_budget_ms: u64,
    /// Extra whole-step attempts after a failed prepare (each attempt
    /// already retries per-message with backoff). A failed *commit* is
    /// never re-attempted: the switch may have silently committed, so it
    /// is waited out and declared down instead.
    pub step_retries: u32,
    /// Once this many step/rollback failures accumulate, surgical
    /// recovery is abandoned for the out-of-band full restore of plan A.
    pub abort_threshold: u32,
    /// How the commit order is chosen (see [`MigrationOrder`]).
    pub order: MigrationOrder,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            plan_budget_ms: 2_000,
            step_retries: 1,
            abort_threshold: 3,
            order: MigrationOrder::Auto,
        }
    }
}

/// Terminal state of one [`DeploymentRuntime::migrate`].
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationOutcome {
    /// Every step committed; plan B is active and validated.
    Migrated {
        /// The epoch now serving.
        epoch: u64,
        /// Steps executed (0 for a no-op migration to the same plan).
        steps: usize,
        /// Virtual time from schedule start to activation.
        reconfig_us: u64,
        /// Control-plane messages the migration sent.
        messages: u64,
    },
    /// Refused before any commit — scheduling, validation, or the
    /// mixed-epoch gate said no. Plan A was never disturbed.
    Aborted {
        /// The refused epoch.
        epoch: u64,
        /// Why.
        reason: String,
    },
    /// A mid-migration failure: every committed step was rolled back and
    /// plan A serves again.
    RolledBack {
        /// The abandoned epoch.
        epoch: u64,
        /// Why.
        reason: String,
        /// `true` when the out-of-band full restore ran instead of
        /// reverse-order stepwise undo.
        forced: bool,
    },
    /// The controller itself crashed mid-migration; only the journal
    /// survives, and [`DeploymentRuntime::recover`] must run before the
    /// runtime accepts further work.
    ControllerCrashed {
        /// The epoch in flight when the crash struck.
        epoch: u64,
        /// Which journal-write boundary the crash struck at.
        point: CrashPoint,
    },
}

impl MigrationOutcome {
    /// `true` iff plan B ended up installed.
    pub fn is_migrated(&self) -> bool {
        matches!(self, MigrationOutcome::Migrated { .. })
    }
}

impl fmt::Display for MigrationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationOutcome::Migrated { epoch, steps, reconfig_us, messages } => write!(
                f,
                "epoch {epoch} migrated in {steps} steps ({reconfig_us} us, {messages} messages)"
            ),
            MigrationOutcome::Aborted { epoch, reason } => {
                write!(f, "migration to epoch {epoch} aborted: {reason}")
            }
            MigrationOutcome::RolledBack { epoch, reason, forced: false } => {
                write!(f, "epoch {epoch} rolled back step by step: {reason}")
            }
            MigrationOutcome::RolledBack { epoch, reason, forced: true } => {
                write!(f, "epoch {epoch} rolled back by full restore: {reason}")
            }
            MigrationOutcome::ControllerCrashed { epoch, point } => {
                write!(f, "controller crashed at epoch {epoch} ({point} boundary)")
            }
        }
    }
}

impl DeploymentRuntime {
    /// Plans and executes a staged migration from the active plan to
    /// `target`. See the module docs for the full protocol; the terminal
    /// state is exactly one of: `target` active and validated, the
    /// migration refused with plan A untouched, or plan A restored.
    pub fn migrate(
        &mut self,
        tdg: &Tdg,
        target: DeploymentPlan,
        cfg: &MigrationConfig,
    ) -> MigrationOutcome {
        if let Some(crash) = self.crashed() {
            return MigrationOutcome::ControllerCrashed { epoch: crash.epoch, point: crash.point };
        }
        match self.try_migrate(tdg, target, cfg) {
            Ok(outcome) => outcome,
            Err(crash) => {
                MigrationOutcome::ControllerCrashed { epoch: crash.epoch, point: crash.point }
            }
        }
    }

    fn try_migrate(
        &mut self,
        tdg: &Tdg,
        target: DeploymentPlan,
        cfg: &MigrationConfig,
    ) -> Result<MigrationOutcome, ControllerCrash> {
        match self.check_preconditions(tdg, &target) {
            Ok(Some(prior)) => prior,
            Ok(None) => {
                // Same plan: nothing to do, nothing to disturb.
                return Ok(MigrationOutcome::Migrated {
                    epoch: self.active_epoch().unwrap_or(0),
                    steps: 0,
                    reconfig_us: 0,
                    messages: 0,
                });
            }
            Err(outcome) => return Ok(outcome),
        };
        let schedule = {
            let active = self.active.as_ref().expect("preconditions checked");
            let problem = MigrationProblem { tdg, net: &self.net, from: &active.plan, to: &target };
            let ctx = SearchContext::with_time_limit(Duration::from_millis(cfg.plan_budget_ms));
            MigrationScheduler::with_order(cfg.order.clone()).plan(&problem, &ctx)
        };
        match schedule {
            Ok(schedule) => self.try_migrate_with_schedule(tdg, target, &schedule, cfg),
            Err(e) => {
                let epoch = self.advance_epoch()?;
                Ok(self.migration_abort(epoch, format!("no safe schedule: {e}")))
            }
        }
    }

    /// Executes a precomputed schedule (e.g. one the operator reviewed or
    /// an explicit `--order`). The schedule must cover exactly the
    /// switches `target` occupies; every prefix of its commit order is
    /// re-verified through the mixed-epoch gate before the first commit.
    pub fn migrate_with_schedule(
        &mut self,
        tdg: &Tdg,
        target: DeploymentPlan,
        schedule: &MigrationSchedule,
        cfg: &MigrationConfig,
    ) -> MigrationOutcome {
        if let Some(crash) = self.crashed() {
            return MigrationOutcome::ControllerCrashed { epoch: crash.epoch, point: crash.point };
        }
        match self.try_migrate_with_schedule(tdg, target, schedule, cfg) {
            Ok(outcome) => outcome,
            Err(crash) => {
                MigrationOutcome::ControllerCrashed { epoch: crash.epoch, point: crash.point }
            }
        }
    }

    fn try_migrate_with_schedule(
        &mut self,
        tdg: &Tdg,
        target: DeploymentPlan,
        schedule: &MigrationSchedule,
        cfg: &MigrationConfig,
    ) -> Result<MigrationOutcome, ControllerCrash> {
        let prior = match self.check_preconditions(tdg, &target) {
            Ok(Some(prior)) => prior,
            Ok(None) => {
                return Ok(MigrationOutcome::Migrated {
                    epoch: self.active_epoch().unwrap_or(0),
                    steps: 0,
                    reconfig_us: 0,
                    messages: 0,
                });
            }
            Err(outcome) => return Ok(outcome),
        };
        let epoch = self.advance_epoch()?;
        let start_us = self.clock_us;
        let messages_before = self.channel.messages_sent();
        self.log.push(Event::MigrationStarted {
            epoch,
            steps: schedule.steps.len(),
            peak_transient_amax: schedule.peak_transient_amax,
            at_us: self.clock_us,
        });

        // Pre-flight validation: ε-constraints + packet equivalence on
        // the network as it is now.
        let (report, artifacts) =
            validate_plan(tdg, &self.net, &target, &self.eps, &self.packet_seeds);
        if !report.is_ok() {
            self.log.push(Event::ValidationFailed {
                epoch,
                failures: report.failures.iter().map(ToString::to_string).collect(),
                at_us: self.clock_us,
            });
            return Ok(self.migration_abort(epoch, "target plan failed validation".to_string()));
        }
        let order = schedule.commit_order();
        let covered: BTreeSet<SwitchId> = order.iter().copied().collect();
        let occupied: BTreeSet<SwitchId> = artifacts.switches.keys().copied().collect();
        if covered != occupied || order.len() != covered.len() {
            return Ok(self.migration_abort(
                epoch,
                "schedule does not cover the target plan's switches exactly once".to_string(),
            ));
        }

        // Prefix gate: every window of the chosen commit order must keep
        // each packet on a single observable epoch end to end.
        let transition = EpochTransition {
            tdg,
            old_plan: &prior.plan,
            old_artifacts: &prior.artifacts,
            new_plan: &target,
            new_artifacts: &artifacts,
        };
        match check_transition(&transition, &order, &self.packet_seeds) {
            Ok(windows) => self.log.push(Event::MixedEpochChecked {
                epoch,
                windows,
                packets: self.packet_seeds.len(),
                at_us: self.clock_us,
            }),
            Err(v) => {
                self.log.push(Event::MixedEpochViolated {
                    epoch,
                    detail: v.to_string(),
                    at_us: self.clock_us,
                });
                return Ok(self.migration_abort(
                    epoch,
                    format!("mixed-epoch window would break per-packet consistency: {v}"),
                ));
            }
        }

        // The migration's intent becomes durable before the first step
        // touches an agent: a restarted controller can tell exactly which
        // prefix of `order` had committed from the step checkpoints that
        // follow this record.
        self.journal_note(JournalRecord::MigrationBegun {
            epoch,
            tdg_fp: hermes_core::tdg_fingerprint(tdg),
            plan_fp: target.fingerprint(),
            plan: target.clone(),
            artifacts: artifacts.clone(),
            order: order.clone(),
        })?;

        // Execute the schedule step by step; each committed step is a
        // checkpoint (its mixed state was verified safe above).
        let mut committed: Vec<SwitchId> = Vec::new();
        let mut failures = 0u32;
        let mut lease_refreshed_us = self.clock_us;
        for (idx, step) in schedule.steps.iter().enumerate() {
            let switch = step.switch;
            let config = artifacts.switches[&switch].clone();
            // Keep earlier checkpoints' leases alive through a long
            // migration window.
            if self.clock_us.saturating_sub(lease_refreshed_us) > self.policy.lease_us / 4 {
                let keep = committed.clone();
                self.renew_leases(&keep, epoch);
                lease_refreshed_us = self.clock_us;
            }
            let mut step_ok = false;
            let mut last_reason = String::new();
            'attempts: for _ in 0..=cfg.step_retries {
                match self.prepare_with_retry(switch, &config, epoch) {
                    Ok(()) => {
                        if self.commit_with_retry(switch, epoch) {
                            step_ok = true;
                        } else {
                            failures += 1;
                            last_reason = format!("switch {switch} did not acknowledge the commit");
                            self.log.push(Event::MigrationStepFailed {
                                epoch,
                                step: idx,
                                switch,
                                reason: last_reason.clone(),
                                at_us: self.clock_us,
                            });
                            // The commit may have landed with its ack
                            // lost. Wait out the lease so an alive-but-
                            // unreachable agent provably self-fences
                            // before anything rolls back.
                            let keep = committed.clone();
                            self.declare_unreachable(switch, epoch, &keep);
                            lease_refreshed_us = self.clock_us;
                        }
                        // Commit outcomes are final for the step either way.
                        break 'attempts;
                    }
                    Err(reason) => {
                        failures += 1;
                        last_reason.clone_from(&reason);
                        self.log.push(Event::MigrationStepFailed {
                            epoch,
                            step: idx,
                            switch,
                            reason,
                            at_us: self.clock_us,
                        });
                        if self.agents[&switch].is_crashed() || failures > cfg.abort_threshold {
                            break 'attempts;
                        }
                    }
                }
            }
            if step_ok {
                self.journal_note(JournalRecord::MigrationStepCommitted {
                    epoch,
                    step: idx,
                    switch,
                })?;
                self.journal_note(JournalRecord::LeaseGranted {
                    epoch,
                    switch,
                    until_us: self.clock_us + self.policy.lease_us,
                })?;
                committed.push(switch);
                self.log.push(Event::MigrationStepCommitted {
                    epoch,
                    step: idx,
                    switch,
                    transient_amax: step.transient_amax,
                    at_us: self.clock_us,
                });
            } else {
                // Best-effort un-stage of a prepared-but-uncommitted
                // config; fencing covers a lost abort.
                self.abort_prepared(&[switch], epoch);
                return self.migration_roll_back(
                    prior,
                    epoch,
                    format!("step {idx} (switch {switch}) failed: {last_reason}"),
                    &committed,
                    failures,
                    cfg,
                );
            }
        }

        // Commit-window supervision ends: a lease that lapsed without
        // renewal means that agent stopped serving mid-migration.
        let now = self.clock_us;
        let mut lapsed: Option<SwitchId> = None;
        for &switch in &committed {
            let expired =
                self.agents.get_mut(&switch).expect("agents cover all switches").expire_lease(now);
            if let Some(e) = expired {
                self.log.push(Event::LeaseExpired { switch, epoch: e, at_us: now });
                self.fail_switch(switch);
                if lapsed.is_none() {
                    lapsed = Some(switch);
                }
            } else {
                self.agents.get_mut(&switch).expect("agents cover all switches").release_lease();
            }
        }
        if let Some(switch) = lapsed {
            failures += 1;
            return self.migration_roll_back(
                prior,
                epoch,
                format!("switch {switch}'s lease lapsed during the migration window"),
                &committed,
                failures,
                cfg,
            );
        }
        // Faults during the steps (lost links, crashed bystanders) may
        // have degraded the network; the target must still hold on what
        // is actually left before it becomes the active deployment.
        let violations = verify(tdg, &self.net, &target, &self.eps);
        if let Some(first) = violations.first() {
            failures += 1;
            return self.migration_roll_back(
                prior,
                epoch,
                format!("target plan no longer valid after migration: {first}"),
                &committed,
                failures,
                cfg,
            );
        }

        let steps = schedule.steps.len();
        self.journal_note(JournalRecord::MigrationCompleted { epoch, steps })?;
        self.activate(epoch, tdg.clone(), target, artifacts)?;
        let reconfig_us = self.clock_us - start_us;
        let messages = self.channel.messages_sent() - messages_before;
        self.log.push(Event::MigrationCompleted {
            epoch,
            steps,
            reconfig_us,
            messages,
            at_us: self.clock_us,
        });
        Ok(MigrationOutcome::Migrated { epoch, steps, reconfig_us, messages })
    }

    /// Checks the migration preconditions. `Ok(Some(prior))` means go
    /// (with the deployment to roll back to), `Ok(None)` means the target
    /// is already serving, `Err` is the abort outcome to return.
    fn check_preconditions(
        &mut self,
        tdg: &Tdg,
        target: &DeploymentPlan,
    ) -> Result<Option<ActiveDeployment>, MigrationOutcome> {
        let reason = match &self.active {
            Some(active) if active.tdg == *tdg => {
                if active.plan == *target {
                    return Ok(None);
                }
                return Ok(Some(active.clone()));
            }
            Some(_) => "the active deployment runs a different program set; use rollout",
            None => "no active deployment to migrate from; use rollout",
        };
        let epoch = match self.advance_epoch() {
            Ok(epoch) => epoch,
            Err(crash) => {
                return Err(MigrationOutcome::ControllerCrashed {
                    epoch: crash.epoch,
                    point: crash.point,
                })
            }
        };
        Err(self.migration_abort(epoch, reason.to_string()))
    }

    /// Logs and returns a pre-commit refusal (plan A untouched).
    fn migration_abort(&mut self, epoch: u64, reason: String) -> MigrationOutcome {
        self.log.push(Event::MigrationAborted {
            epoch,
            reason: reason.clone(),
            at_us: self.clock_us,
        });
        MigrationOutcome::Aborted { epoch, reason }
    }

    /// Rolls the committed prefix back to plan A: reverse-order stepwise
    /// re-install of plan-A configs under a fresh epoch, escalating to
    /// the out-of-band full restore when the undo itself fails or the
    /// abort threshold is crossed.
    fn migration_roll_back(
        &mut self,
        prior: ActiveDeployment,
        epoch: u64,
        reason: String,
        committed: &[SwitchId],
        mut failures: u32,
        cfg: &MigrationConfig,
    ) -> Result<MigrationOutcome, ControllerCrash> {
        let undone = committed.len();
        // The abandonment decision is durable before any undo touches an
        // agent: a controller that crashes mid-undo is known (on replay)
        // to have been rolling back, not still migrating forward.
        self.journal_note(JournalRecord::MigrationRolledBack {
            epoch,
            forced: failures > cfg.abort_threshold,
        })?;
        if failures > cfg.abort_threshold {
            return self.forced_restore(prior, epoch, reason, undone);
        }
        // Undo checkpoints newest-first under a fresh epoch — the
        // abandoned migration epoch is fenced wherever the undo lands, so
        // a straggling migration commit can never re-activate it.
        let undo_epoch = self.advance_epoch()?;
        let mut restored: Vec<SwitchId> = Vec::new();
        for &switch in committed.iter().rev() {
            let ok = match prior.artifacts.switches.get(&switch) {
                Some(config) => {
                    let config = config.clone();
                    match self.prepare_with_retry(switch, &config, undo_epoch) {
                        Ok(()) => self.commit_with_retry(switch, undo_epoch),
                        Err(_) => false,
                    }
                }
                None => {
                    // The switch exists only in plan B; nothing in plan A
                    // routes through it, so decommission it out of band.
                    self.agents
                        .get_mut(&switch)
                        .expect("agents cover all switches")
                        .force_activate(prior.epoch, None);
                    true
                }
            };
            if !ok {
                failures += 1;
                let _ = failures;
                return self.forced_restore(prior, epoch, reason, undone);
            }
            self.log.push(Event::MigrationStepRolledBack {
                epoch: undo_epoch,
                switch,
                at_us: self.clock_us,
            });
            restored.push(switch);
        }
        // The undo transaction is over; release its commit leases. A
        // lease that lapsed mid-undo means that agent stopped serving —
        // surgical undo failed, restore everything.
        for &switch in &restored {
            let expired = self
                .agents
                .get_mut(&switch)
                .expect("agents cover all switches")
                .expire_lease(self.clock_us);
            if expired.is_some() {
                return self.forced_restore(prior, epoch, reason, undone);
            }
            self.agents.get_mut(&switch).expect("agents cover all switches").release_lease();
        }
        self.log.push(Event::MigrationRolledBack {
            epoch,
            reason: reason.clone(),
            forced: false,
            undone,
            at_us: self.clock_us,
        });
        Ok(MigrationOutcome::RolledBack { epoch, reason, forced: false })
    }

    /// The escalation path: out-of-band full restore of plan A.
    fn forced_restore(
        &mut self,
        prior: ActiveDeployment,
        epoch: u64,
        reason: String,
        undone: usize,
    ) -> Result<MigrationOutcome, ControllerCrash> {
        self.force_restore(Some(prior))?;
        self.log.push(Event::MigrationRolledBack {
            epoch,
            reason: reason.clone(),
            forced: true,
            undone,
            at_us: self.clock_us,
        });
        Ok(MigrationOutcome::RolledBack { epoch, reason, forced: true })
    }
}
