//! The lossy, seeded control channel between runtime and agents.
//!
//! PR 1's runtime invoked agents through infallible direct calls; real
//! controller-to-switch channels drop, duplicate, reorder, and delay.
//! [`ControlChannel`] models exactly that: every request and reply
//! becomes a [`Message`] queued on the virtual clock, and a seeded
//! [`ChannelProfile`] decides each message's fate with the same
//! reproducibility contract as the fault injector — one seed, one
//! byte-identical schedule.
//!
//! The channel is *oblivious*: it never looks inside a message. All
//! protocol-level defense (dedup, idempotence, epoch fencing, leases)
//! lives in [`crate::agent::SwitchAgent`] and the runtime's retry loop.

// The crate-level clippy.toml bans unwrap/expect so the recovery path
// (journal.rs, recovery.rs) can never panic; this pre-durability module
// keeps its intentional `expect`s on internal invariants.
#![allow(clippy::disallowed_methods)]

use crate::agent::{ReplyEnvelope, RequestEnvelope};
use crate::fault::{validate_probabilities, ProfileError};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-message misbehavior probabilities of the control channel.
///
/// Each transmitted copy is judged independently, in a fixed draw order
/// (drop, duplicate, then per-copy delay and reorder), so adding one
/// probability never silently reshuffles an unrelated seed's schedule
/// within a single send.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelProfile {
    /// The message is lost entirely (all copies).
    pub drop_prob: f64,
    /// The message is transmitted twice.
    pub duplicate_prob: f64,
    /// A copy is skewed off the nominal latency so it can overtake or
    /// fall behind neighbors sent around the same time.
    pub reorder_prob: f64,
    /// A copy is held for an extra `1..=delay_span_us` microseconds.
    pub delay_prob: f64,
    /// Maximum extra holding time for a delayed copy.
    pub delay_span_us: u64,
}

impl ChannelProfile {
    /// A perfect channel: every message arrives exactly once, in order,
    /// after the nominal latency. The runtime behaves like PR 1's
    /// direct-call path.
    pub fn none() -> Self {
        ChannelProfile {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay_span_us: 0,
        }
    }

    /// The default adversarial mix used by soak tests and `--channel
    /// lossy`: every misbehavior enabled at rates the retry budget can
    /// still beat most of the time.
    pub fn lossy() -> Self {
        ChannelProfile {
            drop_prob: 0.10,
            duplicate_prob: 0.10,
            reorder_prob: 0.15,
            delay_prob: 0.15,
            delay_span_us: 400,
        }
    }

    /// Validates that every probability field is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] naming the first NaN, negative, or
    /// `> 1.0` field.
    pub fn validate(&self) -> Result<(), ProfileError> {
        validate_probabilities(&[
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("reorder_prob", self.reorder_prob),
            ("delay_prob", self.delay_prob),
        ])
    }

    /// `true` iff this profile can never misbehave.
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
            && self.delay_prob == 0.0
    }
}

impl Default for ChannelProfile {
    fn default() -> Self {
        ChannelProfile::none()
    }
}

/// One in-flight control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Controller-to-agent.
    Request(RequestEnvelope),
    /// Agent-to-controller.
    Reply(ReplyEnvelope),
}

impl Message {
    /// The switch this message targets or originates from.
    pub fn switch(&self) -> hermes_net::SwitchId {
        match self {
            Message::Request(req) => req.switch,
            Message::Reply(rep) => rep.switch,
        }
    }

    /// The `(epoch, seq)` stamp of the wrapped envelope.
    pub fn stamp(&self) -> (u64, u64) {
        match self {
            Message::Request(req) => (req.epoch, req.seq),
            Message::Reply(rep) => (rep.epoch, rep.seq),
        }
    }

    /// Short tag for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Request(req) => req.body.kind(),
            Message::Reply(_) => "reply",
        }
    }
}

/// What the channel decided to do with one send, for the event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendReceipt {
    /// The message was lost; `deliveries` is empty.
    pub dropped: bool,
    /// Two copies were transmitted.
    pub duplicated: bool,
    /// At least one copy was held beyond the nominal latency window.
    pub delayed: bool,
    /// Virtual delivery times of each surviving copy.
    pub deliveries: Vec<u64>,
}

/// A seeded lossy queue between the runtime and its agents.
///
/// Messages are delivered strictly in `(deliver_at, uid)` order, so the
/// only sources of reordering are the profile's skew draws — the queue
/// itself is deterministic.
#[derive(Debug, Clone)]
pub struct ControlChannel {
    rng: StdRng,
    profile: ChannelProfile,
    latency_us: u64,
    queue: BTreeMap<(u64, u64), Message>,
    uid: u64,
    messages_sent: u64,
}

impl ControlChannel {
    /// Salt mixed into the channel's seed so its draw stream never
    /// aliases the fault injector's stream from the same experiment seed.
    const SEED_SALT: u64 = 0x6368_616e_6e65_6c00; // "channel\0"

    /// A channel seeded from the experiment seed, with a fixed one-way
    /// `latency_us` for well-behaved messages.
    ///
    /// # Panics
    ///
    /// Panics if the profile carries a non-probability field; use
    /// [`ControlChannel::try_new`] to handle that as a value.
    pub fn new(seed: u64, profile: ChannelProfile, latency_us: u64) -> Self {
        ControlChannel::try_new(seed, profile, latency_us).expect("invalid channel profile")
    }

    /// Fallible constructor: validates `profile` before accepting it.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] for NaN, negative, or `> 1.0`
    /// probabilities.
    pub fn try_new(
        seed: u64,
        profile: ChannelProfile,
        latency_us: u64,
    ) -> Result<Self, ProfileError> {
        profile.validate()?;
        Ok(ControlChannel {
            rng: StdRng::seed_from_u64(seed ^ Self::SEED_SALT),
            profile,
            latency_us,
            queue: BTreeMap::new(),
            uid: 0,
            messages_sent: 0,
        })
    }

    /// The profile this channel draws from.
    pub fn profile(&self) -> &ChannelProfile {
        &self.profile
    }

    /// Nominal one-way latency for a well-behaved message.
    pub fn latency_us(&self) -> u64 {
        self.latency_us
    }

    /// Transmits `msg` at virtual time `now_us`. The channel may drop it,
    /// transmit two copies, and skew each copy's delivery time; the
    /// receipt records what happened for the event log.
    pub fn send(&mut self, now_us: u64, msg: Message) -> SendReceipt {
        self.messages_sent += 1;
        let p = self.profile;
        // Fixed draw order: drop, duplicate, then per-copy (delay?,
        // amount, reorder?, skew). A none() profile draws the same number
        // of bools per send, so enabling one probability never shifts
        // which draw another consumes.
        if self.rng.random_bool(p.drop_prob) {
            return SendReceipt {
                dropped: true,
                duplicated: false,
                delayed: false,
                deliveries: vec![],
            };
        }
        let copies = if self.rng.random_bool(p.duplicate_prob) { 2 } else { 1 };
        let mut receipt = SendReceipt {
            dropped: false,
            duplicated: copies == 2,
            delayed: false,
            deliveries: Vec::with_capacity(copies),
        };
        for _ in 0..copies {
            let mut deliver_at = now_us + self.latency_us;
            if self.rng.random_bool(p.delay_prob) {
                deliver_at += self.rng.random_range(1..=p.delay_span_us.max(1));
                receipt.delayed = true;
            }
            if self.rng.random_bool(p.reorder_prob) {
                // Skew within ±latency around the already-chosen time:
                // enough for a copy to overtake (or be overtaken by)
                // anything sent one latency window around it.
                let span = 2 * self.latency_us.max(1);
                let skew = self.rng.random_range(0..=span);
                deliver_at = (deliver_at + skew).saturating_sub(self.latency_us.max(1));
            }
            // Nothing travels faster than light: a skewed copy still
            // arrives after it was sent.
            deliver_at = deliver_at.max(now_us + 1);
            receipt.deliveries.push(deliver_at);
            self.queue.insert((deliver_at, self.uid), msg.clone());
            self.uid += 1;
        }
        receipt
    }

    /// Pops the earliest queued message with `deliver_at <= until_us`,
    /// or `None` when nothing is due yet.
    pub fn pop_due(&mut self, until_us: u64) -> Option<(u64, Message)> {
        let (&(at, uid), _) = self.queue.iter().next()?;
        if at > until_us {
            return None;
        }
        let msg = self.queue.remove(&(at, uid)).expect("first key exists");
        Some((at, msg))
    }

    /// Delivery time of the earliest in-flight message, if any.
    pub fn next_due(&self) -> Option<u64> {
        self.queue.keys().next().map(|&(at, _)| at)
    }

    /// Number of in-flight messages.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Drops every in-flight message (used when a transaction round ends
    /// and stragglers are no longer interesting to the runtime — agents
    /// have already fenced the epochs they belonged to).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Total messages handed to the channel since construction (both
    /// directions, before drop/duplicate decisions).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Reply, ReplyEnvelope};
    use hermes_net::topology;

    fn reply_msg(seq: u64) -> Message {
        let switch = topology::linear(1, 10.0).switch_ids().next().unwrap();
        Message::Reply(ReplyEnvelope {
            epoch: 1,
            seq,
            switch,
            body: Reply::Ack { active_epoch: None },
        })
    }

    #[test]
    fn perfect_channel_delivers_in_order_at_fixed_latency() {
        let mut ch = ControlChannel::new(7, ChannelProfile::none(), 25);
        for seq in 0..10 {
            let receipt = ch.send(seq * 10, reply_msg(seq));
            assert_eq!(receipt.deliveries, vec![seq * 10 + 25]);
            assert!(!receipt.dropped && !receipt.duplicated && !receipt.delayed);
        }
        let mut seqs = Vec::new();
        while let Some((_, msg)) = ch.pop_due(u64::MAX) {
            seqs.push(msg.stamp().1);
        }
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        assert_eq!(ch.messages_sent(), 10);
    }

    #[test]
    fn same_seed_same_fate_schedule() {
        let run = |seed: u64| {
            let mut ch = ControlChannel::new(seed, ChannelProfile::lossy(), 25);
            (0..64).map(|i| ch.send(i * 7, reply_msg(i))).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should diverge somewhere");
    }

    #[test]
    fn lossy_profile_exercises_every_fate() {
        let mut ch = ControlChannel::new(11, ChannelProfile::lossy(), 25);
        let receipts: Vec<_> = (0..200).map(|i| ch.send(i * 3, reply_msg(i))).collect();
        assert!(receipts.iter().any(|r| r.dropped), "no drops");
        assert!(receipts.iter().any(|r| r.duplicated), "no duplicates");
        assert!(receipts.iter().any(|r| r.delayed), "no delays");
        // Reordering: some later-sent message is queued before an
        // earlier-sent one.
        let mut send_order = Vec::new();
        while let Some((_, msg)) = ch.pop_due(u64::MAX) {
            send_order.push(msg.stamp().1);
        }
        assert!(send_order.windows(2).any(|w| w[0] > w[1]), "no reordering observed");
    }

    #[test]
    fn pop_due_respects_the_virtual_clock() {
        let mut ch = ControlChannel::new(0, ChannelProfile::none(), 50);
        ch.send(0, reply_msg(1));
        assert!(ch.pop_due(49).is_none(), "not due before the latency elapses");
        assert_eq!(ch.next_due(), Some(50));
        let (at, _) = ch.pop_due(50).expect("due at exactly t+latency");
        assert_eq!(at, 50);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn nothing_arrives_before_it_was_sent() {
        let mut ch = ControlChannel::new(5, ChannelProfile::lossy(), 10);
        for i in 0..300 {
            let now = i * 2;
            for at in ch.send(now, reply_msg(i)).deliveries {
                assert!(at > now, "copy delivered at {at} <= send time {now}");
            }
        }
    }

    #[test]
    fn invalid_channel_profiles_are_rejected() {
        let mut p = ChannelProfile::none();
        p.reorder_prob = f64::NAN;
        let e = ControlChannel::try_new(0, p, 25).expect_err("NaN must be rejected");
        assert_eq!(e.field, "reorder_prob");
        assert!(ChannelProfile::lossy().validate().is_ok());
    }
}
