//! The runtime's structured event log.
//!
//! Every observable decision of the runtime — attempts, faults, retries,
//! commits, rollbacks, healing — lands here as a typed, serializable
//! event stamped with the virtual-clock time. Serialization is fully
//! deterministic (ordered maps, fixed field order), so two runs with the
//! same seed produce byte-identical JSON logs.

use crate::fault::Fault;
use hermes_net::SwitchId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One runtime event. `at_us` is always the virtual-clock timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A transactional rollout of a new plan epoch began.
    RolloutStarted {
        /// The plan epoch being installed.
        epoch: u64,
        /// Switches the plan occupies.
        switches: Vec<SwitchId>,
        /// Virtual time.
        at_us: u64,
    },
    /// Pre-install validation refused the candidate plan.
    ValidationFailed {
        /// The refused epoch.
        epoch: u64,
        /// Rendered validation failures.
        failures: Vec<String>,
        /// Virtual time.
        at_us: u64,
    },
    /// One prepare attempt was issued to a switch agent.
    PrepareAttempt {
        /// The epoch being staged.
        epoch: u64,
        /// Target switch.
        switch: SwitchId,
        /// 1-based attempt counter.
        attempt: u32,
        /// Virtual time.
        at_us: u64,
    },
    /// The fault injector struck a prepare attempt.
    FaultInjected {
        /// The epoch being staged.
        epoch: u64,
        /// Target switch.
        switch: SwitchId,
        /// What happened.
        fault: Fault,
        /// Virtual time.
        at_us: u64,
    },
    /// A switch successfully staged the config.
    Prepared {
        /// The staged epoch.
        epoch: u64,
        /// The switch that acknowledged.
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// A failed attempt was rescheduled with exponential backoff.
    RetryScheduled {
        /// The epoch being staged.
        epoch: u64,
        /// Target switch.
        switch: SwitchId,
        /// The attempt that will run after the delay (1-based).
        next_attempt: u32,
        /// Backoff delay including jitter.
        delay_us: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// Every switch staged; the transaction committed atomically.
    Committed {
        /// The committed epoch.
        epoch: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// A committed plan went live with these objective values.
    Activated {
        /// The active epoch.
        epoch: u64,
        /// `A_max` of the active plan, bytes.
        a_max_bytes: u64,
        /// `t_e2e` of the active plan, microseconds.
        latency_us: f64,
        /// `Q_occ` of the active plan.
        occupied: usize,
        /// Virtual time.
        at_us: u64,
    },
    /// The transaction aborted; the previous plan keeps serving.
    RolledBack {
        /// The abandoned epoch.
        epoch: u64,
        /// Why.
        reason: String,
        /// Virtual time.
        at_us: u64,
    },
    /// A switch went down (crash fault).
    SwitchDown {
        /// The failed switch.
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// Healing after a post-commit switch failure began.
    HealingStarted {
        /// The epoch the healed plan will get.
        epoch: u64,
        /// Currently-down switches being healed around.
        down: Vec<SwitchId>,
        /// Virtual time.
        at_us: u64,
    },
    /// The incremental deployer produced a healed layout.
    HealingPlanned {
        /// The healed epoch.
        epoch: u64,
        /// MATs that kept their switch.
        reused: usize,
        /// MATs re-homed into residual capacity.
        placed: usize,
        /// `true` when pinning failed and a full redeploy was used.
        full_redeploy: bool,
        /// Virtual time.
        at_us: u64,
    },
    /// No feasible healed layout exists (or it failed validation).
    HealingFailed {
        /// The epoch that could not be healed.
        epoch: u64,
        /// Why.
        reason: String,
        /// Virtual time.
        at_us: u64,
    },
    /// Healing finished and the healed plan is serving.
    RecoveryCompleted {
        /// The healed epoch now active.
        epoch: u64,
        /// Virtual time from failure detection to healed activation.
        recovery_us: u64,
        /// `A_max` before the switch failure.
        a_max_before: u64,
        /// `A_max` of the healed plan.
        a_max_after: u64,
        /// Virtual time.
        at_us: u64,
    },
}

impl Event {
    /// The virtual-clock timestamp of the event.
    pub fn at_us(&self) -> u64 {
        match self {
            Event::RolloutStarted { at_us, .. }
            | Event::ValidationFailed { at_us, .. }
            | Event::PrepareAttempt { at_us, .. }
            | Event::FaultInjected { at_us, .. }
            | Event::Prepared { at_us, .. }
            | Event::RetryScheduled { at_us, .. }
            | Event::Committed { at_us, .. }
            | Event::Activated { at_us, .. }
            | Event::RolledBack { at_us, .. }
            | Event::SwitchDown { at_us, .. }
            | Event::HealingStarted { at_us, .. }
            | Event::HealingPlanned { at_us, .. }
            | Event::HealingFailed { at_us, .. }
            | Event::RecoveryCompleted { at_us, .. } => *at_us,
        }
    }
}

/// Append-only log of runtime events.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EventLog {
    /// Events in emission order (non-decreasing `at_us`).
    pub events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Deterministic JSON rendering of the whole log: same seed, same
    /// bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("event logs always serialize")
    }

    /// Count of events matching a predicate (used by experiments to tally
    /// retries, rollbacks, faults, ...).
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventLog({} events)", self.events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_round_trips_through_json() {
        let mut log = EventLog::new();
        log.push(Event::RolloutStarted { epoch: 1, switches: vec![], at_us: 0 });
        log.push(Event::Committed { epoch: 1, at_us: 120 });
        log.push(Event::RolledBack { epoch: 2, reason: "validation".into(), at_us: 300 });
        let back: EventLog = serde_json::from_str(&log.to_json()).unwrap();
        assert_eq!(log, back);
        assert_eq!(back.events[1].at_us(), 120);
        assert_eq!(log.count(|e| matches!(e, Event::Committed { .. })), 1);
    }
}
