//! The runtime's structured event log.
//!
//! Every observable decision of the runtime — attempts, faults, retries,
//! commits, rollbacks, healing — lands here as a typed, serializable
//! event stamped with the virtual-clock time. Serialization is fully
//! deterministic (ordered maps, fixed field order), so two runs with the
//! same seed produce byte-identical JSON logs.

// The crate-level clippy.toml bans unwrap/expect so the recovery path
// (journal.rs, recovery.rs) can never panic; this pre-durability module
// keeps its intentional `expect`s on internal invariants.
#![allow(clippy::disallowed_methods)]

use crate::fault::Fault;
use crate::journal::CrashPoint;
use hermes_net::SwitchId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of control-plane message an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// Controller-to-agent prepare.
    Prepare,
    /// Controller-to-agent commit.
    Commit,
    /// Controller-to-agent abort.
    Abort,
    /// Controller-to-agent lease probe.
    Probe,
    /// Agent-to-controller reply.
    Reply,
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MessageKind::Prepare => "prepare",
            MessageKind::Commit => "commit",
            MessageKind::Abort => "abort",
            MessageKind::Probe => "probe",
            MessageKind::Reply => "reply",
        })
    }
}

/// One runtime event. `at_us` is always the virtual-clock timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A transactional rollout of a new plan epoch began.
    RolloutStarted {
        /// The plan epoch being installed.
        epoch: u64,
        /// Switches the plan occupies.
        switches: Vec<SwitchId>,
        /// Virtual time.
        at_us: u64,
    },
    /// Pre-install validation refused the candidate plan.
    ValidationFailed {
        /// The refused epoch.
        epoch: u64,
        /// Rendered validation failures.
        failures: Vec<String>,
        /// Virtual time.
        at_us: u64,
    },
    /// One prepare attempt was issued to a switch agent.
    PrepareAttempt {
        /// The epoch being staged.
        epoch: u64,
        /// Target switch.
        switch: SwitchId,
        /// 1-based attempt counter.
        attempt: u32,
        /// Virtual time.
        at_us: u64,
    },
    /// The fault injector struck a prepare attempt.
    FaultInjected {
        /// The epoch being staged.
        epoch: u64,
        /// Target switch.
        switch: SwitchId,
        /// What happened.
        fault: Fault,
        /// Virtual time.
        at_us: u64,
    },
    /// A switch successfully staged the config.
    Prepared {
        /// The staged epoch.
        epoch: u64,
        /// The switch that acknowledged.
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// A failed attempt was rescheduled with exponential backoff.
    RetryScheduled {
        /// The epoch being staged.
        epoch: u64,
        /// Target switch.
        switch: SwitchId,
        /// The attempt that will run after the delay (1-based).
        next_attempt: u32,
        /// Backoff delay including jitter.
        delay_us: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// Every switch staged; the transaction committed atomically.
    Committed {
        /// The committed epoch.
        epoch: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// A committed plan went live with these objective values.
    Activated {
        /// The active epoch.
        epoch: u64,
        /// `A_max` of the active plan, bytes.
        a_max_bytes: u64,
        /// `t_e2e` of the active plan, microseconds.
        latency_us: f64,
        /// `Q_occ` of the active plan.
        occupied: usize,
        /// Virtual time.
        at_us: u64,
    },
    /// The transaction aborted; the previous plan keeps serving.
    RolledBack {
        /// The abandoned epoch.
        epoch: u64,
        /// Why.
        reason: String,
        /// Virtual time.
        at_us: u64,
    },
    /// A switch went down (crash fault).
    SwitchDown {
        /// The failed switch.
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// Healing after a post-commit switch failure began.
    HealingStarted {
        /// The epoch the healed plan will get.
        epoch: u64,
        /// Currently-down switches being healed around.
        down: Vec<SwitchId>,
        /// Virtual time.
        at_us: u64,
    },
    /// The incremental deployer produced a healed layout.
    HealingPlanned {
        /// The healed epoch.
        epoch: u64,
        /// MATs that kept their switch.
        reused: usize,
        /// MATs re-homed into residual capacity.
        placed: usize,
        /// `true` when pinning failed and a full redeploy was used.
        full_redeploy: bool,
        /// Virtual time.
        at_us: u64,
    },
    /// No feasible healed layout exists (or it failed validation).
    HealingFailed {
        /// The epoch that could not be healed.
        epoch: u64,
        /// Why.
        reason: String,
        /// Virtual time.
        at_us: u64,
    },
    /// The control channel lost a message.
    MessageDropped {
        /// What kind of message was lost.
        kind: MessageKind,
        /// Epoch stamp of the lost message.
        epoch: u64,
        /// Sequence stamp of the lost message.
        seq: u64,
        /// The switch the message targeted (or came from).
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// The control channel transmitted a message twice.
    MessageDuplicated {
        /// What kind of message was duplicated.
        kind: MessageKind,
        /// Epoch stamp of the duplicated message.
        epoch: u64,
        /// Sequence stamp of the duplicated message.
        seq: u64,
        /// The switch the message targeted (or came from).
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// The control channel held a message beyond its nominal latency.
    MessageDelayed {
        /// What kind of message was delayed.
        kind: MessageKind,
        /// Epoch stamp of the delayed message.
        epoch: u64,
        /// Sequence stamp of the delayed message.
        seq: u64,
        /// The switch the message targeted (or came from).
        switch: SwitchId,
        /// When the latest copy will arrive.
        deliver_at_us: u64,
        /// Virtual time (when it was sent).
        at_us: u64,
    },
    /// An agent answered an exact `(epoch, seq)` replay from its cache
    /// without re-executing.
    ReplayAnswered {
        /// The replayed epoch.
        epoch: u64,
        /// The replayed sequence number.
        seq: u64,
        /// The deduplicating switch.
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// The runtime discarded a reply whose `(epoch, seq)` did not match
    /// the request it was waiting for (a late answer to a superseded
    /// attempt).
    StaleReplyIgnored {
        /// Epoch stamp of the stale reply.
        epoch: u64,
        /// Sequence stamp of the stale reply.
        seq: u64,
        /// The switch that sent it.
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// An agent's fence refused a request for a terminated epoch.
    EpochFenced {
        /// The refusing switch.
        switch: SwitchId,
        /// The stale epoch the request carried.
        stale_epoch: u64,
        /// The agent's highest fenced epoch.
        fenced: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// A commit lease lapsed without renewal; the agent self-fenced and
    /// stopped serving.
    LeaseExpired {
        /// The switch that stopped serving.
        switch: SwitchId,
        /// The epoch that stopped serving.
        epoch: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// A lease probe was acknowledged.
    ProbeAcked {
        /// The probed switch.
        switch: SwitchId,
        /// The epoch whose lease was renewed.
        epoch: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// A switch exhausted the probe retry budget without answering; the
    /// runtime declares it down and feeds it to the healing path.
    SwitchUnreachable {
        /// The unreachable switch.
        switch: SwitchId,
        /// The epoch it was last known to serve.
        epoch: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// A switch acknowledged a commit; its config is now live (the
    /// mixed-epoch window grows by this switch).
    CommitAcked {
        /// The committed epoch.
        epoch: u64,
        /// The acknowledging switch.
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// The mixed-epoch window was replayed against the packet seeds and
    /// found per-packet consistent.
    MixedEpochChecked {
        /// The epoch being committed.
        epoch: u64,
        /// Number of commit-prefix windows checked.
        windows: usize,
        /// Packet seeds replayed per window.
        packets: usize,
        /// Virtual time.
        at_us: u64,
    },
    /// Some commit order would let a packet observe two epochs end to
    /// end; the transaction rolls back before any commit is issued.
    MixedEpochViolated {
        /// The refused epoch.
        epoch: u64,
        /// Rendered violation.
        detail: String,
        /// Virtual time.
        at_us: u64,
    },
    /// Healing finished and the healed plan is serving.
    RecoveryCompleted {
        /// The healed epoch now active.
        epoch: u64,
        /// Virtual time from failure detection to healed activation.
        recovery_us: u64,
        /// `A_max` before the switch failure.
        a_max_before: u64,
        /// `A_max` of the healed plan.
        a_max_after: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// A staged A→B migration began executing its schedule.
    MigrationStarted {
        /// The epoch the target plan will serve under.
        epoch: u64,
        /// Number of per-switch steps in the schedule.
        steps: usize,
        /// The schedule's worst mid-migration `A_max`, bytes.
        peak_transient_amax: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// One migration step committed: a checkpoint the executor can roll
    /// back to (and pause at — every prefix was verified safe).
    MigrationStepCommitted {
        /// The migrating epoch.
        epoch: u64,
        /// 0-based step index within the schedule.
        step: usize,
        /// The switch now serving its plan-B config.
        switch: SwitchId,
        /// `A_max` of the mixed state after this step, bytes.
        transient_amax: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// One attempt at a migration step failed (it may be retried).
    MigrationStepFailed {
        /// The migrating epoch.
        epoch: u64,
        /// 0-based step index within the schedule.
        step: usize,
        /// The switch whose step failed.
        switch: SwitchId,
        /// Why.
        reason: String,
        /// Virtual time.
        at_us: u64,
    },
    /// During rollback, one committed step was undone (the switch was
    /// re-installed with its plan-A config under a fresh epoch).
    MigrationStepRolledBack {
        /// The undo epoch the plan-A config was re-committed under.
        epoch: u64,
        /// The switch restored to plan A.
        switch: SwitchId,
        /// Virtual time.
        at_us: u64,
    },
    /// The migration was refused before any commit (scheduling, validation,
    /// or the mixed-epoch gate); plan A was never disturbed.
    MigrationAborted {
        /// The refused epoch.
        epoch: u64,
        /// Why.
        reason: String,
        /// Virtual time.
        at_us: u64,
    },
    /// A mid-migration failure rolled every committed step back to plan A.
    MigrationRolledBack {
        /// The abandoned epoch.
        epoch: u64,
        /// Why.
        reason: String,
        /// `true` when the abort threshold (or a failed stepwise undo)
        /// forced the out-of-band full restore instead of reverse-order
        /// re-installs.
        forced: bool,
        /// Steps that had committed before the failure.
        undone: usize,
        /// Virtual time.
        at_us: u64,
    },
    /// Every step committed and the target plan is serving.
    MigrationCompleted {
        /// The epoch now active.
        epoch: u64,
        /// Steps executed.
        steps: usize,
        /// Virtual time from schedule start to activation.
        reconfig_us: u64,
        /// Control-plane messages the migration sent.
        messages: u64,
        /// Virtual time.
        at_us: u64,
    },
    /// The controller itself crashed at a journal-write boundary, losing
    /// all in-memory state. Only the durable journal survives; this event
    /// is recorded by the restarted controller (the crashing one is, by
    /// definition, no longer writing).
    ControllerCrashed {
        /// The epoch in flight when the crash struck.
        epoch: u64,
        /// Which journal boundary the crash struck at.
        point: CrashPoint,
        /// Virtual time.
        at_us: u64,
    },
    /// Post-crash recovery began replaying the journal.
    RecoveryStarted {
        /// The fresh epoch recovery reinstalls under.
        epoch: u64,
        /// Journal records replayed.
        replayed: usize,
        /// Torn-tail bytes the replay discarded.
        discarded_tail_bytes: usize,
        /// Virtual time.
        at_us: u64,
    },
    /// Recovery probed one agent to learn what it is actually serving.
    AgentReconciled {
        /// The probed switch.
        switch: SwitchId,
        /// The epoch the agent reported serving, if it answered and is
        /// serving at all.
        serving_epoch: Option<u64>,
        /// `false` when every probe to the switch was lost.
        reachable: bool,
        /// Virtual time.
        at_us: u64,
    },
    /// Recovery decided on and applied its repair action.
    RecoveryApplied {
        /// The fresh epoch the repair was installed under.
        epoch: u64,
        /// Rendered repair action (resume-commit / roll-back / ...).
        action: String,
        /// Switches reinstalled under the fresh epoch.
        reinstalled: usize,
        /// Switches force-restored out of band.
        forced: usize,
        /// Virtual time.
        at_us: u64,
    },
    /// Recovery finished; the invariant "exactly plan A or exactly plan
    /// B" holds again.
    RecoveryFinished {
        /// The epoch now serving.
        epoch: u64,
        /// Control-plane messages recovery sent.
        messages: u64,
        /// Virtual time from recovery start to finish.
        recovery_us: u64,
        /// Virtual time.
        at_us: u64,
    },
}

impl Event {
    /// The virtual-clock timestamp of the event.
    pub fn at_us(&self) -> u64 {
        match self {
            Event::RolloutStarted { at_us, .. }
            | Event::ValidationFailed { at_us, .. }
            | Event::PrepareAttempt { at_us, .. }
            | Event::FaultInjected { at_us, .. }
            | Event::Prepared { at_us, .. }
            | Event::RetryScheduled { at_us, .. }
            | Event::Committed { at_us, .. }
            | Event::Activated { at_us, .. }
            | Event::RolledBack { at_us, .. }
            | Event::SwitchDown { at_us, .. }
            | Event::HealingStarted { at_us, .. }
            | Event::HealingPlanned { at_us, .. }
            | Event::HealingFailed { at_us, .. }
            | Event::MessageDropped { at_us, .. }
            | Event::MessageDuplicated { at_us, .. }
            | Event::MessageDelayed { at_us, .. }
            | Event::ReplayAnswered { at_us, .. }
            | Event::StaleReplyIgnored { at_us, .. }
            | Event::EpochFenced { at_us, .. }
            | Event::LeaseExpired { at_us, .. }
            | Event::ProbeAcked { at_us, .. }
            | Event::SwitchUnreachable { at_us, .. }
            | Event::CommitAcked { at_us, .. }
            | Event::MixedEpochChecked { at_us, .. }
            | Event::MixedEpochViolated { at_us, .. }
            | Event::RecoveryCompleted { at_us, .. }
            | Event::MigrationStarted { at_us, .. }
            | Event::MigrationStepCommitted { at_us, .. }
            | Event::MigrationStepFailed { at_us, .. }
            | Event::MigrationStepRolledBack { at_us, .. }
            | Event::MigrationAborted { at_us, .. }
            | Event::MigrationRolledBack { at_us, .. }
            | Event::MigrationCompleted { at_us, .. }
            | Event::ControllerCrashed { at_us, .. }
            | Event::RecoveryStarted { at_us, .. }
            | Event::AgentReconciled { at_us, .. }
            | Event::RecoveryApplied { at_us, .. }
            | Event::RecoveryFinished { at_us, .. } => *at_us,
        }
    }
}

/// Version of the event-log JSON schema. Golden-diff and determinism
/// gates compare logs byte for byte; stamping the schema into every log
/// means an event-shape change shows up as an explicit version diff
/// instead of silently breaking byte-reproducibility baselines.
///
/// History: 1 — original rollout/healing/channel events (no version
/// field); 2 — adds this field plus the `Migration*` events; 3 — adds the
/// controller-durability events (`ControllerCrashed`, `RecoveryStarted`,
/// `AgentReconciled`, `RecoveryApplied`, `RecoveryFinished`).
pub const EVENT_SCHEMA_VERSION: u32 = 3;

/// Append-only log of runtime events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    /// The [`EVENT_SCHEMA_VERSION`] the log was written under.
    pub schema_version: u32,
    /// Events in emission order (non-decreasing `at_us`).
    pub events: Vec<Event>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog { schema_version: EVENT_SCHEMA_VERSION, events: Vec::new() }
    }
}

impl EventLog {
    /// An empty log stamped with the current schema version.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Deterministic JSON rendering of the whole log: same seed, same
    /// bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("event logs always serialize")
    }

    /// Count of events matching a predicate (used by experiments to tally
    /// retries, rollbacks, faults, ...).
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventLog({} events)", self.events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_round_trips_through_json() {
        let mut log = EventLog::new();
        log.push(Event::RolloutStarted { epoch: 1, switches: vec![], at_us: 0 });
        log.push(Event::Committed { epoch: 1, at_us: 120 });
        log.push(Event::RolledBack { epoch: 2, reason: "validation".into(), at_us: 300 });
        let back: EventLog = serde_json::from_str(&log.to_json()).unwrap();
        assert_eq!(log, back);
        assert_eq!(back.events[1].at_us(), 120);
        assert_eq!(log.count(|e| matches!(e, Event::Committed { .. })), 1);
    }

    #[test]
    fn logs_are_stamped_with_the_schema_version() {
        let log = EventLog::new();
        assert_eq!(log.schema_version, EVENT_SCHEMA_VERSION);
        assert!(
            log.to_json().contains(&format!("\"schema_version\": {EVENT_SCHEMA_VERSION}")),
            "the version must be visible in the serialized log"
        );
    }
}
