//! Post-crash recovery: journal replay, intent reconstruction, and
//! agent reconciliation.
//!
//! A controller crash ([`crate::runtime::ControllerCrash`]) loses every
//! piece of in-memory state — the epoch counter, the active deployment,
//! the in-flight transaction. What survives is the write-ahead
//! [`crate::journal::Journal`] and a fleet of agents frozen mid-protocol:
//! some serving the old plan, some with the new epoch staged, some
//! already committed to it, some with leases quietly lapsing.
//!
//! [`DeploymentRuntime::recover`] restores the invariant the runtime
//! promises everywhere else — *exactly plan A or exactly plan B, never a
//! mix* — in four moves:
//!
//! 1. **Replay** — decode the journal ([`crate::journal::replay_bytes`]),
//!    discarding a torn tail, and fold the records into a
//!    [`RecoveredIntent`]: the last durable snapshot plus whatever
//!    transaction or migration was in flight.
//! 2. **Fence by time and epoch** — the virtual clock jumps two lease
//!    windows, so every agent whose commit-window lease was running at
//!    the crash has provably self-fenced by the time recovery speaks to
//!    it. All reinstalls then run under a *fresh* epoch, strictly greater
//!    than any epoch the journal (and therefore any agent) has ever
//!    seen — write-ahead epoch advances make `max(journal) + 1` safe.
//! 3. **Reconcile** — probe every switch under the fresh epoch to learn
//!    what each agent actually serves ([`crate::event::Event::AgentReconciled`]).
//!    Probes never fence; dead switches are marked down so the repair
//!    plans around them.
//! 4. **Repair** — pick the [`RecoveryAction`] the journal dictates: a
//!    transaction whose commit decision was durable rolls *forward* (the
//!    decision is the point of no return — some agent may already serve
//!    it); one without rolls *back* to the snapshot; a migration rolls
//!    forward only if every step checkpointed. The chosen plan is
//!    reinstalled switch by switch under the fresh epoch; a switch that
//!    refuses is force-activated out of band, and past
//!    [`RECOVERY_ABORT_THRESHOLD`] failures the surgical path is
//!    abandoned for a full out-of-band restore.
//!
//! Recovery assumes the single-fault model: crash injection is disarmed
//! on entry, and recovery's own journal writes bypass the injector, so a
//! recovering controller cannot crash again mid-repair. Nothing on this
//! path panics — corrupt journals surface as [`RecoveryError::Journal`]
//! and a foreign journal as [`RecoveryError::TdgFingerprintMismatch`]
//! (enforced by the crate's `clippy.toml` unwrap/expect ban).

use crate::agent::{AgentError, Reply, Request};
use crate::event::{Event, MessageKind};
use crate::journal::{JournalError, JournalRecord, Replay, TxnKind};
use crate::runtime::{ActiveDeployment, DeploymentRuntime};
use hermes_backend::{DeploymentArtifacts, SwitchConfig};
use hermes_core::{verify, DeploymentPlan};
use hermes_net::SwitchId;
use hermes_tdg::Tdg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-switch reinstall failures recovery tolerates before abandoning
/// surgical repair for the out-of-band full restore.
pub const RECOVERY_ABORT_THRESHOLD: u32 = 3;

/// The repair a recovery run decided on, derived purely from the journal
/// (see [`RecoveredIntent::planned_action`]) and demoted from a forward
/// action to its rollback counterpart only if the forward target no
/// longer verifies on the post-crash network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// No transaction was in flight: re-assert the snapshot so every
    /// agent provably serves it under the fresh epoch.
    AffirmSnapshot,
    /// A transaction died before its commit decision became durable (or
    /// after its abort did): abandon it and re-assert the snapshot.
    RollBackTxn,
    /// A transaction's commit decision was durable: finish its commits
    /// by reinstalling the target plan under the fresh epoch.
    ResumeCommit,
    /// Every migration step checkpointed: plan B is the intended state;
    /// reinstall it under the fresh epoch.
    CompleteMigration,
    /// The migration died mid-schedule (or mid-rollback): plan A is the
    /// intended state; reinstall it under the fresh epoch.
    RollBackMigration,
    /// The journal holds neither a snapshot nor a resumable intent: the
    /// controller deliberately serves nothing, and every live agent is
    /// wiped to match.
    Cleared,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryAction::AffirmSnapshot => "affirm-snapshot",
            RecoveryAction::RollBackTxn => "roll-back-txn",
            RecoveryAction::ResumeCommit => "resume-commit",
            RecoveryAction::CompleteMigration => "complete-migration",
            RecoveryAction::RollBackMigration => "roll-back-migration",
            RecoveryAction::Cleared => "cleared",
        })
    }
}

/// The last durable activation snapshot found in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    /// The epoch the snapshot was active under.
    pub epoch: u64,
    /// Fingerprint of the TDG the snapshot was validated against.
    pub tdg_fp: u64,
    /// Fingerprint of `plan`.
    pub plan_fp: u64,
    /// The snapshotted plan.
    pub plan: DeploymentPlan,
    /// The snapshotted per-switch configs.
    pub artifacts: DeploymentArtifacts,
    /// Virtual time of the activation.
    pub clock_us: u64,
}

/// The unconcluded operation the journal's suffix describes, if any.
#[derive(Debug, Clone, PartialEq)]
pub enum InFlight {
    /// A two-phase transaction (deploy, heal, or recovery reinstall).
    Txn {
        /// The transaction epoch.
        epoch: u64,
        /// What initiated it.
        kind: TxnKind,
        /// Fingerprint of the TDG it was validated against.
        tdg_fp: u64,
        /// Fingerprint of `plan`.
        plan_fp: u64,
        /// The target plan.
        plan: DeploymentPlan,
        /// The compiled per-switch configs.
        artifacts: DeploymentArtifacts,
        /// Switches whose prepare ack was journaled.
        prepared: Vec<SwitchId>,
        /// The journaled commit order — `Some` iff the point of no
        /// return was crossed durably.
        commit_order: Option<Vec<SwitchId>>,
        /// Switches whose commit ack was journaled.
        commit_acked: Vec<SwitchId>,
        /// `true` when the whole-transaction commit record landed (the
        /// activation snapshot did not — it would have concluded the
        /// intent).
        committed: bool,
        /// `true` when the abort decision landed.
        aborted: bool,
    },
    /// A staged migration.
    Migration {
        /// The migration epoch.
        epoch: u64,
        /// Fingerprint of the TDG.
        tdg_fp: u64,
        /// Fingerprint of the target plan.
        plan_fp: u64,
        /// The target plan (plan B).
        plan: DeploymentPlan,
        /// The target per-switch configs.
        artifacts: DeploymentArtifacts,
        /// The scheduled commit order.
        order: Vec<SwitchId>,
        /// Switches whose step checkpoint was journaled.
        steps_committed: Vec<SwitchId>,
        /// `true` when the rollback decision landed.
        rolled_back: bool,
        /// `true` when the all-steps-committed record landed (but not
        /// the activation snapshot).
        completed: bool,
    },
}

impl InFlight {
    fn tdg_fp(&self) -> u64 {
        match self {
            InFlight::Txn { tdg_fp, .. } | InFlight::Migration { tdg_fp, .. } => *tdg_fp,
        }
    }
}

/// Everything a journal replay says about where the controller was when
/// it died: the last durable snapshot, the operation in flight (if its
/// conclusion never became durable), and the highest epoch ever journaled.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredIntent {
    /// The last durable activation snapshot, if any.
    pub snapshot: Option<SnapshotState>,
    /// The unconcluded operation, if any.
    pub in_flight: Option<InFlight>,
    /// `true` when the journal's last word on active state was
    /// [`JournalRecord::Cleared`] (deliberately serving nothing).
    pub cleared: bool,
    /// The highest epoch any journaled record carries. Write-ahead epoch
    /// advances guarantee `max_epoch + 1` is fresh: no agent has seen it.
    pub max_epoch: u64,
    /// Records replayed.
    pub records: usize,
    /// Torn-tail bytes the replay discarded.
    pub discarded_tail_bytes: usize,
}

impl RecoveredIntent {
    /// Folds a replay into recovered intent. Pure bookkeeping: no agent
    /// is touched, no state changed — the CLI's `recover` command uses
    /// this to explain a journal without acting on it.
    pub fn from_replay(replay: &Replay) -> Self {
        let mut intent = RecoveredIntent {
            snapshot: None,
            in_flight: None,
            cleared: false,
            max_epoch: 0,
            records: replay.records.len(),
            discarded_tail_bytes: replay.discarded_tail_bytes,
        };
        for record in &replay.records {
            intent.max_epoch = intent.max_epoch.max(record.epoch());
            match record {
                JournalRecord::EpochAdvanced { .. }
                | JournalRecord::LeaseGranted { .. }
                | JournalRecord::RecoveryBegun { .. }
                | JournalRecord::RecoveryCompleted { .. } => {}
                JournalRecord::TxnBegun { epoch, kind, tdg_fp, plan_fp, plan, artifacts } => {
                    intent.in_flight = Some(InFlight::Txn {
                        epoch: *epoch,
                        kind: *kind,
                        tdg_fp: *tdg_fp,
                        plan_fp: *plan_fp,
                        plan: plan.clone(),
                        artifacts: artifacts.clone(),
                        prepared: Vec::new(),
                        commit_order: None,
                        commit_acked: Vec::new(),
                        committed: false,
                        aborted: false,
                    });
                }
                JournalRecord::Prepared { epoch, switch } => {
                    if let Some(InFlight::Txn { epoch: e, prepared, .. }) = &mut intent.in_flight {
                        if *e == *epoch {
                            prepared.push(*switch);
                        }
                    }
                }
                JournalRecord::CommitDecided { epoch, order } => {
                    if let Some(InFlight::Txn { epoch: e, commit_order, .. }) =
                        &mut intent.in_flight
                    {
                        if *e == *epoch {
                            *commit_order = Some(order.clone());
                        }
                    }
                }
                JournalRecord::CommitAcked { epoch, switch } => {
                    if let Some(InFlight::Txn { epoch: e, commit_acked, .. }) =
                        &mut intent.in_flight
                    {
                        if *e == *epoch {
                            commit_acked.push(*switch);
                        }
                    }
                }
                JournalRecord::TxnCommitted { epoch, .. } => {
                    if let Some(InFlight::Txn { epoch: e, committed, .. }) = &mut intent.in_flight {
                        if *e == *epoch {
                            *committed = true;
                        }
                    }
                }
                JournalRecord::TxnAborted { epoch, .. } => {
                    if let Some(InFlight::Txn { epoch: e, aborted, .. }) = &mut intent.in_flight {
                        if *e == *epoch {
                            *aborted = true;
                        }
                    }
                }
                JournalRecord::Snapshot { epoch, tdg_fp, plan_fp, plan, artifacts, clock_us } => {
                    // An activation snapshot concludes whatever was in
                    // flight: the controller reached a consistent state.
                    intent.snapshot = Some(SnapshotState {
                        epoch: *epoch,
                        tdg_fp: *tdg_fp,
                        plan_fp: *plan_fp,
                        plan: plan.clone(),
                        artifacts: artifacts.clone(),
                        clock_us: *clock_us,
                    });
                    intent.in_flight = None;
                    intent.cleared = false;
                }
                JournalRecord::Cleared { .. } => {
                    intent.snapshot = None;
                    intent.in_flight = None;
                    intent.cleared = true;
                }
                JournalRecord::MigrationBegun {
                    epoch,
                    tdg_fp,
                    plan_fp,
                    plan,
                    artifacts,
                    order,
                } => {
                    intent.in_flight = Some(InFlight::Migration {
                        epoch: *epoch,
                        tdg_fp: *tdg_fp,
                        plan_fp: *plan_fp,
                        plan: plan.clone(),
                        artifacts: artifacts.clone(),
                        order: order.clone(),
                        steps_committed: Vec::new(),
                        rolled_back: false,
                        completed: false,
                    });
                }
                JournalRecord::MigrationStepCommitted { epoch, switch, .. } => {
                    if let Some(InFlight::Migration { epoch: e, steps_committed, .. }) =
                        &mut intent.in_flight
                    {
                        if *e == *epoch {
                            steps_committed.push(*switch);
                        }
                    }
                }
                JournalRecord::MigrationRolledBack { epoch, .. } => {
                    if let Some(InFlight::Migration { epoch: e, rolled_back, .. }) =
                        &mut intent.in_flight
                    {
                        if *e == *epoch {
                            *rolled_back = true;
                        }
                    }
                }
                JournalRecord::MigrationCompleted { epoch, .. } => {
                    if let Some(InFlight::Migration { epoch: e, completed, .. }) =
                        &mut intent.in_flight
                    {
                        if *e == *epoch {
                            *completed = true;
                        }
                    }
                }
            }
        }
        intent
    }

    /// The action the journal alone dictates (before network reality can
    /// demote a forward action to its rollback counterpart).
    pub fn planned_action(&self) -> RecoveryAction {
        match &self.in_flight {
            Some(InFlight::Txn { aborted: true, .. }) => RecoveryAction::RollBackTxn,
            Some(InFlight::Txn { committed, commit_order, .. }) => {
                if *committed || commit_order.is_some() {
                    // The point of no return was durable: some agent may
                    // already serve the target, so backward is unsafe.
                    RecoveryAction::ResumeCommit
                } else {
                    RecoveryAction::RollBackTxn
                }
            }
            Some(InFlight::Migration { completed, rolled_back, .. }) => {
                if *completed && !*rolled_back {
                    RecoveryAction::CompleteMigration
                } else {
                    RecoveryAction::RollBackMigration
                }
            }
            None if self.snapshot.is_some() => RecoveryAction::AffirmSnapshot,
            None => RecoveryAction::Cleared,
        }
    }

    /// The TDG fingerprint the journal's most authoritative record
    /// carries (the in-flight intent, else the snapshot), if any.
    pub fn tdg_fp(&self) -> Option<u64> {
        self.in_flight
            .as_ref()
            .map(InFlight::tdg_fp)
            .or_else(|| self.snapshot.as_ref().map(|s| s.tdg_fp))
    }
}

/// Typed recovery failure. Either the journal itself is unusable, or it
/// describes a different workload than the one recovery was asked to
/// restore — both cases where acting would be worse than stopping.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The journal failed to replay (header damage or provable mid-log
    /// corruption; a torn tail is *not* an error).
    Journal(JournalError),
    /// The journal's records were validated against a different TDG than
    /// the one supplied: refusing beats reinstalling a plan whose
    /// workload assumptions no longer hold.
    TdgFingerprintMismatch {
        /// Fingerprint of the TDG recovery was called with.
        expected: u64,
        /// Fingerprint the journal records carry.
        found: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Journal(e) => write!(f, "journal replay failed: {e}"),
            RecoveryError::TdgFingerprintMismatch { expected, found } => write!(
                f,
                "journal records a different workload: tdg fingerprint {found:#018x}, expected \
                 {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Journal(e) => Some(e),
            RecoveryError::TdgFingerprintMismatch { .. } => None,
        }
    }
}

impl From<JournalError> for RecoveryError {
    fn from(e: JournalError) -> Self {
        RecoveryError::Journal(e)
    }
}

/// What one [`DeploymentRuntime::recover`] run did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The fresh epoch recovery ran (and the restored plan serves) under.
    pub epoch: u64,
    /// The repair that was applied.
    pub action: RecoveryAction,
    /// Journal records replayed.
    pub replayed: usize,
    /// Torn-tail bytes the replay discarded.
    pub discarded_tail_bytes: usize,
    /// Switches reinstalled through the prepare/commit protocol.
    pub reinstalled: usize,
    /// Switches force-activated out of band (including a full restore).
    pub forced: usize,
    /// Switches that answered no reconciliation probe at all.
    pub unreachable: usize,
    /// Control-plane messages recovery sent.
    pub messages: u64,
    /// Virtual time recovery took, including the two-lease fencing wait.
    pub recovery_us: u64,
}

impl DeploymentRuntime {
    /// Recovers a crashed (or merely restarted) controller from its
    /// journal: replays intent, reconciles every agent, and repairs the
    /// fleet to exactly one consistent deployment under a fresh epoch.
    /// See the module docs for the full protocol.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Journal`] when the journal cannot replay, and
    /// [`RecoveryError::TdgFingerprintMismatch`] when it describes a
    /// different workload than `tdg`. In both cases nothing was changed.
    pub fn recover(&mut self, tdg: &Tdg) -> Result<RecoveryReport, RecoveryError> {
        // Replay before touching anything: a corrupt journal must leave
        // the runtime exactly as it was.
        let replay = self.journal.replay()?;
        let intent = RecoveredIntent::from_replay(&replay);
        let expected = hermes_core::tdg_fingerprint(tdg);
        if let Some(found) = intent.tdg_fp().filter(|&fp| fp != expected) {
            return Err(RecoveryError::TdgFingerprintMismatch { expected, found });
        }

        let start_us = self.clock_us;
        let messages_before = self.channel.messages_sent();
        // The restarted controller is a new single fault domain: injected
        // crashes are disarmed, and the old process's in-flight messages
        // died with it.
        self.injector.disarm_controller_crash();
        self.channel.clear();
        // The dying process wrote no event; the restarted one records
        // what it found.
        if let Some(crash) = self.crashed.take() {
            self.log.push(Event::ControllerCrashed {
                epoch: crash.epoch,
                point: crash.point,
                at_us: self.clock_us,
            });
        }

        // Fence by time: after two lease windows of silence, every agent
        // whose commit-window lease was running at the crash has provably
        // self-fenced — no zombie can still be serving a lapsed epoch.
        self.clock_us += 2 * self.policy.lease_us;
        // Fence by epoch: write-ahead advances make max(journal) + 1
        // strictly newer than anything any agent has seen. Recovery's own
        // journal writes bypass the injector (single-fault model).
        let fresh = intent.max_epoch + 1;
        self.journal.append(&JournalRecord::RecoveryBegun { epoch: fresh });
        self.epoch = fresh;
        self.log.push(Event::RecoveryStarted {
            epoch: fresh,
            replayed: intent.records,
            discarded_tail_bytes: intent.discarded_tail_bytes,
            at_us: self.clock_us,
        });

        let unreachable = self.reconcile_agents(fresh);

        // Decide the repair. Forward actions demote to their rollback
        // counterpart if the forward target no longer verifies on the
        // post-crash network (a switch may have died with the controller).
        let mut action = intent.planned_action();
        let forward = match (&action, &intent.in_flight) {
            (RecoveryAction::ResumeCommit, Some(InFlight::Txn { plan, artifacts, .. }))
            | (
                RecoveryAction::CompleteMigration,
                Some(InFlight::Migration { plan, artifacts, .. }),
            ) => Some((plan.clone(), artifacts.clone())),
            _ => None,
        };
        let chosen = match forward {
            Some((plan, artifacts)) if verify(tdg, &self.net, &plan, &self.eps).is_empty() => {
                Some((plan, artifacts))
            }
            Some(_) => {
                action = match action {
                    RecoveryAction::CompleteMigration => RecoveryAction::RollBackMigration,
                    _ => RecoveryAction::RollBackTxn,
                };
                intent.snapshot.as_ref().map(|s| (s.plan.clone(), s.artifacts.clone()))
            }
            None => match action {
                RecoveryAction::Cleared => None,
                _ => intent.snapshot.as_ref().map(|s| (s.plan.clone(), s.artifacts.clone())),
            },
        };

        let (reinstalled, forced) = match chosen {
            Some((plan, artifacts)) => self.reinstall(tdg, plan, artifacts, fresh),
            None => {
                // Nothing to restore: journal the cleared state and wipe
                // every live agent to match it.
                self.journal.append(&JournalRecord::Cleared { epoch: fresh });
                for agent in self.agents.values_mut() {
                    agent.force_activate(fresh, None);
                }
                self.active = None;
                (0, 0)
            }
        };

        self.journal
            .append(&JournalRecord::RecoveryCompleted { epoch: fresh, action: action.to_string() });
        self.log.push(Event::RecoveryApplied {
            epoch: fresh,
            action: action.to_string(),
            reinstalled,
            forced,
            at_us: self.clock_us,
        });
        let messages = self.channel.messages_sent() - messages_before;
        let recovery_us = self.clock_us - start_us;
        self.log.push(Event::RecoveryFinished {
            epoch: fresh,
            messages,
            recovery_us,
            at_us: self.clock_us,
        });
        Ok(RecoveryReport {
            epoch: fresh,
            action,
            replayed: intent.records,
            discarded_tail_bytes: intent.discarded_tail_bytes,
            reinstalled,
            forced,
            unreachable,
            messages,
            recovery_us,
        })
    }

    /// Probes every switch under the fresh epoch to learn what it
    /// actually serves. Probes never fence; a `Crashed` answer marks the
    /// switch down in the substrate, and total silence is recorded as
    /// unreachable (the repair treats such switches like force-restore
    /// does: out of band, best effort). Returns the unreachable count.
    fn reconcile_agents(&mut self, fresh: u64) -> usize {
        let mut unreachable = 0usize;
        let switches: Vec<SwitchId> = self.net.switch_ids().collect();
        for switch in switches {
            let mut answered: Option<Reply> = None;
            for _ in 0..self.policy.max_attempts {
                if let Some(reply) =
                    self.exchange(switch, fresh, Request::Probe, MessageKind::Probe)
                {
                    answered = Some(reply);
                    break;
                }
            }
            match answered {
                Some(Reply::Nack { error: AgentError::Crashed, .. }) => {
                    if !self.net.down_switches().contains(&switch) {
                        self.fail_switch(switch);
                    }
                    self.log.push(Event::AgentReconciled {
                        switch,
                        serving_epoch: None,
                        reachable: true,
                        at_us: self.clock_us,
                    });
                }
                Some(reply) => {
                    self.log.push(Event::AgentReconciled {
                        switch,
                        serving_epoch: reply.active_epoch(),
                        reachable: true,
                        at_us: self.clock_us,
                    });
                }
                None => {
                    unreachable += 1;
                    self.log.push(Event::AgentReconciled {
                        switch,
                        serving_epoch: None,
                        reachable: false,
                        at_us: self.clock_us,
                    });
                }
            }
        }
        unreachable
    }

    /// Reinstalls `plan` on every live occupied switch under the fresh
    /// epoch (prepare + commit, with the usual bounded retries), falling
    /// back per switch to out-of-band force-activation and — past
    /// [`RECOVERY_ABORT_THRESHOLD`] failures — to a full force restore.
    /// Live agents the plan does not occupy are wiped so no stale epoch
    /// keeps serving anywhere. Returns `(reinstalled, forced)` counts.
    fn reinstall(
        &mut self,
        tdg: &Tdg,
        plan: DeploymentPlan,
        artifacts: DeploymentArtifacts,
        fresh: u64,
    ) -> (usize, usize) {
        let occupied: Vec<(SwitchId, SwitchConfig)> =
            artifacts.switches.iter().map(|(&s, c)| (s, c.clone())).collect();
        let mut committed: Vec<SwitchId> = Vec::new();
        let mut forced = 0usize;
        let mut failures = 0u32;
        let down = self.net.down_switches();
        for (switch, config) in &occupied {
            if down.contains(switch) {
                continue;
            }
            let ok = match self.prepare_with_retry(*switch, config, fresh) {
                Ok(()) => self.commit_with_retry(*switch, fresh),
                Err(_) => false,
            };
            if ok {
                committed.push(*switch);
                continue;
            }
            failures += 1;
            if failures > RECOVERY_ABORT_THRESHOLD {
                // Too much of the fleet refuses the protocol: stop being
                // surgical and restore everything out of band.
                let restored = ActiveDeployment {
                    epoch: fresh,
                    tdg: tdg.clone(),
                    plan: plan.clone(),
                    artifacts: artifacts.clone(),
                };
                self.journal.append(&JournalRecord::Snapshot {
                    epoch: fresh,
                    tdg_fp: hermes_core::tdg_fingerprint(tdg),
                    plan_fp: plan.fingerprint(),
                    plan: plan.clone(),
                    artifacts: artifacts.clone(),
                    clock_us: self.clock_us,
                });
                self.channel.clear();
                for (&s, agent) in &mut self.agents {
                    agent.force_activate(fresh, restored.artifacts.switches.get(&s).cloned());
                }
                let live = occupied.iter().filter(|(s, _)| !down.contains(s)).count();
                self.active = Some(restored);
                return (0, live);
            }
            // Surgical fallback for this switch alone.
            if let Some(agent) = self.agents.get_mut(switch) {
                agent.force_activate(fresh, Some(config.clone()));
            }
            forced += 1;
        }
        // End commit-window supervision for the reinstalled agents (the
        // same sweep a committing transaction runs).
        let now = self.clock_us;
        for &switch in &committed {
            if let Some(agent) = self.agents.get_mut(&switch) {
                if let Some(lapsed) = agent.expire_lease(now) {
                    self.log.push(Event::LeaseExpired { switch, epoch: lapsed, at_us: now });
                    self.fail_switch(switch);
                } else {
                    agent.release_lease();
                }
            }
        }
        // Wipe live agents the plan does not occupy: nothing stale may
        // keep serving beside the restored deployment.
        for (&switch, agent) in &mut self.agents {
            if !artifacts.switches.contains_key(&switch) {
                agent.force_activate(fresh, None);
            }
        }
        self.journal.append(&JournalRecord::Snapshot {
            epoch: fresh,
            tdg_fp: hermes_core::tdg_fingerprint(tdg),
            plan_fp: plan.fingerprint(),
            plan: plan.clone(),
            artifacts: artifacts.clone(),
            clock_us: self.clock_us,
        });
        self.active = Some(ActiveDeployment { epoch: fresh, tdg: tdg.clone(), plan, artifacts });
        (committed.len(), forced)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultProfile};
    use crate::journal::{CrashPoint, CrashTiming, Journal};
    use crate::runtime::{RetryPolicy, RolloutOutcome};
    use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
    use hermes_dataplane::library;
    use hermes_net::{topology, Network};

    fn workload() -> (Tdg, Network, DeploymentPlan) {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(4, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        (tdg, net, plan)
    }

    fn runtime(net: Network) -> DeploymentRuntime {
        DeploymentRuntime::new(
            net,
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        )
    }

    #[test]
    fn intent_folding_tracks_the_txn_state_machine() {
        let mut j = Journal::new();
        j.append(&JournalRecord::EpochAdvanced { epoch: 1 });
        let (_, _, plan) = workload();
        let artifacts =
            DeploymentArtifacts { switches: std::collections::BTreeMap::new(), routes: Vec::new() };
        j.append(&JournalRecord::TxnBegun {
            epoch: 1,
            kind: TxnKind::Deploy,
            tdg_fp: 7,
            plan_fp: 8,
            plan: plan.clone(),
            artifacts: artifacts.clone(),
        });
        let intent = RecoveredIntent::from_replay(&j.replay().unwrap());
        assert_eq!(intent.planned_action(), RecoveryAction::RollBackTxn);
        assert_eq!(intent.max_epoch, 1);
        assert_eq!(intent.tdg_fp(), Some(7));

        j.append(&JournalRecord::CommitDecided { epoch: 1, order: vec![] });
        let intent = RecoveredIntent::from_replay(&j.replay().unwrap());
        assert_eq!(intent.planned_action(), RecoveryAction::ResumeCommit);

        j.append(&JournalRecord::TxnAborted { epoch: 1, reason: "no".into() });
        let intent = RecoveredIntent::from_replay(&j.replay().unwrap());
        assert_eq!(intent.planned_action(), RecoveryAction::RollBackTxn);

        j.append(&JournalRecord::Snapshot {
            epoch: 1,
            tdg_fp: 7,
            plan_fp: 8,
            plan,
            artifacts,
            clock_us: 0,
        });
        let intent = RecoveredIntent::from_replay(&j.replay().unwrap());
        assert_eq!(intent.planned_action(), RecoveryAction::AffirmSnapshot);
        assert!(intent.in_flight.is_none());
    }

    #[test]
    fn intent_folding_tracks_migrations_and_cleared_state() {
        let (_, _, plan) = workload();
        let artifacts =
            DeploymentArtifacts { switches: std::collections::BTreeMap::new(), routes: Vec::new() };
        let mut j = Journal::new();
        assert_eq!(
            RecoveredIntent::from_replay(&j.replay().unwrap()).planned_action(),
            RecoveryAction::Cleared
        );
        j.append(&JournalRecord::MigrationBegun {
            epoch: 2,
            tdg_fp: 7,
            plan_fp: 9,
            plan: plan.clone(),
            artifacts,
            order: vec![],
        });
        let intent = RecoveredIntent::from_replay(&j.replay().unwrap());
        assert_eq!(intent.planned_action(), RecoveryAction::RollBackMigration);

        j.append(&JournalRecord::MigrationCompleted { epoch: 2, steps: 3 });
        let intent = RecoveredIntent::from_replay(&j.replay().unwrap());
        assert_eq!(intent.planned_action(), RecoveryAction::CompleteMigration);

        j.append(&JournalRecord::Cleared { epoch: 2 });
        let intent = RecoveredIntent::from_replay(&j.replay().unwrap());
        assert_eq!(intent.planned_action(), RecoveryAction::Cleared);
        assert!(intent.cleared);
    }

    #[test]
    fn crash_after_commit_decision_resumes_forward() {
        let (tdg, net, plan) = workload();
        let n = plan.occupied_switch_count() as u64;
        let mut rt = runtime(net);
        // Boundary 2 + n is the commit decision (see runtime.rs tests).
        rt.injector_mut().arm_controller_crash_at(2 + n, CrashTiming::AfterWrite);
        let outcome = rt.rollout(&tdg, plan.clone());
        assert!(matches!(outcome, RolloutOutcome::ControllerCrashed { .. }));
        assert_eq!(rt.active_plan(), None);

        let report = rt.recover(&tdg).expect("recovery must succeed");
        assert_eq!(report.action, RecoveryAction::ResumeCommit);
        assert_eq!(report.reinstalled, plan.occupied_switch_count());
        assert_eq!(report.forced, 0);
        assert_eq!(rt.active_plan(), Some(&plan));
        assert_eq!(rt.active_epoch(), Some(report.epoch));
        assert!(rt.crashed().is_none(), "recovery clears the sticky crash");
        // Every live occupied agent serves the fresh epoch; nobody serves
        // the abandoned one.
        for switch in plan.occupied_switches() {
            assert_eq!(rt.agent(switch).unwrap().active_epoch(), Some(report.epoch));
        }
        for agent in rt.agents() {
            assert_ne!(agent.active_epoch(), Some(1), "epoch 1 died with the controller");
        }
        // The runtime accepts work again.
        assert!(rt.rollout(&tdg, plan).is_committed());
    }

    #[test]
    fn crash_mid_prepare_rolls_back_to_nothing_on_first_deploy() {
        let (tdg, net, plan) = workload();
        let mut rt = runtime(net);
        // Boundary 2 is the first Prepared record; crash before it lands.
        rt.injector_mut().arm_controller_crash_at(2, CrashTiming::BeforeWrite);
        let outcome = rt.rollout(&tdg, plan.clone());
        match outcome {
            RolloutOutcome::ControllerCrashed { point, .. } => {
                assert_eq!(point, CrashPoint::Prepare);
            }
            other => panic!("expected a crash, got {other}"),
        }
        let report = rt.recover(&tdg).expect("recovery must succeed");
        assert_eq!(report.action, RecoveryAction::RollBackTxn);
        assert_eq!(rt.active_plan(), None, "no snapshot existed to restore");
        for agent in rt.agents() {
            assert_eq!(agent.active_epoch(), None);
            assert_eq!(agent.staged_epoch(), None, "staged state is wiped");
        }
        // The journal records a consistent cleared state.
        let intent = RecoveredIntent::from_replay(&rt.journal().replay().unwrap());
        assert_eq!(intent.planned_action(), RecoveryAction::Cleared);
    }

    #[test]
    fn crash_mid_second_rollout_restores_the_first_plan() {
        let (tdg, net, plan) = workload();
        let mut rt = runtime(net);
        assert!(rt.rollout(&tdg, plan.clone()).is_committed());
        // Crash the second rollout before its commit decision lands: the
        // first plan's snapshot must come back.
        let n = plan.occupied_switch_count() as u64;
        rt.injector_mut().arm_controller_crash_at(2 + n, CrashTiming::BeforeWrite);
        let outcome = rt.rollout(&tdg, plan.clone());
        assert!(matches!(outcome, RolloutOutcome::ControllerCrashed { .. }));

        let report = rt.recover(&tdg).expect("recovery must succeed");
        assert_eq!(report.action, RecoveryAction::RollBackTxn);
        assert_eq!(rt.active_plan(), Some(&plan));
        for switch in plan.occupied_switches() {
            assert_eq!(rt.agent(switch).unwrap().active_epoch(), Some(report.epoch));
        }
        for agent in rt.agents() {
            assert_ne!(agent.active_epoch(), Some(2), "the abandoned epoch is gone");
        }
    }

    #[test]
    fn recovery_refuses_a_foreign_workload() {
        let (tdg, net, plan) = workload();
        let mut rt = runtime(net);
        assert!(rt.rollout(&tdg, plan).is_committed());
        let programs = library::real_programs();
        let other = ProgramAnalyzer::new().analyze(&programs[..programs.len() - 1]);
        assert_ne!(
            hermes_core::tdg_fingerprint(&other),
            hermes_core::tdg_fingerprint(&tdg),
            "the truncated workload must fingerprint differently"
        );
        match rt.recover(&other) {
            Err(RecoveryError::TdgFingerprintMismatch { expected, found }) => {
                assert_eq!(expected, hermes_core::tdg_fingerprint(&other));
                assert_eq!(found, hermes_core::tdg_fingerprint(&tdg));
            }
            other => panic!("foreign workload must be refused, got {other:?}"),
        }
    }

    #[test]
    fn recovery_is_idempotent_and_journaled() {
        let (tdg, net, plan) = workload();
        let mut rt = runtime(net);
        assert!(rt.rollout(&tdg, plan.clone()).is_committed());
        let first = rt.recover(&tdg).expect("affirming recovery must succeed");
        assert_eq!(first.action, RecoveryAction::AffirmSnapshot);
        let second = rt.recover(&tdg).expect("recovery of a recovered state must succeed");
        assert_eq!(second.action, RecoveryAction::AffirmSnapshot);
        assert_eq!(rt.active_plan(), Some(&plan));
        // Epochs strictly increase across recoveries.
        assert!(second.epoch > first.epoch);
        let replay = rt.journal().replay().unwrap();
        assert!(replay
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::RecoveryCompleted { .. })));
    }

    #[test]
    fn recovery_with_a_down_switch_demotes_resume_to_rollback() {
        let (tdg, net, plan) = workload();
        let mut rt = runtime(net);
        let n = plan.occupied_switch_count() as u64;
        rt.injector_mut().arm_controller_crash_at(2 + n, CrashTiming::AfterWrite);
        assert!(matches!(rt.rollout(&tdg, plan.clone()), RolloutOutcome::ControllerCrashed { .. }));
        // A switch the target occupies dies while the controller is down:
        // the forward target no longer verifies, so recovery demotes.
        let victim = *plan.occupied_switches().iter().next().unwrap();
        rt.fail_switch(victim);
        let report = rt.recover(&tdg).expect("recovery must succeed");
        assert_eq!(report.action, RecoveryAction::RollBackTxn);
        assert_eq!(rt.active_plan(), None, "no snapshot existed to fall back to");
    }

    #[test]
    fn probabilistic_controller_crashes_recover_across_seeds() {
        let (tdg, net, plan) = workload();
        let profile = FaultProfile { controller_crash_prob: 0.2, ..FaultProfile::none() };
        let mut crashes = 0;
        for seed in 0..20u64 {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, profile),
                RetryPolicy::default(),
            );
            let outcome = rt.rollout(&tdg, plan.clone());
            if let RolloutOutcome::ControllerCrashed { .. } = outcome {
                crashes += 1;
                let report = rt.recover(&tdg).expect("recovery must succeed");
                // Exactly plan A (nothing, pre-first-commit) or exactly
                // plan B — never a mix.
                match rt.active_plan() {
                    Some(active) => {
                        assert_eq!(active, &plan);
                        for switch in plan.occupied_switches() {
                            if !rt.network().down_switches().contains(&switch) {
                                assert_eq!(
                                    rt.agent(switch).unwrap().active_epoch(),
                                    Some(report.epoch)
                                );
                            }
                        }
                    }
                    None => {
                        for agent in rt.agents() {
                            if !agent.is_crashed() {
                                assert_eq!(agent.active_epoch(), None);
                            }
                        }
                    }
                }
            }
        }
        assert!(crashes > 0, "p=0.2 over 20 seeds must crash at least once");
    }
}
