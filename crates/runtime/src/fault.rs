//! Deterministic, seeded fault injection.
//!
//! Every failure the runtime can experience is drawn from one
//! [`FaultInjector`] seeded by the experiment: the same seed against the
//! same rollout produces the identical fault schedule, which is what makes
//! chaos soak runs reproducible byte-for-byte.

// The crate-level clippy.toml bans unwrap/expect so the recovery path
// (journal.rs, recovery.rs) can never panic; this pre-durability module
// keeps its intentional `expect`s on internal invariants.
#![allow(clippy::disallowed_methods)]

use crate::journal::CrashTiming;
use hermes_net::{Network, SwitchId};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fault or channel profile carried a field that is not a probability.
///
/// Probabilities must be finite and inside `[0.0, 1.0]`; NaN, negative,
/// and `> 1.0` values are rejected at construction so a typo in an
/// experiment config fails loudly instead of silently skewing (or
/// saturating) a fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileError {
    /// Name of the offending field.
    pub field: String,
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` = {} is not a probability (must be in [0.0, 1.0] and not NaN)",
            self.field, self.value
        )
    }
}

impl std::error::Error for ProfileError {}

/// Checks that every `(name, value)` pair is a probability.
pub(crate) fn validate_probabilities(fields: &[(&str, f64)]) -> Result<(), ProfileError> {
    for &(field, value) in fields {
        if !(0.0..=1.0).contains(&value) {
            return Err(ProfileError { field: field.to_string(), value });
        }
    }
    Ok(())
}

/// Per-draw fault probabilities. All probabilities are evaluated
/// independently per prepare attempt, in a fixed order (crash, reject,
/// link, slow, partial), so a profile change never silently reshuffles an
/// unrelated seed's schedule within one draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Switch crashes while handling the install (stays down).
    pub crash_prob: f64,
    /// Agent refuses the staged config (transient; retryable).
    pub reject_prob: f64,
    /// A random link of the substrate goes down during the install.
    pub link_down_prob: f64,
    /// The agent answers slower than the runtime's timeout (retryable).
    pub slow_prob: f64,
    /// Only a prefix of the config's stages lands before the agent fails
    /// (retryable after the partial stage is wiped).
    pub partial_prob: f64,
    /// A switch hosting MATs crashes *after* the transaction commits,
    /// exercising the healing path.
    pub post_commit_crash_prob: f64,
    /// The *controller* crashes at a journal-write boundary, losing all
    /// in-memory state; only the durable journal survives. Evaluated once
    /// per journal write. Kept at `0.0` by both [`FaultProfile::none`]
    /// and [`FaultProfile::chaos`] so pre-existing seeded schedules stay
    /// byte-identical; crash soaks either raise it explicitly or use
    /// [`FaultInjector::arm_controller_crash_at`] for exhaustive
    /// boundary coverage.
    pub controller_crash_prob: f64,
}

impl FaultProfile {
    /// No faults at all — the runtime degenerates to a plain installer.
    pub fn none() -> Self {
        FaultProfile {
            crash_prob: 0.0,
            reject_prob: 0.0,
            link_down_prob: 0.0,
            slow_prob: 0.0,
            partial_prob: 0.0,
            post_commit_crash_prob: 0.0,
            controller_crash_prob: 0.0,
        }
    }

    /// Validates that every field is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] naming the first NaN, negative, or `> 1.0`
    /// field.
    pub fn validate(&self) -> Result<(), ProfileError> {
        validate_probabilities(&[
            ("crash_prob", self.crash_prob),
            ("reject_prob", self.reject_prob),
            ("link_down_prob", self.link_down_prob),
            ("slow_prob", self.slow_prob),
            ("partial_prob", self.partial_prob),
            ("post_commit_crash_prob", self.post_commit_crash_prob),
            ("controller_crash_prob", self.controller_crash_prob),
        ])
    }

    /// The default chaos mix used by soak tests and the `chaos` CLI:
    /// mostly transient faults, occasional crashes, and a substantial
    /// chance the committed deployment loses a switch afterwards.
    pub fn chaos() -> Self {
        FaultProfile {
            crash_prob: 0.04,
            reject_prob: 0.15,
            link_down_prob: 0.05,
            slow_prob: 0.10,
            partial_prob: 0.10,
            post_commit_crash_prob: 0.30,
            // Controller crashes are opt-in: leaving this at 0.0 keeps
            // every pre-durability seeded schedule byte-identical.
            controller_crash_prob: 0.0,
        }
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// One injected fault, as recorded in the event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// The switch crashed mid-install and stays down.
    SwitchCrash,
    /// The agent rejected the staged config.
    RejectInstall,
    /// The link `a <-> b` went down.
    LinkDown {
        /// One endpoint.
        a: SwitchId,
        /// The other endpoint.
        b: SwitchId,
    },
    /// The agent responded after `delay_us`, beyond the runtime timeout.
    SlowResponse {
        /// Simulated response time in microseconds.
        delay_us: u64,
    },
    /// Only the first `installed_stages` of `expected_stages` landed.
    PartialInstall {
        /// Stages that were written before the failure.
        installed_stages: usize,
        /// Stages the config required.
        expected_stages: usize,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::SwitchCrash => f.write_str("switch crash"),
            Fault::RejectInstall => f.write_str("install rejected"),
            Fault::LinkDown { a, b } => write!(f, "link {a} <-> {b} down"),
            Fault::SlowResponse { delay_us } => write!(f, "slow response ({delay_us} us)"),
            Fault::PartialInstall { installed_stages, expected_stages } => {
                write!(f, "partial install ({installed_stages}/{expected_stages} stages)")
            }
        }
    }
}

/// Seeded source of all runtime failures.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    rng: StdRng,
    profile: FaultProfile,
    journal_writes: u64,
    armed_crash: Option<(u64, CrashTiming)>,
}

impl FaultInjector {
    /// An injector drawing from `profile` with a deterministic schedule
    /// fully determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile carries a non-probability field; use
    /// [`FaultInjector::try_new`] to handle that as a value.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        FaultInjector::try_new(seed, profile).expect("invalid fault profile")
    }

    /// Fallible constructor: validates `profile` before accepting it.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] for NaN, negative, or `> 1.0`
    /// probabilities.
    pub fn try_new(seed: u64, profile: FaultProfile) -> Result<Self, ProfileError> {
        profile.validate()?;
        Ok(FaultInjector {
            seed,
            rng: StdRng::seed_from_u64(seed),
            profile,
            journal_writes: 0,
            armed_crash: None,
        })
    }

    /// An injector that never faults (for plain installs).
    pub fn disabled() -> Self {
        FaultInjector::new(0, FaultProfile::none())
    }

    /// The profile this injector draws from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The seed this injector (and every stream derived from it) was
    /// built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides the fate of one prepare attempt on a switch whose config
    /// spans `stage_count` stages. `None` means the install succeeds.
    pub fn on_prepare(
        &mut self,
        net: &Network,
        stage_count: usize,
        timeout_us: u64,
    ) -> Option<Fault> {
        let p = self.profile;
        if self.rng.random_bool(p.crash_prob) {
            return Some(Fault::SwitchCrash);
        }
        if self.rng.random_bool(p.reject_prob) {
            return Some(Fault::RejectInstall);
        }
        if self.rng.random_bool(p.link_down_prob) && net.link_count() > 0 {
            let link = net.links()[self.rng.random_range(0..net.link_count())];
            return Some(Fault::LinkDown { a: link.a, b: link.b });
        }
        if self.rng.random_bool(p.slow_prob) {
            let delay_us = timeout_us.max(1) + self.rng.random_range(1..=timeout_us.max(1));
            return Some(Fault::SlowResponse { delay_us });
        }
        if self.rng.random_bool(p.partial_prob) {
            let installed_stages =
                if stage_count == 0 { 0 } else { self.rng.random_range(0..stage_count) };
            return Some(Fault::PartialInstall { installed_stages, expected_stages: stage_count });
        }
        None
    }

    /// After a successful commit over `occupied` switches, the switch (if
    /// any) that crashes and must be healed around.
    pub fn post_commit_crash(&mut self, occupied: &[SwitchId]) -> Option<SwitchId> {
        if occupied.is_empty() || !self.rng.random_bool(self.profile.post_commit_crash_prob) {
            return None;
        }
        Some(occupied[self.rng.random_range(0..occupied.len())])
    }

    /// Decides whether the *controller* crashes at this journal-write
    /// boundary, and with which timing relative to the write. Called once
    /// per journal write; the return short-circuits with **zero RNG
    /// draws** when `controller_crash_prob` is 0 and no deterministic
    /// crash is armed, so enabling the durability layer does not perturb
    /// pre-existing seeded fault schedules.
    pub fn on_journal_write(&mut self) -> Option<CrashTiming> {
        let boundary = self.journal_writes;
        self.journal_writes += 1;
        if let Some((nth, timing)) = self.armed_crash {
            return (boundary == nth).then_some(timing);
        }
        if self.profile.controller_crash_prob <= 0.0 {
            return None;
        }
        if self.rng.random_bool(self.profile.controller_crash_prob) {
            let timing = if self.rng.random_bool(0.5) {
                CrashTiming::BeforeWrite
            } else {
                CrashTiming::AfterWrite
            };
            return Some(timing);
        }
        None
    }

    /// Arms a deterministic controller crash at the `nth` journal-write
    /// boundary counted from now (0-based), with the given timing. While
    /// armed, probabilistic controller crashes are suppressed — soaks use
    /// this to place exactly one crash at every boundary in turn.
    pub fn arm_controller_crash_at(&mut self, nth: u64, timing: CrashTiming) {
        self.journal_writes = 0;
        self.armed_crash = Some((nth, timing));
    }

    /// Disarms any armed controller crash (recovery runs under the
    /// single-fault model: the controller does not crash again while
    /// recovering).
    pub fn disarm_controller_crash(&mut self) {
        self.armed_crash = None;
    }

    /// Journal-write boundaries observed since construction (or since the
    /// last [`FaultInjector::arm_controller_crash_at`]). A crash-free dry
    /// run reads this to learn how many boundaries a scenario has.
    pub fn journal_writes(&self) -> u64 {
        self.journal_writes
    }

    /// Deterministic backoff jitter in `[0, span_us]`.
    pub fn jitter_us(&mut self, span_us: u64) -> u64 {
        if span_us == 0 {
            0
        } else {
            self.rng.random_range(0..=span_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::topology;

    #[test]
    fn same_seed_same_schedule() {
        let net = topology::linear(4, 10.0);
        let draw = |seed: u64| {
            let mut inj = FaultInjector::new(seed, FaultProfile::chaos());
            (0..32).map(|_| inj.on_prepare(&net, 5, 200)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds should diverge somewhere");
    }

    #[test]
    fn disabled_injector_never_faults() {
        let net = topology::linear(4, 10.0);
        let mut inj = FaultInjector::disabled();
        assert!((0..100).all(|_| inj.on_prepare(&net, 3, 200).is_none()));
        assert!(inj.post_commit_crash(&net.switch_ids().collect::<Vec<_>>()).is_none());
    }

    #[test]
    fn invalid_profiles_are_rejected_with_a_typed_error() {
        type Mutator = fn(&mut FaultProfile, f64);
        let cases: [(Mutator, &str); 7] = [
            (|p, v| p.crash_prob = v, "crash_prob"),
            (|p, v| p.reject_prob = v, "reject_prob"),
            (|p, v| p.link_down_prob = v, "link_down_prob"),
            (|p, v| p.slow_prob = v, "slow_prob"),
            (|p, v| p.partial_prob = v, "partial_prob"),
            (|p, v| p.post_commit_crash_prob = v, "post_commit_crash_prob"),
            (|p, v| p.controller_crash_prob = v, "controller_crash_prob"),
        ];
        for (mutate, field) in cases {
            for bad in [f64::NAN, -0.01, 1.01, f64::INFINITY, f64::NEG_INFINITY] {
                let mut profile = FaultProfile::none();
                mutate(&mut profile, bad);
                let e = FaultInjector::try_new(0, profile)
                    .expect_err(&format!("{field} = {bad} must be rejected"));
                assert_eq!(e.field, field);
                assert!(e.value.is_nan() == bad.is_nan() && (bad.is_nan() || e.value == bad));
                assert!(e.to_string().contains(field), "{e}");
            }
        }
        // Boundary values are fine.
        let mut edge = FaultProfile::none();
        edge.reject_prob = 1.0;
        assert!(FaultInjector::try_new(0, edge).is_ok());
        assert!(FaultProfile::chaos().validate().is_ok());
    }

    #[test]
    fn zero_prob_journal_writes_do_not_perturb_the_schedule() {
        // With controller_crash_prob == 0 the journal-write hook must make
        // no RNG draws, so interleaving it must not change other faults.
        let net = topology::linear(4, 10.0);
        let plain = {
            let mut inj = FaultInjector::new(7, FaultProfile::chaos());
            (0..32).map(|_| inj.on_prepare(&net, 5, 200)).collect::<Vec<_>>()
        };
        let interleaved = {
            let mut inj = FaultInjector::new(7, FaultProfile::chaos());
            (0..32)
                .map(|_| {
                    assert!(inj.on_journal_write().is_none());
                    inj.on_prepare(&net, 5, 200)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(plain, interleaved);
    }

    #[test]
    fn armed_controller_crash_fires_exactly_once_at_the_nth_boundary() {
        let mut inj = FaultInjector::disabled();
        inj.arm_controller_crash_at(3, CrashTiming::BeforeWrite);
        let hits: Vec<Option<CrashTiming>> = (0..6).map(|_| inj.on_journal_write()).collect();
        assert_eq!(hits, vec![None, None, None, Some(CrashTiming::BeforeWrite), None, None]);
        assert_eq!(inj.journal_writes(), 6);
        inj.disarm_controller_crash();
        assert!(inj.on_journal_write().is_none());
    }

    #[test]
    fn probabilistic_controller_crashes_are_seeded_and_bimodal_in_timing() {
        let mut profile = FaultProfile::none();
        profile.controller_crash_prob = 0.5;
        let draw = |seed: u64| {
            let mut inj = FaultInjector::new(seed, profile);
            (0..64).map(|_| inj.on_journal_write()).collect::<Vec<_>>()
        };
        assert_eq!(draw(11), draw(11));
        let sample = draw(11);
        assert!(sample.iter().any(|t| matches!(t, Some(CrashTiming::BeforeWrite))));
        assert!(sample.iter().any(|t| matches!(t, Some(CrashTiming::AfterWrite))));
        assert!(sample.iter().any(Option::is_none));
    }

    #[test]
    fn chaos_profile_produces_every_fault_kind() {
        let net = topology::linear(4, 10.0);
        let mut inj = FaultInjector::new(42, FaultProfile::chaos());
        let mut seen = [false; 5];
        for _ in 0..2000 {
            match inj.on_prepare(&net, 6, 200) {
                Some(Fault::SwitchCrash) => seen[0] = true,
                Some(Fault::RejectInstall) => seen[1] = true,
                Some(Fault::LinkDown { .. }) => seen[2] = true,
                Some(Fault::SlowResponse { delay_us }) => {
                    assert!(delay_us > 200, "slow responses must exceed the timeout");
                    seen[3] = true;
                }
                Some(Fault::PartialInstall { installed_stages, expected_stages }) => {
                    assert!(installed_stages < expected_stages);
                    seen[4] = true;
                }
                None => {}
            }
        }
        assert!(seen.iter().all(|&s| s), "missing fault kinds: {seen:?}");
    }
}
