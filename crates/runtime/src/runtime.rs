//! The failure-aware deployment runtime.
//!
//! [`DeploymentRuntime`] installs a verified [`DeploymentPlan`] onto a
//! fleet of emulated [`SwitchAgent`]s as a two-phase transaction:
//!
//! 1. **Prepare** — each occupied switch stages its config. Installs can
//!    fail through the seeded [`FaultInjector`]; transient faults are
//!    retried with exponential backoff plus deterministic jitter on a
//!    virtual clock.
//! 2. **Commit** — only when every switch staged (and the plan still
//!    validates against the possibly-degraded network) do all agents
//!    atomically activate. Otherwise the transaction aborts and the
//!    previous plan keeps serving — rollback is a no-op on the data plane
//!    because staged configs never serve traffic.
//!
//! If a switch crashes *after* commit, the runtime marks it down in the
//! [`Network`], re-runs the incremental deployer with all surviving
//! placements pinned ([`RedeployOptions::excluding`]), revalidates the
//! healed plan (ε-verifier + packet-level equivalence), and transitions to
//! it — recording the recovery latency and `A_max` before/after in the
//! event log.

use crate::agent::SwitchAgent;
use crate::event::{Event, EventLog};
use crate::fault::{Fault, FaultInjector};
use hermes_backend::{validate_plan, DeploymentArtifacts};
use hermes_core::{verify, DeploymentPlan, Epsilon, IncrementalDeployer, RedeployOptions};
use hermes_net::{Network, SwitchId};
use hermes_tdg::Tdg;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Retry/backoff policy for the prepare phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum prepare attempts per switch (including the first).
    pub max_attempts: u32,
    /// Backoff before attempt `n + 1` starts at `base_delay_us << (n - 1)`.
    pub base_delay_us: u64,
    /// Backoff (before jitter) is capped here.
    pub max_delay_us: u64,
    /// Responses slower than this count as a timed-out attempt.
    pub timeout_us: u64,
    /// Virtual cost of one round-trip to an agent.
    pub rpc_cost_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_us: 100,
            max_delay_us: 2_000,
            timeout_us: 200,
            rpc_cost_us: 50,
        }
    }
}

impl RetryPolicy {
    /// The pre-jitter backoff before `next_attempt` (2-based; there is no
    /// delay before the first attempt).
    fn backoff_us(&self, next_attempt: u32) -> u64 {
        let shift = next_attempt.saturating_sub(2).min(63);
        self.base_delay_us.saturating_mul(1u64 << shift).min(self.max_delay_us)
    }
}

/// Terminal state of one [`DeploymentRuntime::rollout`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RolloutOutcome {
    /// The plan (or, after a post-commit failure, a healed variant of it)
    /// is active and validated.
    Committed {
        /// The epoch now serving.
        epoch: u64,
        /// `true` when a post-commit switch failure was healed around.
        healed: bool,
    },
    /// The transaction aborted; the previously active plan still serves.
    RolledBack {
        /// The abandoned epoch.
        epoch: u64,
        /// Why the transaction could not commit.
        reason: String,
    },
}

impl RolloutOutcome {
    /// `true` for the committed case.
    pub fn is_committed(&self) -> bool {
        matches!(self, RolloutOutcome::Committed { .. })
    }
}

impl fmt::Display for RolloutOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutOutcome::Committed { epoch, healed: false } => {
                write!(f, "epoch {epoch} committed")
            }
            RolloutOutcome::Committed { epoch, healed: true } => {
                write!(f, "epoch {epoch} committed after healing")
            }
            RolloutOutcome::RolledBack { epoch, reason } => {
                write!(f, "epoch {epoch} rolled back: {reason}")
            }
        }
    }
}

/// The plan currently serving traffic, with everything needed to heal it.
#[derive(Debug, Clone, PartialEq)]
struct ActiveDeployment {
    epoch: u64,
    tdg: Tdg,
    plan: DeploymentPlan,
    artifacts: DeploymentArtifacts,
}

/// The transactional, failure-aware deployment runtime.
#[derive(Debug, Clone)]
pub struct DeploymentRuntime {
    net: Network,
    agents: BTreeMap<SwitchId, SwitchAgent>,
    injector: FaultInjector,
    policy: RetryPolicy,
    eps: Epsilon,
    packet_seeds: Vec<u64>,
    clock_us: u64,
    epoch: u64,
    log: EventLog,
    active: Option<ActiveDeployment>,
}

impl DeploymentRuntime {
    /// A runtime fronting `net` with one agent per switch.
    pub fn new(net: Network, eps: Epsilon, injector: FaultInjector, policy: RetryPolicy) -> Self {
        let agents = net.switch_ids().map(|s| (s, SwitchAgent::new(s))).collect();
        DeploymentRuntime {
            net,
            agents,
            injector,
            policy,
            eps,
            packet_seeds: vec![0, 1, 2, 3],
            clock_us: 0,
            epoch: 0,
            log: EventLog::new(),
            active: None,
        }
    }

    /// The substrate network, including any failure state accumulated so
    /// far.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The structured event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// The plan currently serving, if any.
    pub fn active_plan(&self) -> Option<&DeploymentPlan> {
        self.active.as_ref().map(|a| &a.plan)
    }

    /// The epoch currently serving, if any.
    pub fn active_epoch(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.epoch)
    }

    /// The ε-bounds every activated plan is validated against.
    pub fn epsilon(&self) -> &Epsilon {
        &self.eps
    }

    /// Overrides the packet seeds used for pre-activation equivalence
    /// checks.
    pub fn set_packet_seeds(&mut self, seeds: Vec<u64>) {
        self.packet_seeds = seeds;
    }

    /// Replaces the fault injector, e.g. to run one clean rollout and then
    /// turn chaos on for the next epoch.
    pub fn set_injector(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// Marks a switch as failed (operator- or injector-initiated) without
    /// healing. The agent is crashed and the network degraded.
    pub fn fail_switch(&mut self, switch: SwitchId) {
        self.net.fail_switch(switch);
        if let Some(agent) = self.agents.get_mut(&switch) {
            agent.crash();
        }
        self.log.push(Event::SwitchDown { switch, at_us: self.clock_us });
    }

    /// Installs `plan` for `tdg` as a two-phase transaction, healing a
    /// post-commit switch failure if one is injected. Exactly one of two
    /// terminal states results: a committed, validated plan is serving, or
    /// the transaction rolled back and the previous plan is untouched.
    pub fn rollout(&mut self, tdg: &Tdg, plan: DeploymentPlan) -> RolloutOutcome {
        self.epoch += 1;
        let epoch = self.epoch;
        // Snapshot the pre-rollout deployment: it is what a failed heal
        // rolls back to.
        let prior = self.active.clone();
        let switches: Vec<SwitchId> = plan.occupied_switches().into_iter().collect();
        self.log.push(Event::RolloutStarted {
            epoch,
            switches: switches.clone(),
            at_us: self.clock_us,
        });

        // Pre-install validation: constraints + packet equivalence.
        let (report, artifacts) =
            validate_plan(tdg, &self.net, &plan, &self.eps, &self.packet_seeds);
        if !report.is_ok() {
            self.log.push(Event::ValidationFailed {
                epoch,
                failures: report.failures.iter().map(ToString::to_string).collect(),
                at_us: self.clock_us,
            });
            return self.roll_back(epoch, "pre-install validation failed".to_string());
        }

        if let Err(reason) = self.install_transaction(tdg, &plan, &artifacts, epoch) {
            return self.roll_back(epoch, reason);
        }
        self.activate(epoch, tdg.clone(), plan, artifacts);

        // The committed deployment may immediately lose a switch.
        let occupied: Vec<SwitchId> = self
            .active
            .as_ref()
            .expect("just activated")
            .plan
            .occupied_switches()
            .into_iter()
            .collect();
        if let Some(dead) = self.injector.post_commit_crash(&occupied) {
            self.fail_switch(dead);
            return self.heal(prior);
        }
        RolloutOutcome::Committed { epoch, healed: false }
    }

    /// Re-homes the MATs lost to down switches and transitions to the
    /// healed plan. On any failure the runtime rolls back to `previous`
    /// (the last-known-good deployment before the failing rollout).
    fn heal(&mut self, previous: Option<ActiveDeployment>) -> RolloutOutcome {
        let Some(active) = self.active.clone() else {
            return RolloutOutcome::RolledBack {
                epoch: self.epoch,
                reason: "nothing to heal".to_string(),
            };
        };
        let healing_started_us = self.clock_us;
        self.epoch += 1;
        let epoch = self.epoch;
        let down = self.net.down_switches();
        self.log.push(Event::HealingStarted { epoch, down: down.clone(), at_us: self.clock_us });
        let a_max_before = active.plan.max_inter_switch_bytes(&active.tdg);

        let opts = RedeployOptions::excluding(down);
        let outcome = match IncrementalDeployer::new().redeploy_with(
            &active.tdg,
            &active.plan,
            &active.tdg,
            &self.net,
            &self.eps,
            &opts,
        ) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.log.push(Event::HealingFailed {
                    epoch,
                    reason: e.to_string(),
                    at_us: self.clock_us,
                });
                return self.roll_back_to(previous, epoch, format!("healing infeasible: {e}"));
            }
        };
        self.log.push(Event::HealingPlanned {
            epoch,
            reused: outcome.reused,
            placed: outcome.placed,
            full_redeploy: outcome.full_redeploy,
            at_us: self.clock_us,
        });

        // Revalidate on the degraded network before activating.
        let (report, artifacts) =
            validate_plan(&active.tdg, &self.net, &outcome.plan, &self.eps, &self.packet_seeds);
        if !report.is_ok() {
            self.log.push(Event::HealingFailed {
                epoch,
                reason: report.to_string(),
                at_us: self.clock_us,
            });
            return self.roll_back_to(previous, epoch, "healed plan failed validation".to_string());
        }
        if let Err(reason) = self.install_transaction(&active.tdg, &outcome.plan, &artifacts, epoch)
        {
            return self.roll_back_to(previous, epoch, reason);
        }
        let a_max_after = outcome.plan.max_inter_switch_bytes(&active.tdg);
        self.activate(epoch, active.tdg, outcome.plan, artifacts);
        self.log.push(Event::RecoveryCompleted {
            epoch,
            recovery_us: self.clock_us - healing_started_us,
            a_max_before,
            a_max_after,
            at_us: self.clock_us,
        });
        RolloutOutcome::Committed { epoch, healed: true }
    }

    /// Phase 1 (prepare with retry) + mid-transaction revalidation +
    /// phase 2 (commit). On error every staged agent has been aborted and
    /// nothing was activated.
    fn install_transaction(
        &mut self,
        tdg: &Tdg,
        plan: &DeploymentPlan,
        artifacts: &DeploymentArtifacts,
        epoch: u64,
    ) -> Result<(), String> {
        let mut prepared: Vec<SwitchId> = Vec::new();
        for (&switch, config) in &artifacts.switches {
            match self.prepare_with_retry(switch, config.clone(), epoch) {
                Ok(()) => prepared.push(switch),
                Err(reason) => {
                    self.abort_prepared(&prepared);
                    return Err(reason);
                }
            }
        }
        // Faults during prepare (link down, crashed bystander) may have
        // degraded the network under the transaction's feet; the plan must
        // still hold on what is actually left before anything activates.
        let violations = verify(tdg, &self.net, plan, &self.eps);
        if !violations.is_empty() {
            self.abort_prepared(&prepared);
            return Err(format!("plan no longer valid at commit time: {}", violations[0]));
        }
        for &switch in &prepared {
            let agent = self.agents.get_mut(&switch).expect("agents cover all switches");
            if let Err(e) = agent.commit(epoch) {
                // Should be unreachable (prepare succeeded, network
                // revalidated) — but if an agent still refuses, abort the
                // remainder rather than activate a torn deployment.
                self.abort_prepared(&prepared);
                return Err(format!("commit refused by {switch}: {e}"));
            }
        }
        self.log.push(Event::Committed { epoch, at_us: self.clock_us });
        Ok(())
    }

    /// One switch's prepare with bounded retry and exponential backoff.
    fn prepare_with_retry(
        &mut self,
        switch: SwitchId,
        config: hermes_backend::SwitchConfig,
        epoch: u64,
    ) -> Result<(), String> {
        let stage_count = config.stages.len();
        for attempt in 1..=self.policy.max_attempts {
            self.clock_us += self.policy.rpc_cost_us;
            self.log.push(Event::PrepareAttempt { epoch, switch, attempt, at_us: self.clock_us });
            if self.agents[&switch].is_crashed() {
                return Err(format!("switch {switch} is down"));
            }
            let fault = self.injector.on_prepare(&self.net, stage_count, self.policy.timeout_us);
            match fault {
                None => {
                    self.agents
                        .get_mut(&switch)
                        .expect("agents cover all switches")
                        .prepare(epoch, config)
                        .map_err(|e| format!("prepare on {switch} failed: {e}"))?;
                    self.log.push(Event::Prepared { epoch, switch, at_us: self.clock_us });
                    return Ok(());
                }
                Some(fault) => {
                    self.log.push(Event::FaultInjected {
                        epoch,
                        switch,
                        fault: fault.clone(),
                        at_us: self.clock_us,
                    });
                    match fault {
                        Fault::SwitchCrash => {
                            self.fail_switch(switch);
                            return Err(format!("switch {switch} crashed during prepare"));
                        }
                        Fault::LinkDown { a, b } => {
                            // The install attempt itself is lost with the
                            // link; the degradation is caught by the
                            // commit-time revalidation.
                            self.net.fail_link(a, b);
                        }
                        Fault::SlowResponse { .. } => {
                            self.clock_us += self.policy.timeout_us;
                        }
                        Fault::RejectInstall | Fault::PartialInstall { .. } => {
                            // A partial install leaves staged garbage the
                            // retry overwrites; abort to model wiping it.
                            self.agents
                                .get_mut(&switch)
                                .expect("agents cover all switches")
                                .abort();
                        }
                    }
                    if attempt == self.policy.max_attempts {
                        return Err(format!(
                            "switch {switch} failed all {} prepare attempts (last: {fault})",
                            self.policy.max_attempts
                        ));
                    }
                    let delay_us = self.policy.backoff_us(attempt + 1)
                        + self.injector.jitter_us(self.policy.base_delay_us);
                    self.clock_us += delay_us;
                    self.log.push(Event::RetryScheduled {
                        epoch,
                        switch,
                        next_attempt: attempt + 1,
                        delay_us,
                        at_us: self.clock_us,
                    });
                }
            }
        }
        unreachable!("loop returns on success or final attempt")
    }

    fn abort_prepared(&mut self, prepared: &[SwitchId]) {
        for &switch in prepared {
            if let Some(agent) = self.agents.get_mut(&switch) {
                agent.abort();
            }
        }
    }

    fn activate(
        &mut self,
        epoch: u64,
        tdg: Tdg,
        plan: DeploymentPlan,
        artifacts: DeploymentArtifacts,
    ) {
        self.log.push(Event::Activated {
            epoch,
            a_max_bytes: plan.max_inter_switch_bytes(&tdg),
            latency_us: plan.end_to_end_latency_us(),
            occupied: plan.occupied_switch_count(),
            at_us: self.clock_us,
        });
        self.active = Some(ActiveDeployment { epoch, tdg, plan, artifacts });
    }

    /// Aborts epoch `epoch`, leaving the current active deployment as-is.
    fn roll_back(&mut self, epoch: u64, reason: String) -> RolloutOutcome {
        self.log.push(Event::RolledBack { epoch, reason: reason.clone(), at_us: self.clock_us });
        RolloutOutcome::RolledBack { epoch, reason }
    }

    /// Aborts epoch `epoch` and restores `previous` as the active
    /// deployment, force-reactivating its configs on every surviving
    /// agent (the last-known-good rollback after a failed heal).
    fn roll_back_to(
        &mut self,
        previous: Option<ActiveDeployment>,
        epoch: u64,
        reason: String,
    ) -> RolloutOutcome {
        for (&switch, agent) in &mut self.agents {
            let config = previous.as_ref().and_then(|p| p.artifacts.switches.get(&switch)).cloned();
            let prev_epoch = previous.as_ref().map_or(0, |p| p.epoch);
            agent.force_activate(prev_epoch, config);
        }
        self.active = previous;
        self.roll_back(epoch, reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultProfile;
    use hermes_core::{DeploymentAlgorithm, GreedyHeuristic, ProgramAnalyzer};
    use hermes_dataplane::library;
    use hermes_net::topology;

    fn workload() -> (Tdg, Network, DeploymentPlan) {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(4, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        (tdg, net, plan)
    }

    #[test]
    fn fault_free_rollout_commits() {
        let (tdg, net, plan) = workload();
        let mut rt = DeploymentRuntime::new(
            net,
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        let outcome = rt.rollout(&tdg, plan.clone());
        assert_eq!(outcome, RolloutOutcome::Committed { epoch: 1, healed: false });
        assert_eq!(rt.active_plan(), Some(&plan));
        assert_eq!(rt.active_epoch(), Some(1));
        assert_eq!(rt.log().count(|e| matches!(e, Event::Committed { .. })), 1);
        // One attempt per occupied switch, no retries.
        assert_eq!(
            rt.log().count(|e| matches!(e, Event::PrepareAttempt { .. })),
            plan.occupied_switch_count()
        );
        assert_eq!(rt.log().count(|e| matches!(e, Event::RetryScheduled { .. })), 0);
    }

    #[test]
    fn transient_rejects_are_retried_to_success() {
        let (tdg, net, plan) = workload();
        // Reject with p=0.5: with 4 attempts per switch a handful of seeds
        // still commit; pick one deterministically by scanning.
        let profile = FaultProfile { reject_prob: 0.5, ..FaultProfile::none() };
        let committed = (0..50u64).find(|&seed| {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, profile),
                RetryPolicy::default(),
            );
            let outcome = rt.rollout(&tdg, plan.clone());
            if outcome.is_committed() {
                assert!(
                    rt.log().count(|e| matches!(e, Event::RetryScheduled { .. })) > 0,
                    "seed {seed} committed without ever retrying — not the case we want"
                );
                true
            } else {
                assert_eq!(rt.active_plan(), None, "rollback must leave nothing active");
                false
            }
        });
        assert!(committed.is_some(), "no seed in 0..50 committed under 50% rejects");
    }

    #[test]
    fn rollback_keeps_previous_plan_serving() {
        let (tdg, net, plan) = workload();
        // First install cleanly, then roll out again under guaranteed
        // rejection: the second transaction must abort and epoch 1 serve.
        let mut rt = DeploymentRuntime::new(
            net,
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        assert!(rt.rollout(&tdg, plan.clone()).is_committed());
        rt.injector =
            FaultInjector::new(1, FaultProfile { reject_prob: 1.0, ..FaultProfile::none() });
        let outcome = rt.rollout(&tdg, plan.clone());
        assert!(!outcome.is_committed());
        assert_eq!(rt.active_epoch(), Some(1), "previous epoch keeps serving");
        assert_eq!(rt.active_plan(), Some(&plan));
    }

    #[test]
    fn post_commit_crash_heals_and_validates() {
        let (tdg, net, plan) = workload();
        let profile = FaultProfile { post_commit_crash_prob: 1.0, ..FaultProfile::none() };
        let mut healed_seen = false;
        for seed in 0..20u64 {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, profile),
                RetryPolicy::default(),
            );
            let outcome = rt.rollout(&tdg, plan.clone());
            match outcome {
                RolloutOutcome::Committed { healed, .. } => {
                    assert!(healed, "a post-commit crash was guaranteed");
                    healed_seen = true;
                    let active = rt.active_plan().unwrap();
                    // The healed plan avoids every down switch and still
                    // validates end to end.
                    for down in rt.network().down_switches() {
                        assert!(!active.occupied_switches().contains(&down));
                    }
                    assert!(verify(&tdg, rt.network(), active, &Epsilon::loose()).is_empty());
                    assert_eq!(rt.log().count(|e| matches!(e, Event::RecoveryCompleted { .. })), 1);
                }
                RolloutOutcome::RolledBack { .. } => {
                    assert_eq!(rt.active_plan(), None, "failed heal must roll back cleanly");
                }
            }
        }
        assert!(healed_seen, "no seed in 0..20 healed successfully");
    }

    #[test]
    fn event_log_is_reproducible_byte_for_byte() {
        let (tdg, net, plan) = workload();
        let run = |seed: u64| {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, FaultProfile::chaos()),
                RetryPolicy::default(),
            );
            rt.rollout(&tdg, plan.clone());
            rt.log().to_json()
        };
        for seed in [0u64, 7, 13] {
            assert_eq!(run(seed), run(seed), "seed {seed} diverged");
        }
    }
}
