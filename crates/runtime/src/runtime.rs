//! The failure-aware deployment runtime.
//!
//! [`DeploymentRuntime`] installs a verified [`DeploymentPlan`] onto a
//! fleet of emulated [`SwitchAgent`]s as a two-phase transaction whose
//! every prepare/commit/abort/probe travels a lossy [`ControlChannel`]:
//!
//! 1. **Prepare** — each occupied switch stages its config through
//!    `(epoch, seq)`-stamped request/reply exchanges. Installs can fail
//!    through the seeded [`FaultInjector`], and the channel can drop,
//!    duplicate, reorder, or delay any message; transient failures are
//!    retried with exponential backoff plus deterministic jitter on a
//!    virtual clock, and agents deduplicate replays and answer
//!    idempotently.
//! 2. **Commit** — only when every switch staged, the plan still
//!    validates against the possibly-degraded network, and — for a
//!    same-program plan change — every mixed-epoch window of the commit
//!    order preserves per-packet consistency
//!    ([`hermes_backend::check_transition`]) does the runtime start
//!    committing switch by switch. Each acked commit starts a lease the
//!    runtime renews with probes; a switch that stops answering is waited
//!    out (its lease lapses, so an alive-but-unreachable agent has
//!    provably self-fenced) and declared `Down`, feeding the existing
//!    healing path. Before any commit is sent the transaction can still
//!    abort cleanly — the previous plan keeps serving, and epoch fencing
//!    guarantees an aborted epoch can never activate later, even on an
//!    agent that missed the abort.
//!
//! If a switch crashes *after* commit, the runtime marks it down in the
//! [`Network`], re-runs the incremental deployer with all surviving
//! placements pinned ([`RedeployOptions::excluding`]), revalidates the
//! healed plan (ε-verifier + packet-level equivalence), and transitions to
//! it — recording the recovery latency and `A_max` before/after in the
//! event log. Healing deliberately skips the mixed-epoch gate: a dead
//! switch already broke per-packet consistency, and repairing service
//! outranks preserving a guarantee the failure voided.

// The crate-level clippy.toml bans unwrap/expect so the recovery path
// (journal.rs, recovery.rs) can never panic; this pre-durability module
// keeps its intentional `expect`s on internal invariants.
#![allow(clippy::disallowed_methods)]

use crate::agent::{
    AgentError, HandleNote, Reply, ReplyEnvelope, Request, RequestEnvelope, SwitchAgent,
};
use crate::channel::{ChannelProfile, ControlChannel, Message, SendReceipt};
use crate::event::{Event, EventLog, MessageKind};
use crate::fault::{Fault, FaultInjector};
use crate::journal::{CrashPoint, CrashTiming, Journal, JournalRecord, TxnKind};
use hermes_backend::{check_transition, validate_plan, DeploymentArtifacts, EpochTransition};
use hermes_core::{verify, DeploymentPlan, Epsilon, IncrementalDeployer, RedeployOptions};
use hermes_net::{Network, SwitchId};
use hermes_tdg::Tdg;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Retry/backoff/lease policy for the transaction protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per request kind per switch (including the first).
    pub max_attempts: u32,
    /// Backoff before attempt `n + 1` starts at `base_delay_us << (n - 1)`.
    pub base_delay_us: u64,
    /// Backoff (before jitter) is capped here.
    pub max_delay_us: u64,
    /// An exchange whose reply has not arrived after this long counts as
    /// a timed-out attempt.
    pub timeout_us: u64,
    /// Virtual cost of one well-behaved round-trip to an agent (the
    /// channel's one-way latency is half of this).
    pub rpc_cost_us: u64,
    /// Commit-window lease duration: an agent whose lease is not renewed
    /// for this long self-fences, and the runtime waits this long before
    /// declaring an unresponsive switch down.
    pub lease_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_us: 100,
            max_delay_us: 2_000,
            timeout_us: 200,
            rpc_cost_us: 50,
            lease_us: 20_000,
        }
    }
}

impl RetryPolicy {
    /// The pre-jitter backoff before `next_attempt` (2-based; there is no
    /// delay before the first attempt).
    fn backoff_us(&self, next_attempt: u32) -> u64 {
        let shift = next_attempt.saturating_sub(2).min(63);
        self.base_delay_us.saturating_mul(1u64 << shift).min(self.max_delay_us)
    }
}

/// Terminal state of one [`DeploymentRuntime::rollout`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RolloutOutcome {
    /// The plan (or, after a post-commit failure, a healed variant of it)
    /// is active and validated.
    Committed {
        /// The epoch now serving.
        epoch: u64,
        /// `true` when a post-commit switch failure was healed around.
        healed: bool,
    },
    /// The transaction aborted; the previously active plan still serves.
    RolledBack {
        /// The abandoned epoch.
        epoch: u64,
        /// Why the transaction could not commit.
        reason: String,
    },
    /// The controller itself crashed mid-protocol, losing all in-memory
    /// state. Only the durable journal survives; the agents are on their
    /// own until [`DeploymentRuntime::recover`] runs.
    ControllerCrashed {
        /// The epoch in flight when the crash struck.
        epoch: u64,
        /// Which journal-write boundary the crash struck at.
        point: CrashPoint,
    },
}

impl RolloutOutcome {
    /// `true` for the committed case.
    pub fn is_committed(&self) -> bool {
        matches!(self, RolloutOutcome::Committed { .. })
    }
}

impl fmt::Display for RolloutOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutOutcome::Committed { epoch, healed: false } => {
                write!(f, "epoch {epoch} committed")
            }
            RolloutOutcome::Committed { epoch, healed: true } => {
                write!(f, "epoch {epoch} committed after healing")
            }
            RolloutOutcome::RolledBack { epoch, reason } => {
                write!(f, "epoch {epoch} rolled back: {reason}")
            }
            RolloutOutcome::ControllerCrashed { epoch, point } => {
                write!(f, "controller crashed at epoch {epoch} ({point} boundary)")
            }
        }
    }
}

/// The controller crashed at a journal-write boundary. All in-memory
/// state (epoch counter, active deployment, in-flight transaction) is
/// gone; only [`DeploymentRuntime::journal`] survives. Returned through
/// every protocol entry point via `Result`, and sticky: a crashed
/// runtime refuses further protocol calls until
/// [`DeploymentRuntime::recover`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerCrash {
    /// The epoch in flight when the crash struck.
    pub epoch: u64,
    /// Which journal-write boundary the crash struck at.
    pub point: CrashPoint,
    /// Whether the record at that boundary landed before the crash.
    pub timing: CrashTiming,
}

impl fmt::Display for ControllerCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let timing = match self.timing {
            CrashTiming::BeforeWrite => "before",
            CrashTiming::AfterWrite => "after",
        };
        write!(
            f,
            "controller crashed at epoch {} ({} boundary, {timing} the journal write)",
            self.epoch, self.point
        )
    }
}

/// Why [`DeploymentRuntime::install_transaction`] did not commit: a clean
/// pre-commit abort (previous plan untouched) or a controller crash.
pub(crate) enum TxnFailure {
    /// The transaction aborted before any commit was sent.
    Aborted(String),
    /// The controller died mid-transaction.
    Crashed(ControllerCrash),
}

impl From<ControllerCrash> for TxnFailure {
    fn from(crash: ControllerCrash) -> Self {
        TxnFailure::Crashed(crash)
    }
}

/// The plan currently serving traffic, with everything needed to heal it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ActiveDeployment {
    pub(crate) epoch: u64,
    pub(crate) tdg: Tdg,
    pub(crate) plan: DeploymentPlan,
    pub(crate) artifacts: DeploymentArtifacts,
}

/// The transactional, failure-aware deployment runtime.
///
/// Fields are crate-visible: the staged-migration executor
/// ([`crate::migrate`]) drives the same agents, channel, clock, and log
/// through the same helpers.
#[derive(Debug, Clone)]
pub struct DeploymentRuntime {
    pub(crate) net: Network,
    pub(crate) agents: BTreeMap<SwitchId, SwitchAgent>,
    pub(crate) injector: FaultInjector,
    pub(crate) channel: ControlChannel,
    pub(crate) policy: RetryPolicy,
    pub(crate) eps: Epsilon,
    pub(crate) packet_seeds: Vec<u64>,
    pub(crate) clock_us: u64,
    pub(crate) epoch: u64,
    pub(crate) seq: u64,
    pub(crate) log: EventLog,
    pub(crate) active: Option<ActiveDeployment>,
    recovery_budget_ms: Option<u64>,
    pub(crate) journal: Journal,
    pub(crate) crashed: Option<ControllerCrash>,
}

impl DeploymentRuntime {
    /// A runtime fronting `net` with one agent per switch and a perfect
    /// control channel ([`ChannelProfile::none`]); use
    /// [`DeploymentRuntime::with_channel_profile`] to make it lossy.
    pub fn new(net: Network, eps: Epsilon, injector: FaultInjector, policy: RetryPolicy) -> Self {
        let agents = net.switch_ids().map(|s| (s, SwitchAgent::new(s))).collect();
        let channel = ControlChannel::new(
            injector.seed(),
            ChannelProfile::none(),
            (policy.rpc_cost_us / 2).max(1),
        );
        DeploymentRuntime {
            net,
            agents,
            injector,
            channel,
            policy,
            eps,
            packet_seeds: vec![0, 1, 2, 3],
            clock_us: 0,
            epoch: 0,
            seq: 0,
            log: EventLog::new(),
            active: None,
            recovery_budget_ms: None,
            journal: Journal::new(),
            crashed: None,
        }
    }

    /// Builder: when healing falls back to a full redeploy, race the
    /// greedy heuristic against the exact search under `budget` (the
    /// recovery deadline) instead of running the heuristic alone. Off by
    /// default — healing then uses the plain heuristic fallback.
    #[must_use]
    pub fn with_recovery_budget(mut self, budget: std::time::Duration) -> Self {
        self.recovery_budget_ms = Some(budget.as_millis().try_into().unwrap_or(u64::MAX));
        self
    }

    /// Builder-style variant of [`DeploymentRuntime::set_channel_profile`].
    #[must_use]
    pub fn with_channel_profile(mut self, profile: ChannelProfile) -> Self {
        self.set_channel_profile(profile);
        self
    }

    /// Replaces the control channel with one drawing from `profile`,
    /// seeded from the fault injector's seed (any in-flight messages are
    /// discarded — configure the channel before rolling out).
    pub fn set_channel_profile(&mut self, profile: ChannelProfile) {
        self.channel = ControlChannel::new(
            self.injector.seed(),
            profile,
            (self.policy.rpc_cost_us / 2).max(1),
        );
    }

    /// The control channel's misbehavior profile.
    pub fn channel_profile(&self) -> &ChannelProfile {
        self.channel.profile()
    }

    /// Total control-plane messages handed to the channel so far (both
    /// directions, before drop/duplicate decisions).
    pub fn messages_sent(&self) -> u64 {
        self.channel.messages_sent()
    }

    /// The substrate network, including any failure state accumulated so
    /// far.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The structured event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The durable write-ahead intent journal. `journal().bytes()` is
    /// what a resident controller would persist; the CLI's `--journal`
    /// flag writes exactly these bytes.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The pending controller crash, if an injected crash struck. While
    /// set, every protocol entry point short-circuits; only
    /// [`DeploymentRuntime::recover`] clears it.
    pub fn crashed(&self) -> Option<ControllerCrash> {
        self.crashed
    }

    /// Read access to the fault injector (soaks read
    /// [`FaultInjector::journal_writes`] after a crash-free dry run to
    /// learn how many crash boundaries a scenario has).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Mutable access to the fault injector, e.g. to arm a deterministic
    /// controller crash at an exact journal boundary
    /// ([`FaultInjector::arm_controller_crash_at`]).
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// The plan currently serving, if any.
    pub fn active_plan(&self) -> Option<&DeploymentPlan> {
        self.active.as_ref().map(|a| &a.plan)
    }

    /// The epoch currently serving, if any.
    pub fn active_epoch(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.epoch)
    }

    /// The ε-bounds every activated plan is validated against.
    pub fn epsilon(&self) -> &Epsilon {
        &self.eps
    }

    /// The per-switch agents, in switch order (soak tests inspect their
    /// fencing/lease state to assert protocol invariants).
    pub fn agents(&self) -> impl Iterator<Item = &SwitchAgent> {
        self.agents.values()
    }

    /// One switch's agent, if the switch exists.
    pub fn agent(&self, switch: SwitchId) -> Option<&SwitchAgent> {
        self.agents.get(&switch)
    }

    /// Overrides the packet seeds used for pre-activation equivalence
    /// checks and mixed-epoch windows.
    pub fn set_packet_seeds(&mut self, seeds: Vec<u64>) {
        self.packet_seeds = seeds;
    }

    /// Replaces the fault injector, e.g. to run one clean rollout and then
    /// turn chaos on for the next epoch. The control channel is reseeded
    /// from the new injector's seed, keeping its current profile.
    pub fn set_injector(&mut self, injector: FaultInjector) {
        let profile = *self.channel.profile();
        self.injector = injector;
        self.set_channel_profile(profile);
    }

    /// Marks a switch as failed (operator- or injector-initiated) without
    /// healing. The agent is crashed and the network degraded.
    pub fn fail_switch(&mut self, switch: SwitchId) {
        self.net.fail_switch(switch);
        if let Some(agent) = self.agents.get_mut(&switch) {
            agent.crash();
        }
        self.log.push(Event::SwitchDown { switch, at_us: self.clock_us });
    }

    /// Appends one record to the intent journal, letting the fault
    /// injector strike the controller at the boundary. Write-ahead
    /// discipline: call this *before* applying the transition the record
    /// describes, so a `BeforeWrite` crash loses both the record and the
    /// transition together.
    pub(crate) fn journal_note(&mut self, record: JournalRecord) -> Result<(), ControllerCrash> {
        let timing = self.injector.on_journal_write();
        if !matches!(timing, Some(CrashTiming::BeforeWrite)) {
            self.journal.append(&record);
        }
        match timing {
            None => Ok(()),
            Some(timing) => {
                let crash =
                    ControllerCrash { epoch: record.epoch(), point: record.crash_point(), timing };
                self.crashed = Some(crash);
                Err(crash)
            }
        }
    }

    /// Advances the controller epoch, journaling the new value *before*
    /// the in-memory counter moves — so `max(journaled epochs) + 1` is
    /// always a safe fresh epoch for recovery, no matter where a crash
    /// strikes.
    pub(crate) fn advance_epoch(&mut self) -> Result<u64, ControllerCrash> {
        let next = self.epoch + 1;
        self.journal_note(JournalRecord::EpochAdvanced { epoch: next })?;
        self.epoch = next;
        Ok(next)
    }

    /// Maps a sticky crash (if any) to the terminal outcome every public
    /// entry point returns while the controller is down.
    fn crashed_outcome(crash: ControllerCrash) -> RolloutOutcome {
        RolloutOutcome::ControllerCrashed { epoch: crash.epoch, point: crash.point }
    }

    /// Installs `plan` for `tdg` as a two-phase transaction, healing
    /// post-commit switch failures if any occur. Exactly one of three
    /// terminal states results: a committed, validated plan is serving;
    /// the transaction rolled back and the previous plan is untouched; or
    /// the controller crashed (injected) and only the journal survives.
    pub fn rollout(&mut self, tdg: &Tdg, plan: DeploymentPlan) -> RolloutOutcome {
        if let Some(crash) = self.crashed {
            return Self::crashed_outcome(crash);
        }
        match self.try_rollout(tdg, plan) {
            Ok(outcome) => outcome,
            Err(crash) => Self::crashed_outcome(crash),
        }
    }

    fn try_rollout(
        &mut self,
        tdg: &Tdg,
        plan: DeploymentPlan,
    ) -> Result<RolloutOutcome, ControllerCrash> {
        let epoch = self.advance_epoch()?;
        // Snapshot the pre-rollout deployment: it is what a failed heal
        // rolls back to.
        let prior = self.active.clone();
        let switches: Vec<SwitchId> = plan.occupied_switches().into_iter().collect();
        self.log.push(Event::RolloutStarted {
            epoch,
            switches: switches.clone(),
            at_us: self.clock_us,
        });

        // Pre-install validation: constraints + packet equivalence. A
        // refusal here touched no agent, so nothing beyond the epoch
        // advance needs journaling — recovery sees no in-flight intent.
        let (report, artifacts) =
            validate_plan(tdg, &self.net, &plan, &self.eps, &self.packet_seeds);
        if !report.is_ok() {
            self.log.push(Event::ValidationFailed {
                epoch,
                failures: report.failures.iter().map(ToString::to_string).collect(),
                at_us: self.clock_us,
            });
            return Ok(self.roll_back(epoch, "pre-install validation failed".to_string()));
        }

        self.journal_note(JournalRecord::TxnBegun {
            epoch,
            kind: TxnKind::Deploy,
            tdg_fp: hermes_core::tdg_fingerprint(tdg),
            plan_fp: plan.fingerprint(),
            plan: plan.clone(),
            artifacts: artifacts.clone(),
        })?;
        match self.install_transaction(tdg, &plan, &artifacts, epoch, true) {
            Err(TxnFailure::Crashed(crash)) => return Err(crash),
            Err(TxnFailure::Aborted(reason)) => return Ok(self.roll_back(epoch, reason)),
            Ok(dead) => {
                self.activate(epoch, tdg.clone(), plan, artifacts)?;
                if !dead.is_empty() {
                    // Some switches were lost during the commit window
                    // itself (unreachable or lease-lapsed): the committed
                    // deployment is already degraded.
                    return self.heal(prior);
                }
            }
        }

        // The committed deployment may immediately lose a switch.
        let occupied: Vec<SwitchId> = self
            .active
            .as_ref()
            .expect("just activated")
            .plan
            .occupied_switches()
            .into_iter()
            .collect();
        if let Some(dead) = self.injector.post_commit_crash(&occupied) {
            self.fail_switch(dead);
            return self.heal(prior);
        }
        Ok(RolloutOutcome::Committed { epoch, healed: false })
    }

    /// Re-homes the MATs lost to down switches and transitions to the
    /// healed plan, looping if the heal's own commit window loses more
    /// switches. On any failure the runtime rolls back to `previous` (the
    /// last-known-good deployment before the failing rollout).
    fn heal(
        &mut self,
        previous: Option<ActiveDeployment>,
    ) -> Result<RolloutOutcome, ControllerCrash> {
        let healing_started_us = self.clock_us;
        let a_max_before =
            self.active.as_ref().map_or(0, |a| a.plan.max_inter_switch_bytes(&a.tdg));
        loop {
            let Some(active) = self.active.clone() else {
                return Ok(RolloutOutcome::RolledBack {
                    epoch: self.epoch,
                    reason: "nothing to heal".to_string(),
                });
            };
            let epoch = self.advance_epoch()?;
            let down = self.net.down_switches();
            self.log.push(Event::HealingStarted {
                epoch,
                down: down.clone(),
                at_us: self.clock_us,
            });

            let mut opts = RedeployOptions::excluding(down);
            opts.exact_budget_ms = self.recovery_budget_ms;
            let outcome = match IncrementalDeployer::new().redeploy_with(
                &active.tdg,
                &active.plan,
                &active.tdg,
                &self.net,
                &self.eps,
                &opts,
            ) {
                Ok(outcome) => outcome,
                Err(e) => {
                    self.log.push(Event::HealingFailed {
                        epoch,
                        reason: e.to_string(),
                        at_us: self.clock_us,
                    });
                    return self.roll_back_to(previous, epoch, format!("healing infeasible: {e}"));
                }
            };
            self.log.push(Event::HealingPlanned {
                epoch,
                reused: outcome.reused,
                placed: outcome.placed,
                full_redeploy: outcome.full_redeploy,
                at_us: self.clock_us,
            });

            // Revalidate on the degraded network before activating. The
            // mixed-epoch gate is skipped (see module docs): the dead
            // switch already broke consistency, healing repairs service.
            let (report, artifacts) =
                validate_plan(&active.tdg, &self.net, &outcome.plan, &self.eps, &self.packet_seeds);
            if !report.is_ok() {
                self.log.push(Event::HealingFailed {
                    epoch,
                    reason: report.to_string(),
                    at_us: self.clock_us,
                });
                return self.roll_back_to(
                    previous,
                    epoch,
                    "healed plan failed validation".to_string(),
                );
            }
            self.journal_note(JournalRecord::TxnBegun {
                epoch,
                kind: TxnKind::Heal,
                tdg_fp: hermes_core::tdg_fingerprint(&active.tdg),
                plan_fp: outcome.plan.fingerprint(),
                plan: outcome.plan.clone(),
                artifacts: artifacts.clone(),
            })?;
            match self.install_transaction(&active.tdg, &outcome.plan, &artifacts, epoch, false) {
                Err(TxnFailure::Crashed(crash)) => return Err(crash),
                Err(TxnFailure::Aborted(reason)) => {
                    return self.roll_back_to(previous, epoch, reason)
                }
                Ok(dead) => {
                    let a_max_after = outcome.plan.max_inter_switch_bytes(&active.tdg);
                    self.activate(epoch, active.tdg, outcome.plan, artifacts)?;
                    if dead.is_empty() {
                        self.log.push(Event::RecoveryCompleted {
                            epoch,
                            recovery_us: self.clock_us - healing_started_us,
                            a_max_before,
                            a_max_after,
                            at_us: self.clock_us,
                        });
                        return Ok(RolloutOutcome::Committed { epoch, healed: true });
                    }
                    // The heal itself lost switches mid-commit: heal again
                    // (each pass kills at least one more switch, so this
                    // terminates — eventually redeploy becomes infeasible
                    // and the runtime rolls back).
                }
            }
        }
    }

    /// Phase 1 (prepare with retry) + mid-transaction revalidation + the
    /// mixed-epoch gate + phase 2 (commit with retry, leases, and
    /// unreachable detection).
    ///
    /// `Err(Aborted)` means the transaction aborted *before any commit
    /// was sent*: every staged agent received an abort (best-effort;
    /// fencing covers the lost ones) and nothing was activated.
    /// `Err(Crashed)` means the controller died at a journal boundary.
    /// `Ok(dead)` means the commit phase ran; `dead` lists switches
    /// declared down during it.
    fn install_transaction(
        &mut self,
        tdg: &Tdg,
        plan: &DeploymentPlan,
        artifacts: &DeploymentArtifacts,
        epoch: u64,
        check_mixed: bool,
    ) -> Result<Vec<SwitchId>, TxnFailure> {
        let mut prepared: Vec<SwitchId> = Vec::new();
        for (&switch, config) in &artifacts.switches {
            match self.prepare_with_retry(switch, config, epoch) {
                Ok(()) => {
                    self.journal_note(JournalRecord::Prepared { epoch, switch })?;
                    prepared.push(switch);
                }
                Err(reason) => return Err(self.abort_txn(&prepared, epoch, reason)),
            }
        }
        // Faults during prepare (link down, crashed bystander) may have
        // degraded the network under the transaction's feet; the plan must
        // still hold on what is actually left before anything activates.
        let violations = verify(tdg, &self.net, plan, &self.eps);
        if !violations.is_empty() {
            let reason = format!("plan no longer valid at commit time: {}", violations[0]);
            return Err(self.abort_txn(&prepared, epoch, reason));
        }
        // Mixed-epoch gate: a same-program plan change is committed switch
        // by switch, so every prefix of the commit order must keep packets
        // on a single observable epoch. Checked BEFORE the first commit —
        // afterwards a clean abort is no longer possible.
        if check_mixed {
            if let Some(active) = &self.active {
                if active.tdg == *tdg && active.plan != *plan {
                    let transition = EpochTransition {
                        tdg,
                        old_plan: &active.plan,
                        old_artifacts: &active.artifacts,
                        new_plan: plan,
                        new_artifacts: artifacts,
                    };
                    match check_transition(&transition, &prepared, &self.packet_seeds) {
                        Ok(windows) => self.log.push(Event::MixedEpochChecked {
                            epoch,
                            windows,
                            packets: self.packet_seeds.len(),
                            at_us: self.clock_us,
                        }),
                        Err(v) => {
                            self.log.push(Event::MixedEpochViolated {
                                epoch,
                                detail: v.to_string(),
                                at_us: self.clock_us,
                            });
                            let reason = format!(
                                "mixed-epoch window would break per-packet consistency: {v}"
                            );
                            return Err(self.abort_txn(&prepared, epoch, reason));
                        }
                    }
                }
            }
        }

        // The point of no return: the decision to commit must be durable
        // *before* the first commit message, so a crashed controller that
        // already changed an agent's state can never be mistaken for one
        // that was still free to abort.
        self.journal_note(JournalRecord::CommitDecided { epoch, order: prepared.clone() })?;

        let mut committed: Vec<SwitchId> = Vec::new();
        let mut dead: Vec<SwitchId> = Vec::new();
        let mut lease_refreshed_us = self.clock_us;
        for &switch in &prepared {
            // Keep already-committed agents' leases alive through a long
            // commit window.
            if self.clock_us.saturating_sub(lease_refreshed_us) > self.policy.lease_us / 4 {
                self.renew_leases(&committed, epoch);
                lease_refreshed_us = self.clock_us;
            }
            if self.commit_with_retry(switch, epoch) {
                self.journal_note(JournalRecord::CommitAcked { epoch, switch })?;
                self.journal_note(JournalRecord::LeaseGranted {
                    epoch,
                    switch,
                    until_us: self.clock_us + self.policy.lease_us,
                })?;
                committed.push(switch);
            } else {
                self.declare_unreachable(switch, epoch, &committed);
                lease_refreshed_us = self.clock_us;
                dead.push(switch);
            }
        }
        // Commit-window supervision ends: any lease that lapsed without
        // renewal means that agent stopped serving — it is down, not
        // committed. Everyone else transitions to steady state.
        let now = self.clock_us;
        for &switch in &committed {
            let expired =
                self.agents.get_mut(&switch).expect("agents cover all switches").expire_lease(now);
            if let Some(lapsed) = expired {
                self.log.push(Event::LeaseExpired { switch, epoch: lapsed, at_us: now });
                self.fail_switch(switch);
                dead.push(switch);
            } else {
                self.agents.get_mut(&switch).expect("agents cover all switches").release_lease();
            }
        }
        dead.sort_unstable();
        self.journal_note(JournalRecord::TxnCommitted { epoch, dead: dead.clone() })?;
        self.log.push(Event::Committed { epoch, at_us: self.clock_us });
        Ok(dead)
    }

    /// Journals the abort decision (write-ahead), then best-effort aborts
    /// every prepared switch. Returns the `TxnFailure` the transaction
    /// terminates with — `Crashed` if the controller dies at the abort
    /// boundary itself, `Aborted(reason)` otherwise.
    fn abort_txn(&mut self, prepared: &[SwitchId], epoch: u64, reason: String) -> TxnFailure {
        if let Err(crash) =
            self.journal_note(JournalRecord::TxnAborted { epoch, reason: reason.clone() })
        {
            return TxnFailure::Crashed(crash);
        }
        self.abort_prepared(prepared, epoch);
        TxnFailure::Aborted(reason)
    }

    /// One switch's prepare with bounded retry and exponential backoff.
    pub(crate) fn prepare_with_retry(
        &mut self,
        switch: SwitchId,
        config: &hermes_backend::SwitchConfig,
        epoch: u64,
    ) -> Result<(), String> {
        for attempt in 1..=self.policy.max_attempts {
            self.log.push(Event::PrepareAttempt { epoch, switch, attempt, at_us: self.clock_us });
            match self.exchange(
                switch,
                epoch,
                Request::Prepare(Box::new(config.clone())),
                MessageKind::Prepare,
            ) {
                Some(Reply::Ack { .. }) => {
                    self.log.push(Event::Prepared { epoch, switch, at_us: self.clock_us });
                    return Ok(());
                }
                Some(Reply::Nack { error: AgentError::Crashed, .. }) => {
                    return Err(format!("switch {switch} is down"));
                }
                // Transient refusal (install fault) or timeout: retry.
                Some(Reply::Nack { .. }) | None => {}
            }
            if attempt == self.policy.max_attempts {
                return Err(format!(
                    "switch {switch} failed all {} prepare attempts",
                    self.policy.max_attempts
                ));
            }
            self.schedule_retry(switch, epoch, attempt);
        }
        unreachable!("loop returns on success or final attempt")
    }

    /// One switch's commit with bounded retry; unanswered commits are
    /// resolved by probing (the commit may have landed with its ack
    /// lost). Returns `true` iff the switch provably serves `epoch`.
    pub(crate) fn commit_with_retry(&mut self, switch: SwitchId, epoch: u64) -> bool {
        for attempt in 1..=self.policy.max_attempts {
            match self.exchange(switch, epoch, Request::Commit, MessageKind::Commit) {
                Some(Reply::Ack { .. }) => {
                    self.log.push(Event::CommitAcked { epoch, switch, at_us: self.clock_us });
                    return true;
                }
                // A commit nack (fenced, mismatch, crashed) is final: this
                // switch cannot serve the epoch.
                Some(Reply::Nack { .. }) => return false,
                None => {}
            }
            if attempt < self.policy.max_attempts {
                self.schedule_retry(switch, epoch, attempt);
            }
        }
        for _ in 1..=self.policy.max_attempts {
            match self.exchange(switch, epoch, Request::Probe, MessageKind::Probe) {
                Some(Reply::Ack { .. }) => {
                    self.log.push(Event::ProbeAcked { switch, epoch, at_us: self.clock_us });
                    self.log.push(Event::CommitAcked { epoch, switch, at_us: self.clock_us });
                    return true;
                }
                Some(Reply::Nack { .. }) => return false,
                None => {}
            }
        }
        false
    }

    /// Burns backoff time (with deterministic jitter) before retrying.
    fn schedule_retry(&mut self, switch: SwitchId, epoch: u64, failed_attempt: u32) {
        let delay_us = self.policy.backoff_us(failed_attempt + 1)
            + self.injector.jitter_us(self.policy.base_delay_us);
        self.clock_us += delay_us;
        self.log.push(Event::RetryScheduled {
            epoch,
            switch,
            next_attempt: failed_attempt + 1,
            delay_us,
            at_us: self.clock_us,
        });
    }

    /// Single-attempt lease-renewal probes to every committed switch. A
    /// lost probe is tolerated — the final lease sweep catches agents
    /// whose leases genuinely lapsed.
    pub(crate) fn renew_leases(&mut self, committed: &[SwitchId], epoch: u64) {
        for &switch in committed {
            if self.agents[&switch].is_crashed() {
                continue;
            }
            if let Some(Reply::Ack { .. }) =
                self.exchange(switch, epoch, Request::Probe, MessageKind::Probe)
            {
                self.log.push(Event::ProbeAcked { switch, epoch, at_us: self.clock_us });
            }
        }
    }

    /// A switch answered neither commits nor probes. Wait out its lease —
    /// after `lease_us` of silence an alive-but-unreachable agent has
    /// provably self-fenced, so declaring it down cannot leave a zombie
    /// serving the epoch — then mark it down. Committed neighbors are
    /// probed immediately before and after the wait so *their* leases
    /// survive it.
    pub(crate) fn declare_unreachable(
        &mut self,
        switch: SwitchId,
        epoch: u64,
        committed: &[SwitchId],
    ) {
        self.renew_leases(committed, epoch);
        self.clock_us += self.policy.lease_us;
        let expired = self
            .agents
            .get_mut(&switch)
            .expect("agents cover all switches")
            .expire_lease(self.clock_us);
        if let Some(lapsed) = expired {
            self.log.push(Event::LeaseExpired { switch, epoch: lapsed, at_us: self.clock_us });
        }
        self.log.push(Event::SwitchUnreachable { switch, epoch, at_us: self.clock_us });
        if !self.agents[&switch].is_crashed() {
            self.fail_switch(switch);
        }
        self.renew_leases(committed, epoch);
    }

    /// Sends one request and runs the virtual-clock message pump until its
    /// reply arrives or the exchange times out. In-flight messages for
    /// other exchanges (duplicates, delayed stragglers) are delivered
    /// along the way; stale replies are discarded.
    pub(crate) fn exchange(
        &mut self,
        switch: SwitchId,
        epoch: u64,
        body: Request,
        kind: MessageKind,
    ) -> Option<Reply> {
        self.seq += 1;
        let seq = self.seq;
        let req = RequestEnvelope { epoch, seq, switch, body };
        let receipt = self.channel.send(self.clock_us, Message::Request(req));
        self.log_receipt(&receipt, kind, epoch, seq, switch);
        let deadline = self.clock_us + self.policy.timeout_us;
        while let Some((at, msg)) = self.channel.pop_due(deadline) {
            self.clock_us = self.clock_us.max(at);
            match msg {
                Message::Request(delivered) => self.deliver_request(delivered),
                Message::Reply(rep) => {
                    if rep.seq == seq && rep.epoch == epoch && rep.switch == switch {
                        return Some(rep.body);
                    }
                    self.log.push(Event::StaleReplyIgnored {
                        epoch: rep.epoch,
                        seq: rep.seq,
                        switch: rep.switch,
                        at_us: self.clock_us,
                    });
                }
            }
        }
        self.clock_us = deadline;
        None
    }

    /// Delivers one request to its agent: decides the install fate (fault
    /// injection happens at delivery, once per fresh attempt — replays and
    /// crashed agents never draw), runs the agent state machine, and sends
    /// the reply back through the channel.
    fn deliver_request(&mut self, req: RequestEnvelope) {
        let now = self.clock_us;
        let lease_us = self.policy.lease_us;
        let (crashed, seen) = {
            let agent = &self.agents[&req.switch];
            (agent.is_crashed(), agent.has_seen(req.epoch, req.seq))
        };
        let mut extra_delay_us = 0u64;
        let mut install_failure: Option<AgentError> = None;
        if !crashed && !seen {
            if let Request::Prepare(config) = &req.body {
                if let Some(fault) =
                    self.injector.on_prepare(&self.net, config.stages.len(), self.policy.timeout_us)
                {
                    self.log.push(Event::FaultInjected {
                        epoch: req.epoch,
                        switch: req.switch,
                        fault: fault.clone(),
                        at_us: now,
                    });
                    match fault {
                        Fault::SwitchCrash => self.fail_switch(req.switch),
                        Fault::LinkDown { a, b } => {
                            // The install attempt is lost with the link;
                            // the degradation is caught by the commit-time
                            // revalidation.
                            self.net.fail_link(a, b);
                            install_failure = Some(AgentError::InstallRejected);
                        }
                        Fault::SlowResponse { delay_us } => extra_delay_us = delay_us,
                        Fault::RejectInstall | Fault::PartialInstall { .. } => {
                            // Nothing (or only garbage, wiped on the spot)
                            // was staged; the attempt failed transiently.
                            install_failure = Some(AgentError::InstallRejected);
                        }
                    }
                }
            }
        }
        let reply = if let Some(error) = install_failure {
            // The install machinery failed before the agent's state
            // machine ran: nothing staged, nothing cached — a duplicate
            // delivery is a fresh install attempt.
            let active_epoch = self.agents[&req.switch].active_epoch();
            ReplyEnvelope {
                epoch: req.epoch,
                seq: req.seq,
                switch: req.switch,
                body: Reply::Nack { error, active_epoch },
            }
        } else {
            let (reply, notes) = self
                .agents
                .get_mut(&req.switch)
                .expect("agents cover all switches")
                .handle(&req, now, lease_us);
            let fenced = self.agents[&req.switch].fenced_epoch();
            for note in notes {
                match note {
                    HandleNote::Replayed => self.log.push(Event::ReplayAnswered {
                        epoch: req.epoch,
                        seq: req.seq,
                        switch: req.switch,
                        at_us: now,
                    }),
                    HandleNote::FencedStale { stale_epoch } => self.log.push(Event::EpochFenced {
                        switch: req.switch,
                        stale_epoch,
                        fenced,
                        at_us: now,
                    }),
                    HandleNote::LeaseExpired { epoch } => {
                        self.log.push(Event::LeaseExpired { switch: req.switch, epoch, at_us: now })
                    }
                    // The runtime-side CommitAcked / ProbeAcked events
                    // (emitted when the ack arrives back) cover these.
                    HandleNote::Activated | HandleNote::LeaseRenewed => {}
                }
            }
            reply
        };
        let receipt = self.channel.send(now + extra_delay_us, Message::Reply(reply));
        self.log_receipt(&receipt, MessageKind::Reply, req.epoch, req.seq, req.switch);
    }

    /// Logs the channel's misbehavior (if any) for one send.
    fn log_receipt(
        &mut self,
        receipt: &SendReceipt,
        kind: MessageKind,
        epoch: u64,
        seq: u64,
        switch: SwitchId,
    ) {
        let at_us = self.clock_us;
        if receipt.dropped {
            self.log.push(Event::MessageDropped { kind, epoch, seq, switch, at_us });
            return;
        }
        if receipt.duplicated {
            self.log.push(Event::MessageDuplicated { kind, epoch, seq, switch, at_us });
        }
        if receipt.delayed {
            let deliver_at_us = receipt.deliveries.iter().copied().max().unwrap_or(at_us);
            self.log.push(Event::MessageDelayed { kind, epoch, seq, switch, deliver_at_us, at_us });
        }
    }

    /// Best-effort aborts to every prepared switch, fencing the epoch.
    /// Lost aborts are safe: aborts only happen before the first commit
    /// is sent, so the epoch can never activate anywhere — and any agent
    /// that hears a later epoch fences this one on its own.
    pub(crate) fn abort_prepared(&mut self, prepared: &[SwitchId], epoch: u64) {
        for &switch in prepared {
            let _ = self.exchange(switch, epoch, Request::Abort, MessageKind::Abort);
        }
    }

    pub(crate) fn activate(
        &mut self,
        epoch: u64,
        tdg: Tdg,
        plan: DeploymentPlan,
        artifacts: DeploymentArtifacts,
    ) -> Result<(), ControllerCrash> {
        // Activation snapshots are the journal's compaction points: a
        // self-contained restart state that makes everything before them
        // replay-irrelevant.
        self.journal_note(JournalRecord::Snapshot {
            epoch,
            tdg_fp: hermes_core::tdg_fingerprint(&tdg),
            plan_fp: plan.fingerprint(),
            plan: plan.clone(),
            artifacts: artifacts.clone(),
            clock_us: self.clock_us,
        })?;
        self.log.push(Event::Activated {
            epoch,
            a_max_bytes: plan.max_inter_switch_bytes(&tdg),
            latency_us: plan.end_to_end_latency_us(),
            occupied: plan.occupied_switch_count(),
            at_us: self.clock_us,
        });
        self.active = Some(ActiveDeployment { epoch, tdg, plan, artifacts });
        Ok(())
    }

    /// Aborts epoch `epoch`, leaving the current active deployment as-is.
    fn roll_back(&mut self, epoch: u64, reason: String) -> RolloutOutcome {
        self.log.push(Event::RolledBack { epoch, reason: reason.clone(), at_us: self.clock_us });
        RolloutOutcome::RolledBack { epoch, reason }
    }

    /// Aborts epoch `epoch` and restores `previous` as the active
    /// deployment, force-reactivating its configs on every surviving
    /// agent out of band (the last-known-good rollback after a failed
    /// heal). In-flight messages are discarded — the epochs they belong
    /// to are dead, and agents fence them anyway.
    fn roll_back_to(
        &mut self,
        previous: Option<ActiveDeployment>,
        epoch: u64,
        reason: String,
    ) -> Result<RolloutOutcome, ControllerCrash> {
        self.force_restore(previous)?;
        Ok(self.roll_back(epoch, reason))
    }

    /// The out-of-band full restore behind [`DeploymentRuntime::roll_back_to`]:
    /// clears the channel and force-activates `previous`'s configs on
    /// every surviving agent, bypassing staging, fencing, and leases. The
    /// restored state is journaled (write-ahead) as a fresh snapshot — or
    /// a `Cleared` marker when there is nothing to restore.
    pub(crate) fn force_restore(
        &mut self,
        previous: Option<ActiveDeployment>,
    ) -> Result<(), ControllerCrash> {
        match &previous {
            Some(p) => self.journal_note(JournalRecord::Snapshot {
                epoch: p.epoch,
                tdg_fp: hermes_core::tdg_fingerprint(&p.tdg),
                plan_fp: p.plan.fingerprint(),
                plan: p.plan.clone(),
                artifacts: p.artifacts.clone(),
                clock_us: self.clock_us,
            })?,
            None => self.journal_note(JournalRecord::Cleared { epoch: self.epoch })?,
        }
        self.channel.clear();
        for (&switch, agent) in &mut self.agents {
            let config = previous.as_ref().and_then(|p| p.artifacts.switches.get(&switch)).cloned();
            let prev_epoch = previous.as_ref().map_or(0, |p| p.epoch);
            agent.force_activate(prev_epoch, config);
        }
        self.active = previous;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultProfile;
    use hermes_core::{DeploymentAlgorithm, GreedyHeuristic, ProgramAnalyzer};
    use hermes_dataplane::library;
    use hermes_net::topology;

    fn workload() -> (Tdg, Network, DeploymentPlan) {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(4, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        (tdg, net, plan)
    }

    #[test]
    fn fault_free_rollout_commits() {
        let (tdg, net, plan) = workload();
        let mut rt = DeploymentRuntime::new(
            net,
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        let outcome = rt.rollout(&tdg, plan.clone());
        assert_eq!(outcome, RolloutOutcome::Committed { epoch: 1, healed: false });
        assert_eq!(rt.active_plan(), Some(&plan));
        assert_eq!(rt.active_epoch(), Some(1));
        assert_eq!(rt.log().count(|e| matches!(e, Event::Committed { .. })), 1);
        // One attempt per occupied switch, no retries, a perfect channel.
        assert_eq!(
            rt.log().count(|e| matches!(e, Event::PrepareAttempt { .. })),
            plan.occupied_switch_count()
        );
        assert_eq!(rt.log().count(|e| matches!(e, Event::RetryScheduled { .. })), 0);
        assert_eq!(rt.log().count(|e| matches!(e, Event::MessageDropped { .. })), 0);
        // Every occupied switch's agent serves epoch 1 with its lease
        // released (steady state).
        for switch in plan.occupied_switches() {
            let agent = rt.agent(switch).unwrap();
            assert_eq!(agent.active_epoch(), Some(1));
            assert_eq!(agent.lease_until(), None);
        }
    }

    #[test]
    fn transient_rejects_are_retried_to_success() {
        let (tdg, net, plan) = workload();
        // Reject with p=0.5: with 4 attempts per switch a handful of seeds
        // still commit; pick one deterministically by scanning.
        let profile = FaultProfile { reject_prob: 0.5, ..FaultProfile::none() };
        let committed = (0..50u64).find(|&seed| {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, profile),
                RetryPolicy::default(),
            );
            let outcome = rt.rollout(&tdg, plan.clone());
            if outcome.is_committed() {
                assert!(
                    rt.log().count(|e| matches!(e, Event::RetryScheduled { .. })) > 0,
                    "seed {seed} committed without ever retrying — not the case we want"
                );
                true
            } else {
                assert_eq!(rt.active_plan(), None, "rollback must leave nothing active");
                false
            }
        });
        assert!(committed.is_some(), "no seed in 0..50 committed under 50% rejects");
    }

    #[test]
    fn rollback_keeps_previous_plan_serving() {
        let (tdg, net, plan) = workload();
        // First install cleanly, then roll out again under guaranteed
        // rejection: the second transaction must abort and epoch 1 serve.
        let mut rt = DeploymentRuntime::new(
            net,
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        assert!(rt.rollout(&tdg, plan.clone()).is_committed());
        rt.set_injector(FaultInjector::new(
            1,
            FaultProfile { reject_prob: 1.0, ..FaultProfile::none() },
        ));
        let outcome = rt.rollout(&tdg, plan.clone());
        assert!(!outcome.is_committed());
        assert_eq!(rt.active_epoch(), Some(1), "previous epoch keeps serving");
        assert_eq!(rt.active_plan(), Some(&plan));
        // And no agent was left serving (or able to activate) epoch 2.
        for agent in rt.agents() {
            assert_ne!(agent.active_epoch(), Some(2));
        }
    }

    #[test]
    fn post_commit_crash_heals_and_validates() {
        let (tdg, net, plan) = workload();
        let profile = FaultProfile { post_commit_crash_prob: 1.0, ..FaultProfile::none() };
        let mut healed_seen = false;
        for seed in 0..20u64 {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, profile),
                RetryPolicy::default(),
            );
            let outcome = rt.rollout(&tdg, plan.clone());
            match outcome {
                RolloutOutcome::Committed { healed, .. } => {
                    assert!(healed, "a post-commit crash was guaranteed");
                    healed_seen = true;
                    let active = rt.active_plan().unwrap();
                    // The healed plan avoids every down switch and still
                    // validates end to end.
                    for down in rt.network().down_switches() {
                        assert!(!active.occupied_switches().contains(&down));
                    }
                    assert!(verify(&tdg, rt.network(), active, &Epsilon::loose()).is_empty());
                    assert_eq!(rt.log().count(|e| matches!(e, Event::RecoveryCompleted { .. })), 1);
                }
                RolloutOutcome::RolledBack { .. } => {
                    assert_eq!(rt.active_plan(), None, "failed heal must roll back cleanly");
                }
                RolloutOutcome::ControllerCrashed { .. } => {
                    unreachable!("no controller crash was injected")
                }
            }
        }
        assert!(healed_seen, "no seed in 0..20 healed successfully");
    }

    #[test]
    fn recovery_budget_heals_with_the_portfolio_fallback() {
        // Same crash scenario as above, with healing allowed to race the
        // exact search under a recovery deadline. Every heal must still
        // produce a verified plan avoiding the dead switches.
        let (tdg, net, plan) = workload();
        let profile = FaultProfile { post_commit_crash_prob: 1.0, ..FaultProfile::none() };
        let mut healed_seen = false;
        for seed in 0..10u64 {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, profile),
                RetryPolicy::default(),
            )
            .with_recovery_budget(std::time::Duration::from_secs(2));
            if let RolloutOutcome::Committed { healed, .. } = rt.rollout(&tdg, plan.clone()) {
                assert!(healed);
                healed_seen = true;
                let active = rt.active_plan().unwrap();
                for down in rt.network().down_switches() {
                    assert!(!active.occupied_switches().contains(&down));
                }
                assert!(verify(&tdg, rt.network(), active, &Epsilon::loose()).is_empty());
            }
        }
        assert!(healed_seen, "no seed in 0..10 healed successfully");
    }

    #[test]
    fn event_log_is_reproducible_byte_for_byte() {
        let (tdg, net, plan) = workload();
        let run = |seed: u64| {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, FaultProfile::chaos()),
                RetryPolicy::default(),
            );
            rt.rollout(&tdg, plan.clone());
            rt.log().to_json()
        };
        for seed in [0u64, 7, 13] {
            assert_eq!(run(seed), run(seed), "seed {seed} diverged");
        }
    }

    #[test]
    fn lossy_channel_rollout_is_bimodal_and_reproducible() {
        let (tdg, net, plan) = workload();
        let run = |seed: u64| {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::new(seed, FaultProfile::none()),
                RetryPolicy::default(),
            )
            .with_channel_profile(ChannelProfile::lossy());
            let outcome = rt.rollout(&tdg, plan.clone());
            (outcome, rt)
        };
        let mut committed = 0;
        for seed in 0..20u64 {
            let (outcome, rt) = run(seed);
            match outcome {
                RolloutOutcome::Committed { epoch, .. } => {
                    committed += 1;
                    for switch in rt.active_plan().unwrap().occupied_switches() {
                        if !rt.network().down_switches().contains(&switch) {
                            assert_eq!(rt.agent(switch).unwrap().active_epoch(), Some(epoch));
                        }
                    }
                }
                RolloutOutcome::RolledBack { epoch, .. } => {
                    for agent in rt.agents() {
                        assert_ne!(
                            agent.active_epoch(),
                            Some(epoch),
                            "no agent may serve a rolled-back epoch"
                        );
                    }
                }
                RolloutOutcome::ControllerCrashed { .. } => {
                    unreachable!("no controller crash was injected")
                }
            }
            let (_, rt2) = run(seed);
            assert_eq!(rt.log().to_json(), rt2.log().to_json(), "seed {seed} not reproducible");
        }
        assert!(committed > 0, "retries should beat the lossy channel for some seed");
    }

    #[test]
    fn mixed_epoch_gate_rolls_back_moved_mats() {
        let (tdg, net, plan) = workload();
        let mut rt = DeploymentRuntime::new(
            net.clone(),
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        assert!(rt.rollout(&tdg, plan.clone()).is_committed());
        // A same-program plan that re-homes the MATs of one occupied
        // switch: committing it gradually would double- or skip-execute
        // the moved MATs mid-window.
        let exclude = *plan.occupied_switches().iter().next().unwrap();
        let moved = IncrementalDeployer::new()
            .redeploy_with(
                &tdg,
                &plan,
                &tdg,
                &net,
                &Epsilon::loose(),
                &RedeployOptions::excluding([exclude]),
            )
            .expect("residual capacity fits the moved MATs")
            .plan;
        assert_ne!(moved, plan, "the transition must actually move something");
        match rt.rollout(&tdg, moved) {
            RolloutOutcome::RolledBack { reason, .. } => {
                assert!(reason.contains("per-packet consistency"), "{reason}");
            }
            other => panic!("moved MATs must be refused, got: {other}"),
        }
        assert_eq!(rt.log().count(|e| matches!(e, Event::MixedEpochViolated { .. })), 1);
        assert_eq!(rt.active_epoch(), Some(1), "the old epoch keeps serving");
        // The abandoned epoch is fenced on every agent that staged it.
        for agent in rt.agents() {
            assert_ne!(agent.active_epoch(), Some(2));
            assert_ne!(agent.staged_epoch(), Some(2));
        }
    }

    #[test]
    fn fault_free_rollout_journals_a_replayable_clean_history() {
        use crate::journal::JournalRecord;
        let (tdg, net, plan) = workload();
        let mut rt = DeploymentRuntime::new(
            net,
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        assert!(rt.rollout(&tdg, plan.clone()).is_committed());
        let replay = rt.journal().replay().expect("clean journal must replay");
        assert_eq!(replay.discarded_tail_bytes, 0);
        // Write-ahead order: epoch advance, txn begin, one Prepared +
        // CommitAcked + LeaseGranted per switch, commit decision before
        // any ack, then TxnCommitted and the activation snapshot.
        let kinds: Vec<CrashPoint> =
            replay.records.iter().map(JournalRecord::crash_point).collect();
        assert_eq!(kinds[0], CrashPoint::EpochAdvance);
        assert_eq!(kinds[1], CrashPoint::TxnBegin);
        let pos = |p: CrashPoint| kinds.iter().position(|&k| k == p).unwrap();
        assert!(pos(CrashPoint::CommitDecision) < pos(CrashPoint::CommitAck));
        assert!(pos(CrashPoint::TxnCommit) < pos(CrashPoint::Snapshot));
        let n = plan.occupied_switch_count();
        assert_eq!(kinds.iter().filter(|&&k| k == CrashPoint::Prepare).count(), n);
        assert_eq!(kinds.iter().filter(|&&k| k == CrashPoint::CommitAck).count(), n);
        assert_eq!(kinds.iter().filter(|&&k| k == CrashPoint::LeaseGrant).count(), n);
    }

    #[test]
    fn armed_controller_crash_is_terminal_and_sticky() {
        let (tdg, net, plan) = workload();
        // Dry run to count the scenario's journal boundaries.
        let boundaries = {
            let mut rt = DeploymentRuntime::new(
                net.clone(),
                Epsilon::loose(),
                FaultInjector::disabled(),
                RetryPolicy::default(),
            );
            assert!(rt.rollout(&tdg, plan.clone()).is_committed());
            rt.injector().journal_writes()
        };
        assert!(boundaries > 4, "a committing rollout must cross several boundaries");
        // Crash at the commit-decision boundary and check stickiness.
        let mut rt = DeploymentRuntime::new(
            net,
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        let n = plan.occupied_switch_count() as u64;
        // Boundary layout for a clean deploy: 0 = epoch advance, 1 = txn
        // begin, 2..2+n = prepares, then the commit decision.
        rt.injector_mut().arm_controller_crash_at(2 + n, CrashTiming::AfterWrite);
        let outcome = rt.rollout(&tdg, plan.clone());
        match outcome {
            RolloutOutcome::ControllerCrashed { epoch, point } => {
                assert_eq!(epoch, 1);
                assert_eq!(point, CrashPoint::CommitDecision);
            }
            other => panic!("expected a controller crash, got {other}"),
        }
        assert!(rt.crashed().is_some());
        assert_eq!(rt.active_plan(), None, "the crash lost all in-memory state");
        // Sticky: further protocol calls refuse without touching agents.
        let again = rt.rollout(&tdg, plan);
        assert!(matches!(again, RolloutOutcome::ControllerCrashed { .. }));
        // The journal survived and replays cleanly up to the crash.
        let replay = rt.journal().replay().expect("journal must replay");
        assert!(matches!(
            replay.records.last(),
            Some(crate::journal::JournalRecord::CommitDecided { epoch: 1, .. })
        ));
    }

    #[test]
    fn identical_plan_rerollout_skips_the_gate_and_commits() {
        let (tdg, net, plan) = workload();
        let mut rt = DeploymentRuntime::new(
            net,
            Epsilon::loose(),
            FaultInjector::disabled(),
            RetryPolicy::default(),
        );
        assert!(rt.rollout(&tdg, plan.clone()).is_committed());
        assert!(rt.rollout(&tdg, plan).is_committed());
        assert_eq!(rt.log().count(|e| matches!(e, Event::MixedEpochChecked { .. })), 0);
        assert_eq!(rt.active_epoch(), Some(2));
    }
}
