//! The program analyzer (paper §IV, Algorithm 1).
//!
//! Front end of the Hermes pipeline: converts each input program into a
//! TDG, merges all TDGs SPEED-style, and annotates every dependency edge
//! with its metadata amount `A(a, b)`. The merged TDG is the sole input
//! the optimization framework consumes.

use hermes_dataplane::Program;
use hermes_tdg::{merge_all, AnalysisMode, Tdg};

/// The Hermes program analyzer.
///
/// # Examples
///
/// ```
/// use hermes_core::ProgramAnalyzer;
/// use hermes_dataplane::library;
///
/// let merged = ProgramAnalyzer::new().analyze(&library::real_programs());
/// assert!(merged.is_dag());
/// assert!(merged.node_count() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramAnalyzer {
    mode: AnalysisMode,
}

impl ProgramAnalyzer {
    /// Analyzer using the paper-literal metadata accounting.
    pub fn new() -> Self {
        ProgramAnalyzer::default()
    }

    /// Analyzer with an explicit [`AnalysisMode`].
    pub fn with_mode(mode: AnalysisMode) -> Self {
        ProgramAnalyzer { mode }
    }

    /// The analysis mode in use.
    pub fn mode(&self) -> AnalysisMode {
        self.mode
    }

    /// Algorithm 1: convert → merge → analyze. Returns the merged TDG
    /// `T_m` with `A(a, b)` recorded on every edge.
    pub fn analyze(&self, programs: &[Program]) -> Tdg {
        let tdgs: Vec<Tdg> = programs.iter().map(|p| Tdg::from_program(p, self.mode)).collect();
        merge_all(tdgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::library;

    #[test]
    fn analyze_merges_and_annotates() {
        let programs = library::real_programs();
        let merged = ProgramAnalyzer::new().analyze(&programs);
        let raw: usize = programs.iter().map(|p| p.tables().len()).sum();
        assert!(merged.node_count() < raw, "redundancy eliminated");
        assert!(merged.edges().iter().any(|e| e.bytes > 0), "metadata annotated");
    }

    #[test]
    fn empty_input_yields_empty_tdg() {
        let merged = ProgramAnalyzer::new().analyze(&[]);
        assert_eq!(merged.node_count(), 0);
    }

    #[test]
    fn mode_is_propagated() {
        let a = ProgramAnalyzer::with_mode(AnalysisMode::Intersection);
        assert_eq!(a.mode(), AnalysisMode::Intersection);
        let merged = a.analyze(&[library::int_telemetry()]);
        assert_eq!(merged.mode(), AnalysisMode::Intersection);
    }

    #[test]
    fn intersection_never_exceeds_paper_literal() {
        let programs = library::real_programs();
        let literal = ProgramAnalyzer::with_mode(AnalysisMode::PaperLiteral).analyze(&programs);
        let tight = ProgramAnalyzer::with_mode(AnalysisMode::Intersection).analyze(&programs);
        assert_eq!(literal.edge_count(), tight.edge_count());
        for (l, t) in literal.edges().iter().zip(tight.edges()) {
            assert!(t.bytes <= l.bytes, "{l:?} vs {t:?}");
        }
    }
}
