//! The "Optimal" solver: exact minimization of `A_max`.
//!
//! Plays the role of the paper's Gurobi-based Hermes variant. Rather than
//! feeding the full stage-level MILP to the LP-based solver (see
//! [`crate::milp_formulation`] for that encoding), this solver branches
//! directly over MAT → switch assignments in topological order with
//! aggressive incumbent pruning:
//!
//! - the running `A_max` is monotone in the partial assignment, so any
//!   partial plan at or above the incumbent is cut;
//! - all per-step bookkeeping (pair bytes, the running `A_max`, per-switch
//!   occupancy, switch-order acyclicity) lives in one per-worker
//!   [`IncrementalEval`] updated in O(delta) per place/unplace;
//! - each candidate switch carries a live incremental pipeline packing
//!   with exact-snapshot undo (`Packing::push_logged` / `revert`): because
//!   nodes are assigned in topological order, the per-switch packed state
//!   is exactly the prefix of a full repack, so pushing the node *is* the
//!   stage-feasibility check and rejects precisely the subtrees whose
//!   leaves would fail stage assignment — no accepted leaf changes;
//! - under an infinite latency bound with fully routable candidates,
//!   leaves are accepted from the evaluator's running objective alone,
//!   without materializing a plan;
//! - identical switches under loose ε-bounds are interchangeable, so the
//!   search only ever opens one fresh switch at a time (symmetry breaking);
//! - the pruning bound combines the subtree's own best leaf, the incumbent
//!   captured at solve entry, and the live shared incumbent of the
//!   [`SearchContext`] — in a [`crate::solver::Portfolio`] race the greedy
//!   racer's early bound prunes this search;
//! - in stand-alone (seeded) mode the greedy heuristic provides the
//!   initial incumbent.
//!
//! # Parallel search
//!
//! The DFS is sharded into **work-stealing subtree tasks**: a breadth-first
//! frontier expansion (in exact DFS candidate order) splits the tree at a
//! depth where enough independent subtree roots exist to feed the worker
//! pool, the roots are dealt round-robin to per-worker deques, and each
//! scoped worker runs an iterative DFS over its claimed subtrees with its
//! own reversible [`IncrementalEval`] + stage-packing state (reset and
//! replayed per root — no cross-worker sharing of mutable state). Idle
//! workers steal from the back of a victim's deque. Search frames live in
//! a per-worker arena (`Vec<Frame>`) that is reused across subtrees, so
//! steady-state search allocates nothing.
//!
//! **Determinism:** results are byte-identical to the sequential search
//! regardless of worker count or timing. Each worker accepts a leaf only
//! when it strictly beats `min(its subtree's best, the incumbent bound
//! captured at solve entry)` — both timing-independent quantities — while
//! the *live* shared incumbent is only used to cut subtrees whose partial
//! objective strictly exceeds it (which can never contain a leaf matching
//! the global optimum, since every published incumbent is a feasible
//! objective). The final answer is the lexicographic minimum over
//! `(objective, canonical subtree index)`, i.e. the lowest-index optimal
//! solution — exactly the leaf the sequential DFS would have accepted
//! last. `NoImprovementProven` certificates are only issued when the
//! frontier enumeration and every subtree ran to completion.
//!
//! The [`SearchContext`] deadline bounds the worst case (polled per
//! worker); the outcome reports whether optimality was proven, which the
//! execution-time experiment (Exp#3) uses to flag timed-out ILP-style
//! runs.

use crate::deployment::{DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon, PlanRoute};
use crate::eval::IncrementalEval;
use crate::heuristic::GreedyHeuristic;
use crate::solver::{SearchContext, SolveOutcome, SolveStats, Solver, DEFAULT_DEPLOY_BUDGET};
use crate::stage_assign::{assign_stages, Packing};
use hermes_net::{shortest_path, Network, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Exact `A_max` minimizer driven entirely by a [`SearchContext`] (no
/// private time budget).
#[derive(Debug, Clone)]
pub struct OptimalSolver {
    /// When `true` (the default), the greedy heuristic seeds the incumbent
    /// before the search, so a deadline expiry still returns a plan. A
    /// portfolio uses [`OptimalSolver::bare`] instead — the greedy racer
    /// already publishes that incumbent, and re-deriving it here would
    /// erase the portfolio's wall-clock advantage.
    pub seed_with_heuristic: bool,
    /// Target number of subtree roots per worker when splitting the search
    /// tree (the frontier deepens until `workers × roots_per_worker` roots
    /// exist or the tree is exhausted). More roots smooth work-stealing
    /// load balance at the cost of more prefix replays. Clamped to ≥ 1.
    pub roots_per_worker: usize,
}

impl Default for OptimalSolver {
    fn default() -> Self {
        OptimalSolver { seed_with_heuristic: true, roots_per_worker: 8 }
    }
}

impl OptimalSolver {
    /// The stand-alone configuration (greedy-seeded incumbent).
    pub fn new() -> Self {
        OptimalSolver::default()
    }

    /// The portfolio configuration: no internal heuristic seed; the
    /// incumbent bound arrives through the shared [`SearchContext`].
    pub fn bare() -> Self {
        OptimalSolver { seed_with_heuristic: false, ..OptimalSolver::default() }
    }

    /// Like [`Solver::solve`], but also reports parallel-search telemetry
    /// (worker/steal/prune counters) alongside the outcome. Telemetry is
    /// zeroed on the trivial early-out paths that never start a search.
    pub fn solve_instrumented(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> (Result<SolveOutcome, DeployError>, ParallelStats) {
        let start = Instant::now();
        let candidates = net.programmable_switches();
        if candidates.is_empty() {
            return (Err(DeployError::NoProgrammableSwitch), ParallelStats::default());
        }
        if tdg.node_count() == 0 {
            ctx.publish_incumbent(0);
            return (
                Ok(SolveOutcome {
                    plan: DeploymentPlan::new(),
                    objective: 0,
                    proven_optimal: true,
                    stats: SolveStats {
                        nodes_explored: 0,
                        wall: start.elapsed(),
                        proven_bound: Some(0),
                    },
                }),
                ParallelStats::default(),
            );
        }

        // Stand-alone mode: seed with the heuristic so deadline expiry
        // still has a plan to return.
        let mut seed_plan: Option<(u64, DeploymentPlan)> = None;
        if self.seed_with_heuristic {
            if let Ok(plan) = GreedyHeuristic::new().deploy(tdg, net, eps) {
                let objective = plan.max_inter_switch_bytes(tdg);
                ctx.publish_incumbent(objective);
                if objective == 0 {
                    // A zero-overhead incumbent is already optimal.
                    return (
                        Ok(SolveOutcome {
                            plan,
                            objective: 0,
                            proven_optimal: true,
                            stats: SolveStats {
                                nodes_explored: 0,
                                wall: start.elapsed(),
                                proven_bound: Some(0),
                            },
                        }),
                        ParallelStats::default(),
                    );
                }
                seed_plan = Some((objective, plan));
            }
        }
        if ctx.incumbent_bound() == 0 {
            // Nothing can beat a zero bound published elsewhere.
            return (
                match seed_plan {
                    Some((objective, plan)) => Ok(SolveOutcome {
                        plan,
                        objective,
                        proven_optimal: false,
                        stats: SolveStats {
                            nodes_explored: 0,
                            wall: start.elapsed(),
                            proven_bound: Some(0),
                        },
                    }),
                    None => Err(DeployError::NoImprovementProven { bound: 0 }),
                },
                ParallelStats::default(),
            );
        }

        let order = tdg.topo_order().expect("TDGs are DAGs");
        let q = candidates.len();
        assert!(q <= usize::from(u16::MAX), "candidate index must fit u16");
        let symmetric = eps.max_latency_us.is_infinite()
            && candidates.windows(2).all(|w| {
                net.switch(w[0]).target_model().symmetric_to(&net.switch(w[1]).target_model())
            });

        // Leaf fast path precondition: with no latency bound and every
        // ordered candidate pair routable, a stage-feasible full assignment
        // is always materializable, so leaves can be scored from the
        // evaluator's running objective without building a plan.
        let all_pairs_routable = (0..q).all(|a| {
            (0..q).all(|b| a == b || shortest_path(net, candidates[a], candidates[b]).is_some())
        });
        let total_caps: Vec<f64> =
            candidates.iter().map(|&id| net.switch(id).total_capacity()).collect();

        let shared = SharedSearch {
            tdg,
            net,
            eps,
            order: &order,
            candidates: &candidates,
            symmetric,
            fast_leaves: eps.max_latency_us.is_infinite() && all_pairs_routable,
            total_caps,
            // The acceptance ceiling every worker prunes and records
            // against. Read once, after seed publication, so it is a
            // deterministic function of the solver's inputs — the live
            // incumbent may drop below it mid-search but only ever
            // tightens the (timing-safe) strict cut in `Explorer::cut`.
            entry_bound: ctx.incumbent_bound(),
            ctx,
        };

        let requested_workers = ctx.worker_count().max(1);
        let target_roots = requested_workers * self.roots_per_worker.max(1);

        // Phase 1: deterministic frontier enumeration (single-threaded,
        // exact DFS candidate order) splitting the tree into independent
        // subtree roots.
        let mut enumerator = Explorer::new(&shared);
        let frontier = build_frontier(&mut enumerator, target_roots);
        let enum_explored = enumerator.explored;
        let enum_stopped = enumerator.stopped;
        drop(enumerator);

        // Phase 2: work-stealing subtree execution.
        let workers = if enum_stopped || frontier.count == 0 {
            0
        } else {
            requested_workers.min(frontier.count)
        };
        let queues: Vec<Mutex<VecDeque<u32>>> = (0..workers.max(1))
            .map(|w| {
                Mutex::new(
                    (0..frontier.count as u32)
                        .filter(|r| *r as usize % workers.max(1) == w)
                        .collect(),
                )
            })
            .collect();
        let outs: Vec<WorkerOut> = if workers <= 1 {
            if workers == 1 {
                vec![run_worker(&shared, &frontier, &queues, 0)]
            } else {
                Vec::new()
            }
        } else {
            std::thread::scope(|scope| {
                let shared = &shared;
                let frontier = &frontier;
                let queues = &queues;
                let handles: Vec<_> = (0..workers)
                    .map(|w| scope.spawn(move || run_worker(shared, frontier, queues, w)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
            })
        };

        // Phase 3: deterministic reduction — the lexicographic minimum
        // over (objective, canonical subtree index), i.e. the lowest-index
        // optimal solution, exactly what the sequential DFS returns.
        let mut best: Option<(u64, u32)> = None;
        let mut best_assign: Option<Vec<usize>> = None;
        let mut explored = enum_explored;
        let mut bound_prunes = 0u64;
        let mut steals = 0u64;
        let mut worker_stopped = false;
        for out in outs {
            explored += out.explored;
            bound_prunes += out.bound_prunes;
            steals += out.steals;
            worker_stopped |= out.stopped;
            if let Some(key) = out.best {
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                    best_assign = Some(out.best_assign);
                }
            }
        }
        let exhausted = !enum_stopped && !worker_stopped;
        let mut own_best = seed_plan.as_ref().map(|(obj, _)| *obj).unwrap_or(u64::MAX);
        if let Some((obj, _)) = best {
            own_best = own_best.min(obj);
        }
        let pstats = ParallelStats {
            workers,
            frontier_depth: frontier.depth,
            subtree_roots: frontier.count,
            steals,
            bound_prunes,
        };

        let mut best_plan = seed_plan;
        if let Some(assign) = best_assign {
            if let Some(plan) = materialize(tdg, net, &candidates, &assign) {
                best_plan = Some((plan.max_inter_switch_bytes(tdg).min(own_best), plan));
            }
        }
        // Exhaustion proves that no plan strictly below the final
        // effective bound (own best ∧ shared bound) was missed.
        let shared_bound = ctx.incumbent_bound();
        let proven_bound = exhausted.then_some(own_best.min(shared_bound));
        let result = match best_plan {
            Some((objective, plan)) => Ok(SolveOutcome {
                plan,
                objective,
                proven_optimal: exhausted && objective <= shared_bound,
                stats: SolveStats { nodes_explored: explored, wall: start.elapsed(), proven_bound },
            }),
            None if exhausted && shared_bound != crate::solver::NO_BOUND => {
                Err(DeployError::NoImprovementProven { bound: shared_bound })
            }
            None => Err(DeployError::NoFeasiblePlacement {
                reason: if exhausted {
                    "exhausted assignment search without a feasible plan".to_owned()
                } else {
                    "search budget expired before any feasible plan".to_owned()
                },
            }),
        };
        (result, pstats)
    }
}

impl Solver for OptimalSolver {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        self.solve_instrumented(tdg, net, eps, ctx).0
    }
}

impl DeploymentAlgorithm for OptimalSolver {
    fn name(&self) -> &str {
        "Optimal"
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        self.solve(tdg, net, eps, &SearchContext::with_time_limit(DEFAULT_DEPLOY_BUDGET))
            .map(|o| o.plan)
    }

    fn is_exhaustive(&self) -> bool {
        true
    }
}

/// Telemetry of one parallel exact solve (see
/// [`OptimalSolver::solve_instrumented`]). Unlike
/// [`SolveStats`], these counters are *not* part of the deterministic
/// outcome: steal counts and live-bound prune counts depend on thread
/// timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Worker threads the subtree pool actually ran with.
    pub workers: usize,
    /// Depth of the subtree-splitting frontier.
    pub frontier_depth: usize,
    /// Number of independent subtree roots dealt to the pool.
    pub subtree_roots: usize,
    /// Subtree roots claimed from another worker's deque.
    pub steals: u64,
    /// Nodes cut by the incumbent bound (entry or live).
    pub bound_prunes: u64,
}

/// Immutable per-solve state shared (by reference) across workers.
struct SharedSearch<'a> {
    tdg: &'a Tdg,
    net: &'a Network,
    eps: &'a Epsilon,
    order: &'a [NodeId],
    candidates: &'a [SwitchId],
    symmetric: bool,
    /// Leaves may be scored from `eval.amax()` without materializing.
    fast_leaves: bool,
    /// Per-candidate [`hermes_net::TargetModel::total_capacity`] (budget
    /// clamp included).
    total_caps: Vec<f64>,
    /// Incumbent bound captured once at solve entry (after seed
    /// publication): the deterministic acceptance ceiling.
    entry_bound: u64,
    ctx: &'a SearchContext,
}

/// Sentinel candidate index for "nothing placed at this frame".
const NO_CANDIDATE: u32 = u32::MAX;

/// One level of the iterative DFS, in the per-worker frame arena.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Next candidate index to try at this depth.
    next_c: u32,
    /// Candidate currently placed at this depth ([`NO_CANDIDATE`] = none).
    placed_c: u32,
    /// Undo-log base of the current placement's `push_logged`.
    log_base: u32,
    /// Symmetry-break cap (occupied switches at frame entry).
    used_switches: u32,
}

/// The deterministic subtree frontier: `count` prefixes of length `depth`
/// flattened into `prefixes` (stride = `depth`), in exact DFS candidate
/// order. The prefix index is the canonical subtree index used for
/// tie-breaking.
struct Frontier {
    prefixes: Vec<u16>,
    count: usize,
    depth: usize,
}

impl Frontier {
    fn prefix(&self, root: u32) -> &[u16] {
        let base = root as usize * self.depth;
        &self.prefixes[base..base + self.depth]
    }
}

/// Expands the search tree breadth-first (in DFS candidate order, applying
/// only deterministic prunes) until at least `target` independent subtree
/// roots exist, the tree bottoms out, or the context stops the search.
/// A level that expands to zero prefixes proves the tree has no feasible
/// leaves below the entry bound.
fn build_frontier(ex: &mut Explorer<'_>, target: usize) -> Frontier {
    let n = ex.sh.order.len();
    let mut level: Vec<u16> = Vec::new();
    let mut count = 1usize; // depth 0: the single empty prefix
    let mut depth = 0usize;
    while depth < n && count < target && count > 0 {
        let mut next: Vec<u16> = Vec::with_capacity(count.saturating_mul(depth + 2));
        let mut next_count = 0usize;
        for i in 0..count {
            let prefix = &level[i * depth..(i + 1) * depth];
            next_count += ex.expand(prefix, &mut next);
            if ex.stopped {
                return Frontier { prefixes: Vec::new(), count: 0, depth };
            }
        }
        level = next;
        count = next_count;
        depth += 1;
    }
    Frontier { prefixes: level, count, depth }
}

/// Claims the next subtree root for worker `me`: own deque front first
/// (preserving canonical order), then steal from the back of the first
/// non-empty victim.
fn claim(queues: &[Mutex<VecDeque<u32>>], me: usize, steals: &mut u64) -> Option<u32> {
    if let Some(r) = queues[me].lock().expect("queue lock").pop_front() {
        return Some(r);
    }
    for off in 1..queues.len() {
        let victim = (me + off) % queues.len();
        if let Some(r) = queues[victim].lock().expect("queue lock").pop_back() {
            *steals += 1;
            return Some(r);
        }
    }
    None
}

/// Per-worker result, merged by the deterministic reduction.
struct WorkerOut {
    /// Best `(objective, canonical subtree index)` this worker accepted.
    best: Option<(u64, u32)>,
    best_assign: Vec<usize>,
    explored: u64,
    bound_prunes: u64,
    steals: u64,
    stopped: bool,
}

fn run_worker(
    sh: &SharedSearch<'_>,
    frontier: &Frontier,
    queues: &[Mutex<VecDeque<u32>>],
    me: usize,
) -> WorkerOut {
    let mut ex = Explorer::new(sh);
    let mut steals = 0u64;
    while !ex.stopped {
        let Some(root) = claim(queues, me, &mut steals) else { break };
        ex.run_root(root, frontier.prefix(root));
    }
    WorkerOut {
        best: ex.best,
        best_assign: ex.best_assign,
        explored: ex.explored,
        bound_prunes: ex.bound_prunes,
        steals,
        stopped: ex.stopped,
    }
}

/// A worker's private search state: one reversible evaluator + packing
/// set, reset and replayed per claimed subtree, plus the reusable frame
/// arena of the iterative DFS. Nothing here is shared across workers.
struct Explorer<'a> {
    sh: &'a SharedSearch<'a>,
    eval: IncrementalEval,
    /// Per-candidate incremental pipeline state: nodes reach each switch
    /// in topological order, so the packed state always equals the prefix
    /// state of a full repack — pushing is the exact stage-feasibility
    /// check for the grown set, with O(slices) undo.
    packings: Vec<Packing>,
    /// Shared undo log for [`Packing::push_logged`]; each DFS frame
    /// remembers its base index and reverts to it.
    stage_log: Vec<(u32, f64)>,
    /// Frame arena of the iterative DFS, reused across subtrees.
    frames: Vec<Frame>,
    /// Best objective in the subtree currently being explored.
    root_best: u64,
    root_found: bool,
    /// Assignment of the current subtree's best leaf.
    root_assign: Vec<usize>,
    /// Best `(objective, subtree index)` across this worker's subtrees.
    best: Option<(u64, u32)>,
    best_assign: Vec<usize>,
    explored: u64,
    bound_prunes: u64,
    stopped: bool,
}

impl<'a> Explorer<'a> {
    fn new(sh: &'a SharedSearch<'a>) -> Self {
        let n = sh.tdg.node_count();
        Explorer {
            sh,
            eval: IncrementalEval::new(sh.tdg, sh.candidates.len()),
            packings: sh
                .candidates
                .iter()
                .map(|&id| Packing::new(&sh.net.switch(id).target_model(), n))
                .collect(),
            stage_log: Vec::with_capacity(64),
            frames: Vec::with_capacity(n),
            root_best: u64::MAX,
            root_found: false,
            root_assign: Vec::with_capacity(n),
            best: None,
            best_assign: Vec::new(),
            explored: 0,
            bound_prunes: 0,
            stopped: false,
        }
    }

    /// Restores pristine evaluator/packing state (allocation-free) before
    /// replaying the next subtree prefix.
    fn reset_state(&mut self) {
        self.eval.reset();
        for p in &mut self.packings {
            p.reset();
        }
        self.stage_log.clear();
    }

    /// The incumbent cut. The first disjunct is deterministic (subtree
    /// best ∧ entry bound, both timing-independent); the second uses the
    /// live shared incumbent but only *strictly* above it, so a subtree
    /// containing a globally optimal leaf (whose partial objective never
    /// exceeds the optimum ≤ every published incumbent) is never cut.
    fn cut(&self, amax: u64) -> bool {
        amax >= self.root_best.min(self.sh.entry_bound) || amax > self.sh.ctx.incumbent_bound()
    }

    /// Node-entry prologue shared by every depth: count, poll the deadline
    /// (amortized — `Instant::now` costs more than a whole branch step),
    /// apply the incumbent cut, accept leaves. Returns `true` when the
    /// node's children should be explored.
    fn enter(&mut self, depth: usize) -> bool {
        self.explored += 1;
        if (self.explored == 1 || self.explored & 0x3F == 0) && self.sh.ctx.should_stop() {
            self.stopped = true;
            return false;
        }
        if self.cut(self.eval.amax()) {
            self.bound_prunes += 1;
            return false;
        }
        if depth == self.sh.order.len() {
            self.accept_leaf();
            return false;
        }
        true
    }

    /// Runs every feasibility check for placing the depth-`depth` node on
    /// candidate `c`; on success the node stays placed and the packing
    /// undo-log base is returned for the later revert.
    fn try_place(&mut self, depth: usize, c: usize) -> Option<u32> {
        let node = self.sh.order[depth];
        let resource = self.sh.tdg.node(node).mat.resource();
        if self.eval.used_capacity(c) + resource > self.sh.total_caps[c] + 1e-9 {
            return None;
        }
        // ε₂: opening a new switch must stay within the bound.
        if self.eval.nodes_on(c) == 0 && self.eval.occupied() + 1 > self.sh.eps.max_switches {
            return None;
        }
        // Stage-feasibility prune: pushing onto the switch's live packing
        // is the exact check (its state equals the prefix state of a full
        // repack), cutting precisely the subtrees whose leaves would fail
        // `materialize`. A failed push rolls itself back and leaves the
        // log untouched.
        let log_base = u32::try_from(self.stage_log.len()).expect("log fits u32");
        if !self.packings[c].push_logged(self.sh.tdg, node, &mut self.stage_log) {
            return None;
        }
        self.eval.place(node.index(), c);
        // The switch DAG must stay acyclic (no packet recirculation
        // through a switch).
        if !self.eval.is_acyclic() {
            self.eval.unplace(node.index());
            self.packings[c].revert(node, &mut self.stage_log, log_base as usize);
            return None;
        }
        Some(log_base)
    }

    fn undo(&mut self, depth: usize, c: usize, log_base: u32) {
        let node = self.sh.order[depth];
        self.eval.unplace(node.index());
        self.packings[c].revert(node, &mut self.stage_log, log_base as usize);
    }

    /// Appends every viable one-node extension of `prefix` (in candidate
    /// order, deterministic prunes only) to `out`; returns how many.
    /// Used by the frontier builder.
    fn expand(&mut self, prefix: &[u16], out: &mut Vec<u16>) -> usize {
        self.reset_state();
        for (k, &c) in prefix.iter().enumerate() {
            if self.try_place(k, c as usize).is_none() {
                debug_assert!(false, "frontier prefix must replay cleanly");
                return 0;
            }
        }
        let depth = prefix.len();
        let q = self.sh.candidates.len();
        let used_switches = if self.sh.symmetric { self.eval.occupied() } else { 0 };
        let mut added = 0usize;
        for c in 0..q {
            // Symmetry breaking: only the first unused switch may be
            // opened.
            if self.sh.symmetric && c > used_switches {
                break;
            }
            let Some(log_base) = self.try_place(depth, c) else { continue };
            self.explored += 1;
            if (self.explored & 0x3F == 0) && self.sh.ctx.should_stop() {
                self.stopped = true;
                return added;
            }
            // Child-entry incumbent cut, deterministic part only: the
            // frontier (and with it the canonical subtree indexing) must
            // not depend on live-incumbent timing.
            if self.eval.amax() < self.sh.entry_bound {
                out.extend_from_slice(prefix);
                out.push(u16::try_from(c).expect("candidate fits u16"));
                added += 1;
            } else {
                self.bound_prunes += 1;
            }
            self.undo(depth, c, log_base);
        }
        added
    }

    /// Explores one claimed subtree: reset, replay the prefix, run the
    /// iterative DFS below it, then fold the subtree's best leaf into the
    /// worker's `(objective, subtree index)` minimum.
    fn run_root(&mut self, root: u32, prefix: &[u16]) {
        self.reset_state();
        for (k, &c) in prefix.iter().enumerate() {
            if self.try_place(k, c as usize).is_none() {
                debug_assert!(false, "frontier prefix must replay cleanly");
                return;
            }
        }
        self.root_best = u64::MAX;
        self.root_found = false;
        self.run_subtree(prefix.len());
        if self.root_found {
            let key = (self.root_best, root);
            if self.best.is_none_or(|b| key < b) {
                self.best = Some(key);
                std::mem::swap(&mut self.best_assign, &mut self.root_assign);
            }
        }
    }

    /// Iterative DFS below an already-replayed prefix of length `base`,
    /// using the reusable frame arena instead of the call stack. Mirrors
    /// the recursive formulation exactly: undo-before-advance, candidate
    /// order, symmetric break, and poll/prune/leaf checks via `enter`.
    /// On stop the state is left dirty — `reset_state` runs before any
    /// reuse.
    fn run_subtree(&mut self, base: usize) {
        if !self.enter(base) {
            return;
        }
        self.frames.clear();
        self.frames.push(self.fresh_frame());
        while let Some(top) = self.frames.len().checked_sub(1) {
            if self.stopped {
                return;
            }
            let depth = base + top;
            // Undo the placement left by the previous descent, if any.
            let Frame { placed_c, log_base, used_switches, .. } = self.frames[top];
            if placed_c != NO_CANDIDATE {
                self.undo(depth, placed_c as usize, log_base);
                self.frames[top].placed_c = NO_CANDIDATE;
            }
            // Advance to the next viable candidate at this depth.
            let q = self.sh.candidates.len();
            let mut descended = false;
            loop {
                let c = self.frames[top].next_c as usize;
                if c >= q || (self.sh.symmetric && c > used_switches as usize) {
                    break;
                }
                self.frames[top].next_c += 1;
                let Some(log_base) = self.try_place(depth, c) else { continue };
                self.frames[top].placed_c = c as u32;
                self.frames[top].log_base = log_base;
                if self.enter(depth + 1) {
                    let frame = self.fresh_frame();
                    self.frames.push(frame);
                    descended = true;
                }
                // When `enter` declined (prune/leaf/stop) the placement
                // stays until the next loop iteration undoes it — the
                // same order as the recursive undo.
                break;
            }
            if !descended && self.frames[top].placed_c == NO_CANDIDATE {
                self.frames.pop();
            }
        }
    }

    fn fresh_frame(&self) -> Frame {
        Frame {
            next_c: 0,
            placed_c: NO_CANDIDATE,
            log_base: 0,
            used_switches: if self.sh.symmetric { self.eval.occupied() as u32 } else { 0 },
        }
    }

    fn accept_leaf(&mut self) {
        // Acceptance ceiling: subtree best ∧ entry bound — both
        // deterministic, so which leaves each subtree records never
        // depends on other workers' timing.
        let ceiling = self.root_best.min(self.sh.entry_bound);
        if self.sh.fast_leaves {
            // Stage feasibility was enforced on every step and all routes
            // exist, so the assignment is materializable by construction
            // and the evaluator's running maximum *is* the plan objective.
            let objective = self.eval.amax();
            if objective < ceiling {
                self.record(objective);
            }
            return;
        }
        // Full assignment below the ceiling: validate stages + routes.
        let Some(plan) =
            materialize(self.sh.tdg, self.sh.net, self.sh.candidates, self.eval.assignment())
        else {
            return;
        };
        if plan.end_to_end_latency_us() > self.sh.eps.max_latency_us {
            return;
        }
        let objective = plan.max_inter_switch_bytes(self.sh.tdg);
        if objective < ceiling {
            self.record(objective);
        }
    }

    fn record(&mut self, objective: u64) {
        self.root_best = objective;
        self.root_found = true;
        self.root_assign.clear();
        self.root_assign.extend_from_slice(self.eval.assignment());
        self.sh.ctx.publish_incumbent(objective);
    }
}

/// Builds a full plan (stage placements + routes) from a switch-level
/// assignment: `assign[node] = index into candidates` (`usize::MAX` =
/// unplaced). Returns `None` when stage assignment or routing fails.
///
/// Shared by the exact solver, the MILP front end, and the baseline
/// frameworks — every algorithm in the workspace goes through the same
/// stage assigner and router, so plans differ only in their placement
/// decisions.
pub fn materialize(
    tdg: &Tdg,
    net: &Network,
    candidates: &[SwitchId],
    assign: &[usize],
) -> Option<DeploymentPlan> {
    let mut plan = DeploymentPlan::new();
    for (c, &switch) in candidates.iter().enumerate() {
        let nodes: BTreeSet<NodeId> = tdg.node_ids().filter(|id| assign[id.index()] == c).collect();
        if nodes.is_empty() {
            continue;
        }
        let model = net.switch(switch).target_model();
        let placements = assign_stages(tdg, &nodes, switch, &model).ok()?;
        for p in placements {
            plan.place(p);
        }
    }
    // One route per dependent cross-switch pair.
    let mut pairs: BTreeSet<(SwitchId, SwitchId)> = BTreeSet::new();
    for e in tdg.edges() {
        let (u, v) = (assign[e.from.index()], assign[e.to.index()]);
        if u == usize::MAX || v == usize::MAX || u == v {
            continue;
        }
        pairs.insert((candidates[u], candidates[v]));
    }
    for (u, v) in pairs {
        let path = shortest_path(net, u, v)?;
        plan.route(PlanRoute { from: u, to: v, path });
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_tdg, tiny_switches};
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;
    use hermes_net::Switch;
    use hermes_tdg::AnalysisMode;
    use std::num::NonZeroUsize;
    use std::time::Duration;

    fn solve_default(tdg: &Tdg, net: &Network, eps: &Epsilon) -> Result<SolveOutcome, DeployError> {
        OptimalSolver::default().solve(
            tdg,
            net,
            eps,
            &SearchContext::with_time_limit(Duration::from_secs(30)),
        )
    }

    #[test]
    fn finds_figure1_optimum() {
        // a -1-> b -4-> c, two switches of two MATs each: optimum cuts the
        // 1-byte edge.
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert!(out.proven_optimal);
        assert_eq!(out.objective, 1);
        assert_eq!(out.plan.max_inter_switch_bytes(&tdg), 1);
    }

    #[test]
    fn zero_overhead_when_everything_fits() {
        let tdg = chain_tdg(&[8, 8], 0.2);
        let net = tiny_switches(2, 12, 1.0);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(out.objective, 0);
        assert!(out.proven_optimal);
    }

    #[test]
    fn optimal_never_worse_than_heuristic() {
        // Non-chain TDG where a greedy prefix split can be suboptimal.
        let tdg = {
            let m = |n: &str, s: u32| Field::metadata(format!("x.{n}"), s);
            let a = Mat::builder("a")
                .action(Action::writing("w", [m("ab", 9), m("ac", 2)]))
                .resource(0.5)
                .build()
                .unwrap();
            let b = Mat::builder("b")
                .match_field(m("ab", 9), MatchKind::Exact)
                .action(Action::writing("w", [m("bd", 3)]))
                .resource(0.5)
                .build()
                .unwrap();
            let c = Mat::builder("c")
                .match_field(m("ac", 2), MatchKind::Exact)
                .action(Action::writing("w", [m("cd", 7)]))
                .resource(0.5)
                .build()
                .unwrap();
            let d = Mat::builder("d")
                .match_field(m("bd", 3), MatchKind::Exact)
                .match_field(m("cd", 7), MatchKind::Exact)
                .action(Action::new("noop"))
                .resource(0.5)
                .build()
                .unwrap();
            let p = Program::builder("p").table(a).table(b).table(c).table(d).build().unwrap();
            Tdg::from_program(&p, AnalysisMode::Intersection)
        };
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::loose();
        let heuristic =
            GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap().max_inter_switch_bytes(&tdg);
        let out = solve_default(&tdg, &net, &eps).unwrap();
        assert!(out.proven_optimal);
        assert!(out.objective <= heuristic, "optimal {} > heuristic {heuristic}", out.objective);
    }

    #[test]
    fn plan_verifies_clean() {
        let tdg = chain_tdg(&[1, 4, 2, 8], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::loose();
        let out = solve_default(&tdg, &net, &eps).unwrap();
        let violations = crate::verify::verify(&tdg, &net, &out.plan, &eps);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn respects_epsilon2() {
        let tdg = chain_tdg(&[1, 1, 1], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::new(f64::INFINITY, 2);
        let out = solve_default(&tdg, &net, &eps).unwrap();
        assert!(out.plan.occupied_switch_count() <= 2);
    }

    #[test]
    fn expired_deadline_reports_unproven() {
        // A larger instance with a 0 ms budget still returns the heuristic
        // incumbent but cannot prove optimality. (Plenty of switches: the
        // greedy splitter may oversegment a monotone chain.)
        let tdg = chain_tdg(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], 0.5);
        let net = tiny_switches(12, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::ZERO);
        let out = OptimalSolver::default().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap();
        assert!(!out.proven_optimal);
        assert!(!out.plan.placements().is_empty());
    }

    #[test]
    fn bare_solver_with_expired_deadline_has_no_plan() {
        let tdg = chain_tdg(&[1, 2, 3], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::ZERO);
        let err = OptimalSolver::bare().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap_err();
        assert!(matches!(err, DeployError::NoFeasiblePlacement { .. }));
    }

    #[test]
    fn bare_solver_proves_an_external_bound() {
        // Publish the true optimum externally: the bare search exhausts
        // without improving on it and returns the proof.
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let ctx = SearchContext::unbounded();
        ctx.publish_incumbent(1);
        let err = OptimalSolver::bare().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap_err();
        assert_eq!(err, DeployError::NoImprovementProven { bound: 1 });
    }

    #[test]
    fn no_programmable_switch_is_an_error() {
        let mut net = Network::new();
        net.add_switch(Switch::legacy("l"));
        let tdg = chain_tdg(&[1], 0.5);
        let err = solve_default(&tdg, &net, &Epsilon::loose()).unwrap_err();
        assert_eq!(err, DeployError::NoProgrammableSwitch);
    }

    #[test]
    fn empty_tdg_trivial() {
        let tdg = Tdg::new(AnalysisMode::PaperLiteral);
        let net = tiny_switches(2, 2, 0.5);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(out.objective, 0);
        assert!(out.proven_optimal);
    }

    #[test]
    fn deploy_api_still_works() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let plan = OptimalSolver::default().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 1);
    }

    #[test]
    fn outcome_is_identical_across_worker_counts() {
        let tdg = chain_tdg(&[1, 4, 2, 8, 3], 0.5);
        let net = tiny_switches(3, 3, 0.5);
        let eps = Epsilon::loose();
        let reference = OptimalSolver::default()
            .solve(
                &tdg,
                &net,
                &eps,
                &SearchContext::unbounded().with_threads(NonZeroUsize::new(1).unwrap()),
            )
            .unwrap();
        for workers in 2..=8 {
            let ctx = SearchContext::unbounded().with_threads(NonZeroUsize::new(workers).unwrap());
            let out = OptimalSolver::default().solve(&tdg, &net, &eps, &ctx).unwrap();
            assert_eq!(out.plan, reference.plan, "plan diverged at {workers} workers");
            assert_eq!(out.objective, reference.objective);
            assert_eq!(out.proven_optimal, reference.proven_optimal);
            assert_eq!(out.stats.proven_bound, reference.stats.proven_bound);
        }
    }

    #[test]
    fn instrumented_solve_reports_frontier_telemetry() {
        // Bare solver, no incumbent: the frontier cannot be pruned away
        // during enumeration, so subtree roots must reach the pool.
        let tdg = chain_tdg(&[1, 4, 2, 8], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let ctx = SearchContext::unbounded().with_threads(NonZeroUsize::new(4).unwrap());
        let (result, stats) =
            OptimalSolver::bare().solve_instrumented(&tdg, &net, &Epsilon::loose(), &ctx);
        let out = result.unwrap();
        assert!(out.proven_optimal);
        assert!(stats.workers >= 1 && stats.workers <= 4, "{stats:?}");
        assert!(stats.subtree_roots >= stats.workers, "{stats:?}");
        assert!(stats.frontier_depth >= 1, "{stats:?}");
    }

    #[test]
    fn seed_proven_optimal_by_enumeration_alone_reports_zero_roots() {
        // When the greedy seed is already optimal the frontier expansion
        // prunes every child against the entry bound: the enumeration is
        // the exhaustion proof and no subtree ever reaches the pool.
        let tdg = chain_tdg(&[1, 4, 2, 8], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let ctx = SearchContext::unbounded().with_threads(NonZeroUsize::new(4).unwrap());
        let (result, stats) =
            OptimalSolver::default().solve_instrumented(&tdg, &net, &Epsilon::loose(), &ctx);
        let out = result.unwrap();
        assert!(out.proven_optimal);
        assert!(stats.subtree_roots == 0 || stats.workers >= 1, "{stats:?}");
    }
}
