//! The "Optimal" solver: exact minimization of `A_max`.
//!
//! Plays the role of the paper's Gurobi-based Hermes variant. Rather than
//! feeding the full stage-level MILP to the LP-based solver (see
//! [`crate::milp_formulation`] for that encoding), this solver branches
//! directly over MAT → switch assignments in topological order with
//! aggressive incumbent pruning:
//!
//! - the running `A_max` is monotone in the partial assignment, so any
//!   partial plan at or above the incumbent is cut;
//! - per-switch resource totals are tracked incrementally;
//! - the switch-level dependency graph must stay acyclic (packets never
//!   recirculate through a switch), checked incrementally;
//! - identical switches under loose ε-bounds are interchangeable, so the
//!   search only ever opens one fresh switch at a time (symmetry breaking);
//! - the pruning bound is the *minimum* of the solver's own best leaf and
//!   the shared incumbent of its [`SearchContext`] — in a
//!   [`crate::solver::Portfolio`] race the greedy racer's early bound
//!   prunes this search;
//! - in stand-alone (seeded) mode the greedy heuristic provides the
//!   initial incumbent.
//!
//! The [`SearchContext`] deadline bounds the worst case; the outcome
//! reports whether optimality was proven, which the execution-time
//! experiment (Exp#3) uses to flag timed-out ILP-style runs.

use crate::deployment::{DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon, PlanRoute};
use crate::heuristic::GreedyHeuristic;
use crate::solver::{SearchContext, SolveOutcome, SolveStats, Solver, DEFAULT_DEPLOY_BUDGET};
use crate::stage_assign::assign_stages;
use hermes_net::{shortest_path, Network, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use std::collections::BTreeSet;
use std::time::Instant;

/// Exact `A_max` minimizer driven entirely by a [`SearchContext`] (no
/// private time budget).
#[derive(Debug, Clone)]
pub struct OptimalSolver {
    /// When `true` (the default), the greedy heuristic seeds the incumbent
    /// before the search, so a deadline expiry still returns a plan. A
    /// portfolio uses [`OptimalSolver::bare`] instead — the greedy racer
    /// already publishes that incumbent, and re-deriving it here would
    /// erase the portfolio's wall-clock advantage.
    pub seed_with_heuristic: bool,
}

impl Default for OptimalSolver {
    fn default() -> Self {
        OptimalSolver { seed_with_heuristic: true }
    }
}

impl OptimalSolver {
    /// The stand-alone configuration (greedy-seeded incumbent).
    pub fn new() -> Self {
        OptimalSolver::default()
    }

    /// The portfolio configuration: no internal heuristic seed; the
    /// incumbent bound arrives through the shared [`SearchContext`].
    pub fn bare() -> Self {
        OptimalSolver { seed_with_heuristic: false }
    }
}

impl Solver for OptimalSolver {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        let start = Instant::now();
        let candidates = net.programmable_switches();
        if candidates.is_empty() {
            return Err(DeployError::NoProgrammableSwitch);
        }
        if tdg.node_count() == 0 {
            ctx.publish_incumbent(0);
            return Ok(SolveOutcome {
                plan: DeploymentPlan::new(),
                objective: 0,
                proven_optimal: true,
                stats: SolveStats {
                    nodes_explored: 0,
                    wall: start.elapsed(),
                    proven_bound: Some(0),
                },
            });
        }

        // Stand-alone mode: seed with the heuristic so deadline expiry
        // still has a plan to return.
        let mut seed_plan: Option<(u64, DeploymentPlan)> = None;
        if self.seed_with_heuristic {
            if let Ok(plan) = GreedyHeuristic::new().deploy(tdg, net, eps) {
                let objective = plan.max_inter_switch_bytes(tdg);
                ctx.publish_incumbent(objective);
                if objective == 0 {
                    // A zero-overhead incumbent is already optimal.
                    return Ok(SolveOutcome {
                        plan,
                        objective: 0,
                        proven_optimal: true,
                        stats: SolveStats {
                            nodes_explored: 0,
                            wall: start.elapsed(),
                            proven_bound: Some(0),
                        },
                    });
                }
                seed_plan = Some((objective, plan));
            }
        }
        if ctx.incumbent_bound() == 0 {
            // Nothing can beat a zero bound published elsewhere.
            return match seed_plan {
                Some((objective, plan)) => Ok(SolveOutcome {
                    plan,
                    objective,
                    proven_optimal: false,
                    stats: SolveStats {
                        nodes_explored: 0,
                        wall: start.elapsed(),
                        proven_bound: Some(0),
                    },
                }),
                None => Err(DeployError::NoImprovementProven { bound: 0 }),
            };
        }

        let order = tdg.topo_order().expect("TDGs are DAGs");
        let q = candidates.len();
        let symmetric = eps.max_latency_us.is_infinite()
            && candidates.windows(2).all(|w| {
                let (a, b) = (net.switch(w[0]), net.switch(w[1]));
                a.stages == b.stages && (a.stage_capacity - b.stage_capacity).abs() < 1e-12
            });

        let mut search = Search {
            tdg,
            net,
            eps,
            order: &order,
            candidates: &candidates,
            symmetric,
            assign: vec![usize::MAX; tdg.node_count()],
            used_capacity: vec![0.0; q],
            pair_bytes: vec![0u64; q * q],
            order_edges: vec![0u32; q * q],
            current_max: 0,
            best: seed_plan.as_ref().map(|(obj, _)| *obj).unwrap_or(u64::MAX),
            best_assign: None,
            explored: 0,
            ctx,
            stopped: false,
        };
        search.dfs(0);
        let exhausted = !search.stopped;
        let explored = search.explored;
        let own_best = search.best;

        let mut best_plan = seed_plan;
        if let Some(assign) = search.best_assign {
            if let Some(plan) = materialize(tdg, net, &candidates, &assign) {
                best_plan = Some((plan.max_inter_switch_bytes(tdg).min(own_best), plan));
            }
        }
        // Exhaustion proves that no plan strictly below the final
        // effective bound (own best ∧ shared bound) was missed.
        let shared = ctx.incumbent_bound();
        let proven_bound = exhausted.then_some(own_best.min(shared));
        match best_plan {
            Some((objective, plan)) => Ok(SolveOutcome {
                plan,
                objective,
                proven_optimal: exhausted && objective <= shared,
                stats: SolveStats { nodes_explored: explored, wall: start.elapsed(), proven_bound },
            }),
            None if exhausted && shared != crate::solver::NO_BOUND => {
                Err(DeployError::NoImprovementProven { bound: shared })
            }
            None => Err(DeployError::NoFeasiblePlacement {
                reason: if exhausted {
                    "exhausted assignment search without a feasible plan".to_owned()
                } else {
                    "search budget expired before any feasible plan".to_owned()
                },
            }),
        }
    }
}

impl DeploymentAlgorithm for OptimalSolver {
    fn name(&self) -> &str {
        "Optimal"
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        self.solve(tdg, net, eps, &SearchContext::with_time_limit(DEFAULT_DEPLOY_BUDGET))
            .map(|o| o.plan)
    }

    fn is_exhaustive(&self) -> bool {
        true
    }
}

struct Search<'a> {
    tdg: &'a Tdg,
    net: &'a Network,
    eps: &'a Epsilon,
    order: &'a [NodeId],
    candidates: &'a [SwitchId],
    symmetric: bool,
    assign: Vec<usize>,
    used_capacity: Vec<f64>,
    pair_bytes: Vec<u64>,
    order_edges: Vec<u32>,
    current_max: u64,
    best: u64,
    best_assign: Option<Vec<usize>>,
    explored: u64,
    ctx: &'a SearchContext,
    stopped: bool,
}

impl Search<'_> {
    /// The pruning bound: own best leaf ∧ the best bound any cooperating
    /// solver has published.
    fn bound(&self) -> u64 {
        self.best.min(self.ctx.incumbent_bound())
    }

    fn dfs(&mut self, depth: usize) {
        if self.stopped {
            return;
        }
        self.explored += 1;
        if self.ctx.should_stop() {
            self.stopped = true;
            return;
        }
        if self.current_max >= self.bound() {
            return; // the running A_max only ever grows
        }
        if depth == self.order.len() {
            self.accept_leaf();
            return;
        }
        let node = self.order[depth];
        let q = self.candidates.len();
        let resource = self.tdg.node(node).mat.resource();

        // Symmetry breaking: only the first unused switch may be opened.
        let used_switches: usize = if self.symmetric {
            self.assign[..].iter().filter(|&&a| a != usize::MAX).collect::<BTreeSet<_>>().len()
        } else {
            0
        };

        for c in 0..q {
            if self.symmetric && c > used_switches {
                break;
            }
            let sw = self.net.switch(self.candidates[c]);
            if self.used_capacity[c] + resource > sw.total_capacity() + 1e-9 {
                continue;
            }
            // ε₂: opening a new switch must stay within the bound.
            let opens_new = self.used_capacity[c] == 0.0;
            if opens_new {
                let occupied = self.used_capacity.iter().filter(|&&u| u > 0.0).count();
                if occupied + 1 > self.eps.max_switches {
                    continue;
                }
            }

            // Collect the cross-switch deltas this choice induces.
            let mut delta: Vec<(usize, u64)> = Vec::new();
            for e in self.tdg.in_edges(node) {
                let p = self.assign[e.from.index()];
                if p == usize::MAX || p == c {
                    continue;
                }
                delta.push((p * q + c, u64::from(e.bytes)));
            }

            // Apply order edges, then require the switch DAG to stay
            // acyclic (no packet recirculation through a switch).
            for &(key, _) in &delta {
                self.order_edges[key] += 1;
            }
            if !self.switch_dag_acyclic() {
                for &(key, _) in &delta {
                    self.order_edges[key] -= 1;
                }
                continue;
            }

            let old_max = self.current_max;
            for &(key, bytes) in &delta {
                self.pair_bytes[key] += bytes;
                self.current_max = self.current_max.max(self.pair_bytes[key]);
            }
            self.used_capacity[c] += resource;
            self.assign[node.index()] = c;

            self.dfs(depth + 1);

            // Undo.
            self.assign[node.index()] = usize::MAX;
            self.used_capacity[c] -= resource;
            for &(key, bytes) in &delta {
                self.pair_bytes[key] -= bytes;
                self.order_edges[key] -= 1;
            }
            self.current_max = old_max;
            if self.stopped {
                return;
            }
        }
    }

    /// Kahn acyclicity check over the switch-level order edges. `q` is
    /// tiny (bounded by the programmable switch count), so O(q²) is fine.
    #[allow(clippy::needless_range_loop)] // `v` indexes both `indegree` and the flat edge matrix
    fn switch_dag_acyclic(&self) -> bool {
        let q = self.candidates.len();
        let mut indegree = vec![0u32; q];
        for u in 0..q {
            for v in 0..q {
                if self.order_edges[u * q + v] > 0 {
                    indegree[v] += 1;
                }
            }
        }
        let mut stack: Vec<usize> = (0..q).filter(|&v| indegree[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            for v in 0..q {
                if self.order_edges[u * q + v] > 0 {
                    indegree[v] -= 1;
                    if indegree[v] == 0 {
                        stack.push(v);
                    }
                }
            }
        }
        seen == q
    }

    fn accept_leaf(&mut self) {
        // Full assignment below the incumbent: validate stages + routes.
        let Some(plan) = materialize(self.tdg, self.net, self.candidates, &self.assign) else {
            return;
        };
        if plan.end_to_end_latency_us() > self.eps.max_latency_us {
            return;
        }
        let objective = plan.max_inter_switch_bytes(self.tdg);
        if objective < self.bound() {
            self.best = objective;
            self.best_assign = Some(self.assign.clone());
            self.ctx.publish_incumbent(objective);
        }
    }
}

/// Builds a full plan (stage placements + routes) from a switch-level
/// assignment: `assign[node] = index into candidates` (`usize::MAX` =
/// unplaced). Returns `None` when stage assignment or routing fails.
///
/// Shared by the exact solver, the MILP front end, and the baseline
/// frameworks — every algorithm in the workspace goes through the same
/// stage assigner and router, so plans differ only in their placement
/// decisions.
pub fn materialize(
    tdg: &Tdg,
    net: &Network,
    candidates: &[SwitchId],
    assign: &[usize],
) -> Option<DeploymentPlan> {
    let mut plan = DeploymentPlan::new();
    for (c, &switch) in candidates.iter().enumerate() {
        let nodes: BTreeSet<NodeId> = tdg.node_ids().filter(|id| assign[id.index()] == c).collect();
        if nodes.is_empty() {
            continue;
        }
        let sw = net.switch(switch);
        let placements = assign_stages(tdg, &nodes, switch, sw.stages, sw.stage_capacity).ok()?;
        for p in placements {
            plan.place(p);
        }
    }
    // One route per dependent cross-switch pair.
    let mut pairs: BTreeSet<(SwitchId, SwitchId)> = BTreeSet::new();
    for e in tdg.edges() {
        let (u, v) = (assign[e.from.index()], assign[e.to.index()]);
        if u == usize::MAX || v == usize::MAX || u == v {
            continue;
        }
        pairs.insert((candidates[u], candidates[v]));
    }
    for (u, v) in pairs {
        let path = shortest_path(net, u, v)?;
        plan.route(PlanRoute { from: u, to: v, path });
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_tdg, tiny_switches};
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;
    use hermes_net::Switch;
    use hermes_tdg::AnalysisMode;
    use std::time::Duration;

    fn solve_default(tdg: &Tdg, net: &Network, eps: &Epsilon) -> Result<SolveOutcome, DeployError> {
        OptimalSolver::default().solve(
            tdg,
            net,
            eps,
            &SearchContext::with_time_limit(Duration::from_secs(30)),
        )
    }

    #[test]
    fn finds_figure1_optimum() {
        // a -1-> b -4-> c, two switches of two MATs each: optimum cuts the
        // 1-byte edge.
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert!(out.proven_optimal);
        assert_eq!(out.objective, 1);
        assert_eq!(out.plan.max_inter_switch_bytes(&tdg), 1);
    }

    #[test]
    fn zero_overhead_when_everything_fits() {
        let tdg = chain_tdg(&[8, 8], 0.2);
        let net = tiny_switches(2, 12, 1.0);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(out.objective, 0);
        assert!(out.proven_optimal);
    }

    #[test]
    fn optimal_never_worse_than_heuristic() {
        // Non-chain TDG where a greedy prefix split can be suboptimal.
        let tdg = {
            let m = |n: &str, s: u32| Field::metadata(format!("x.{n}"), s);
            let a = Mat::builder("a")
                .action(Action::writing("w", [m("ab", 9), m("ac", 2)]))
                .resource(0.5)
                .build()
                .unwrap();
            let b = Mat::builder("b")
                .match_field(m("ab", 9), MatchKind::Exact)
                .action(Action::writing("w", [m("bd", 3)]))
                .resource(0.5)
                .build()
                .unwrap();
            let c = Mat::builder("c")
                .match_field(m("ac", 2), MatchKind::Exact)
                .action(Action::writing("w", [m("cd", 7)]))
                .resource(0.5)
                .build()
                .unwrap();
            let d = Mat::builder("d")
                .match_field(m("bd", 3), MatchKind::Exact)
                .match_field(m("cd", 7), MatchKind::Exact)
                .action(Action::new("noop"))
                .resource(0.5)
                .build()
                .unwrap();
            let p = Program::builder("p").table(a).table(b).table(c).table(d).build().unwrap();
            Tdg::from_program(&p, AnalysisMode::Intersection)
        };
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::loose();
        let heuristic =
            GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap().max_inter_switch_bytes(&tdg);
        let out = solve_default(&tdg, &net, &eps).unwrap();
        assert!(out.proven_optimal);
        assert!(out.objective <= heuristic, "optimal {} > heuristic {heuristic}", out.objective);
    }

    #[test]
    fn plan_verifies_clean() {
        let tdg = chain_tdg(&[1, 4, 2, 8], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::loose();
        let out = solve_default(&tdg, &net, &eps).unwrap();
        let violations = crate::verify::verify(&tdg, &net, &out.plan, &eps);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn respects_epsilon2() {
        let tdg = chain_tdg(&[1, 1, 1], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::new(f64::INFINITY, 2);
        let out = solve_default(&tdg, &net, &eps).unwrap();
        assert!(out.plan.occupied_switch_count() <= 2);
    }

    #[test]
    fn expired_deadline_reports_unproven() {
        // A larger instance with a 0 ms budget still returns the heuristic
        // incumbent but cannot prove optimality. (Plenty of switches: the
        // greedy splitter may oversegment a monotone chain.)
        let tdg = chain_tdg(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], 0.5);
        let net = tiny_switches(12, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::ZERO);
        let out = OptimalSolver::default().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap();
        assert!(!out.proven_optimal);
        assert!(!out.plan.placements().is_empty());
    }

    #[test]
    fn bare_solver_with_expired_deadline_has_no_plan() {
        let tdg = chain_tdg(&[1, 2, 3], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::ZERO);
        let err = OptimalSolver::bare().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap_err();
        assert!(matches!(err, DeployError::NoFeasiblePlacement { .. }));
    }

    #[test]
    fn bare_solver_proves_an_external_bound() {
        // Publish the true optimum externally: the bare search exhausts
        // without improving on it and returns the proof.
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let ctx = SearchContext::unbounded();
        ctx.publish_incumbent(1);
        let err = OptimalSolver::bare().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap_err();
        assert_eq!(err, DeployError::NoImprovementProven { bound: 1 });
    }

    #[test]
    fn no_programmable_switch_is_an_error() {
        let mut net = Network::new();
        net.add_switch(Switch::legacy("l"));
        let tdg = chain_tdg(&[1], 0.5);
        let err = solve_default(&tdg, &net, &Epsilon::loose()).unwrap_err();
        assert_eq!(err, DeployError::NoProgrammableSwitch);
    }

    #[test]
    fn empty_tdg_trivial() {
        let tdg = Tdg::new(AnalysisMode::PaperLiteral);
        let net = tiny_switches(2, 2, 0.5);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(out.objective, 0);
        assert!(out.proven_optimal);
    }

    #[test]
    fn deploy_api_still_works() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let plan = OptimalSolver::default().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 1);
    }
}
