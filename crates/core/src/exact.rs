//! The "Optimal" solver: exact minimization of `A_max`.
//!
//! Plays the role of the paper's Gurobi-based Hermes variant. Rather than
//! feeding the full stage-level MILP to the LP-based solver (see
//! [`crate::milp_formulation`] for that encoding), this solver branches
//! directly over MAT → switch assignments in topological order with
//! aggressive incumbent pruning:
//!
//! - the running `A_max` is monotone in the partial assignment, so any
//!   partial plan at or above the incumbent is cut;
//! - all per-step bookkeeping (pair bytes, the running `A_max`, per-switch
//!   occupancy, switch-order acyclicity) lives in one shared
//!   [`IncrementalEval`] updated in O(delta) per place/unplace;
//! - each candidate switch carries a live incremental pipeline packing
//!   with exact-snapshot undo (`Packing::push_logged` / `revert`): because
//!   nodes are assigned in topological order, the per-switch packed state
//!   is exactly the prefix of a full repack, so pushing the node *is* the
//!   stage-feasibility check and rejects precisely the subtrees whose
//!   leaves would fail stage assignment — no accepted leaf changes;
//! - under an infinite latency bound with fully routable candidates,
//!   leaves are accepted from the evaluator's running objective alone,
//!   without materializing a plan;
//! - identical switches under loose ε-bounds are interchangeable, so the
//!   search only ever opens one fresh switch at a time (symmetry breaking);
//! - the pruning bound is the *minimum* of the solver's own best leaf and
//!   the shared incumbent of its [`SearchContext`] — in a
//!   [`crate::solver::Portfolio`] race the greedy racer's early bound
//!   prunes this search;
//! - in stand-alone (seeded) mode the greedy heuristic provides the
//!   initial incumbent.
//!
//! The [`SearchContext`] deadline bounds the worst case; the outcome
//! reports whether optimality was proven, which the execution-time
//! experiment (Exp#3) uses to flag timed-out ILP-style runs.

use crate::deployment::{DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon, PlanRoute};
use crate::eval::IncrementalEval;
use crate::heuristic::GreedyHeuristic;
use crate::solver::{SearchContext, SolveOutcome, SolveStats, Solver, DEFAULT_DEPLOY_BUDGET};
use crate::stage_assign::{assign_stages, Packing};
use hermes_net::{shortest_path, Network, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use std::collections::BTreeSet;
use std::time::Instant;

/// Exact `A_max` minimizer driven entirely by a [`SearchContext`] (no
/// private time budget).
#[derive(Debug, Clone)]
pub struct OptimalSolver {
    /// When `true` (the default), the greedy heuristic seeds the incumbent
    /// before the search, so a deadline expiry still returns a plan. A
    /// portfolio uses [`OptimalSolver::bare`] instead — the greedy racer
    /// already publishes that incumbent, and re-deriving it here would
    /// erase the portfolio's wall-clock advantage.
    pub seed_with_heuristic: bool,
}

impl Default for OptimalSolver {
    fn default() -> Self {
        OptimalSolver { seed_with_heuristic: true }
    }
}

impl OptimalSolver {
    /// The stand-alone configuration (greedy-seeded incumbent).
    pub fn new() -> Self {
        OptimalSolver::default()
    }

    /// The portfolio configuration: no internal heuristic seed; the
    /// incumbent bound arrives through the shared [`SearchContext`].
    pub fn bare() -> Self {
        OptimalSolver { seed_with_heuristic: false }
    }
}

impl Solver for OptimalSolver {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        let start = Instant::now();
        let candidates = net.programmable_switches();
        if candidates.is_empty() {
            return Err(DeployError::NoProgrammableSwitch);
        }
        if tdg.node_count() == 0 {
            ctx.publish_incumbent(0);
            return Ok(SolveOutcome {
                plan: DeploymentPlan::new(),
                objective: 0,
                proven_optimal: true,
                stats: SolveStats {
                    nodes_explored: 0,
                    wall: start.elapsed(),
                    proven_bound: Some(0),
                },
            });
        }

        // Stand-alone mode: seed with the heuristic so deadline expiry
        // still has a plan to return.
        let mut seed_plan: Option<(u64, DeploymentPlan)> = None;
        if self.seed_with_heuristic {
            if let Ok(plan) = GreedyHeuristic::new().deploy(tdg, net, eps) {
                let objective = plan.max_inter_switch_bytes(tdg);
                ctx.publish_incumbent(objective);
                if objective == 0 {
                    // A zero-overhead incumbent is already optimal.
                    return Ok(SolveOutcome {
                        plan,
                        objective: 0,
                        proven_optimal: true,
                        stats: SolveStats {
                            nodes_explored: 0,
                            wall: start.elapsed(),
                            proven_bound: Some(0),
                        },
                    });
                }
                seed_plan = Some((objective, plan));
            }
        }
        if ctx.incumbent_bound() == 0 {
            // Nothing can beat a zero bound published elsewhere.
            return match seed_plan {
                Some((objective, plan)) => Ok(SolveOutcome {
                    plan,
                    objective,
                    proven_optimal: false,
                    stats: SolveStats {
                        nodes_explored: 0,
                        wall: start.elapsed(),
                        proven_bound: Some(0),
                    },
                }),
                None => Err(DeployError::NoImprovementProven { bound: 0 }),
            };
        }

        let order = tdg.topo_order().expect("TDGs are DAGs");
        let q = candidates.len();
        let symmetric = eps.max_latency_us.is_infinite()
            && candidates.windows(2).all(|w| {
                net.switch(w[0]).target_model().symmetric_to(&net.switch(w[1]).target_model())
            });

        // Leaf fast path precondition: with no latency bound and every
        // ordered candidate pair routable, a stage-feasible full assignment
        // is always materializable, so leaves can be scored from the
        // evaluator's running objective without building a plan.
        let all_pairs_routable = (0..q).all(|a| {
            (0..q).all(|b| a == b || shortest_path(net, candidates[a], candidates[b]).is_some())
        });
        let total_caps: Vec<f64> =
            candidates.iter().map(|&id| net.switch(id).total_capacity()).collect();
        let packings: Vec<Packing> = candidates
            .iter()
            .map(|&id| Packing::new(&net.switch(id).target_model(), tdg.node_count()))
            .collect();

        let mut search = Search {
            tdg,
            net,
            eps,
            order: &order,
            candidates: &candidates,
            symmetric,
            fast_leaves: eps.max_latency_us.is_infinite() && all_pairs_routable,
            total_caps,
            eval: IncrementalEval::new(tdg, q),
            packings,
            stage_log: Vec::with_capacity(64),
            best: seed_plan.as_ref().map(|(obj, _)| *obj).unwrap_or(u64::MAX),
            best_assign: None,
            explored: 0,
            ctx,
            stopped: false,
        };
        search.dfs(0);
        let exhausted = !search.stopped;
        let explored = search.explored;
        let own_best = search.best;

        let mut best_plan = seed_plan;
        if let Some(assign) = search.best_assign {
            if let Some(plan) = materialize(tdg, net, &candidates, &assign) {
                best_plan = Some((plan.max_inter_switch_bytes(tdg).min(own_best), plan));
            }
        }
        // Exhaustion proves that no plan strictly below the final
        // effective bound (own best ∧ shared bound) was missed.
        let shared = ctx.incumbent_bound();
        let proven_bound = exhausted.then_some(own_best.min(shared));
        match best_plan {
            Some((objective, plan)) => Ok(SolveOutcome {
                plan,
                objective,
                proven_optimal: exhausted && objective <= shared,
                stats: SolveStats { nodes_explored: explored, wall: start.elapsed(), proven_bound },
            }),
            None if exhausted && shared != crate::solver::NO_BOUND => {
                Err(DeployError::NoImprovementProven { bound: shared })
            }
            None => Err(DeployError::NoFeasiblePlacement {
                reason: if exhausted {
                    "exhausted assignment search without a feasible plan".to_owned()
                } else {
                    "search budget expired before any feasible plan".to_owned()
                },
            }),
        }
    }
}

impl DeploymentAlgorithm for OptimalSolver {
    fn name(&self) -> &str {
        "Optimal"
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        self.solve(tdg, net, eps, &SearchContext::with_time_limit(DEFAULT_DEPLOY_BUDGET))
            .map(|o| o.plan)
    }

    fn is_exhaustive(&self) -> bool {
        true
    }
}

struct Search<'a> {
    tdg: &'a Tdg,
    net: &'a Network,
    eps: &'a Epsilon,
    order: &'a [NodeId],
    candidates: &'a [SwitchId],
    symmetric: bool,
    /// Leaves may be scored from `eval.amax()` without materializing.
    fast_leaves: bool,
    /// Per-candidate [`hermes_net::TargetModel::total_capacity`] (budget
    /// clamp included).
    total_caps: Vec<f64>,
    eval: IncrementalEval,
    /// Per-candidate incremental pipeline state: nodes reach each switch
    /// in topological order, so the packed state always equals the prefix
    /// state of a full repack — pushing is the exact stage-feasibility
    /// check for the grown set, with O(slices) undo.
    packings: Vec<Packing>,
    /// Shared undo log for [`Packing::push_logged`]; each DFS frame
    /// remembers its base index and reverts to it.
    stage_log: Vec<(u32, f64)>,
    best: u64,
    best_assign: Option<Vec<usize>>,
    explored: u64,
    ctx: &'a SearchContext,
    stopped: bool,
}

impl Search<'_> {
    /// The pruning bound: own best leaf ∧ the best bound any cooperating
    /// solver has published.
    fn bound(&self) -> u64 {
        self.best.min(self.ctx.incumbent_bound())
    }

    fn dfs(&mut self, depth: usize) {
        if self.stopped {
            return;
        }
        self.explored += 1;
        // Deadline checks are amortized: `Instant::now` costs more than a
        // whole branch step, so poll at the root (catches an already
        // expired budget) and then every 64 nodes.
        if (self.explored == 1 || self.explored & 0x3F == 0) && self.ctx.should_stop() {
            self.stopped = true;
            return;
        }
        if self.eval.amax() >= self.bound() {
            return; // the running A_max only ever grows
        }
        if depth == self.order.len() {
            self.accept_leaf();
            return;
        }
        let node = self.order[depth];
        let q = self.candidates.len();
        let resource = self.tdg.node(node).mat.resource();

        // Symmetry breaking: only the first unused switch may be opened.
        let used_switches = if self.symmetric { self.eval.occupied() } else { 0 };

        for c in 0..q {
            if self.symmetric && c > used_switches {
                break;
            }
            if self.eval.used_capacity(c) + resource > self.total_caps[c] + 1e-9 {
                continue;
            }
            // ε₂: opening a new switch must stay within the bound.
            if self.eval.nodes_on(c) == 0 && self.eval.occupied() + 1 > self.eps.max_switches {
                continue;
            }
            // Stage-feasibility prune: pushing onto the switch's live
            // packing is the exact check (its state equals the prefix
            // state of a full repack), cutting precisely the subtrees
            // whose leaves would fail `materialize`. A failed push rolls
            // itself back and leaves the log untouched.
            let log_base = self.stage_log.len();
            if !self.packings[c].push_logged(self.tdg, node, &mut self.stage_log) {
                continue;
            }

            self.eval.place(node.index(), c);
            // The switch DAG must stay acyclic (no packet recirculation
            // through a switch).
            if !self.eval.is_acyclic() {
                self.eval.unplace(node.index());
                self.packings[c].revert(node, &mut self.stage_log, log_base);
                continue;
            }

            self.dfs(depth + 1);

            // Undo.
            self.eval.unplace(node.index());
            self.packings[c].revert(node, &mut self.stage_log, log_base);
            if self.stopped {
                return;
            }
        }
    }

    fn accept_leaf(&mut self) {
        if self.fast_leaves {
            // Stage feasibility was enforced on every step and all routes
            // exist, so the assignment is materializable by construction
            // and the evaluator's running maximum *is* the plan objective.
            let objective = self.eval.amax();
            if objective < self.bound() {
                self.best = objective;
                self.best_assign = Some(self.eval.assignment().to_vec());
                self.ctx.publish_incumbent(objective);
            }
            return;
        }
        // Full assignment below the incumbent: validate stages + routes.
        let Some(plan) = materialize(self.tdg, self.net, self.candidates, self.eval.assignment())
        else {
            return;
        };
        if plan.end_to_end_latency_us() > self.eps.max_latency_us {
            return;
        }
        let objective = plan.max_inter_switch_bytes(self.tdg);
        if objective < self.bound() {
            self.best = objective;
            self.best_assign = Some(self.eval.assignment().to_vec());
            self.ctx.publish_incumbent(objective);
        }
    }
}

/// Builds a full plan (stage placements + routes) from a switch-level
/// assignment: `assign[node] = index into candidates` (`usize::MAX` =
/// unplaced). Returns `None` when stage assignment or routing fails.
///
/// Shared by the exact solver, the MILP front end, and the baseline
/// frameworks — every algorithm in the workspace goes through the same
/// stage assigner and router, so plans differ only in their placement
/// decisions.
pub fn materialize(
    tdg: &Tdg,
    net: &Network,
    candidates: &[SwitchId],
    assign: &[usize],
) -> Option<DeploymentPlan> {
    let mut plan = DeploymentPlan::new();
    for (c, &switch) in candidates.iter().enumerate() {
        let nodes: BTreeSet<NodeId> = tdg.node_ids().filter(|id| assign[id.index()] == c).collect();
        if nodes.is_empty() {
            continue;
        }
        let model = net.switch(switch).target_model();
        let placements = assign_stages(tdg, &nodes, switch, &model).ok()?;
        for p in placements {
            plan.place(p);
        }
    }
    // One route per dependent cross-switch pair.
    let mut pairs: BTreeSet<(SwitchId, SwitchId)> = BTreeSet::new();
    for e in tdg.edges() {
        let (u, v) = (assign[e.from.index()], assign[e.to.index()]);
        if u == usize::MAX || v == usize::MAX || u == v {
            continue;
        }
        pairs.insert((candidates[u], candidates[v]));
    }
    for (u, v) in pairs {
        let path = shortest_path(net, u, v)?;
        plan.route(PlanRoute { from: u, to: v, path });
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_tdg, tiny_switches};
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;
    use hermes_net::Switch;
    use hermes_tdg::AnalysisMode;
    use std::time::Duration;

    fn solve_default(tdg: &Tdg, net: &Network, eps: &Epsilon) -> Result<SolveOutcome, DeployError> {
        OptimalSolver::default().solve(
            tdg,
            net,
            eps,
            &SearchContext::with_time_limit(Duration::from_secs(30)),
        )
    }

    #[test]
    fn finds_figure1_optimum() {
        // a -1-> b -4-> c, two switches of two MATs each: optimum cuts the
        // 1-byte edge.
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert!(out.proven_optimal);
        assert_eq!(out.objective, 1);
        assert_eq!(out.plan.max_inter_switch_bytes(&tdg), 1);
    }

    #[test]
    fn zero_overhead_when_everything_fits() {
        let tdg = chain_tdg(&[8, 8], 0.2);
        let net = tiny_switches(2, 12, 1.0);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(out.objective, 0);
        assert!(out.proven_optimal);
    }

    #[test]
    fn optimal_never_worse_than_heuristic() {
        // Non-chain TDG where a greedy prefix split can be suboptimal.
        let tdg = {
            let m = |n: &str, s: u32| Field::metadata(format!("x.{n}"), s);
            let a = Mat::builder("a")
                .action(Action::writing("w", [m("ab", 9), m("ac", 2)]))
                .resource(0.5)
                .build()
                .unwrap();
            let b = Mat::builder("b")
                .match_field(m("ab", 9), MatchKind::Exact)
                .action(Action::writing("w", [m("bd", 3)]))
                .resource(0.5)
                .build()
                .unwrap();
            let c = Mat::builder("c")
                .match_field(m("ac", 2), MatchKind::Exact)
                .action(Action::writing("w", [m("cd", 7)]))
                .resource(0.5)
                .build()
                .unwrap();
            let d = Mat::builder("d")
                .match_field(m("bd", 3), MatchKind::Exact)
                .match_field(m("cd", 7), MatchKind::Exact)
                .action(Action::new("noop"))
                .resource(0.5)
                .build()
                .unwrap();
            let p = Program::builder("p").table(a).table(b).table(c).table(d).build().unwrap();
            Tdg::from_program(&p, AnalysisMode::Intersection)
        };
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::loose();
        let heuristic =
            GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap().max_inter_switch_bytes(&tdg);
        let out = solve_default(&tdg, &net, &eps).unwrap();
        assert!(out.proven_optimal);
        assert!(out.objective <= heuristic, "optimal {} > heuristic {heuristic}", out.objective);
    }

    #[test]
    fn plan_verifies_clean() {
        let tdg = chain_tdg(&[1, 4, 2, 8], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::loose();
        let out = solve_default(&tdg, &net, &eps).unwrap();
        let violations = crate::verify::verify(&tdg, &net, &out.plan, &eps);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn respects_epsilon2() {
        let tdg = chain_tdg(&[1, 1, 1], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::new(f64::INFINITY, 2);
        let out = solve_default(&tdg, &net, &eps).unwrap();
        assert!(out.plan.occupied_switch_count() <= 2);
    }

    #[test]
    fn expired_deadline_reports_unproven() {
        // A larger instance with a 0 ms budget still returns the heuristic
        // incumbent but cannot prove optimality. (Plenty of switches: the
        // greedy splitter may oversegment a monotone chain.)
        let tdg = chain_tdg(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], 0.5);
        let net = tiny_switches(12, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::ZERO);
        let out = OptimalSolver::default().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap();
        assert!(!out.proven_optimal);
        assert!(!out.plan.placements().is_empty());
    }

    #[test]
    fn bare_solver_with_expired_deadline_has_no_plan() {
        let tdg = chain_tdg(&[1, 2, 3], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::ZERO);
        let err = OptimalSolver::bare().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap_err();
        assert!(matches!(err, DeployError::NoFeasiblePlacement { .. }));
    }

    #[test]
    fn bare_solver_proves_an_external_bound() {
        // Publish the true optimum externally: the bare search exhausts
        // without improving on it and returns the proof.
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let ctx = SearchContext::unbounded();
        ctx.publish_incumbent(1);
        let err = OptimalSolver::bare().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap_err();
        assert_eq!(err, DeployError::NoImprovementProven { bound: 1 });
    }

    #[test]
    fn no_programmable_switch_is_an_error() {
        let mut net = Network::new();
        net.add_switch(Switch::legacy("l"));
        let tdg = chain_tdg(&[1], 0.5);
        let err = solve_default(&tdg, &net, &Epsilon::loose()).unwrap_err();
        assert_eq!(err, DeployError::NoProgrammableSwitch);
    }

    #[test]
    fn empty_tdg_trivial() {
        let tdg = Tdg::new(AnalysisMode::PaperLiteral);
        let net = tiny_switches(2, 2, 0.5);
        let out = solve_default(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(out.objective, 0);
        assert!(out.proven_optimal);
    }

    #[test]
    fn deploy_api_still_works() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let plan = OptimalSolver::default().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 1);
    }
}
