//! Human-readable deployment reports and plan diffs.
//!
//! `explain` renders what an operator needs to review before pushing a
//! deployment: per-switch stage layouts, the piggyback cost of every
//! coordinated pair, and the objective triple. `diff` quantifies the rule
//! churn between two plans — the operational cost the incremental
//! deployer (`crate::incremental`) exists to minimize.

use crate::deployment::DeploymentPlan;
use hermes_net::Network;
use hermes_tdg::{NodeId, Tdg};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Renders a multi-line report of the plan.
pub fn explain(tdg: &Tdg, net: &Network, plan: &DeploymentPlan) -> String {
    let mut out = String::new();
    let metrics = plan.metrics(tdg);
    let _ = writeln!(out, "deployment: {metrics}");

    for switch in plan.occupied_switches() {
        let sw = net.switch(switch);
        let nodes = plan.nodes_on(switch);
        let load: f64 =
            plan.placements().iter().filter(|p| p.switch == switch).map(|p| p.fraction).sum();
        let _ = writeln!(
            out,
            "  {} — {} MATs, {:.1}/{:.1} units",
            sw.name,
            nodes.len(),
            load,
            sw.total_capacity()
        );
        // Stage-ordered table listing.
        let mut by_first_stage: Vec<(usize, NodeId)> = nodes
            .iter()
            .filter_map(|&id| plan.stage_span(id).map(|(begin, _)| (begin, id)))
            .collect();
        by_first_stage.sort();
        for (_, id) in by_first_stage {
            let (begin, end) = plan.stage_span(id).expect("placed");
            let stages = if begin == end {
                format!("stage {begin}")
            } else {
                format!("stages {begin}-{end}")
            };
            let _ = writeln!(out, "    {:<40} {}", tdg.node(id).name, stages);
        }
    }

    let pairs = plan.inter_switch_bytes(tdg);
    if pairs.is_empty() {
        let _ = writeln!(out, "  no inter-switch coordination required");
    } else {
        for ((u, v), bytes) in pairs {
            let _ = writeln!(
                out,
                "  {} -> {}: {} B per packet",
                net.switch(u).name,
                net.switch(v).name,
                bytes
            );
        }
    }
    out
}

/// Churn between two plans over the same (or a grown) TDG, matched by
/// program-qualified MAT name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDiff {
    /// MATs on the same switch in both plans.
    pub unchanged: usize,
    /// MATs present in both but hosted by a different switch (rule
    /// migration required).
    pub moved: Vec<String>,
    /// MATs only in the new plan.
    pub added: Vec<String>,
    /// MATs only in the old plan.
    pub removed: Vec<String>,
}

impl PlanDiff {
    /// `true` iff nothing moved, appeared, or disappeared.
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }
}

/// Diffs two deployments, matching MATs by qualified name.
pub fn diff(
    old_tdg: &Tdg,
    old_plan: &DeploymentPlan,
    new_tdg: &Tdg,
    new_plan: &DeploymentPlan,
) -> PlanDiff {
    let host = |tdg: &Tdg, plan: &DeploymentPlan| -> BTreeMap<String, hermes_net::SwitchId> {
        // One pass over the placements instead of a `switch_of` scan per node.
        let assign = plan.switch_assignment(tdg.node_count());
        tdg.node_ids()
            .filter_map(|id| assign[id.index()].map(|s| (tdg.node(id).name.clone(), s)))
            .collect()
    };
    let old = host(old_tdg, old_plan);
    let new = host(new_tdg, new_plan);
    let old_names: BTreeSet<&String> = old.keys().collect();
    let new_names: BTreeSet<&String> = new.keys().collect();

    let mut unchanged = 0usize;
    let mut moved = Vec::new();
    for name in old_names.intersection(&new_names) {
        if old[*name] == new[*name] {
            unchanged += 1;
        } else {
            moved.push((*name).clone());
        }
    }
    PlanDiff {
        unchanged,
        moved,
        added: new_names.difference(&old_names).map(|s| (*s).clone()).collect(),
        removed: old_names.difference(&new_names).map(|s| (*s).clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::ProgramAnalyzer;
    use crate::deployment::{DeploymentAlgorithm, Epsilon};
    use crate::heuristic::GreedyHeuristic;
    use crate::incremental::IncrementalDeployer;
    use hermes_dataplane::library;
    use hermes_net::topology;

    #[test]
    fn explain_covers_switches_and_pairs() {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let text = explain(&tdg, &net, &plan);
        assert!(text.contains("deployment: A_max="));
        for s in plan.occupied_switches() {
            assert!(text.contains(&net.switch(s).name));
        }
        if plan.max_inter_switch_bytes(&tdg) > 0 {
            assert!(text.contains("B per packet"));
        }
    }

    #[test]
    fn diff_of_identical_plans_is_empty() {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let d = diff(&tdg, &plan, &tdg, &plan);
        assert!(d.is_empty());
        assert_eq!(d.unchanged, tdg.node_count());
    }

    #[test]
    fn incremental_growth_shows_only_additions() {
        let net = topology::linear(4, 10.0);
        let eps = Epsilon::loose();
        let old_programs: Vec<_> = library::real_programs().into_iter().take(4).collect();
        let old_tdg = ProgramAnalyzer::new().analyze(&old_programs);
        let old_plan = GreedyHeuristic::new().deploy(&old_tdg, &net, &eps).unwrap();

        let new_programs: Vec<_> = library::real_programs().into_iter().take(5).collect();
        let new_tdg = ProgramAnalyzer::new().analyze(&new_programs);
        let out =
            IncrementalDeployer::new().redeploy(&old_tdg, &old_plan, &new_tdg, &net, &eps).unwrap();
        let d = diff(&old_tdg, &old_plan, &new_tdg, &out.plan);
        if !out.full_redeploy {
            assert!(d.moved.is_empty(), "pinned MATs must not move: {:?}", d.moved);
            assert!(d.removed.is_empty());
            assert!(!d.added.is_empty());
        }
    }

    #[test]
    fn moved_mats_detected() {
        // Deploy the same TDG on two different anchor offsets by using
        // different networks (switch identity differs in name).
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(4, 10.0);
        let eps = Epsilon::loose();
        let a = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        // A fabricated "plan" with everything shifted by one switch.
        let ids: Vec<_> = net.switch_ids().collect();
        let mut shifted = DeploymentPlan::new();
        for p in a.placements() {
            let idx = ids.iter().position(|&s| s == p.switch).unwrap();
            shifted.place(crate::deployment::StagePlacement {
                switch: ids[(idx + 1) % ids.len()],
                ..p.clone()
            });
        }
        let d = diff(&tdg, &a, &tdg, &shifted);
        assert_eq!(d.moved.len(), tdg.node_count());
        assert_eq!(d.unchanged, 0);
    }
}
