//! The greedy-based heuristic of Hermes (paper §V-E, Algorithm 2).
//!
//! Two phases:
//!
//! 1. **Split** — recursively bisect the merged TDG at the topological
//!    prefix that minimizes the metadata crossing the cut, until every
//!    segment fits a single switch (total resource *and* a feasible stage
//!    assignment). Edges with large `A(a,b)` thus stay inside segments and
//!    only cheap edges cross switches.
//! 2. **Place** — for each programmable switch `u`, gather the `ε₂ − 1`
//!    nearest programmable switches within latency `ε₁` (`SELECT_SWITCHES`);
//!    when enough candidates exist, map the `i`-th segment to the `i`-th
//!    candidate and wire consecutive segments with latency-shortest paths.

use crate::deployment::{DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon, PlanRoute};
use crate::solver::{SearchContext, SolveOutcome, SolveStats, Solver};
use crate::stage_assign::{assign_stages, fits_total_capacity};
use crate::stage_cache::StageFeasCache;
use hermes_net::{nearest_programmable, shortest_path, Network, SwitchId, TargetModel};
use hermes_tdg::{NodeId, Tdg};
use std::collections::BTreeSet;
use std::time::Instant;

/// How the splitter chooses the cut position (ablation hook; the paper's
/// strategy is [`SplitStrategy::MinMetadata`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Cut at the topological prefix with minimum crossing metadata
    /// (Algorithm 2 lines 8–12).
    #[default]
    MinMetadata,
    /// Always cut in the middle (size-balanced); ignores metadata.
    Balanced,
    /// Cut at a position derived from a seed (deterministic "random").
    Random(u64),
}

/// The Hermes greedy heuristic.
///
/// # Examples
///
/// ```
/// use hermes_core::{GreedyHeuristic, DeploymentAlgorithm, Epsilon};
/// use hermes_dataplane::library;
/// use hermes_net::topology;
/// use hermes_tdg::{merge_all, AnalysisMode, Tdg};
///
/// let tdgs: Vec<Tdg> = library::real_programs()
///     .iter()
///     .map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral))
///     .collect();
/// let merged = merge_all(tdgs);
/// let net = topology::linear(3, 10.0);
/// let plan = GreedyHeuristic::new().deploy(&merged, &net, &Epsilon::loose())?;
/// assert!(plan.occupied_switch_count() <= 3);
/// # Ok::<(), hermes_core::DeployError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GreedyHeuristic {
    strategy: SplitStrategy,
}

impl GreedyHeuristic {
    /// Heuristic with the paper's min-metadata split.
    pub fn new() -> Self {
        GreedyHeuristic::default()
    }

    /// Heuristic with an alternative split strategy (for ablations).
    pub fn with_strategy(strategy: SplitStrategy) -> Self {
        GreedyHeuristic { strategy }
    }

    /// Splits `tdg` into segments that each fit a switch with the given
    /// pipeline shape (the `SPLIT_TDG` recursion). Exposed so experiments
    /// can inspect segmentations directly.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::MatTooLarge`] when a single MAT cannot fit a
    /// switch by itself.
    pub fn split(
        &self,
        tdg: &Tdg,
        model: &TargetModel,
    ) -> Result<Vec<BTreeSet<NodeId>>, DeployError> {
        let order = placement_order(tdg);
        let all: BTreeSet<NodeId> = tdg.node_ids().collect();
        let mut segments = Vec::new();
        // One feasibility cache across the recursion *and* the coalescing
        // pass: the bisection re-probes the same node sets at many depths.
        let mut cache = StageFeasCache::new(tdg);
        self.split_rec(tdg, &order, all, model, &mut segments, 0, &mut cache)?;
        Ok(coalesce(tdg, segments, model, &mut cache))
    }

    #[allow(clippy::too_many_arguments)]
    fn split_rec(
        &self,
        tdg: &Tdg,
        topo: &[NodeId],
        nodes: BTreeSet<NodeId>,
        model: &TargetModel,
        out: &mut Vec<BTreeSet<NodeId>>,
        depth: u64,
        cache: &mut StageFeasCache,
    ) -> Result<(), DeployError> {
        if nodes.is_empty() {
            return Ok(());
        }
        // Algorithm 2 line 2: resource fit — tightened with a stage-assignment
        // probe so every returned segment is actually deployable.
        if fits_total_capacity(tdg, &nodes, model) && cache.feasible_set(tdg, model, &nodes) {
            out.push(nodes);
            return Ok(());
        }
        if nodes.len() == 1 {
            let id = *nodes.iter().next().expect("non-empty");
            return Err(DeployError::MatTooLarge {
                mat: tdg.node(id).name.clone(),
                resource: tdg.node(id).mat.resource(),
            });
        }

        // Restrict the global topological order to this segment.
        let local: Vec<NodeId> = topo.iter().copied().filter(|id| nodes.contains(id)).collect();
        let n = local.len();
        let cut = match self.strategy {
            SplitStrategy::MinMetadata => {
                // Enumerate prefix cuts, tracking crossing bytes incrementally:
                // moving node `a` into the prefix adds its out-edges into the
                // suffix and removes its in-edges from the prefix.
                let mut prefix: BTreeSet<NodeId> = BTreeSet::new();
                let mut best_cut = 1;
                let mut best_cross = u64::MAX;
                let mut cross: i64 = 0;
                for (k, &a) in local.iter().enumerate().take(n - 1) {
                    for e in tdg.in_edges(a) {
                        if prefix.contains(&e.from) {
                            cross -= i64::from(e.bytes);
                        }
                    }
                    for e in tdg.out_edges(a) {
                        if nodes.contains(&e.to) && !prefix.contains(&e.to) {
                            cross += i64::from(e.bytes);
                        }
                    }
                    prefix.insert(a);
                    let cross_u = u64::try_from(cross.max(0)).expect("non-negative");
                    if cross_u < best_cross {
                        best_cross = cross_u;
                        best_cut = k + 1;
                    }
                }
                best_cut
            }
            SplitStrategy::Balanced => n / 2,
            SplitStrategy::Random(seed) => {
                // splitmix64 on (seed, depth) for a deterministic pseudo-cut.
                let mut z = seed ^ depth.wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                1 + (z as usize) % (n - 1)
            }
        };
        let cut = cut.clamp(1, n - 1);
        let left: BTreeSet<NodeId> = local[..cut].iter().copied().collect();
        let right: BTreeSet<NodeId> = local[cut..].iter().copied().collect();
        self.split_rec(tdg, topo, left, model, out, depth * 2 + 1, cache)?;
        self.split_rec(tdg, topo, right, model, out, depth * 2 + 2, cache)?;
        Ok(())
    }
}

/// A topological order that keeps *related programs contiguous*: programs
/// sharing a (merged) MAT are unioned into a cluster, and Kahn's algorithm
/// breaks ties by `(cluster, program, node index)`. Prefix cuts then fall
/// between unrelated program groups, where the crossing metadata is
/// minimal — which is what lets the splitter co-locate, say, every sketch
/// with the 5-tuple hash they all consume.
pub fn placement_order(tdg: &Tdg) -> Vec<NodeId> {
    let n = tdg.node_count();
    // Rank programs by first appearance over node indexes.
    let mut program_rank: std::collections::BTreeMap<&str, usize> = Default::default();
    for id in tdg.node_ids() {
        for p in &tdg.node(id).programs {
            let next = program_rank.len();
            program_rank.entry(p.as_str()).or_insert(next);
        }
    }
    // Union-find over programs: shared nodes merge their programs.
    let mut parent: Vec<usize> = (0..program_rank.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for id in tdg.node_ids() {
        let ranks: Vec<usize> =
            tdg.node(id).programs.iter().map(|p| program_rank[p.as_str()]).collect();
        for w in ranks.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    // Cluster rank = smallest member program rank; node keys follow.
    let key = |tdg: &Tdg, parent: &mut Vec<usize>, id: NodeId| -> (usize, usize, usize) {
        let prog = tdg
            .node(id)
            .programs
            .iter()
            .map(|p| program_rank[p.as_str()])
            .min()
            .unwrap_or(usize::MAX);
        let cluster = if prog == usize::MAX { usize::MAX } else { find(parent, prog) };
        (cluster, prog, id.index())
    };

    // Kahn with a priority queue over the clustering key.
    let mut indegree = vec![0usize; n];
    for e in tdg.edges() {
        indegree[e.to.index()] += 1;
    }
    let mut ready: BTreeSet<((usize, usize, usize), usize)> = tdg
        .node_ids()
        .filter(|id| indegree[id.index()] == 0)
        .map(|id| (key(tdg, &mut parent, id), id.index()))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&(k, idx)) = ready.iter().next() {
        ready.remove(&(k, idx));
        let id = tdg.node_ids().nth(idx).expect("dense index");
        order.push(id);
        for e in tdg.edges() {
            if e.from.index() == idx {
                indegree[e.to.index()] -= 1;
                if indegree[e.to.index()] == 0 {
                    ready.insert((key(tdg, &mut parent, e.to), e.to.index()));
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n, "TDGs are DAGs");
    order
}

/// The weakest pipeline any programmable switch offers: fewest
/// budget-effective stages, smallest per-stage capacity, tightest total
/// budget. Segments split against this model fit every switch. On a
/// homogeneous default network this is bit-identical to the paper's
/// `(min stages, min stage_capacity)` pair.
pub(crate) fn conservative_model(net: &Network, programmable: &[SwitchId]) -> TargetModel {
    let models: Vec<TargetModel> =
        programmable.iter().map(|&s| net.switch(s).target_model()).collect();
    let stages = models.iter().map(TargetModel::effective_stages).min().expect("non-empty");
    let capacity = models.iter().map(|m| m.stage_capacity).fold(f64::INFINITY, f64::min);
    let budget = models.iter().map(|m| m.total_budget).fold(f64::INFINITY, f64::min);
    let mut model = TargetModel::pipeline(stages, capacity);
    model.total_budget = budget;
    model
}

impl GreedyHeuristic {
    /// Capacity-bounded splitter used when the recursive bisection needs
    /// more switches than the network offers. Chooses cut positions along
    /// the topological order so that (a) every segment still fits one
    /// switch, (b) at most `max_segments` segments result, and (c) the
    /// *largest chosen boundary cost* — the metadata crossing that cut,
    /// which upper-bounds every pair's `A(u,v)` across it — is minimized
    /// via binary search over the distinct boundary costs.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::NoFeasiblePlacement`] when not even ignoring
    /// boundary costs yields `<= max_segments` feasible segments, and
    /// [`DeployError::MatTooLarge`] when one MAT alone overflows a switch.
    #[allow(clippy::needless_range_loop)] // `b` is a boundary position, not a `cost` iterator
    pub fn split_bounded(
        &self,
        tdg: &Tdg,
        model: &TargetModel,
        max_segments: usize,
    ) -> Result<Vec<BTreeSet<NodeId>>, DeployError> {
        let order = placement_order(tdg);
        let n = order.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        for &id in &order {
            let r = tdg.node(id).mat.resource();
            if !model.fits_total(r) {
                return Err(DeployError::MatTooLarge {
                    mat: tdg.node(id).name.clone(),
                    resource: r,
                });
            }
        }
        // cost[b] = metadata crossing the boundary before order[b].
        let pos: Vec<usize> = {
            let mut pos = vec![0usize; n];
            for (rank, id) in order.iter().enumerate() {
                pos[id.index()] = rank;
            }
            pos
        };
        let mut cost = vec![0u64; n + 1];
        for b in 1..n {
            cost[b] = tdg
                .edges()
                .iter()
                .filter(|e| pos[e.from.index()] < b && pos[e.to.index()] >= b)
                .map(|e| u64::from(e.bytes))
                .sum();
        }
        let mut thresholds: Vec<u64> = cost[1..n].to_vec();
        thresholds.push(u64::MAX);
        thresholds.sort_unstable();
        thresholds.dedup();

        // RefCell because both closures below need the memoized cache: the
        // binary search re-probes many (from, to) ranges across thresholds.
        let cache = std::cell::RefCell::new(StageFeasCache::new(tdg));
        let feasible_range = |from: usize, to: usize| -> bool {
            let set: BTreeSet<NodeId> = order[from..to].iter().copied().collect();
            fits_total_capacity(tdg, &set, model)
                && cache.borrow_mut().feasible_set(tdg, model, &set)
        };
        // Greedy check: extend each segment as far as possible, ending only
        // at boundaries within the cost threshold. Feasibility of a range
        // is monotone (removing nodes never hurts), so farthest-first is
        // optimal for segment count.
        let try_threshold = |t: u64| -> Option<Vec<(usize, usize)>> {
            let mut ranges = Vec::new();
            let mut from = 0usize;
            while from < n {
                let mut best_to = None;
                for to in (from + 1..=n).rev() {
                    if (to == n || cost[to] <= t) && feasible_range(from, to) {
                        best_to = Some(to);
                        break;
                    }
                }
                let to = best_to?;
                ranges.push((from, to));
                if ranges.len() > max_segments {
                    return None;
                }
                from = to;
            }
            Some(ranges)
        };

        let (mut lo, mut hi) = (0usize, thresholds.len() - 1);
        // Ensure some threshold works at all before bisecting.
        let mut best = match try_threshold(thresholds[hi]) {
            None => {
                return Err(DeployError::NoFeasiblePlacement {
                    reason: format!("cannot fit the TDG into {max_segments} switches"),
                })
            }
            Some(r) => Some((thresholds[hi], r)),
        };
        while lo < hi {
            let mid = (lo + hi) / 2;
            match try_threshold(thresholds[mid]) {
                Some(r) => {
                    best = Some((thresholds[mid], r));
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        let (_, ranges) = best.expect("checked above");
        Ok(ranges.into_iter().map(|(from, to)| order[from..to].iter().copied().collect()).collect())
    }
}

/// Merges adjacent segments back together whenever their union still fits
/// one switch. The recursive bisection can strand tiny segments (a cheap
/// cut near the graph's fringe); re-packing them onto the neighbouring
/// switch removes that pair's crossing metadata entirely, so coalescing
/// never increases `A_max` and reduces the switches required.
fn coalesce(
    tdg: &Tdg,
    segments: Vec<BTreeSet<NodeId>>,
    model: &TargetModel,
    cache: &mut StageFeasCache,
) -> Vec<BTreeSet<NodeId>> {
    let mut out: Vec<BTreeSet<NodeId>> = Vec::with_capacity(segments.len());
    for seg in segments {
        if let Some(last) = out.last_mut() {
            let mut union = last.clone();
            union.extend(seg.iter().copied());
            if fits_total_capacity(tdg, &union, model) && cache.feasible_set(tdg, model, &union) {
                *last = union;
                continue;
            }
        }
        out.push(seg);
    }
    out
}

/// Maximum accepted single-node moves of the refinement pass per deploy.
const REFINE_BUDGET: usize = 2_000;

impl DeploymentAlgorithm for GreedyHeuristic {
    fn name(&self) -> &str {
        match self.strategy {
            SplitStrategy::MinMetadata => "Hermes",
            SplitStrategy::Balanced => "Hermes(balanced-split)",
            SplitStrategy::Random(_) => "Hermes(random-split)",
        }
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        self.deploy_inner(tdg, net, eps, None)
    }
}

impl Solver for GreedyHeuristic {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        let start = Instant::now();
        let plan = self.deploy_inner(tdg, net, eps, Some(ctx))?;
        let objective = plan.max_inter_switch_bytes(tdg);
        ctx.publish_incumbent(objective);
        Ok(SolveOutcome {
            plan,
            objective,
            // Zero bytes is a global lower bound, so a zero-overhead plan
            // is optimal; otherwise the heuristic proves nothing.
            proven_optimal: objective == 0,
            stats: SolveStats {
                nodes_explored: 0,
                wall: start.elapsed(),
                proven_bound: (objective == 0).then_some(0),
            },
        })
    }
}

impl GreedyHeuristic {
    /// The full deploy pipeline; when racing in a portfolio (`ctx` set),
    /// the pre-refinement plan's objective is published as an incumbent
    /// before the refinement pass starts hill-climbing.
    fn deploy_inner(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: Option<&SearchContext>,
    ) -> Result<DeploymentPlan, DeployError> {
        let programmable = net.programmable_switches();
        if programmable.is_empty() {
            return Err(DeployError::NoProgrammableSwitch);
        }
        if tdg.node_count() == 0 {
            return Ok(DeploymentPlan::new());
        }
        // Homogeneous-pipeline assumption of the paper, generalized to
        // heterogeneous targets: split against the weakest programmable
        // switch along every axis (fewest budget-effective stages, smallest
        // per-stage capacity, tightest budget) so segments fit anywhere.
        let split_model = conservative_model(net, &programmable);
        let mut segments = self.split(tdg, &split_model)?;

        // Algorithm 2 lines 21–29: enumerate anchor switches. Two passes:
        // first with the paper's recursive split, then — if no anchor has
        // enough candidates — with the capacity-bounded splitter.
        for pass in 0..2 {
            for u in net.switch_ids() {
                if !net.switch(u).programmable {
                    continue;
                }
                let extra = eps.max_switches.saturating_sub(1).min(programmable.len() - 1);
                let mut candidates = vec![u];
                candidates.extend(
                    nearest_programmable(net, u, extra, eps.max_latency_us)
                        .into_iter()
                        .map(|(s, _)| s),
                );
                if segments.len() > candidates.len() {
                    continue;
                }
                if let Some(plan) = self.try_place(tdg, net, eps, &segments, &candidates) {
                    return Ok(self.maybe_refine(tdg, net, plan, eps, ctx));
                }
            }
            if pass == 0 {
                let max_segments = eps.max_switches.min(programmable.len());
                match self.split_bounded(tdg, &split_model, max_segments) {
                    Ok(bounded) if bounded.len() < segments.len() => segments = bounded,
                    _ => break,
                }
            }
        }
        // Last-resort feasibility net: dependency-levelled first fit packs
        // tighter than any contiguous split of the clustered order, at the
        // cost of overhead-oblivious cuts — which the refinement pass then
        // claws back move by move.
        if let Some(plan) = self.first_fit_fallback(tdg, net, eps) {
            return Ok(self.maybe_refine(tdg, net, plan, eps, ctx));
        }
        Err(DeployError::NoFeasiblePlacement {
            reason: format!(
                "{} segments need {} candidate switches within eps2={} / eps1={} us",
                segments.len(),
                segments.len(),
                eps.max_switches,
                eps.max_latency_us
            ),
        })
    }
}

impl GreedyHeuristic {
    /// Local-search refinement is part of the full Hermes pipeline; the
    /// ablation split strategies stay unrefined so their comparisons
    /// isolate the splitting objective. With a [`SearchContext`] present
    /// the unrefined plan's objective is published *before* refinement —
    /// the "publish early" half of the anytime-portfolio contract.
    fn maybe_refine(
        &self,
        tdg: &Tdg,
        net: &Network,
        plan: DeploymentPlan,
        eps: &Epsilon,
        ctx: Option<&SearchContext>,
    ) -> DeploymentPlan {
        if let Some(ctx) = ctx {
            ctx.publish_incumbent(plan.max_inter_switch_bytes(tdg));
        }
        match self.strategy {
            SplitStrategy::MinMetadata => crate::refine::refine(tdg, net, plan, eps, REFINE_BUDGET),
            _ => plan,
        }
    }

    /// Level-ordered first-fit packing (never returns to an earlier
    /// switch), used only when both splitters fail. Produces the same
    /// placements an overhead-oblivious baseline would.
    fn first_fit_fallback(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Option<DeploymentPlan> {
        // Dependency levels: a level sort is a topological sort.
        let order = tdg.topo_order().expect("TDGs are DAGs");
        let mut level = vec![0usize; tdg.node_count()];
        for &id in &order {
            for e in tdg.out_edges(id) {
                level[e.to.index()] = level[e.to.index()].max(level[id.index()] + 1);
            }
        }
        let mut nodes: Vec<NodeId> = tdg.node_ids().collect();
        nodes.sort_by_key(|&id| (level[id.index()], id.index()));

        let candidates = net.programmable_switches();
        let mut assign = vec![usize::MAX; tdg.node_count()];
        let mut current = 0usize;
        // The level order is a topological order, so every probe is an
        // incremental "current switch ∪ {id}" extension — the cache's
        // fast path — instead of a from-scratch repack per node.
        let mut cache = StageFeasCache::new(tdg);
        let mut words = vec![0u64; cache.word_len()];
        let mut on_current = 0usize;
        for &id in &nodes {
            loop {
                if current >= candidates.len() || current >= eps.max_switches {
                    return None;
                }
                let sw_model = net.switch(candidates[current]).target_model();
                if cache.feasible_with(tdg, &sw_model, &words, id) {
                    words[id.index() / 64] |= 1u64 << (id.index() % 64);
                    on_current += 1;
                    assign[id.index()] = current;
                    break;
                }
                if on_current == 0 {
                    return None; // a single MAT that fits no empty switch
                }
                current += 1;
                words.iter_mut().for_each(|w| *w = 0);
                on_current = 0;
            }
        }
        let plan = crate::exact::materialize(tdg, net, &candidates, &assign)?;
        (plan.end_to_end_latency_us() <= eps.max_latency_us
            && plan.occupied_switch_count() <= eps.max_switches)
            .then_some(plan)
    }

    fn try_place(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        segments: &[BTreeSet<NodeId>],
        candidates: &[SwitchId],
    ) -> Option<DeploymentPlan> {
        let mut plan = DeploymentPlan::new();
        for (i, segment) in segments.iter().enumerate() {
            let s = candidates[i];
            let model = net.switch(s).target_model();
            let placements = assign_stages(tdg, segment, s, &model).ok()?;
            for p in placements {
                plan.place(p);
            }
        }
        // Wire every dependent segment pair via the latency-shortest path
        // (lines 26–29 wire adjacent segments; non-adjacent dependencies —
        // e.g. a shared hash feeding a far-away consumer — need routes
        // too, or Eq. 7 is violated).
        let mut node_switch = vec![usize::MAX; tdg.node_count()];
        for (i, segment) in segments.iter().enumerate() {
            for &id in segment {
                node_switch[id.index()] = i;
            }
        }
        let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        for e in tdg.edges() {
            let (u, v) = (node_switch[e.from.index()], node_switch[e.to.index()]);
            if u != usize::MAX && v != usize::MAX && u != v {
                pairs.insert((u, v));
            }
        }
        let mut total_latency = 0.0;
        for (u, v) in pairs {
            let path = shortest_path(net, candidates[u], candidates[v])?;
            total_latency += path.latency_us;
            plan.route(PlanRoute { from: candidates[u], to: candidates[v], path });
        }
        if total_latency > eps.max_latency_us {
            return None;
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Epsilon;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::library;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;
    use hermes_net::{topology, Switch};
    use hermes_tdg::{merge_all, AnalysisMode};

    /// The Figure 4 worked example: five MATs a..e with dependency amounts
    /// chosen so the first min-metadata cut is {a,b,c}|{d,e} (3 bytes) and
    /// the final max inter-switch overhead is 4 bytes on switches that hold
    /// at most two MATs each.
    fn figure4_tdg() -> Tdg {
        let m = |n: &str, s: u32| Field::metadata(format!("meta.{n}"), s);
        let a = Mat::builder("a")
            .action(Action::writing("w", [m("ab", 4)]))
            .resource(0.5)
            .build()
            .unwrap();
        let b = Mat::builder("b")
            .match_field(m("ab", 4), MatchKind::Exact)
            .action(Action::writing("w", [m("bc", 4)]))
            .resource(0.5)
            .build()
            .unwrap();
        let c = Mat::builder("c")
            .match_field(m("bc", 4), MatchKind::Exact)
            .action(Action::writing("w", [m("cd", 1), m("ce", 2)]))
            .resource(0.5)
            .build()
            .unwrap();
        let d = Mat::builder("d")
            .match_field(m("cd", 1), MatchKind::Exact)
            .action(Action::writing("w", [m("de", 4)]))
            .resource(0.5)
            .build()
            .unwrap();
        let e = Mat::builder("e")
            .match_field(m("ce", 2), MatchKind::Exact)
            .match_field(m("de", 4), MatchKind::Exact)
            .action(Action::new("noop"))
            .resource(0.5)
            .build()
            .unwrap();
        let p =
            Program::builder("fig4").table(a).table(b).table(c).table(d).table(e).build().unwrap();
        // Intersection mode so each edge carries exactly its own field.
        Tdg::from_program(&p, AnalysisMode::Intersection)
    }

    /// Three switches that hold at most two 0.5-unit MATs each (2 stages of
    /// 0.5 capacity), linked linearly.
    fn figure4_network() -> Network {
        let mut net = Network::new();
        let mk = |name: &str| Switch { stages: 2, stage_capacity: 0.5, ..Switch::tofino(name) };
        let s1 = net.add_switch(mk("s1"));
        let s2 = net.add_switch(mk("s2"));
        let s3 = net.add_switch(mk("s3"));
        net.add_link(s1, s2, 10.0).unwrap();
        net.add_link(s2, s3, 10.0).unwrap();
        net
    }

    #[test]
    fn figure4_first_cut_minimizes_crossing_bytes() {
        let tdg = figure4_tdg();
        let h = GreedyHeuristic::new();
        let segments = h.split(&tdg, &TargetModel::pipeline(2, 0.5)).unwrap();
        assert_eq!(segments.len(), 3, "five MATs over two-MAT switches");
        // First segment boundary separates {a..} from {..e} such that the
        // overall plan overhead is 4 bytes.
        let net = figure4_network();
        let plan = h.deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 4);
    }

    #[test]
    fn figure4_beats_naive_packing() {
        // The paper's counterexample — {a,b}|{c,d}|{e} — is strictly worse.
        let tdg = figure4_tdg();
        let net = figure4_network();
        let ids: Vec<SwitchId> = net.switch_ids().collect();
        let naive_segments: Vec<BTreeSet<NodeId>> = vec![
            tdg.node_ids().take(2).collect(),
            tdg.node_ids().skip(2).take(2).collect(),
            tdg.node_ids().skip(4).collect(),
        ];
        let mut naive = DeploymentPlan::new();
        for (i, seg) in naive_segments.iter().enumerate() {
            for p in assign_stages(&tdg, seg, ids[i], &TargetModel::pipeline(2, 0.5)).unwrap() {
                naive.place(p);
            }
        }
        let hermes = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert!(
            hermes.max_inter_switch_bytes(&tdg) < naive.max_inter_switch_bytes(&tdg),
            "hermes {} vs naive {}",
            hermes.max_inter_switch_bytes(&tdg),
            naive.max_inter_switch_bytes(&tdg)
        );
    }

    #[test]
    fn whole_tdg_on_one_switch_when_it_fits() {
        let tdg = Tdg::from_program(&library::l3_router(), AnalysisMode::PaperLiteral);
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(plan.occupied_switch_count(), 1);
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 0);
        assert!(plan.routes().is_empty());
    }

    #[test]
    fn all_real_programs_deploy_on_testbed() {
        let merged = merge_all(
            library::real_programs()
                .iter()
                .map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral))
                .collect(),
        );
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&merged, &net, &Epsilon::loose()).unwrap();
        // Every node placed exactly on one switch.
        for id in merged.node_ids() {
            assert!(plan.switch_of(id).is_some(), "{} unplaced", merged.node(id).name);
        }
    }

    #[test]
    fn epsilon2_restricts_candidates() {
        let tdg = figure4_tdg();
        let net = figure4_network();
        // Needs 3 switches; eps2 = 2 makes it infeasible.
        let eps = Epsilon::new(f64::INFINITY, 2);
        let err = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap_err();
        assert!(matches!(err, DeployError::NoFeasiblePlacement { .. }));
    }

    #[test]
    fn epsilon1_restricts_latency() {
        let tdg = figure4_tdg();
        let net = figure4_network();
        // Two coordination hops cost ~24us each side; 1us is impossible.
        let eps = Epsilon::new(1.0, usize::MAX);
        let err = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap_err();
        assert!(matches!(err, DeployError::NoFeasiblePlacement { .. }));
    }

    #[test]
    fn no_programmable_switch_is_an_error() {
        let mut net = Network::new();
        net.add_switch(Switch::legacy("l"));
        let tdg = figure4_tdg();
        let err = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap_err();
        assert_eq!(err, DeployError::NoProgrammableSwitch);
    }

    #[test]
    fn oversized_mat_reported() {
        let huge = Mat::builder("huge").resource(50.0).action(Action::new("a")).build().unwrap();
        let p = Program::builder("p").table(huge).build().unwrap();
        let tdg = Tdg::from_program(&p, AnalysisMode::PaperLiteral);
        let net = topology::linear(3, 10.0);
        let err = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap_err();
        assert!(matches!(err, DeployError::MatTooLarge { .. }));
    }

    #[test]
    fn split_strategies_differ_but_stay_feasible() {
        let tdg = figure4_tdg();
        for strat in [SplitStrategy::Balanced, SplitStrategy::Random(7)] {
            let h = GreedyHeuristic::with_strategy(strat);
            let segs = h.split(&tdg, &TargetModel::pipeline(2, 0.5)).unwrap();
            let total: usize = segs.iter().map(BTreeSet::len).sum();
            assert_eq!(total, 5, "{strat:?} loses nodes");
        }
    }

    #[test]
    fn min_metadata_never_worse_than_random_on_chain() {
        let tdg = figure4_tdg();
        // A larger network than Figure 4's, because random splits can
        // produce more (smaller) segments than the min-metadata split.
        let mut net = Network::new();
        let mk = |name: String| Switch { stages: 2, stage_capacity: 0.5, ..Switch::tofino(name) };
        let ids: Vec<SwitchId> = (0..5).map(|i| net.add_switch(mk(format!("s{i}")))).collect();
        for w in ids.windows(2) {
            net.add_link(w[0], w[1], 10.0).unwrap();
        }
        let paper = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let random = GreedyHeuristic::with_strategy(SplitStrategy::Random(3))
            .deploy(&tdg, &net, &Epsilon::loose())
            .unwrap();
        assert!(paper.max_inter_switch_bytes(&tdg) <= random.max_inter_switch_bytes(&tdg));
    }

    #[test]
    fn empty_tdg_deploys_trivially() {
        let tdg = Tdg::new(AnalysisMode::PaperLiteral);
        let net = topology::linear(2, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(plan.placements().len(), 0);
    }
}
