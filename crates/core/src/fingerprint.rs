//! Stable content fingerprints for plans and TDGs.
//!
//! The durability layer (`hermes-runtime`'s intent journal) persists
//! deployment intent across controller restarts and must detect, on
//! recovery, whether the operator re-supplied the same workload the
//! journal was written against. Structural equality cannot be used — the
//! journal stores only serialized state — so both sides compare a
//! fingerprint: FNV-1a over the canonical `serde_json` serialization.
//! The serialization is deterministic (ordered maps, fixed field order),
//! which makes the fingerprint stable across runs and processes.
//!
//! These are integrity checks against operator error, not cryptographic
//! commitments; FNV-1a is collision-resistant enough to catch "wrong
//! workload file" and "stale plan" mistakes, which is all recovery needs.

use hermes_tdg::Tdg;
use serde::Serialize;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over the canonical JSON serialization of `value`. Falls back to
/// hashing the serializer's error text if serialization fails (derived
/// serialization of the types fingerprinted here cannot fail, but a
/// fingerprint function must not panic).
pub fn json_fingerprint<T: Serialize + ?Sized>(value: &T) -> u64 {
    match serde_json::to_string(value) {
        Ok(json) => fnv1a64(json.as_bytes()),
        Err(e) => fnv1a64(e.to_string().as_bytes()),
    }
}

/// Stable fingerprint of a table dependency graph. Recovery compares this
/// against the fingerprint journaled at deployment time to refuse
/// replaying intent against the wrong workload.
pub fn tdg_fingerprint(tdg: &Tdg) -> u64 {
    json_fingerprint(tdg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::chain_tdg;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn tdg_fingerprints_are_stable_and_discriminating() {
        let a = chain_tdg(&[4, 3, 5], 0.4);
        let b = chain_tdg(&[4, 3, 5], 0.4);
        let c = chain_tdg(&[4, 3, 6], 0.4);
        assert_eq!(tdg_fingerprint(&a), tdg_fingerprint(&b));
        assert_ne!(tdg_fingerprint(&a), tdg_fingerprint(&c));
    }
}
