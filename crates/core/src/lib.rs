//! Hermes: network-wide data plane program deployment that minimizes the
//! per-packet byte overhead of inter-switch coordination.
//!
//! Reproduction of *"Toward Low-Overhead Inter-Switch Coordination in
//! Network-Wide Data Plane Program Deployment"* (ICDCS 2022). The crate
//! implements the paper's two components:
//!
//! - the **program analyzer** ([`analyzer`], Algorithm 1): programs →
//!   per-program TDGs → SPEED-merged TDG with per-edge metadata amounts;
//! - the **optimization framework**: the MILP formulation of problem P#1
//!   ([`milp_formulation`]), an exact combinatorial solver playing the
//!   Gurobi role ([`exact`]), and the paper's greedy heuristic
//!   ([`heuristic`], Algorithm 2), all producing [`DeploymentPlan`]s whose
//!   constraints are checked by a single verifier ([`verify()`]).
//!
//! Every solver implements the [`Solver`] trait ([`solver`]): it takes a
//! [`SearchContext`] carrying a deadline, a cooperative cancel token, and
//! a shared incumbent bound, and returns a uniform [`SolveOutcome`]. The
//! [`Portfolio`] runner races several solvers on threads — the heuristic
//! publishes incumbents early, the exact searches prune against them —
//! and picks a deterministic winner.
//!
//! # Quick start
//!
//! ```
//! use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
//! use hermes_dataplane::library;
//! use hermes_net::topology;
//!
//! // 1. Analyze ten real programs into a merged TDG.
//! let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
//! // 2. Deploy on a three-switch testbed with loose ε-bounds.
//! let net = topology::linear(3, 10.0);
//! let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose())?;
//! // 3. Inspect the per-packet byte overhead the deployment costs.
//! println!("A_max = {} bytes", plan.max_inter_switch_bytes(&tdg));
//! # Ok::<(), hermes_core::DeployError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyzer;
pub mod deployment;
pub mod eval;
pub mod exact;
pub mod fingerprint;
pub mod heuristic;
pub mod incremental;
pub mod migrate;
pub mod milp_formulation;
pub mod precheck;
pub mod refine;
pub mod report;
pub mod solver;
pub mod stage_assign;
pub mod stage_cache;
pub mod test_support;
pub mod verify;

pub use analyzer::ProgramAnalyzer;
pub use deployment::{
    DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon, PlanMetrics, PlanRoute,
    StagePlacement,
};
pub use eval::IncrementalEval;
pub use exact::{materialize, OptimalSolver};
pub use fingerprint::{fnv1a64, json_fingerprint, tdg_fingerprint};
pub use heuristic::{placement_order, GreedyHeuristic, SplitStrategy};
pub use incremental::{IncrementalDeployer, IncrementalOutcome, RedeployOptions};
pub use migrate::{
    all_at_once_peak, MigrateError, MigrationOrder, MigrationProblem, MigrationSchedule,
    MigrationScheduler, MigrationStep,
};
pub use milp_formulation::{build_p1, MilpHermes, P1Variables};
pub use precheck::{Certificate, Precheck};
pub use refine::refine;
pub use report::{diff, explain, PlanDiff};
pub use solver::{
    Budgeted, CancelToken, Portfolio, RaceReport, RacerReport, SearchContext, SolveOutcome,
    SolveStats, Solver, DEFAULT_DEPLOY_BUDGET, NO_BOUND,
};
pub use stage_assign::{assign_stages, fits_total_capacity, stage_feasible, StageAssignError};
pub use stage_cache::{StageCacheStats, StageFeasCache};
pub use verify::{verify, Violation};
