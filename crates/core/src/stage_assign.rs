//! Dependency-respecting stage assignment within one switch.
//!
//! Once a set of MATs lands on a switch, each must occupy concrete pipeline
//! stages such that (a) per-stage resource capacity is respected (Eq. 9)
//! and (b) for every dependency `(a, b)` inside the switch, the last stage
//! of `a` precedes the first stage of `b` (Eq. 8). Large MATs may be split
//! across consecutive stages, mirroring the "(a portion of)" language of
//! the paper. The algorithm is a dependency-levelled first fit — the same
//! family as the FFL strategy of Jose et al. \[8\].
//!
//! All capacity questions are answered by the switch's [`TargetModel`]:
//! per-stage capacity, packing depth, and (for budgeted targets such as
//! SmartNICs) the per-switch total-resource budget enforced incrementally
//! by the internal `Packing` state. Budget-free targets take the exact code path the scalar
//! `(stages, stage_capacity)` API used to.

use crate::deployment::StagePlacement;
use hermes_net::{SwitchId, TargetModel, CAP_TOL};
use hermes_tdg::{NodeId, Tdg};
use std::collections::BTreeSet;
use std::fmt;

/// Why stage assignment failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StageAssignError {
    /// The dependency chain among the given nodes is longer than the
    /// pipeline: even infinitely wide stages could not order them.
    ChainTooLong {
        /// Stages available.
        stages: usize,
    },
    /// Cumulative resources exceed what the remaining stages can hold.
    OutOfStages {
        /// Program-qualified name of the MAT that did not fit.
        mat: String,
    },
    /// One slice of a MAT exceeds a whole stage (cannot happen with valid
    /// capacities; kept for defense in depth).
    SliceTooLarge {
        /// Program-qualified name of the MAT.
        mat: String,
    },
    /// Placing the MAT would exceed the target's per-switch total-resource
    /// budget (only possible on budgeted targets such as SmartNICs).
    OverBudget {
        /// Program-qualified name of the MAT.
        mat: String,
    },
}

impl fmt::Display for StageAssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageAssignError::ChainTooLong { stages } => {
                write!(f, "dependency chain exceeds the {stages}-stage pipeline")
            }
            StageAssignError::OutOfStages { mat } => {
                write!(f, "ran out of stages while placing `{mat}`")
            }
            StageAssignError::SliceTooLarge { mat } => {
                write!(f, "a slice of `{mat}` exceeds one stage's capacity")
            }
            StageAssignError::OverBudget { mat } => {
                write!(f, "placing `{mat}` exceeds the switch's total-resource budget")
            }
        }
    }
}

impl std::error::Error for StageAssignError {}

/// Assigns `nodes` (a subset of `tdg`) to the stages of `switch`, whose
/// pipeline shape (stage count, per-stage capacity, total budget) comes
/// from `model`.
///
/// Nodes are processed in topological order; each starts at the first
/// stage after all its in-subset predecessors finish and greedily fills
/// consecutive stages until its full `R(a)` is placed.
///
/// # Errors
///
/// Returns [`StageAssignError`] when the subset cannot fit.
pub fn assign_stages(
    tdg: &Tdg,
    nodes: &BTreeSet<NodeId>,
    switch: SwitchId,
    model: &TargetModel,
) -> Result<Vec<StagePlacement>, StageAssignError> {
    let slices = assign_slices(tdg, nodes, model)?;
    Ok(slices
        .into_iter()
        .map(|(node, stage, fraction)| StagePlacement { node, switch, stage, fraction })
        .collect())
}

/// `true` iff `nodes` admits a dependency-respecting stage assignment on
/// `model`'s pipeline. Used as the fit probe of the splitting recursion,
/// where no concrete switch has been chosen yet.
pub fn stage_feasible(tdg: &Tdg, nodes: &BTreeSet<NodeId>, model: &TargetModel) -> bool {
    assign_slices(tdg, nodes, model).is_ok()
}

/// Sentinel in [`Packing::end_stage`] for a node not placed yet. Doubles
/// as the stage marker of budget-snapshot entries in push logs.
pub(crate) const UNPLACED: u32 = u32::MAX;

/// Name-free push failure for hot probe paths; [`StageAssignError`]
/// carries the MAT name, and building it clones a `String` — measurable
/// when the exact search rejects millions of pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushFail {
    /// See [`StageAssignError::ChainTooLong`].
    ChainTooLong,
    /// See [`StageAssignError::OutOfStages`].
    OutOfStages,
    /// See [`StageAssignError::SliceTooLarge`].
    SliceTooLarge,
    /// See [`StageAssignError::OverBudget`].
    OverBudget,
}

impl PushFail {
    fn with_name(self, tdg: &Tdg, id: NodeId, stages: usize) -> StageAssignError {
        match self {
            PushFail::ChainTooLong => StageAssignError::ChainTooLong { stages },
            PushFail::OutOfStages => {
                StageAssignError::OutOfStages { mat: tdg.node(id).name.clone() }
            }
            PushFail::SliceTooLarge => {
                StageAssignError::SliceTooLarge { mat: tdg.node(id).name.clone() }
            }
            PushFail::OverBudget => StageAssignError::OverBudget { mat: tdg.node(id).name.clone() },
        }
    }
}

/// Incremental first-fit pipeline state: per-stage remaining capacity, the
/// last stage occupied by each already-placed node, and (for budgeted
/// targets) the running total-resource usage.
///
/// [`assign_slices`] and the memoized feasibility cache
/// ([`crate::stage_cache::StageFeasCache`]) both drive this one
/// implementation, so the packing semantics cannot drift between the
/// authoritative placement path and the cached probe path. Nodes must be
/// pushed in topological order; a predecessor that was never pushed simply
/// imposes no ordering constraint (the reference behaviour for in-edges
/// from outside the placed subset).
#[derive(Debug, Clone)]
pub(crate) struct Packing {
    stages: usize,
    stage_capacity: f64,
    /// Per-switch total-resource budget; `INFINITY` on budget-free targets,
    /// where the budget check below compiles to an always-false compare.
    budget: f64,
    /// Total resource of successfully placed nodes (budget accounting).
    used: f64,
    remaining: Vec<f64>,
    /// `end_stage[node index]` = last stage occupied, or [`UNPLACED`].
    end_stage: Vec<u32>,
}

impl Packing {
    /// An empty pipeline shaped like `model` for a TDG of `node_count`
    /// nodes.
    pub(crate) fn new(model: &TargetModel, node_count: usize) -> Self {
        Packing {
            stages: model.stages,
            stage_capacity: model.stage_capacity,
            budget: model.total_budget,
            used: 0.0,
            remaining: vec![model.stage_capacity; model.stages],
            end_stage: vec![UNPLACED; node_count],
        }
    }

    /// Empties the pipeline, restoring the pristine post-construction
    /// state without reallocating — the per-subtree analogue of
    /// [`IncrementalEval::reset`](crate::eval::IncrementalEval::reset):
    /// `remaining` is reassigned (not incrementally repaired), so no float
    /// residue from prior placements survives.
    pub(crate) fn reset(&mut self) {
        self.used = 0.0;
        self.remaining.fill(self.stage_capacity);
        self.end_stage.fill(UNPLACED);
    }

    /// Places `id` at the first stage after its already-placed
    /// predecessors, greedily filling consecutive stages; each emitted
    /// slice is `(node, stage, fraction)`.
    pub(crate) fn push(
        &mut self,
        tdg: &Tdg,
        id: NodeId,
        mut emit: impl FnMut(NodeId, usize, f64),
    ) -> Result<(), StageAssignError> {
        self.push_core(tdg, id, &mut |id, stage, _old, take| emit(id, stage, take))
            .map_err(|e| e.with_name(tdg, id, self.stages))
    }

    /// Reversible [`Packing::push`]: the *prior* `remaining` of every
    /// modified stage is appended to `log`, so [`Packing::revert`]
    /// restores the exact bit-for-bit pipeline state. (Re-adding slice
    /// fractions instead would accumulate floating-point drift over
    /// millions of push/undo cycles in the exact search.) On budgeted
    /// targets the prior `used` total is snapshotted first under the
    /// [`UNPLACED`] stage marker — budget-free targets log nothing extra.
    /// On failure the partial modifications are rolled back here and `log`
    /// is unchanged.
    pub(crate) fn push_logged(&mut self, tdg: &Tdg, id: NodeId, log: &mut Vec<(u32, f64)>) -> bool {
        let base = log.len();
        if self.budget.is_finite() {
            log.push((UNPLACED, self.used));
        }
        let result = self.push_core(tdg, id, &mut |_, stage, old, _| {
            log.push((u32::try_from(stage).expect("pipeline depth fits u32"), old));
        });
        if result.is_err() {
            self.unwind(log, base);
        }
        result.is_ok()
    }

    /// Undoes a successful [`Packing::push_logged`] of `id`, restoring the
    /// logged `remaining` (and `used`) snapshots in reverse and truncating
    /// `log` back to `base` (its length before the push).
    pub(crate) fn revert(&mut self, id: NodeId, log: &mut Vec<(u32, f64)>, base: usize) {
        self.unwind(log, base);
        self.end_stage[id.index()] = UNPLACED;
    }

    /// Restores every snapshot in `log[base..]` in reverse and truncates.
    fn unwind(&mut self, log: &mut Vec<(u32, f64)>, base: usize) {
        for &(stage, old) in log[base..].iter().rev() {
            if stage == UNPLACED {
                self.used = old;
            } else {
                self.remaining[stage as usize] = old;
            }
        }
        log.truncate(base);
    }

    /// The one first-fit loop behind both entry points; `on_slice` sees
    /// `(node, stage, remaining-before, take)` for every placed slice.
    fn push_core(
        &mut self,
        tdg: &Tdg,
        id: NodeId,
        on_slice: &mut dyn FnMut(NodeId, usize, f64, f64),
    ) -> Result<(), PushFail> {
        let mat = &tdg.node(id).mat;
        let resource = mat.resource();
        // Always-false on budget-free targets (`used + r > INF` never holds),
        // and checked before any mutation so failure needs no rollback.
        if self.used + resource > self.budget + CAP_TOL {
            return Err(PushFail::OverBudget);
        }
        let earliest = tdg
            .in_edges(id)
            .map(|e| self.end_stage[e.from.index()])
            .filter(|&s| s != UNPLACED)
            .map(|s| s as usize + 1)
            .max()
            .unwrap_or(0);
        if earliest >= self.stages {
            return Err(PushFail::ChainTooLong);
        }
        let mut need = resource;
        let mut stage = earliest;
        let mut last = earliest;
        while need > 1e-12 {
            if stage >= self.stages {
                return Err(PushFail::OutOfStages);
            }
            let old = self.remaining[stage];
            let take = need.min(old);
            if take > 1e-12 {
                if take > self.stage_capacity + CAP_TOL {
                    return Err(PushFail::SliceTooLarge);
                }
                on_slice(id, stage, old, take);
                self.remaining[stage] = old - take;
                need -= take;
                last = stage;
            }
            if need > 1e-12 {
                stage += 1;
            }
        }
        if self.budget.is_finite() {
            self.used += resource;
        }
        self.end_stage[id.index()] =
            u32::try_from(last).expect("pipeline depth fits u32 (UNPLACED is reserved)");
        Ok(())
    }
}

/// Core first-fit: returns `(node, stage, fraction)` slices.
fn assign_slices(
    tdg: &Tdg,
    nodes: &BTreeSet<NodeId>,
    model: &TargetModel,
) -> Result<Vec<(NodeId, usize, f64)>, StageAssignError> {
    if nodes.is_empty() {
        return Ok(Vec::new());
    }
    let order: Vec<NodeId> = tdg
        .topo_order()
        .expect("TDGs are DAGs")
        .into_iter()
        .filter(|id| nodes.contains(id))
        .collect();

    let mut packing = Packing::new(model, tdg.node_count());
    let mut placements = Vec::new();
    for &id in &order {
        packing.push(tdg, id, |node, stage, take| placements.push((node, stage, take)))?;
    }
    Ok(placements)
}

/// `true` iff `nodes` could plausibly fit the switch by total resource
/// (the quick check of Algorithm 2 line 2: `Σ R(a) <= C_stage * C_res`,
/// clamped by the target's budget). Delegates to
/// [`TargetModel::fits_total`] — the single definition of "fits".
pub fn fits_total_capacity(tdg: &Tdg, nodes: &BTreeSet<NodeId>, model: &TargetModel) -> bool {
    let total: f64 = nodes.iter().map(|&id| tdg.node(id).mat.resource()).sum();
    model.fits_total(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;
    use hermes_net::topology;
    use hermes_tdg::AnalysisMode;

    fn chain(resources: &[f64]) -> Tdg {
        let mut b = Program::builder("p");
        for (i, &r) in resources.iter().enumerate() {
            let mut mat = Mat::builder(format!("t{i}")).resource(r);
            if i > 0 {
                mat = mat.match_field(Field::metadata(format!("m{}", i - 1), 4), MatchKind::Exact);
            }
            let writes = if i + 1 < resources.len() {
                vec![Field::metadata(format!("m{i}"), 4)]
            } else {
                vec![]
            };
            mat = mat.action(Action::writing("w", writes));
            b = b.table(mat.build().unwrap());
        }
        Tdg::from_program(&b.build().unwrap(), AnalysisMode::PaperLiteral)
    }

    fn independent(resources: &[f64]) -> Tdg {
        let mut b = Program::builder("p");
        for (i, &r) in resources.iter().enumerate() {
            b = b.table(
                Mat::builder(format!("t{i}"))
                    .resource(r)
                    .action(Action::new("noop"))
                    .build()
                    .unwrap(),
            );
        }
        Tdg::from_program(&b.build().unwrap(), AnalysisMode::PaperLiteral)
    }

    fn sw() -> SwitchId {
        topology::linear(1, 1.0).switch_ids().next().unwrap()
    }

    fn all(tdg: &Tdg) -> BTreeSet<NodeId> {
        tdg.node_ids().collect()
    }

    fn shape(stages: usize, stage_capacity: f64) -> TargetModel {
        TargetModel::pipeline(stages, stage_capacity)
    }

    #[test]
    fn chain_occupies_increasing_stages() {
        let tdg = chain(&[0.5, 0.5, 0.5]);
        let p = assign_stages(&tdg, &all(&tdg), sw(), &shape(12, 1.0)).unwrap();
        let span = |i: usize| {
            let id = tdg.node_ids().nth(i).unwrap();
            let stages: Vec<usize> = p.iter().filter(|x| x.node == id).map(|x| x.stage).collect();
            (*stages.iter().min().unwrap(), *stages.iter().max().unwrap())
        };
        assert!(span(0).1 < span(1).0);
        assert!(span(1).1 < span(2).0);
    }

    #[test]
    fn independent_nodes_share_a_stage() {
        let tdg = independent(&[0.3, 0.3, 0.3]);
        let p = assign_stages(&tdg, &all(&tdg), sw(), &shape(12, 1.0)).unwrap();
        assert!(p.iter().all(|x| x.stage == 0), "all fit stage 0: {p:?}");
    }

    #[test]
    fn capacity_forces_next_stage() {
        let tdg = independent(&[0.7, 0.7]);
        let p = assign_stages(&tdg, &all(&tdg), sw(), &shape(12, 1.0)).unwrap();
        let stages: BTreeSet<usize> = p.iter().map(|x| x.stage).collect();
        assert_eq!(stages.len(), 2, "0.7 + 0.7 cannot share a unit stage");
    }

    #[test]
    fn large_mat_splits_across_stages() {
        let tdg = independent(&[2.5]);
        let p = assign_stages(&tdg, &all(&tdg), sw(), &shape(12, 1.0)).unwrap();
        assert_eq!(p.len(), 3, "2.5 units split over 3 stages: {p:?}");
        let total: f64 = p.iter().map(|x| x.fraction).sum();
        assert!((total - 2.5).abs() < 1e-9);
    }

    #[test]
    fn chain_longer_than_pipeline_fails() {
        let tdg = chain(&[0.1; 5]);
        let err = assign_stages(&tdg, &all(&tdg), sw(), &shape(4, 1.0)).unwrap_err();
        assert!(matches!(err, StageAssignError::ChainTooLong { stages: 4 }));
    }

    #[test]
    fn resource_overflow_fails() {
        let tdg = independent(&[1.0, 1.0, 1.0]);
        let err = assign_stages(&tdg, &all(&tdg), sw(), &shape(2, 1.0)).unwrap_err();
        assert!(matches!(err, StageAssignError::OutOfStages { .. }));
    }

    #[test]
    fn per_stage_capacity_respected() {
        let tdg = independent(&[0.6, 0.6, 0.6, 0.6]);
        let p = assign_stages(&tdg, &all(&tdg), sw(), &shape(12, 1.0)).unwrap();
        let mut load = std::collections::BTreeMap::new();
        for x in &p {
            *load.entry(x.stage).or_insert(0.0) += x.fraction;
        }
        for (&stage, &l) in &load {
            assert!(l <= 1.0 + 1e-9, "stage {stage} overloaded: {l}");
        }
    }

    #[test]
    fn subset_assignment_ignores_outside_predecessors() {
        // Chain t0 -> t1; assign only t1: it may start at stage 0.
        let tdg = chain(&[0.5, 0.5]);
        let t1 = tdg.node_ids().nth(1).unwrap();
        let p = assign_stages(&tdg, &BTreeSet::from([t1]), sw(), &shape(12, 1.0)).unwrap();
        assert_eq!(p[0].stage, 0);
    }

    #[test]
    fn empty_set_is_trivially_placed() {
        let tdg = chain(&[0.5]);
        let p = assign_stages(&tdg, &BTreeSet::new(), sw(), &shape(12, 1.0)).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn fits_total_capacity_quick_check() {
        let tdg = independent(&[1.0, 1.0]);
        assert!(fits_total_capacity(&tdg, &all(&tdg), &shape(2, 1.0)));
        assert!(!fits_total_capacity(&tdg, &all(&tdg), &shape(1, 1.0)));
    }

    #[test]
    fn split_mat_still_precedes_successor() {
        // t0 (1.5 units) -> t1: t1 must start after t0's last slice.
        let tdg = chain(&[1.5, 0.5]);
        let p = assign_stages(&tdg, &all(&tdg), sw(), &shape(12, 1.0)).unwrap();
        let id0 = tdg.node_ids().next().unwrap();
        let id1 = tdg.node_ids().nth(1).unwrap();
        let end0 = p.iter().filter(|x| x.node == id0).map(|x| x.stage).max().unwrap();
        let begin1 = p.iter().filter(|x| x.node == id1).map(|x| x.stage).min().unwrap();
        assert!(end0 < begin1, "end0={end0} begin1={begin1}");
    }

    #[test]
    fn budget_rejects_what_stages_alone_would_accept() {
        // 2.0 units over 12 x 1.0 stages fits easily — but not a 1.5 budget.
        let tdg = independent(&[1.0, 1.0]);
        let mut budgeted = shape(12, 1.0);
        budgeted.total_budget = 1.5;
        let err = assign_stages(&tdg, &all(&tdg), sw(), &budgeted).unwrap_err();
        assert!(matches!(err, StageAssignError::OverBudget { .. }), "{err}");
        assert!(!stage_feasible(&tdg, &all(&tdg), &budgeted));
        assert!(!fits_total_capacity(&tdg, &all(&tdg), &budgeted));
        assert!(stage_feasible(&tdg, &all(&tdg), &shape(12, 1.0)));
    }

    #[test]
    fn smartnic_model_packs_deep_stages_within_budget() {
        // 1.5-unit MATs fit a 2.0-capacity SmartNIC stage whole; four of
        // them total 6.0 = exactly the budget.
        let nic = TargetModel::smartnic();
        let tdg = independent(&[1.5, 1.5, 1.5, 1.5]);
        let p = assign_stages(&tdg, &all(&tdg), sw(), &nic).unwrap();
        let total: f64 = p.iter().map(|x| x.fraction).sum();
        assert!((total - 6.0).abs() < 1e-9);
        let over = independent(&[1.5, 1.5, 1.5, 1.5, 0.5]);
        let err = assign_stages(&over, &all(&over), sw(), &nic).unwrap_err();
        assert!(matches!(err, StageAssignError::OverBudget { .. }));
    }

    #[test]
    fn push_logged_rolls_back_budget_exactly() {
        let tdg = independent(&[1.0, 1.0]);
        let ids: Vec<NodeId> = tdg.node_ids().collect();
        let mut budgeted = shape(12, 1.0);
        budgeted.total_budget = 1.5;
        let mut packing = Packing::new(&budgeted, tdg.node_count());
        let mut log = Vec::new();
        assert!(packing.push_logged(&tdg, ids[0], &mut log));
        let used_after_first = packing.used;
        let log_after_first = log.len();
        // Second push exceeds the budget: state must roll back exactly.
        assert!(!packing.push_logged(&tdg, ids[1], &mut log));
        assert_eq!(packing.used.to_bits(), used_after_first.to_bits());
        assert_eq!(log.len(), log_after_first);
        // Reverting the first push restores the pristine packing.
        packing.revert(ids[0], &mut log, 0);
        assert_eq!(packing.used.to_bits(), 0.0f64.to_bits());
        assert!(log.is_empty());
        assert!(packing.push_logged(&tdg, ids[1], &mut log), "budget freed");
    }

    #[test]
    fn reset_matches_freshly_constructed_packing() {
        let tdg = chain(&[0.7, 1.4, 0.3]);
        let ids: Vec<NodeId> = tdg.node_ids().collect();
        let mut budgeted = shape(12, 1.0);
        budgeted.total_budget = 5.0;
        let mut recycled = Packing::new(&budgeted, tdg.node_count());
        let mut log = Vec::new();
        for &id in &ids {
            assert!(recycled.push_logged(&tdg, id, &mut log));
        }
        recycled.reset();
        log.clear();
        let mut fresh = Packing::new(&budgeted, tdg.node_count());
        let mut fresh_log = Vec::new();
        // Replaying onto the recycled packing must agree bit-for-bit with a
        // fresh one, including the float budget/remaining bookkeeping.
        for &id in &ids {
            assert!(recycled.push_logged(&tdg, id, &mut log));
            assert!(fresh.push_logged(&tdg, id, &mut fresh_log));
        }
        assert_eq!(recycled.used.to_bits(), fresh.used.to_bits());
        assert_eq!(recycled.end_stage, fresh.end_stage);
        let bits = |p: &Packing| p.remaining.iter().map(|r| r.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&recycled), bits(&fresh));
        assert_eq!(log, fresh_log);
    }

    #[test]
    fn budget_free_push_logs_no_extra_entries() {
        let tdg = independent(&[0.5]);
        let id = tdg.node_ids().next().unwrap();
        let mut packing = Packing::new(&shape(12, 1.0), tdg.node_count());
        let mut log = Vec::new();
        assert!(packing.push_logged(&tdg, id, &mut log));
        assert_eq!(log.len(), 1, "one slice, one snapshot, no budget sentinel");
        assert_eq!(packing.used, 0.0, "budget accounting off for infinite budgets");
    }
}
