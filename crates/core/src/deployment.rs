//! Deployment plans: the decision variables of the paper's §V-A.
//!
//! A [`DeploymentPlan`] materializes both variable families: `x(a, i, u)`
//! (MAT `a` occupies stage `i` of switch `u`, possibly fractionally when a
//! large table spans several stages) and `y(u, v, p)` (switch `u` forwards
//! coordinated packets to `v` along path `p`), plus the derived metrics
//! the objectives are written over: `A_max`, `t_e2e`, and `Q_occ`.

use hermes_net::{Network, Path, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One `x(a, i, u)` assignment: a slice of MAT `a` on stage `stage` of
/// switch `switch` consuming `fraction` of that stage's capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlacement {
    /// The MAT (TDG node) being placed.
    pub node: NodeId,
    /// Hosting switch.
    pub switch: SwitchId,
    /// Pipeline stage index (0-based, `< C_stage`).
    pub stage: usize,
    /// Fraction of the stage's capacity consumed (`0 < fraction`).
    pub fraction: f64,
}

/// One `y(u, v, p)` route: the path coordinated packets take from the
/// segment on `from` to the segment on `to`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRoute {
    /// Upstream switch.
    pub from: SwitchId,
    /// Downstream switch.
    pub to: SwitchId,
    /// The chosen path (starts at `from`, ends at `to`).
    pub path: Path,
}

/// A complete deployment decision.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeploymentPlan {
    placements: Vec<StagePlacement>,
    routes: Vec<PlanRoute>,
}

impl DeploymentPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        DeploymentPlan::default()
    }

    /// Adds a stage placement.
    pub fn place(&mut self, placement: StagePlacement) {
        self.placements.push(placement);
    }

    /// Adds a coordination route.
    pub fn route(&mut self, route: PlanRoute) {
        self.routes.push(route);
    }

    /// All `x(a, i, u)` placements.
    pub fn placements(&self) -> &[StagePlacement] {
        &self.placements
    }

    /// All `y(u, v, p)` routes.
    pub fn routes(&self) -> &[PlanRoute] {
        &self.routes
    }

    /// The switch hosting `node`, if placed. A node split across stages is
    /// still on exactly one switch.
    pub fn switch_of(&self, node: NodeId) -> Option<SwitchId> {
        self.placements.iter().find(|p| p.node == node).map(|p| p.switch)
    }

    /// First (ρ_begin) and last (ρ_end) stage occupied by `node`.
    pub fn stage_span(&self, node: NodeId) -> Option<(usize, usize)> {
        let stages: Vec<usize> =
            self.placements.iter().filter(|p| p.node == node).map(|p| p.stage).collect();
        Some((*stages.iter().min()?, *stages.iter().max()?))
    }

    /// The set of switches hosting at least one MAT (`Q_occ` counts these).
    pub fn occupied_switches(&self) -> BTreeSet<SwitchId> {
        self.placements.iter().map(|p| p.switch).collect()
    }

    /// Nodes placed on `switch`.
    pub fn nodes_on(&self, switch: SwitchId) -> BTreeSet<NodeId> {
        self.placements.iter().filter(|p| p.switch == switch).map(|p| p.node).collect()
    }

    /// The route installed from `from` to `to`, if any.
    pub fn route_between(&self, from: SwitchId, to: SwitchId) -> Option<&PlanRoute> {
        self.routes.iter().find(|r| r.from == from && r.to == to)
    }

    /// The full node -> switch mapping as a dense array indexed by
    /// [`NodeId::index`] (`None` = unplaced), built in one pass over the
    /// placements. Callers that look up many nodes should use this instead
    /// of per-node [`DeploymentPlan::switch_of`] scans.
    pub fn switch_assignment(&self, node_count: usize) -> Vec<Option<SwitchId>> {
        let mut assign = vec![None; node_count];
        for p in &self.placements {
            let slot = &mut assign[p.node.index()];
            if slot.is_none() {
                *slot = Some(p.switch);
            }
        }
        assign
    }

    /// Per ordered switch pair `(u, v)`, the metadata bytes delivered from
    /// MATs on `u` to dependent MATs on `v` (the inner sum of Eq. 1).
    pub fn inter_switch_bytes(&self, tdg: &Tdg) -> BTreeMap<(SwitchId, SwitchId), u64> {
        let mut by_pair = BTreeMap::new();
        self.inter_switch_bytes_into(tdg, &mut by_pair);
        by_pair
    }

    /// [`DeploymentPlan::inter_switch_bytes`] into a caller-owned map:
    /// `out` is cleared and refilled, so probe-heavy paths reuse one
    /// allocation across calls. The node -> switch mapping is resolved once
    /// up front instead of per edge endpoint.
    pub fn inter_switch_bytes_into(
        &self,
        tdg: &Tdg,
        out: &mut BTreeMap<(SwitchId, SwitchId), u64>,
    ) {
        out.clear();
        let assign = self.switch_assignment(tdg.node_count());
        for e in tdg.edges() {
            let (Some(u), Some(v)) = (assign[e.from.index()], assign[e.to.index()]) else {
                continue;
            };
            if u != v {
                *out.entry((u, v)).or_insert(0) += u64::from(e.bytes);
            }
        }
    }

    /// `A_max` — the maximum metadata bytes any packet carries between a
    /// pair of switches (objective Obj#1, Eq. 1).
    pub fn max_inter_switch_bytes(&self, tdg: &Tdg) -> u64 {
        self.inter_switch_bytes(tdg).values().copied().max().unwrap_or(0)
    }

    /// `t_e2e` — the summed latency of all coordination paths (Obj#2,
    /// Eq. 2), in microseconds.
    pub fn end_to_end_latency_us(&self) -> f64 {
        self.routes.iter().map(|r| r.path.latency_us).sum()
    }

    /// `Q_occ` — the number of occupied programmable switches (Obj#3,
    /// Eq. 3).
    pub fn occupied_switch_count(&self) -> usize {
        self.occupied_switches().len()
    }

    /// Stable content fingerprint of the plan (FNV-1a over the canonical
    /// JSON serialization; see [`crate::fingerprint`]). The durability
    /// layer journals this alongside serialized plans so recovery can
    /// cross-check intent against what the operator re-supplied.
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::json_fingerprint(self)
    }

    /// Total resource placed on each stage of each switch, keyed by
    /// `(switch, stage)` — the left side of Eq. 9.
    pub fn stage_loads(&self) -> BTreeMap<(SwitchId, usize), f64> {
        let mut loads = BTreeMap::new();
        for p in &self.placements {
            *loads.entry((p.switch, p.stage)).or_insert(0.0) += p.fraction;
        }
        loads
    }

    /// Summary of all three objective values against a TDG.
    pub fn metrics(&self, tdg: &Tdg) -> PlanMetrics {
        PlanMetrics {
            max_overhead_bytes: self.max_inter_switch_bytes(tdg),
            total_latency_us: self.end_to_end_latency_us(),
            occupied_switches: self.occupied_switch_count(),
        }
    }
}

impl fmt::Display for DeploymentPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Plan({} placements on {} switches, {} routes)",
            self.placements.len(),
            self.occupied_switch_count(),
            self.routes.len()
        )
    }
}

/// The three objective values of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanMetrics {
    /// `A_max` in bytes.
    pub max_overhead_bytes: u64,
    /// `t_e2e` in microseconds.
    pub total_latency_us: f64,
    /// `Q_occ`.
    pub occupied_switches: usize,
}

impl fmt::Display for PlanMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "A_max={} B, t_e2e={:.1} us, Q_occ={}",
            self.max_overhead_bytes, self.total_latency_us, self.occupied_switches
        )
    }
}

/// The ε-constraint bounds administrators submit (paper Eq. 4–5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Epsilon {
    /// `ε₁` — upper bound on `t_e2e` in microseconds.
    pub max_latency_us: f64,
    /// `ε₂` — upper bound on `Q_occ`.
    pub max_switches: usize,
}

impl Epsilon {
    /// Loose bounds (the setting the paper's experiments use).
    pub fn loose() -> Self {
        Epsilon { max_latency_us: f64::INFINITY, max_switches: usize::MAX }
    }

    /// Explicit bounds.
    pub fn new(max_latency_us: f64, max_switches: usize) -> Self {
        Epsilon { max_latency_us, max_switches }
    }
}

impl Default for Epsilon {
    fn default() -> Self {
        Epsilon::loose()
    }
}

/// Errors shared by every deployment algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeployError {
    /// A single MAT exceeds the total capacity of every candidate switch.
    MatTooLarge {
        /// Program-qualified MAT name.
        mat: String,
        /// Its resource requirement.
        resource: f64,
    },
    /// No placement satisfying resources, dependencies, and ε-bounds was
    /// found.
    NoFeasiblePlacement {
        /// Human-readable explanation.
        reason: String,
    },
    /// The network has no programmable switch.
    NoProgrammableSwitch,
    /// An exhaustive search finished its whole space without beating the
    /// incumbent bound published by another solver: that bound is thereby
    /// *proven optimal*, but this solver holds no plan of its own. A
    /// portfolio turns this into an optimality certificate for the
    /// bound-holder's plan.
    NoImprovementProven {
        /// The externally published bound proven unimprovable.
        bound: u64,
    },
    /// A pre-solve bound proved the instance infeasible before any search
    /// ran (see [`crate::precheck::Precheck`]): not a search failure but a
    /// proof object, returned in well under the time budget.
    ProvenInfeasible {
        /// The certificate establishing infeasibility.
        certificate: crate::precheck::Certificate,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::MatTooLarge { mat, resource } => {
                write!(f, "MAT `{mat}` (R={resource:.2}) exceeds every switch's capacity")
            }
            DeployError::NoFeasiblePlacement { reason } => {
                write!(f, "no feasible placement: {reason}")
            }
            DeployError::NoProgrammableSwitch => f.write_str("network has no programmable switch"),
            DeployError::NoImprovementProven { bound } => {
                write!(f, "search exhausted: the published bound of {bound} B is optimal")
            }
            DeployError::ProvenInfeasible { certificate } => {
                write!(f, "proven infeasible before search [{}]: {certificate}", certificate.code())
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// The interface every deployment framework (Hermes and all baselines)
/// implements, so experiments can sweep algorithms uniformly.
pub trait DeploymentAlgorithm {
    /// Short display name used in experiment tables (e.g. `"Hermes"`).
    fn name(&self) -> &str;

    /// Produces a deployment of `tdg` onto `net` under the ε-bounds.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] when no feasible deployment exists.
    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError>;

    /// `true` for solver-backed frameworks whose running time explodes
    /// with instance size (ILP solvers, exhaustive search). Experiment
    /// harnesses cap their reported times the way the paper caps its
    /// execution-time bars at two hours.
    fn is_exhaustive(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_net::topology;
    use hermes_tdg::AnalysisMode;

    /// Paper-literal chain with the plan-metrics tests' 0.2-unit MATs.
    fn chain_tdg(bytes: &[u32]) -> Tdg {
        crate::test_support::chain_tdg_mode(bytes, 0.2, AnalysisMode::PaperLiteral)
    }

    /// NodeIds are dense program-order indices for a single-program TDG;
    /// fetch the i-th one through the public iterator.
    fn node_id(i: usize) -> NodeId {
        let tdg = chain_tdg(&[1, 1, 1, 1, 1, 1, 1]);
        let id = tdg.node_ids().nth(i).expect("index in range");
        id
    }

    fn place(plan: &mut DeploymentPlan, node: usize, switch: SwitchId, stage: usize) {
        plan.place(StagePlacement { node: node_id(node), switch, stage, fraction: 0.2 });
    }

    #[test]
    fn amax_is_max_over_pairs() {
        // t0 -1B-> t1 -4B-> t2 ; t0,t1 on s0 ; t2 on s1 => only 4B crosses.
        let tdg = chain_tdg(&[1, 4]);
        let net = topology::linear(2, 10.0);
        let ids: Vec<SwitchId> = net.switch_ids().collect();
        let mut plan = DeploymentPlan::new();
        place(&mut plan, 0, ids[0], 0);
        place(&mut plan, 1, ids[0], 1);
        place(&mut plan, 2, ids[1], 0);
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 4);
        let pairs = plan.inter_switch_bytes(&tdg);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[&(ids[0], ids[1])], 4);
    }

    #[test]
    fn figure1_example() {
        // Paper Fig. 1: a -1B-> b -4B-> c. Existing solutions put (a,b)|(c)
        // …wait, they put (a,b) on S1 and c needs b's 4 bytes: overhead 4.
        // Hermes puts (a)|(b,c): overhead 1.
        let tdg = chain_tdg(&[1, 4]);
        let net = topology::linear(2, 10.0);
        let ids: Vec<SwitchId> = net.switch_ids().collect();

        let mut naive = DeploymentPlan::new();
        place(&mut naive, 0, ids[0], 0);
        place(&mut naive, 1, ids[0], 1);
        place(&mut naive, 2, ids[1], 0);
        assert_eq!(naive.max_inter_switch_bytes(&tdg), 4);

        let mut hermes = DeploymentPlan::new();
        place(&mut hermes, 0, ids[0], 0);
        place(&mut hermes, 1, ids[1], 0);
        place(&mut hermes, 2, ids[1], 1);
        assert_eq!(hermes.max_inter_switch_bytes(&tdg), 1);
    }

    #[test]
    fn same_switch_edges_cost_nothing() {
        let tdg = chain_tdg(&[100]);
        let net = topology::linear(1, 10.0);
        let s = net.switch_ids().next().unwrap();
        let mut plan = DeploymentPlan::new();
        place(&mut plan, 0, s, 0);
        place(&mut plan, 1, s, 1);
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 0);
        assert_eq!(plan.occupied_switch_count(), 1);
    }

    #[test]
    fn stage_span_tracks_splits() {
        let net = topology::linear(1, 10.0);
        let s = net.switch_ids().next().unwrap();
        let mut plan = DeploymentPlan::new();
        let n = node_id(0);
        plan.place(StagePlacement { node: n, switch: s, stage: 2, fraction: 0.5 });
        plan.place(StagePlacement { node: n, switch: s, stage: 3, fraction: 0.5 });
        assert_eq!(plan.stage_span(n), Some((2, 3)));
        assert_eq!(plan.stage_loads()[&(s, 2)], 0.5);
    }

    #[test]
    fn latency_sums_routes() {
        let net = topology::linear(3, 10.0);
        let ids: Vec<SwitchId> = net.switch_ids().collect();
        let mut plan = DeploymentPlan::new();
        let p01 = hermes_net::shortest_path(&net, ids[0], ids[1]).unwrap();
        let p12 = hermes_net::shortest_path(&net, ids[1], ids[2]).unwrap();
        let expect = p01.latency_us + p12.latency_us;
        plan.route(PlanRoute { from: ids[0], to: ids[1], path: p01 });
        plan.route(PlanRoute { from: ids[1], to: ids[2], path: p12 });
        assert_eq!(plan.end_to_end_latency_us(), expect);
        assert!(plan.route_between(ids[0], ids[1]).is_some());
        assert!(plan.route_between(ids[1], ids[0]).is_none());
    }

    #[test]
    fn epsilon_defaults_are_loose() {
        let eps = Epsilon::default();
        assert!(eps.max_latency_us.is_infinite());
        assert_eq!(eps.max_switches, usize::MAX);
    }

    #[test]
    fn metrics_display() {
        let tdg = chain_tdg(&[1]);
        let plan = DeploymentPlan::new();
        let m = plan.metrics(&tdg);
        assert_eq!(m.max_overhead_bytes, 0);
        assert!(m.to_string().contains("A_max=0 B"));
    }
}
