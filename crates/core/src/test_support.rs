//! Shared test fixtures for solver tests across the workspace.
//!
//! Every solver crate used to carry its own copy of these helpers; they
//! now live in one place so fixtures cannot drift apart. The module is
//! compiled unconditionally (it is tiny) but is intended for `#[cfg(test)]`
//! consumers in `hermes-core`, `hermes-baselines`, `hermes-backend`, and
//! the workspace-level integration tests.

use hermes_dataplane::action::Action;
use hermes_dataplane::fields::Field;
use hermes_dataplane::mat::{Mat, MatchKind};
use hermes_dataplane::program::Program;
use hermes_net::{Network, Switch, SwitchId};
use hermes_tdg::{AnalysisMode, Tdg};

/// A single-program chain TDG `t0 -> t1 -> … -> tn` where edge `i` carries
/// `bytes[i]` bytes of metadata and every MAT costs `resource` units.
///
/// # Panics
///
/// Panics only if the builder rejects the generated program (it cannot for
/// these inputs).
pub fn chain_tdg(bytes: &[u32], resource: f64) -> Tdg {
    chain_tdg_mode(bytes, resource, AnalysisMode::Intersection)
}

/// [`chain_tdg`] with an explicit [`AnalysisMode`], for tests that exercise
/// the paper-literal window semantics.
///
/// # Panics
///
/// Panics only if the builder rejects the generated program (it cannot for
/// these inputs).
pub fn chain_tdg_mode(bytes: &[u32], resource: f64, mode: AnalysisMode) -> Tdg {
    let n = bytes.len() + 1;
    let mut b = Program::builder("p");
    for i in 0..n {
        let mut mat = Mat::builder(format!("t{i}")).resource(resource);
        if i > 0 {
            mat = mat.match_field(
                Field::metadata(format!("m{}", i - 1), bytes[i - 1]),
                MatchKind::Exact,
            );
        }
        let writes =
            if i < bytes.len() { vec![Field::metadata(format!("m{i}"), bytes[i])] } else { vec![] };
        mat = mat.action(Action::writing("w", writes));
        b = b.table(mat.build().unwrap());
    }
    Tdg::from_program(&b.build().unwrap(), mode)
}

/// Analyzes `programs` into a merged TDG and pairs it with the
/// three-switch linear testbed (10 µs links) used throughout the
/// evaluation — the fixture every baseline crate used to re-derive.
pub fn linear_testbed(programs: &[Program]) -> (Tdg, Network) {
    (crate::ProgramAnalyzer::new().analyze(programs), hermes_net::topology::linear(3, 10.0))
}

/// A linear network of `n` identical programmable switches (`stages`
/// pipeline stages of `cap` capacity each, 1 µs switch latency, 10 µs
/// links).
pub fn tiny_switches(n: usize, stages: usize, cap: f64) -> Network {
    let mut net = Network::new();
    let ids: Vec<SwitchId> = (0..n)
        .map(|i| {
            net.add_switch(Switch {
                stages,
                stage_capacity: cap,
                ..Switch::tofino(format!("s{i}"))
            })
        })
        .collect();
    for w in ids.windows(2) {
        net.add_link(w[0], w[1], 10.0).unwrap();
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape_matches_inputs() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        assert_eq!(tdg.node_count(), 3);
        assert_eq!(tdg.edge_count(), 2);
    }

    #[test]
    fn switches_are_linked_linearly() {
        let net = tiny_switches(3, 2, 0.5);
        assert_eq!(net.programmable_switches().len(), 3);
    }
}
