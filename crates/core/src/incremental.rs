//! Incremental redeployment: admit new programs without disturbing what
//! already runs.
//!
//! The paper deploys a fixed program set offline. Operationally,
//! administrators add measurement tasks one at a time, and reshuffling
//! every switch for each addition would churn rules network-wide. This
//! extension keeps every MAT of the existing deployment where it is
//! (matched by qualified name *and* structural signature), places only
//! the new MATs into residual capacity — respecting dependencies, stage
//! feasibility, and the established switch visit order — and falls back
//! to a full redeploy only when the pinned placement is infeasible.

use crate::deployment::{DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon, PlanRoute};
use crate::heuristic::{placement_order, GreedyHeuristic};
use crate::solver::{Portfolio, SearchContext, Solver};
use crate::stage_assign::{assign_stages, stage_feasible};
use hermes_net::{nearest_programmable, shortest_path, Network, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

/// Result of an incremental redeploy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalOutcome {
    /// The new plan covering the whole (new) merged TDG.
    pub plan: DeploymentPlan,
    /// MATs that kept their switch from the previous deployment.
    pub reused: usize,
    /// MATs that are new or had to move (0 moved unless full fallback).
    pub placed: usize,
    /// `true` when pinning failed and a full redeploy was performed.
    pub full_redeploy: bool,
}

impl fmt::Display for IncrementalOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reused + {} placed{} ({})",
            self.reused,
            self.placed,
            if self.full_redeploy { " via full redeploy" } else { "" },
            self.plan
        )
    }
}

/// Options controlling an incremental redeploy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RedeployOptions {
    /// Switches that must not host any MAT in the new plan (typically
    /// failed or draining switches). Pinned placements on these switches
    /// are dropped and their MATs re-homed into residual capacity
    /// elsewhere; the full-redeploy fallback also avoids them.
    pub exclude: BTreeSet<SwitchId>,
    /// When set, the full-redeploy fallback races the greedy heuristic
    /// against the exact search ([`Portfolio::greedy_exact`]) under this
    /// wall-clock budget instead of running the heuristic alone: the
    /// heuristic guarantees a fast answer, and the exact search improves
    /// on it whenever the instance is small enough to finish in time.
    /// `None` (the default) keeps the plain heuristic fallback.
    pub exact_budget_ms: Option<u64>,
}

impl RedeployOptions {
    /// Options for healing after the given switches failed.
    pub fn excluding(switches: impl IntoIterator<Item = SwitchId>) -> Self {
        RedeployOptions { exclude: switches.into_iter().collect(), ..Default::default() }
    }

    /// Builder: race greedy vs exact under `budget` on full redeploys.
    #[must_use]
    pub fn with_exact_budget(mut self, budget: Duration) -> Self {
        self.exact_budget_ms = Some(budget.as_millis().try_into().unwrap_or(u64::MAX));
        self
    }

    /// `true` iff `s` may host MATs under these options and is up in `net`.
    fn usable(&self, net: &Network, s: SwitchId) -> bool {
        !self.exclude.contains(&s) && net.is_switch_up(s)
    }
}

/// Incremental deployer wrapping the greedy heuristic.
#[derive(Debug, Clone, Default)]
pub struct IncrementalDeployer {
    fallback: GreedyHeuristic,
}

impl IncrementalDeployer {
    /// Creates a deployer with the default (paper) heuristic as fallback.
    pub fn new() -> Self {
        IncrementalDeployer::default()
    }

    /// Redeploys `new_tdg` given the previous `(old_tdg, old_plan)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] when neither pinned placement nor a full
    /// redeploy is feasible.
    pub fn redeploy(
        &self,
        old_tdg: &Tdg,
        old_plan: &DeploymentPlan,
        new_tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<IncrementalOutcome, DeployError> {
        self.redeploy_with(old_tdg, old_plan, new_tdg, net, eps, &RedeployOptions::default())
    }

    /// Like [`IncrementalDeployer::redeploy`], but honoring
    /// [`RedeployOptions`]: placements on excluded (or down) switches are
    /// not pinned, and neither the pinned attempt nor the full-redeploy
    /// fallback places MATs there. This is the healing entry point after a
    /// switch failure: exclude the failed switches and the surviving
    /// placements stay put while only the lost MATs are re-homed.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] when neither pinned placement nor a full
    /// redeploy is feasible under the options.
    pub fn redeploy_with(
        &self,
        old_tdg: &Tdg,
        old_plan: &DeploymentPlan,
        new_tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        opts: &RedeployOptions,
    ) -> Result<IncrementalOutcome, DeployError> {
        match self.try_pinned(old_tdg, old_plan, new_tdg, net, eps, opts) {
            Some(outcome) => Ok(outcome),
            None => {
                // The fallback solvers only know programmability, so mask
                // excluded switches out of a scratch copy of the network.
                let masked;
                let deploy_net = if opts.exclude.is_empty() {
                    net
                } else {
                    let mut scratch = net.clone();
                    for &s in &opts.exclude {
                        scratch.switch_mut(s).programmable = false;
                    }
                    masked = scratch;
                    &masked
                };
                let plan = match opts.exact_budget_ms {
                    None => self.fallback.deploy(new_tdg, deploy_net, eps)?,
                    Some(ms) => {
                        let ctx = SearchContext::with_time_limit(Duration::from_millis(ms));
                        Portfolio::greedy_exact().solve(new_tdg, deploy_net, eps, &ctx)?.plan
                    }
                };
                Ok(IncrementalOutcome {
                    placed: new_tdg.node_count(),
                    reused: 0,
                    full_redeploy: true,
                    plan,
                })
            }
        }
    }

    fn try_pinned(
        &self,
        old_tdg: &Tdg,
        old_plan: &DeploymentPlan,
        new_tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        opts: &RedeployOptions,
    ) -> Option<IncrementalOutcome> {
        // Identify reusable nodes: same qualified name and signature, on a
        // switch that is still usable.
        let old_by_name: BTreeMap<&str, NodeId> =
            old_tdg.node_ids().map(|id| (old_tdg.node(id).name.as_str(), id)).collect();
        let mut pinned: BTreeMap<NodeId, SwitchId> = BTreeMap::new();
        for id in new_tdg.node_ids() {
            let node = new_tdg.node(id);
            if let Some(&old_id) = old_by_name.get(node.name.as_str()) {
                if old_tdg.node(old_id).mat.signature() == node.mat.signature() {
                    if let Some(switch) = old_plan.switch_of(old_id) {
                        if opts.usable(net, switch) {
                            pinned.insert(id, switch);
                        }
                    }
                }
            }
        }

        // Establish a switch rank from the old plan's visit order (minus
        // unusable switches); new switches are appended after it (nearest
        // unused programmable).
        let mut order: Vec<SwitchId> = old_visit_order(old_tdg, old_plan)?;
        order.retain(|&s| opts.usable(net, s));
        let anchor = order
            .first()
            .copied()
            .or_else(|| net.programmable_switches().into_iter().find(|&s| opts.usable(net, s)))?;
        if !order.contains(&anchor) {
            order.push(anchor);
        }
        for (s, _) in nearest_programmable(net, anchor, net.switch_count(), eps.max_latency_us) {
            if opts.usable(net, s) && !order.contains(&s) {
                order.push(s);
            }
        }
        let rank: BTreeMap<SwitchId, usize> =
            order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        // Pinned nodes on switches outside the order (shouldn't happen)
        // abort the pinned attempt.
        if pinned.values().any(|s| !rank.contains_key(s)) {
            return None;
        }

        // Assign the remaining nodes in clustered topological order.
        let mut assignment: BTreeMap<NodeId, SwitchId> = pinned.clone();
        let mut per_switch: BTreeMap<SwitchId, BTreeSet<NodeId>> = BTreeMap::new();
        for (&id, &s) in &assignment {
            per_switch.entry(s).or_default().insert(id);
        }
        for id in placement_order(new_tdg) {
            if assignment.contains_key(&id) {
                continue;
            }
            // Dependencies force a minimum rank.
            let min_rank = new_tdg
                .in_edges(id)
                .filter_map(|e| assignment.get(&e.from))
                .map(|s| rank[s])
                .max()
                .unwrap_or(0);
            let slot = order[min_rank..].iter().copied().find(|&s| {
                let model = net.switch(s).target_model();
                let mut attempt = per_switch.get(&s).cloned().unwrap_or_default();
                attempt.insert(id);
                stage_feasible(new_tdg, &attempt, &model)
            })?;
            assignment.insert(id, slot);
            per_switch.entry(slot).or_default().insert(id);
        }

        // Materialize: stage assignment per switch, then routes per
        // dependent pair.
        let mut plan = DeploymentPlan::new();
        for (&s, nodes) in &per_switch {
            let model = net.switch(s).target_model();
            let placements = assign_stages(new_tdg, nodes, s, &model).ok()?;
            for p in placements {
                plan.place(p);
            }
        }
        let mut pairs: BTreeSet<(SwitchId, SwitchId)> = BTreeSet::new();
        for e in new_tdg.edges() {
            let (u, v) = (assignment.get(&e.from)?, assignment.get(&e.to)?);
            if u != v {
                // Dependencies must respect the established visit order,
                // or the pinned deployment would need recirculation.
                if rank[u] > rank[v] {
                    return None;
                }
                pairs.insert((*u, *v));
            }
        }
        let mut latency = 0.0;
        for (u, v) in pairs {
            let path = shortest_path(net, u, v)?;
            latency += path.latency_us;
            plan.route(PlanRoute { from: u, to: v, path });
        }
        if latency > eps.max_latency_us || plan.occupied_switch_count() > eps.max_switches {
            return None;
        }
        let reused = pinned.len();
        Some(IncrementalOutcome {
            placed: new_tdg.node_count() - reused,
            reused,
            full_redeploy: false,
            plan,
        })
    }
}

/// The old plan's switch visit order (topological over its cross-switch
/// dependencies; ties broken by switch index).
fn old_visit_order(tdg: &Tdg, plan: &DeploymentPlan) -> Option<Vec<SwitchId>> {
    let occupied: Vec<SwitchId> = plan.occupied_switches().into_iter().collect();
    let index: BTreeMap<SwitchId, usize> =
        occupied.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let n = occupied.len();
    let mut indegree = vec![0usize; n];
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for e in tdg.edges() {
        let (Some(u), Some(v)) = (plan.switch_of(e.from), plan.switch_of(e.to)) else {
            continue;
        };
        if u != v && adj[index[&u]].insert(index[&v]) {
            indegree[index[&v]] += 1;
        }
    }
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(occupied[i]);
        for &j in adj[i].clone().iter() {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.insert(j);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::ProgramAnalyzer;
    use crate::verify::verify;
    use hermes_dataplane::library;
    use hermes_net::topology;

    fn deploy_first_n(n: usize) -> (Tdg, DeploymentPlan, Network) {
        let programs: Vec<_> = library::real_programs().into_iter().take(n).collect();
        let tdg = ProgramAnalyzer::new().analyze(&programs);
        let net = topology::linear(4, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        (tdg, plan, net)
    }

    #[test]
    fn adding_a_program_reuses_existing_placements() {
        let (old_tdg, old_plan, net) = deploy_first_n(4);
        let new_tdg = ProgramAnalyzer::new()
            .analyze(&library::real_programs().into_iter().take(5).collect::<Vec<_>>());
        let eps = Epsilon::loose();
        let out =
            IncrementalDeployer::new().redeploy(&old_tdg, &old_plan, &new_tdg, &net, &eps).unwrap();
        assert!(verify(&new_tdg, &net, &out.plan, &eps).is_empty());
        if !out.full_redeploy {
            assert_eq!(out.reused, old_tdg.node_count(), "every old MAT stays put");
            // Reused MATs really kept their switches.
            for old_id in old_tdg.node_ids() {
                let name = &old_tdg.node(old_id).name;
                let new_id = new_tdg.node_by_name(name).unwrap();
                assert_eq!(old_plan.switch_of(old_id), out.plan.switch_of(new_id), "{name}");
            }
        }
    }

    #[test]
    fn identical_workload_reuses_everything() {
        let (old_tdg, old_plan, net) = deploy_first_n(4);
        let out = IncrementalDeployer::new()
            .redeploy(&old_tdg, &old_plan, &old_tdg, &net, &Epsilon::loose())
            .unwrap();
        assert!(!out.full_redeploy);
        assert_eq!(out.reused, old_tdg.node_count());
        assert_eq!(out.placed, 0);
    }

    #[test]
    fn infeasible_pinning_falls_back_to_full_redeploy() {
        // Deploy 2 programs on 4 switches, then ask for all 10 with an
        // eps2 that the padded incremental layout cannot satisfy but a
        // fresh deployment can.
        let (old_tdg, old_plan, net) = deploy_first_n(2);
        let new_tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let eps = Epsilon::loose();
        let out =
            IncrementalDeployer::new().redeploy(&old_tdg, &old_plan, &new_tdg, &net, &eps).unwrap();
        assert!(verify(&new_tdg, &net, &out.plan, &eps).is_empty());
    }

    #[test]
    fn healing_rehomes_only_lost_mats() {
        let (tdg, plan, mut net) = deploy_first_n(4);
        let eps = Epsilon::loose();
        // Fail one occupied switch and heal with it excluded.
        let dead = *plan.occupied_switches().iter().next().expect("plan occupies switches");
        let lost = plan.nodes_on(dead).len();
        assert!(lost > 0);
        net.fail_switch(dead);
        let opts = RedeployOptions::excluding([dead]);
        let out =
            IncrementalDeployer::new().redeploy_with(&tdg, &plan, &tdg, &net, &eps, &opts).unwrap();
        assert!(verify(&tdg, &net, &out.plan, &eps).is_empty());
        assert!(!out.plan.occupied_switches().contains(&dead), "no MAT on the dead switch");
        if !out.full_redeploy {
            assert_eq!(out.reused, tdg.node_count() - lost);
            assert_eq!(out.placed, lost);
            // Survivors really kept their switches.
            for id in tdg.node_ids() {
                if plan.switch_of(id) != Some(dead) {
                    assert_eq!(plan.switch_of(id), out.plan.switch_of(id));
                }
            }
        }
    }

    #[test]
    fn excluding_an_up_switch_keeps_it_empty_even_on_fallback() {
        let (tdg, plan, net) = deploy_first_n(2);
        let eps = Epsilon::loose();
        for s in net.switch_ids() {
            if !net.switch(s).programmable {
                continue;
            }
            let opts = RedeployOptions::excluding([s]);
            let Ok(out) =
                IncrementalDeployer::new().redeploy_with(&tdg, &plan, &tdg, &net, &eps, &opts)
            else {
                continue; // capacity may not allow healing around s
            };
            assert!(!out.plan.occupied_switches().contains(&s), "excluded {s} must stay empty");
        }
    }

    #[test]
    fn exact_budget_races_portfolio_on_full_redeploy() {
        // Two independent chains whose fabricated old plan crosses them
        // over the switches in opposite directions: the old visit order is
        // cyclic, so pinning always aborts and the fallback runs. With an
        // exact budget, the fallback is the greedy-vs-exact portfolio.
        use crate::deployment::StagePlacement;
        let programs = hermes_dataplane::parser::parse_programs(
            "program p1 { metadata m.a: 4;
               table a { actions { w { m.a = hash(m.a); } } resource 0.2; }
               table b { key { m.a: exact; } actions { n { } } resource 0.2; } }
             program p2 { metadata m.c: 4;
               table c { actions { w { m.c = hash(m.c); } } resource 0.2; }
               table d { key { m.c: exact; } actions { n { } } resource 0.2; } }",
        )
        .unwrap();
        let tdg = ProgramAnalyzer::new().analyze(&programs);
        assert_eq!((tdg.node_count(), tdg.edge_count()), (4, 2));
        let net = topology::linear(2, 10.0);
        let switches: Vec<_> = net.programmable_switches();
        let (s0, s1) = (switches[0], switches[1]);
        let nodes: Vec<_> = tdg.node_ids().collect();
        // a -> s0, b -> s1 (forward), c -> s1, d -> s0 (backward): cyclic.
        let mut fake = DeploymentPlan::new();
        for (i, &node) in nodes.iter().enumerate() {
            let switch = if matches!(i, 0 | 3) { s0 } else { s1 };
            fake.place(StagePlacement { node, switch, stage: 0, fraction: 0.2 });
        }
        let eps = Epsilon::loose();
        let deployer = IncrementalDeployer::new();
        let raced = RedeployOptions::default().with_exact_budget(Duration::from_secs(5));
        assert_eq!(raced.exact_budget_ms, Some(5_000));
        let out = deployer.redeploy_with(&tdg, &fake, &tdg, &net, &eps, &raced).unwrap();
        assert!(out.full_redeploy, "cyclic old order must force the fallback");
        assert!(verify(&tdg, &net, &out.plan, &eps).is_empty());
        let base = deployer
            .redeploy_with(&tdg, &fake, &tdg, &net, &eps, &RedeployOptions::default())
            .unwrap();
        assert!(
            out.plan.max_inter_switch_bytes(&tdg) <= base.plan.max_inter_switch_bytes(&tdg),
            "the race can only improve on the heuristic"
        );
    }

    #[test]
    fn growing_workload_stays_verified_at_each_step() {
        let net = topology::linear(4, 10.0);
        let eps = Epsilon::loose();
        let mut prev: Option<(Tdg, DeploymentPlan)> = None;
        for n in 1..=6usize {
            let programs: Vec<_> = library::real_programs().into_iter().take(n).collect();
            let tdg = ProgramAnalyzer::new().analyze(&programs);
            let plan = match &prev {
                None => GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap(),
                Some((old_tdg, old_plan)) => {
                    IncrementalDeployer::new()
                        .redeploy(old_tdg, old_plan, &tdg, &net, &eps)
                        .unwrap()
                        .plan
                }
            };
            assert!(verify(&tdg, &net, &plan, &eps).is_empty(), "step {n}");
            prev = Some((tdg, plan));
        }
    }
}
