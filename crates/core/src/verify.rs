//! Deployment plan verification against the paper's constraint system.
//!
//! Checks every constraint of §V-B/§V-C on a concrete plan: node deployment
//! (Eq. 6), edge deployment across switches (Eq. 7) and within a switch
//! (Eq. 8), per-stage resource capacity (Eq. 9), and the ε-bounds on
//! latency (Eq. 4) and occupied switches (Eq. 5). Every algorithm in the
//! workspace — Hermes, Optimal, and all baselines — is validated through
//! this single checker in tests and experiments.

use crate::deployment::{DeploymentPlan, Epsilon};
use hermes_net::{Network, SwitchId};
use hermes_tdg::{relaxed_type, StateClassification, Tdg};
use std::collections::BTreeMap;
use std::fmt;

/// One violated constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Eq. 6: a MAT was not placed anywhere.
    NodeUnplaced {
        /// Program-qualified MAT name.
        node: String,
    },
    /// A MAT was placed on two different switches.
    NodeOnMultipleSwitches {
        /// Program-qualified MAT name.
        node: String,
    },
    /// A MAT was placed on a non-programmable switch.
    NonProgrammableHost {
        /// Program-qualified MAT name.
        node: String,
        /// The offending switch name.
        switch: String,
    },
    /// A MAT was placed on a failed (down) switch.
    DownHost {
        /// Program-qualified MAT name.
        node: String,
        /// The offending switch name.
        switch: String,
    },
    /// A placement references a stage outside the switch's pipeline.
    StageOutOfRange {
        /// Program-qualified MAT name.
        node: String,
        /// The stage index used.
        stage: usize,
        /// Stages the switch actually has.
        stages: usize,
    },
    /// The fractions placed for a MAT do not sum to its requirement.
    ResourceShortfall {
        /// Program-qualified MAT name.
        node: String,
        /// Total fraction placed.
        placed: f64,
        /// Required `R(a)`.
        required: f64,
    },
    /// Eq. 7: a cross-switch dependency has no route installed.
    MissingRoute {
        /// Upstream switch name.
        from: String,
        /// Downstream switch name.
        to: String,
    },
    /// A route's path does not actually run from its `from` to its `to`
    /// over existing links.
    BrokenRoute {
        /// Upstream switch name.
        from: String,
        /// Downstream switch name.
        to: String,
    },
    /// Eq. 8: a same-switch dependency is not stage-ordered.
    StageOrder {
        /// Upstream MAT.
        upstream: String,
        /// Downstream MAT.
        downstream: String,
    },
    /// Eq. 9: a stage holds more than its capacity.
    StageOverload {
        /// Switch name.
        switch: String,
        /// Stage index.
        stage: usize,
        /// Load placed on it.
        load: f64,
        /// Its capacity.
        capacity: f64,
    },
    /// Eq. 4: total coordination latency exceeds ε₁.
    LatencyBound {
        /// Plan latency (µs).
        latency_us: f64,
        /// The bound ε₁ (µs).
        bound_us: f64,
    },
    /// Eq. 5: occupied switches exceed ε₂.
    SwitchBound {
        /// Occupied switch count.
        occupied: usize,
        /// The bound ε₂.
        bound: usize,
    },
    /// A switch with a finite total-resource budget (SmartNIC-style
    /// target) holds more load across all stages than its budget allows.
    TargetBudgetExceeded {
        /// Switch name.
        switch: String,
        /// Total load placed on the switch (all stages).
        used: f64,
        /// The switch's total-resource budget.
        budget: f64,
    },
    /// An edge claims a relaxed dependency type that the state-access
    /// classifier, re-run from scratch over the final node set, does not
    /// certify. Relaxed edges waive Eq. 7 routing and Eq. 8 ordering, so
    /// an uncertified relaxation would silently drop real constraints.
    UncertifiedRelaxation {
        /// Upstream MAT.
        upstream: String,
        /// Downstream MAT.
        downstream: String,
        /// The relaxed type the edge claims (display form).
        claimed: String,
    },
}

impl Violation {
    /// Stable diagnostic code (`HV4xx` block), so violations re-emit
    /// unchanged through the `hermes-analysis` diagnostics framework.
    pub fn code(&self) -> &'static str {
        match self {
            Violation::NodeUnplaced { .. } => "HV401",
            Violation::NodeOnMultipleSwitches { .. } => "HV402",
            Violation::NonProgrammableHost { .. } => "HV403",
            Violation::DownHost { .. } => "HV404",
            Violation::StageOutOfRange { .. } => "HV405",
            Violation::ResourceShortfall { .. } => "HV406",
            Violation::MissingRoute { .. } => "HV407",
            Violation::BrokenRoute { .. } => "HV408",
            Violation::StageOrder { .. } => "HV409",
            Violation::StageOverload { .. } => "HV410",
            Violation::LatencyBound { .. } => "HV411",
            Violation::SwitchBound { .. } => "HV412",
            Violation::TargetBudgetExceeded { .. } => "HV413",
            Violation::UncertifiedRelaxation { .. } => "HV414",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NodeUnplaced { node } => write!(f, "node `{node}` unplaced (Eq. 6)"),
            Violation::NodeOnMultipleSwitches { node } => {
                write!(f, "node `{node}` on multiple switches")
            }
            Violation::NonProgrammableHost { node, switch } => {
                write!(f, "node `{node}` on non-programmable `{switch}`")
            }
            Violation::DownHost { node, switch } => {
                write!(f, "node `{node}` on failed switch `{switch}`")
            }
            Violation::StageOutOfRange { node, stage, stages } => {
                write!(f, "node `{node}` on stage {stage} of a {stages}-stage switch")
            }
            Violation::ResourceShortfall { node, placed, required } => {
                write!(f, "node `{node}` placed {placed:.3}/{required:.3} units")
            }
            Violation::MissingRoute { from, to } => {
                write!(f, "no route `{from}` -> `{to}` (Eq. 7)")
            }
            Violation::BrokenRoute { from, to } => write!(f, "broken route `{from}` -> `{to}`"),
            Violation::StageOrder { upstream, downstream } => {
                write!(f, "`{upstream}` must finish before `{downstream}` begins (Eq. 8)")
            }
            Violation::StageOverload { switch, stage, load, capacity } => {
                write!(
                    f,
                    "stage {stage} of `{switch}` overloaded: {load:.3} > {capacity:.3} (Eq. 9)"
                )
            }
            Violation::LatencyBound { latency_us, bound_us } => {
                write!(f, "latency {latency_us:.1} us exceeds eps1 = {bound_us:.1} us (Eq. 4)")
            }
            Violation::SwitchBound { occupied, bound } => {
                write!(f, "{occupied} occupied switches exceed eps2 = {bound} (Eq. 5)")
            }
            Violation::TargetBudgetExceeded { switch, used, budget } => {
                write!(f, "`{switch}` holds {used:.3} units against a total budget of {budget:.3}")
            }
            Violation::UncertifiedRelaxation { upstream, downstream, claimed } => write!(
                f,
                "`{upstream}` -> `{downstream}` claims `{claimed}` but the state-access \
                 classifier does not certify the relaxation"
            ),
        }
    }
}

const TOL: f64 = 1e-6;

/// Checks `plan` against every constraint; an empty vector means valid.
///
/// Runs in one pass over the placement list: placements are grouped by node
/// up front, so the per-node checks and the per-edge endpoint lookups cost
/// O(nodes + placements + edges) instead of rescanning the whole plan for
/// every node and edge. Names are borrowed throughout and cloned only when
/// a violation is actually emitted.
pub fn verify(tdg: &Tdg, net: &Network, plan: &DeploymentPlan, eps: &Epsilon) -> Vec<Violation> {
    let mut out = Vec::new();

    // Group placements by node once; `host`/`span` feed the edge checks.
    let n = tdg.node_count();
    let mut per_node: Vec<Vec<&crate::deployment::StagePlacement>> = vec![Vec::new(); n];
    for p in plan.placements() {
        per_node[p.node.index()].push(p);
    }
    let mut host: Vec<Option<SwitchId>> = vec![None; n];
    let mut span: Vec<Option<(usize, usize)>> = vec![None; n];

    // Node deployment (Eq. 6) + single-switch + host programmability +
    // stage ranges + resource completeness.
    for id in tdg.node_ids() {
        let name = &tdg.node(id).name;
        let group = &per_node[id.index()];
        let Some(first) = group.first() else {
            out.push(Violation::NodeUnplaced { node: name.clone() });
            continue;
        };
        let mut placed = 0.0;
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        let mut multi = false;
        for p in group {
            placed += p.fraction;
            lo = lo.min(p.stage);
            hi = hi.max(p.stage);
            multi |= p.switch != first.switch;
        }
        host[id.index()] = Some(first.switch);
        span[id.index()] = Some((lo, hi));
        if multi {
            out.push(Violation::NodeOnMultipleSwitches { node: name.clone() });
            continue;
        }
        let sw = net.switch(first.switch);
        if !sw.programmable {
            out.push(Violation::NonProgrammableHost {
                node: name.clone(),
                switch: sw.name.clone(),
            });
        }
        if !net.is_switch_up(first.switch) {
            out.push(Violation::DownHost { node: name.clone(), switch: sw.name.clone() });
        }
        for p in group {
            if p.stage >= sw.stages {
                out.push(Violation::StageOutOfRange {
                    node: name.clone(),
                    stage: p.stage,
                    stages: sw.stages,
                });
            }
        }
        let required = tdg.node(id).mat.resource();
        if (placed - required).abs() > TOL {
            out.push(Violation::ResourceShortfall { node: name.clone(), placed, required });
        }
    }

    // Edge deployment (Eq. 7 across switches, Eq. 8 within a switch).
    // Relaxed edges waive both: replicable and commutative state needs
    // neither a metadata route nor stage ordering. Whether each relaxation
    // is actually justified is certified separately below.
    for e in tdg.edges() {
        if e.dep.is_relaxed() {
            continue;
        }
        let (Some(u), Some(v)) = (host[e.from.index()], host[e.to.index()]) else {
            continue; // unplaced endpoints already reported
        };
        if u != v {
            match plan.route_between(u, v) {
                None => out.push(Violation::MissingRoute {
                    from: net.switch(u).name.clone(),
                    to: net.switch(v).name.clone(),
                }),
                Some(route) => {
                    let hops = &route.path.hops;
                    let endpoints_ok = hops.first() == Some(&u) && hops.last() == Some(&v);
                    let links_ok = hops.windows(2).all(|w| net.link_between(w[0], w[1]).is_some());
                    if !endpoints_ok || !links_ok {
                        out.push(Violation::BrokenRoute {
                            from: net.switch(u).name.clone(),
                            to: net.switch(v).name.clone(),
                        });
                    }
                }
            }
        } else {
            let (Some((_, end_a)), Some((begin_b, _))) = (span[e.from.index()], span[e.to.index()])
            else {
                continue;
            };
            if end_a >= begin_b {
                out.push(Violation::StageOrder {
                    upstream: tdg.node(e.from).name.clone(),
                    downstream: tdg.node(e.to).name.clone(),
                });
            }
        }
    }

    // Per-stage resources (Eq. 9).
    let mut loads: BTreeMap<(SwitchId, usize), f64> = BTreeMap::new();
    for p in plan.placements() {
        *loads.entry((p.switch, p.stage)).or_insert(0.0) += p.fraction;
    }
    for ((switch, stage), load) in &loads {
        let cap = net.switch(*switch).stage_capacity;
        if *load > cap + TOL {
            out.push(Violation::StageOverload {
                switch: net.switch(*switch).name.clone(),
                stage: *stage,
                load: *load,
                capacity: cap,
            });
        }
    }

    // Per-switch total-resource budgets (targets with a finite budget only;
    // the default pipeline target has an infinite budget, so this emits
    // nothing on pre-target topologies).
    let mut switch_used: BTreeMap<SwitchId, f64> = BTreeMap::new();
    for ((switch, _), load) in &loads {
        *switch_used.entry(*switch).or_insert(0.0) += load;
    }
    for (switch, used) in switch_used {
        let budget = net.switch(switch).total_budget;
        if budget.is_finite() && used > budget + TOL {
            out.push(Violation::TargetBudgetExceeded {
                switch: net.switch(switch).name.clone(),
                used,
                budget,
            });
        }
    }

    // Relaxation certification: an edge may carry a relaxed type only if
    // the state-access classifier, recomputed from scratch over the final
    // node set, would grant exactly that relaxation. This catches both
    // hand-crafted unsound relaxations and stale ones that survived a
    // merge which introduced a conflicting writer.
    if tdg.edges().iter().any(|e| e.dep.is_relaxed()) {
        let class = StateClassification::of_mats(tdg.nodes().iter().map(|n| &n.mat));
        for e in tdg.edges() {
            if !e.dep.is_relaxed() {
                continue;
            }
            let (a, b) = (tdg.node(e.from), tdg.node(e.to));
            if relaxed_type(&a.mat, &b.mat, e.dep, &class) != Some(e.dep) {
                out.push(Violation::UncertifiedRelaxation {
                    upstream: a.name.clone(),
                    downstream: b.name.clone(),
                    claimed: e.dep.to_string(),
                });
            }
        }
    }

    // ε-bounds (Eq. 4–5).
    let latency = plan.end_to_end_latency_us();
    if latency > eps.max_latency_us {
        out.push(Violation::LatencyBound { latency_us: latency, bound_us: eps.max_latency_us });
    }
    let occupied = plan.occupied_switch_count();
    if occupied > eps.max_switches {
        out.push(Violation::SwitchBound { occupied, bound: eps.max_switches });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{DeploymentAlgorithm, StagePlacement};
    use crate::heuristic::GreedyHeuristic;
    use hermes_dataplane::library;
    use hermes_net::topology;
    use hermes_tdg::{merge_all, AnalysisMode, Tdg};

    fn merged() -> Tdg {
        merge_all(
            library::real_programs()
                .iter()
                .map(|p| Tdg::from_program(p, AnalysisMode::PaperLiteral))
                .collect(),
        )
    }

    #[test]
    fn heuristic_plans_verify_clean() {
        let tdg = merged();
        let net = topology::linear(3, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let violations = verify(&tdg, &net, &plan, &eps);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn empty_plan_reports_every_node() {
        let tdg = merged();
        let net = topology::linear(3, 10.0);
        let violations = verify(&tdg, &net, &DeploymentPlan::new(), &Epsilon::loose());
        let unplaced =
            violations.iter().filter(|v| matches!(v, Violation::NodeUnplaced { .. })).count();
        assert_eq!(unplaced, tdg.node_count());
    }

    #[test]
    fn missing_route_detected() {
        let tdg = merged();
        let net = topology::linear(3, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        if plan.routes().is_empty() {
            // Single-switch plan: force a split by shrinking the pipeline.
            return;
        }
        let mut stripped = DeploymentPlan::new();
        for p in plan.placements() {
            stripped.place(p.clone());
        }
        let violations = verify(&tdg, &net, &stripped, &eps);
        assert!(violations.iter().any(|v| matches!(v, Violation::MissingRoute { .. })));
    }

    #[test]
    fn stage_order_violation_detected() {
        // Place a dependent pair in the wrong stage order on one switch.
        let tdg = Tdg::from_program(&library::l3_router(), AnalysisMode::PaperLiteral);
        let net = topology::linear(1, 10.0);
        let s = net.switch_ids().next().unwrap();
        let ids: Vec<_> = tdg.node_ids().collect();
        let mut plan = DeploymentPlan::new();
        for (i, &id) in ids.iter().enumerate() {
            plan.place(StagePlacement {
                node: id,
                switch: s,
                // Reverse order: downstream tables get earlier stages.
                stage: ids.len() - 1 - i,
                fraction: tdg.node(id).mat.resource(),
            });
        }
        let violations = verify(&tdg, &net, &plan, &Epsilon::loose());
        assert!(violations.iter().any(|v| matches!(v, Violation::StageOrder { .. })));
    }

    #[test]
    fn stage_overload_detected() {
        let tdg = Tdg::from_program(&library::acl(), AnalysisMode::PaperLiteral);
        let net = topology::linear(1, 10.0);
        let s = net.switch_ids().next().unwrap();
        let mut plan = DeploymentPlan::new();
        // Dump everything on stage 0 regardless of capacity (ACL classify
        // is 0.5 + stats 0.1 <= 1.0, so inflate by duplicating fractions).
        for id in tdg.node_ids() {
            plan.place(StagePlacement { node: id, switch: s, stage: 0, fraction: 0.8 });
        }
        let violations = verify(&tdg, &net, &plan, &Epsilon::loose());
        assert!(violations.iter().any(|v| matches!(v, Violation::StageOverload { .. })));
    }

    #[test]
    fn epsilon_bounds_reported() {
        let tdg = merged();
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let tight = Epsilon::new(0.0, 0);
        let violations = verify(&tdg, &net, &plan, &tight);
        assert!(violations.iter().any(|v| matches!(v, Violation::SwitchBound { .. })));
    }

    #[test]
    fn target_budget_violation_detected() {
        // A switch with a finite total budget rejects a plan whose combined
        // load exceeds it even though every stage individually fits.
        let tdg = Tdg::from_program(&library::acl(), AnalysisMode::PaperLiteral);
        let mut net = topology::linear(1, 10.0);
        let s = net.switch_ids().next().unwrap();
        net.switch_mut(s).total_budget = 0.3;
        let mut plan = DeploymentPlan::new();
        for (i, id) in tdg.node_ids().enumerate() {
            plan.place(StagePlacement {
                node: id,
                switch: s,
                stage: i,
                fraction: tdg.node(id).mat.resource(),
            });
        }
        let violations = verify(&tdg, &net, &plan, &Epsilon::loose());
        let budget = violations
            .iter()
            .find(|v| matches!(v, Violation::TargetBudgetExceeded { .. }))
            .expect("budget violation");
        assert_eq!(budget.code(), "HV413");
        // No budget set => no violation, regardless of load.
        net.switch_mut(s).total_budget = f64::INFINITY;
        let clean = verify(&tdg, &net, &plan, &Epsilon::loose());
        assert!(!clean.iter().any(|v| matches!(v, Violation::TargetBudgetExceeded { .. })));
    }

    fn fold_mat(name: &str, capacity: usize) -> hermes_dataplane::mat::Mat {
        use hermes_dataplane::action::{Action, FoldOp, PrimitiveOp};
        use hermes_dataplane::fields::Field;
        hermes_dataplane::mat::Mat::builder(name)
            .resource(0.2)
            .capacity(capacity)
            .action(Action::new(format!("fold_{name}")).with_op(PrimitiveOp::Fold {
                dst: Field::metadata("acc", 4),
                srcs: vec![Field::header("v", 4)],
                op: FoldOp::Add,
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn certified_relaxed_edge_waives_route_and_order() {
        use hermes_tdg::DependencyType;
        // Two commutative folders of one accumulator: the relaxed edge is
        // certified, so placing them on separate switches with no route —
        // and in reversed stage order — is still a valid plan.
        let tdg = Tdg::from_mats_and_edges(
            vec![("p.f0".into(), fold_mat("f0", 8)), ("p.f1".into(), fold_mat("f1", 16))],
            vec![(0, 1, DependencyType::RelaxedMatch)],
            AnalysisMode::RelaxedState,
        );
        let net = topology::linear(2, 10.0);
        let switches: Vec<_> = net.switch_ids().collect();
        let ids: Vec<_> = tdg.node_ids().collect();
        let mut plan = DeploymentPlan::new();
        for (i, &id) in ids.iter().enumerate() {
            plan.place(StagePlacement {
                node: id,
                switch: switches[i],
                stage: 0,
                fraction: tdg.node(id).mat.resource(),
            });
        }
        let violations = verify(&tdg, &net, &plan, &Epsilon::loose());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn uncertified_relaxation_rejected() {
        use hermes_dataplane::action::Action;
        use hermes_dataplane::fields::Field;
        use hermes_dataplane::mat::{Mat, MatchKind};
        use hermes_tdg::DependencyType;
        // A plain setter feeding a matcher is SingleWriter state; claiming
        // a relaxed match on that edge must be flagged even though the
        // placement itself is otherwise legal.
        let writer = Mat::builder("w")
            .resource(0.2)
            .action(Action::writing("set", vec![Field::metadata("x", 4)]))
            .build()
            .unwrap();
        let reader = Mat::builder("r")
            .resource(0.2)
            .match_field(Field::metadata("x", 4), MatchKind::Exact)
            .action(Action::writing("nop", vec![]))
            .build()
            .unwrap();
        let tdg = Tdg::from_mats_and_edges(
            vec![("p.w".into(), writer), ("p.r".into(), reader)],
            vec![(0, 1, DependencyType::RelaxedMatch)],
            AnalysisMode::RelaxedState,
        );
        let net = topology::linear(1, 10.0);
        let s = net.switch_ids().next().unwrap();
        let mut plan = DeploymentPlan::new();
        for (i, id) in tdg.node_ids().enumerate() {
            plan.place(StagePlacement {
                node: id,
                switch: s,
                stage: i,
                fraction: tdg.node(id).mat.resource(),
            });
        }
        let violations = verify(&tdg, &net, &plan, &Epsilon::loose());
        let bad = violations
            .iter()
            .find(|v| matches!(v, Violation::UncertifiedRelaxation { .. }))
            .expect("HV414 violation");
        assert_eq!(bad.code(), "HV414");
        // No stage-order or route complaints: the relaxed edge is exempt
        // from Eq. 7/8 either way; only the certification fails.
        assert!(!violations.iter().any(|v| matches!(v, Violation::StageOrder { .. })));
        assert!(!violations.iter().any(|v| matches!(v, Violation::MissingRoute { .. })));
    }

    #[test]
    fn resource_shortfall_detected() {
        let tdg = Tdg::from_program(&library::acl(), AnalysisMode::PaperLiteral);
        let net = topology::linear(1, 10.0);
        let s = net.switch_ids().next().unwrap();
        let mut plan = DeploymentPlan::new();
        for (i, id) in tdg.node_ids().enumerate() {
            plan.place(StagePlacement { node: id, switch: s, stage: i, fraction: 0.01 });
        }
        let violations = verify(&tdg, &net, &plan, &Epsilon::loose());
        assert!(violations.iter().any(|v| matches!(v, Violation::ResourceShortfall { .. })));
    }
}
