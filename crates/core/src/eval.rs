//! Incremental placement evaluator: O(delta) objective maintenance.
//!
//! The branch-and-bound search and the local-search refiner both explore
//! sequences of placements that differ by one node at a time, yet the seed
//! implementation recomputed `A_max`, switch-order acyclicity, and
//! per-switch occupancy from scratch (or with per-candidate heap
//! allocations) at every step. [`IncrementalEval`] owns all of that state
//! and maintains it under [`IncrementalEval::place`] /
//! [`IncrementalEval::unplace`]:
//!
//! - **per-ordered-pair byte totals** — `pair_bytes[a*q + b]` sums
//!   `A(u, v)` over TDG edges `u -> v` with `u` on switch `a`, `v` on
//!   switch `b` (`a != b`);
//! - **the running objective** `A_max = max pair_bytes` — kept with a
//!   count of pairs currently *at* the max, so increments are O(1) and the
//!   O(q²) rescan only happens when the last maximal pair is removed;
//! - **per-switch order-edge counts** `order_edges[a*q + b]` — the number
//!   of dependency edges forcing switch `a` before switch `b`; a Kahn pass
//!   over the q×q matrix runs only when an edge count crosses 0↔1 in the
//!   direction that could flip acyclicity;
//! - **occupancy** — per-switch node counts and used capacity, with the
//!   capacity snapped back to exactly `0.0` when a switch empties so
//!   floating-point residue cannot leak across branches.
//!
//! All buffers (CSR adjacency, the two q×q matrices, Kahn scratch) are
//! allocated at construction; steady-state `place`/`unplace` perform no
//! heap allocation.

use hermes_tdg::Tdg;

/// Marker for an unplaced node in [`IncrementalEval::assignment`].
pub const UNASSIGNED: usize = usize::MAX;

/// Incrementally maintained evaluation state for a (partial) assignment of
/// TDG nodes to `q` switch slots.
///
/// Slots are dense indices `0..q`; mapping them to concrete
/// [`hermes_net::SwitchId`]s is the caller's concern (the exact solver uses
/// its candidate array, the refiner the plan's switch list).
#[derive(Debug, Clone)]
pub struct IncrementalEval {
    q: usize,
    /// CSR over in-edges: for node `v`, `in_adj[in_off[v]..in_off[v+1]]`
    /// holds `(u, bytes)` for each TDG edge `u -> v`.
    in_off: Vec<u32>,
    in_adj: Vec<(u32, u32)>,
    /// CSR over out-edges, same layout.
    out_off: Vec<u32>,
    out_adj: Vec<(u32, u32)>,
    resource: Vec<f64>,
    assign: Vec<usize>,
    used_capacity: Vec<f64>,
    nodes_on: Vec<u32>,
    occupied: usize,
    pair_bytes: Vec<u64>,
    order_edges: Vec<u32>,
    amax: u64,
    at_max: u32,
    acyclic: bool,
    // Kahn scratch, reused across checks.
    kahn_indegree: Vec<u32>,
    kahn_stack: Vec<u32>,
}

impl IncrementalEval {
    /// Builds an empty evaluator for placing `tdg`'s nodes onto `q` slots.
    pub fn new(tdg: &Tdg, q: usize) -> Self {
        let n = tdg.node_count();
        let mut in_off = vec![0u32; n + 1];
        let mut out_off = vec![0u32; n + 1];
        for e in tdg.edges() {
            in_off[e.to.index() + 1] += 1;
            out_off[e.from.index() + 1] += 1;
        }
        for i in 0..n {
            in_off[i + 1] += in_off[i];
            out_off[i + 1] += out_off[i];
        }
        let mut in_adj = vec![(0u32, 0u32); tdg.edge_count()];
        let mut out_adj = vec![(0u32, 0u32); tdg.edge_count()];
        let mut in_cursor = in_off.clone();
        let mut out_cursor = out_off.clone();
        for e in tdg.edges() {
            let (u, v) = (e.from.index(), e.to.index());
            let uc = u32::try_from(u).expect("node count fits u32");
            let vc = u32::try_from(v).expect("node count fits u32");
            in_adj[in_cursor[v] as usize] = (uc, e.bytes);
            in_cursor[v] += 1;
            out_adj[out_cursor[u] as usize] = (vc, e.bytes);
            out_cursor[u] += 1;
        }
        IncrementalEval {
            q,
            in_off,
            in_adj,
            out_off,
            out_adj,
            resource: tdg.nodes().iter().map(|nd| nd.mat.resource()).collect(),
            assign: vec![UNASSIGNED; n],
            used_capacity: vec![0.0; q],
            nodes_on: vec![0; q],
            occupied: 0,
            pair_bytes: vec![0; q * q],
            order_edges: vec![0; q * q],
            amax: 0,
            at_max: 0,
            acyclic: true,
            kahn_indegree: vec![0; q],
            kahn_stack: Vec::with_capacity(q),
        }
    }

    /// Number of switch slots.
    pub fn slots(&self) -> usize {
        self.q
    }

    /// Clears every placement, restoring the pristine post-construction
    /// state without reallocating. Parallel search workers call this
    /// between subtree replays; state must end up bit-for-bit identical to
    /// a freshly built evaluator (occupancy sums included — they are
    /// assigned, not accumulated, so no float residue survives).
    pub fn reset(&mut self) {
        self.assign.fill(UNASSIGNED);
        self.used_capacity.fill(0.0);
        self.nodes_on.fill(0);
        self.occupied = 0;
        self.pair_bytes.fill(0);
        self.order_edges.fill(0);
        self.amax = 0;
        self.at_max = 0;
        self.acyclic = true;
    }

    /// The running objective: the largest per-ordered-pair byte total.
    pub fn amax(&self) -> u64 {
        self.amax
    }

    /// `true` iff the switch-order relation induced by cross-switch
    /// dependency edges is acyclic (a deployable assignment).
    pub fn is_acyclic(&self) -> bool {
        self.acyclic
    }

    /// Number of slots currently holding at least one node.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Number of nodes on slot `c`.
    pub fn nodes_on(&self, c: usize) -> u32 {
        self.nodes_on[c]
    }

    /// Total resource of the nodes on slot `c`.
    pub fn used_capacity(&self, c: usize) -> f64 {
        self.used_capacity[c]
    }

    /// The current node -> slot assignment ([`UNASSIGNED`] = unplaced).
    pub fn assignment(&self) -> &[usize] {
        &self.assign
    }

    /// Cross-pair byte total for the ordered slot pair `(a, b)`.
    pub fn pair_bytes(&self, a: usize, b: usize) -> u64 {
        self.pair_bytes[a * self.q + b]
    }

    /// Places `node` on slot `c`, updating all derived state in
    /// O(degree(node)) (plus a q×q Kahn pass only when a new switch-order
    /// edge appears while the relation was acyclic).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `node` is already placed.
    pub fn place(&mut self, node: usize, c: usize) {
        debug_assert_eq!(self.assign[node], UNASSIGNED, "node {node} already placed");
        self.assign[node] = c;
        self.used_capacity[c] += self.resource[node];
        self.nodes_on[c] += 1;
        if self.nodes_on[c] == 1 {
            self.occupied += 1;
        }
        let mut order_added = false;
        for i in self.in_off[node]..self.in_off[node + 1] {
            let (u, bytes) = self.in_adj[i as usize];
            let uc = self.assign[u as usize];
            if uc != UNASSIGNED && uc != c {
                order_added |= self.add_edge(uc, c, bytes);
            }
        }
        for i in self.out_off[node]..self.out_off[node + 1] {
            let (v, bytes) = self.out_adj[i as usize];
            let vc = self.assign[v as usize];
            if vc != UNASSIGNED && vc != c {
                order_added |= self.add_edge(c, vc, bytes);
            }
        }
        // A fresh order edge is the only way an acyclic relation can gain a
        // cycle; adding bytes to existing edges never changes reachability.
        if order_added && self.acyclic {
            self.acyclic = self.kahn_acyclic();
        }
    }

    /// Reverts [`IncrementalEval::place`] for `node`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `node` is not placed.
    pub fn unplace(&mut self, node: usize) {
        let c = self.assign[node];
        debug_assert_ne!(c, UNASSIGNED, "node {node} not placed");
        self.assign[node] = UNASSIGNED;
        self.used_capacity[c] -= self.resource[node];
        self.nodes_on[c] -= 1;
        if self.nodes_on[c] == 0 {
            self.occupied -= 1;
            // Snap accumulated floating-point residue to a clean zero so
            // emptiness tests (`used_capacity == 0.0`) stay exact.
            self.used_capacity[c] = 0.0;
        }
        let mut order_removed = false;
        for i in self.in_off[node]..self.in_off[node + 1] {
            let (u, bytes) = self.in_adj[i as usize];
            let uc = self.assign[u as usize];
            if uc != UNASSIGNED && uc != c {
                order_removed |= self.remove_edge(uc, c, bytes);
            }
        }
        for i in self.out_off[node]..self.out_off[node + 1] {
            let (v, bytes) = self.out_adj[i as usize];
            let vc = self.assign[v as usize];
            if vc != UNASSIGNED && vc != c {
                order_removed |= self.remove_edge(c, vc, bytes);
            }
        }
        // Losing an order edge is the only way a cyclic relation can
        // become acyclic again.
        if order_removed && !self.acyclic {
            self.acyclic = self.kahn_acyclic();
        }
    }

    /// Adds one dependency edge to ordered pair `(a, b)`; returns `true`
    /// iff this created the pair's first order edge.
    fn add_edge(&mut self, a: usize, b: usize, bytes: u32) -> bool {
        let idx = a * self.q + b;
        self.order_edges[idx] += 1;
        if bytes > 0 {
            let new = self.pair_bytes[idx] + u64::from(bytes);
            self.pair_bytes[idx] = new;
            if new > self.amax {
                self.amax = new;
                self.at_max = 1;
            } else if new == self.amax {
                // The pair arrived at the max (it was strictly below).
                self.at_max += 1;
            }
        }
        self.order_edges[idx] == 1
    }

    /// Removes one dependency edge from ordered pair `(a, b)`; returns
    /// `true` iff this removed the pair's last order edge.
    fn remove_edge(&mut self, a: usize, b: usize, bytes: u32) -> bool {
        let idx = a * self.q + b;
        self.order_edges[idx] -= 1;
        if bytes > 0 {
            let old = self.pair_bytes[idx];
            self.pair_bytes[idx] = old - u64::from(bytes);
            if old == self.amax {
                self.at_max -= 1;
                if self.at_max == 0 {
                    self.rescan_max();
                }
            }
        }
        self.order_edges[idx] == 0
    }

    /// Full O(q²) rescan of the byte matrix; only reached when the last
    /// pair at the maximum dropped below it.
    fn rescan_max(&mut self) {
        self.amax = 0;
        self.at_max = 0;
        for &b in &self.pair_bytes {
            if b > self.amax {
                self.amax = b;
                self.at_max = 1;
            } else if b == self.amax && b > 0 {
                self.at_max += 1;
            }
        }
        if self.amax == 0 {
            self.at_max = 0;
        }
    }

    /// Kahn's algorithm over the q×q order-edge matrix, using the
    /// preallocated scratch buffers.
    fn kahn_acyclic(&mut self) -> bool {
        let q = self.q;
        self.kahn_stack.clear();
        for b in 0..q {
            let mut indeg = 0u32;
            for a in 0..q {
                if self.order_edges[a * q + b] > 0 {
                    indeg += 1;
                }
            }
            self.kahn_indegree[b] = indeg;
            if indeg == 0 {
                self.kahn_stack.push(u32::try_from(b).expect("slot count fits u32"));
            }
        }
        let mut visited = 0usize;
        while let Some(a) = self.kahn_stack.pop() {
            visited += 1;
            let a = a as usize;
            for b in 0..q {
                if self.order_edges[a * q + b] > 0 {
                    self.kahn_indegree[b] -= 1;
                    if self.kahn_indegree[b] == 0 {
                        self.kahn_stack.push(u32::try_from(b).expect("slot count fits u32"));
                    }
                }
            }
        }
        visited == q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::chain_tdg;
    use hermes_dataplane::action::Action;
    use hermes_dataplane::fields::Field;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;
    use hermes_tdg::AnalysisMode;

    /// Reference objective: recompute the pair matrix from scratch.
    fn scratch_amax(tdg: &Tdg, assign: &[usize], q: usize) -> u64 {
        let mut pair = vec![0u64; q * q];
        for e in tdg.edges() {
            let (a, b) = (assign[e.from.index()], assign[e.to.index()]);
            if a != UNASSIGNED && b != UNASSIGNED && a != b {
                pair[a * q + b] += u64::from(e.bytes);
            }
        }
        pair.iter().copied().max().unwrap_or(0)
    }

    /// Reference acyclicity: Kahn over the from-scratch order matrix.
    fn scratch_acyclic(tdg: &Tdg, assign: &[usize], q: usize) -> bool {
        let mut edges = vec![false; q * q];
        for e in tdg.edges() {
            let (a, b) = (assign[e.from.index()], assign[e.to.index()]);
            if a != UNASSIGNED && b != UNASSIGNED && a != b {
                edges[a * q + b] = true;
            }
        }
        let mut indeg = vec![0u32; q];
        for a in 0..q {
            for b in 0..q {
                if edges[a * q + b] {
                    indeg[b] += 1;
                }
            }
        }
        let mut stack: Vec<usize> = (0..q).filter(|&b| indeg[b] == 0).collect();
        let mut seen = 0;
        while let Some(a) = stack.pop() {
            seen += 1;
            for b in 0..q {
                if edges[a * q + b] {
                    indeg[b] -= 1;
                    if indeg[b] == 0 {
                        stack.push(b);
                    }
                }
            }
        }
        seen == q
    }

    fn check_against_reference(eval: &IncrementalEval, tdg: &Tdg, q: usize) {
        assert_eq!(eval.amax(), scratch_amax(tdg, eval.assignment(), q));
        assert_eq!(eval.is_acyclic(), scratch_acyclic(tdg, eval.assignment(), q));
    }

    #[test]
    fn chain_split_objective_matches_reference() {
        let tdg = chain_tdg(&[3, 7, 5], 0.2);
        let q = 2;
        let mut eval = IncrementalEval::new(&tdg, q);
        eval.place(0, 0);
        eval.place(1, 0);
        eval.place(2, 1);
        eval.place(3, 1);
        assert_eq!(eval.amax(), 7);
        assert!(eval.is_acyclic());
        assert_eq!(eval.occupied(), 2);
        check_against_reference(&eval, &tdg, q);
        eval.unplace(2);
        check_against_reference(&eval, &tdg, q);
        eval.place(2, 0);
        assert_eq!(eval.amax(), 5);
        check_against_reference(&eval, &tdg, q);
    }

    #[test]
    fn unplace_restores_previous_state_exactly() {
        let tdg = chain_tdg(&[4, 4, 4, 4], 0.2);
        let q = 3;
        let mut eval = IncrementalEval::new(&tdg, q);
        for (node, c) in [(0usize, 0usize), (1, 1), (2, 2), (3, 0)] {
            eval.place(node, c);
        }
        let before = (eval.amax(), eval.is_acyclic(), eval.occupied());
        eval.place(4, 1);
        eval.unplace(4);
        assert_eq!((eval.amax(), eval.is_acyclic(), eval.occupied()), before);
        check_against_reference(&eval, &tdg, q);
    }

    #[test]
    fn reset_matches_freshly_constructed_evaluator() {
        let tdg = chain_tdg(&[4, 4, 4, 4], 0.2);
        let q = 3;
        let mut recycled = IncrementalEval::new(&tdg, q);
        for (node, c) in [(0usize, 0usize), (1, 1), (2, 2), (3, 0), (4, 1)] {
            recycled.place(node, c);
        }
        recycled.reset();
        let mut fresh = IncrementalEval::new(&tdg, q);
        // Replaying the same sequence on both must agree bit-for-bit on
        // every observable (float occupancy included).
        for (node, c) in [(0usize, 2usize), (1, 0), (2, 1), (3, 2), (4, 0)] {
            recycled.place(node, c);
            fresh.place(node, c);
        }
        assert_eq!(recycled.assignment(), fresh.assignment());
        assert_eq!(recycled.amax(), fresh.amax());
        assert_eq!(recycled.is_acyclic(), fresh.is_acyclic());
        assert_eq!(recycled.occupied(), fresh.occupied());
        for c in 0..q {
            assert_eq!(recycled.nodes_on(c), fresh.nodes_on(c));
            assert_eq!(recycled.used_capacity(c).to_bits(), fresh.used_capacity(c).to_bits());
        }
        check_against_reference(&recycled, &tdg, q);
    }

    #[test]
    fn cycle_detected_and_cleared() {
        // a -> b with a on s0, b on s1 gives order s0 < s1; putting a
        // second edge c -> d with c on s1, d on s0 closes the cycle.
        let mut b = Program::builder("p");
        for (i, (m, w)) in
            [(None, Some("x")), (Some("x"), None), (None, Some("y")), (Some("y"), None)]
                .into_iter()
                .enumerate()
        {
            let mut mat = Mat::builder(format!("t{i}")).resource(0.1);
            if let Some(name) = m {
                mat = mat.match_field(Field::metadata(name.to_owned(), 4), MatchKind::Exact);
            }
            let writes = w.map(|n| vec![Field::metadata(n.to_owned(), 4)]).unwrap_or_default();
            mat = mat.action(Action::writing("w", writes));
            b = b.table(mat.build().unwrap());
        }
        let tdg = Tdg::from_program(&b.build().unwrap(), AnalysisMode::PaperLiteral);
        assert_eq!(tdg.edge_count(), 2);
        let q = 2;
        let mut eval = IncrementalEval::new(&tdg, q);
        eval.place(0, 0);
        eval.place(1, 1); // order s0 < s1
        eval.place(2, 1);
        assert!(eval.is_acyclic());
        eval.place(3, 0); // order s1 < s0: cycle
        assert!(!eval.is_acyclic());
        check_against_reference(&eval, &tdg, q);
        eval.unplace(3);
        assert!(eval.is_acyclic());
        check_against_reference(&eval, &tdg, q);
    }

    #[test]
    fn emptied_slot_capacity_snaps_to_zero() {
        let tdg = chain_tdg(&[4], 0.3);
        let mut eval = IncrementalEval::new(&tdg, 2);
        eval.place(0, 1);
        eval.place(1, 1);
        eval.unplace(0);
        eval.unplace(1);
        assert_eq!(eval.used_capacity(1), 0.0);
        assert_eq!(eval.occupied(), 0);
    }

    #[test]
    fn randomized_place_unplace_matches_scratch_reference() {
        // Deterministic LCG over a star-ish TDG; every step cross-checks.
        let tdg = chain_tdg(&[2, 9, 4, 1, 6, 3], 0.1);
        let n = tdg.node_count();
        let q = 3;
        let mut eval = IncrementalEval::new(&tdg, q);
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..500 {
            let node = rng() % n;
            if eval.assignment()[node] == UNASSIGNED {
                eval.place(node, rng() % q);
            } else {
                eval.unplace(node);
            }
            check_against_reference(&eval, &tdg, q);
        }
    }
}
