//! The MILP formulation of problem **P#1** (paper §V-A–§V-C).
//!
//! Encodes deployment as a mixed-integer program over `hermes-milp`:
//!
//! - binaries `z(a, u)` place MAT `a` on programmable switch `u`
//!   (the switch-level aggregation of the paper's `x(a, i, u)` — stage
//!   indices are recovered afterwards by the deterministic stage assigner,
//!   which is exact because per-switch stage feasibility is independent of
//!   the inter-switch objective);
//! - continuous `w(e, u, v) ≥ z(a,u) + z(b,v) − 1` linearize the products
//!   in Eq. 1, and the epigraph variable `A_max ≥ Σ_e A(e)·w(e, u, v)`
//!   per ordered switch pair yields Obj#1;
//! - rank variables `r(u)` with big-M order constraints keep the
//!   switch-level dependency graph acyclic (the chainability implied by
//!   Eq. 7);
//! - optional knapsack rows enforce per-switch resources (Eq. 9 in
//!   aggregate) and the ε-bounds (Eq. 4–5).
//!
//! Solved exactly on small instances; on large ones the branch-and-bound
//! runs to its time budget and returns the incumbent — the behaviour the
//! execution-time experiment (Exp#3) measures.

use crate::deployment::{DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon};
use crate::exact::materialize;
use crate::solver::{
    SearchContext, SolveOutcome, SolveStats, Solver, DEFAULT_DEPLOY_BUDGET, NO_BOUND,
};
use hermes_milp::{
    solve_with_controls, Direction, LinExpr, Model, Sense, SolveControls, SolveStatus,
    SolverConfig, VarId,
};
use hermes_net::{shortest_path, Network, SwitchId};
use hermes_tdg::Tdg;
use std::time::{Duration, Instant};

/// Variable handles of a built P#1 model.
#[derive(Debug, Clone)]
pub struct P1Variables {
    /// `z[a][c]`: node `a` on candidate switch index `c`.
    pub placement: Vec<Vec<VarId>>,
    /// The epigraph variable for `A_max`.
    pub a_max: VarId,
    /// The candidate (programmable) switches, indexing the inner `Vec`s.
    pub candidates: Vec<SwitchId>,
}

/// Builds the P#1 model for `tdg` on `net` under the ε-bounds.
///
/// # Panics
///
/// Panics if the network has no programmable switch; callers check first.
pub fn build_p1(tdg: &Tdg, net: &Network, eps: &Epsilon) -> (Model, P1Variables) {
    let candidates = net.programmable_switches();
    assert!(!candidates.is_empty(), "P#1 needs at least one programmable switch");
    let q = candidates.len();
    let n = tdg.node_count();
    let mut model = Model::new("hermes-p1");

    // z(a, u) — Eq. 6 output variables at switch granularity.
    let placement: Vec<Vec<VarId>> =
        (0..n).map(|a| (0..q).map(|c| model.binary(format!("z_{a}_{c}"))).collect()).collect();
    let a_max = model.continuous("A_max", 0.0, f64::INFINITY);

    // Eq. 6: every MAT on exactly one switch.
    for (a, vars) in placement.iter().enumerate() {
        model.add_constraint(
            format!("place_{a}"),
            LinExpr::sum(vars.iter().map(|&v| (v, 1.0))),
            Sense::Eq,
            1.0,
        );
    }

    // Eq. 9 (aggregate): per-switch resource capacity.
    for (c, &sw) in candidates.iter().enumerate() {
        let cap = net.switch(sw).total_capacity();
        let load = LinExpr::sum(
            (0..n).map(|a| (placement[a][c], tdg.node(hermes_node(tdg, a)).mat.resource())),
        );
        model.add_constraint(format!("cap_{c}"), load, Sense::Le, cap);
    }

    // Linearized pair products + the A_max epigraph (Eq. 1).
    let edges: Vec<_> = tdg.edges().to_vec();
    let mut pair_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); q * q];
    let mut w_vars: Vec<Vec<VarId>> = Vec::new();
    for (ei, e) in edges.iter().enumerate() {
        let mut per_edge = Vec::with_capacity(q * q);
        for u in 0..q {
            for v in 0..q {
                if u == v {
                    continue;
                }
                let w = model.continuous(format!("w_{ei}_{u}_{v}"), 0.0, 1.0);
                // w >= z(a,u) + z(b,v) - 1
                model.add_constraint(
                    format!("wlin_{ei}_{u}_{v}"),
                    LinExpr::from(w)
                        - LinExpr::from(placement[e.from.index()][u])
                        - LinExpr::from(placement[e.to.index()][v]),
                    Sense::Ge,
                    -1.0,
                );
                if e.bytes > 0 {
                    pair_terms[u * q + v].push((w, f64::from(e.bytes)));
                }
                per_edge.push(w);
            }
        }
        w_vars.push(per_edge);
    }
    for u in 0..q {
        for v in 0..q {
            if u == v || pair_terms[u * q + v].is_empty() {
                continue;
            }
            model.add_constraint(
                format!("amax_{u}_{v}"),
                LinExpr::from(a_max) - LinExpr::sum(pair_terms[u * q + v].iter().copied()),
                Sense::Ge,
                0.0,
            );
        }
    }

    // Chainability (Eq. 7): ranks keep the switch dependency graph acyclic.
    let big_m = (q + 1) as f64;
    let ranks: Vec<VarId> =
        (0..q).map(|c| model.continuous(format!("r_{c}"), 0.0, q as f64)).collect();
    for (ei, e) in edges.iter().enumerate() {
        for u in 0..q {
            for v in 0..q {
                if u == v {
                    continue;
                }
                // r_u + 1 <= r_v + M(2 - z(a,u) - z(b,v))
                model.add_constraint(
                    format!("rank_{ei}_{u}_{v}"),
                    LinExpr::from(ranks[u]) - LinExpr::from(ranks[v])
                        + LinExpr::from(placement[e.from.index()][u]) * big_m
                        + LinExpr::from(placement[e.to.index()][v]) * big_m,
                    Sense::Le,
                    2.0 * big_m - 1.0,
                );
            }
        }
    }

    // Eq. 4: latency bound over shortest-path pair latencies (only when
    // finite — the experiments run with loose bounds).
    if eps.max_latency_us.is_finite() {
        let mut latency_terms: Vec<(VarId, f64)> = Vec::new();
        for (ei, _) in edges.iter().enumerate() {
            let mut idx = 0usize;
            for u in 0..q {
                for v in 0..q {
                    if u == v {
                        continue;
                    }
                    if let Some(p) = shortest_path(net, candidates[u], candidates[v]) {
                        latency_terms.push((w_vars[ei][idx], p.latency_us));
                    }
                    idx += 1;
                }
            }
        }
        model.add_constraint("eps1", LinExpr::sum(latency_terms), Sense::Le, eps.max_latency_us);
    }

    // Eq. 5: occupied-switch bound (only when binding).
    if eps.max_switches < q {
        let occ: Vec<VarId> = (0..q).map(|c| model.binary(format!("occ_{c}"))).collect();
        for (a, vars) in placement.iter().enumerate() {
            for c in 0..q {
                model.add_constraint(
                    format!("occ_{a}_{c}"),
                    LinExpr::from(occ[c]) - LinExpr::from(vars[c]),
                    Sense::Ge,
                    0.0,
                );
            }
        }
        model.add_constraint(
            "eps2",
            LinExpr::sum(occ.iter().map(|&v| (v, 1.0))),
            Sense::Le,
            eps.max_switches as f64,
        );
    }

    model.set_objective(Direction::Minimize, LinExpr::from(a_max));
    (model, P1Variables { placement, a_max, candidates })
}

fn hermes_node(tdg: &Tdg, index: usize) -> hermes_tdg::NodeId {
    tdg.node_ids().nth(index).expect("dense node index")
}

/// Hermes solved through the MILP formulation — the "Optimal (Gurobi)"
/// configuration of the paper, backed by `hermes-milp`.
#[derive(Debug, Clone)]
pub struct MilpHermes {
    /// Branch-and-bound budget.
    pub config: SolverConfig,
}

impl Default for MilpHermes {
    fn default() -> Self {
        MilpHermes { config: SolverConfig::with_time_limit(Duration::from_secs(60)) }
    }
}

impl MilpHermes {
    /// MILP-backed Hermes with the given solve budget.
    pub fn new(config: SolverConfig) -> Self {
        MilpHermes { config }
    }
}

impl DeploymentAlgorithm for MilpHermes {
    fn name(&self) -> &str {
        "Hermes-MILP"
    }

    fn is_exhaustive(&self) -> bool {
        true
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        let budget = self.config.time_limit.unwrap_or(DEFAULT_DEPLOY_BUDGET);
        let ctx = SearchContext::with_time_limit(budget);
        Solver::solve(self, tdg, net, eps, &ctx).map(|outcome| outcome.plan)
    }
}

impl Solver for MilpHermes {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        let start = Instant::now();
        if net.programmable_switches().is_empty() {
            return Err(DeployError::NoProgrammableSwitch);
        }
        if tdg.node_count() == 0 {
            ctx.publish_incumbent(0);
            return Ok(SolveOutcome {
                plan: DeploymentPlan::new(),
                objective: 0,
                proven_optimal: true,
                stats: SolveStats {
                    nodes_explored: 0,
                    wall: start.elapsed(),
                    proven_bound: Some(0),
                },
            });
        }
        let (model, vars) = build_p1(tdg, net, eps);
        // The context owns the budget: a configured time limit only applies
        // on the legacy `deploy` path, never underneath a `SearchContext`.
        let mut config = self.config.clone();
        config.time_limit = None;
        let controls = SolveControls {
            deadline: ctx.deadline(),
            stop: Some(ctx.cancel_token().as_flag()),
            upper_bound: Some(ctx.shared_incumbent()),
        };
        let solution = solve_with_controls(&model, &config, &controls)
            .map_err(|e| DeployError::NoFeasiblePlacement { reason: format!("milp error: {e}") })?;
        let nodes_explored = solution.nodes_explored as u64;
        match solution.status {
            SolveStatus::Optimal | SolveStatus::Feasible => {
                let assign: Vec<usize> = (0..tdg.node_count())
                    .map(|a| {
                        (0..vars.candidates.len())
                            .find(|&c| solution.value(vars.placement[a][c]) > 0.5)
                            .expect("Eq. 6 places every node")
                    })
                    .collect();
                let plan = materialize(tdg, net, &vars.candidates, &assign).ok_or_else(|| {
                    DeployError::NoFeasiblePlacement {
                        reason: "stage assignment failed for the MILP placement".to_owned(),
                    }
                })?;
                let objective = plan.max_inter_switch_bytes(tdg);
                ctx.publish_incumbent(objective);
                let proven_optimal = solution.status == SolveStatus::Optimal;
                let proven_bound = if proven_optimal {
                    Some(objective)
                } else if solution.exhausted {
                    // Exhausted, but the externally published bound undercut
                    // our incumbent: nothing below the shared bound exists.
                    Some(ctx.incumbent_bound().min(objective))
                } else {
                    None
                };
                Ok(SolveOutcome {
                    plan,
                    objective,
                    proven_optimal,
                    stats: SolveStats { nodes_explored, wall: start.elapsed(), proven_bound },
                })
            }
            SolveStatus::LimitReached if solution.exhausted => {
                // The tree was fully explored under an externally published
                // bound without finding an incumbent of our own: the bound
                // is a certificate, not a failure.
                let bound = ctx.incumbent_bound();
                if bound == NO_BOUND {
                    Err(DeployError::NoFeasiblePlacement {
                        reason: "milp search exhausted without an incumbent".to_owned(),
                    })
                } else {
                    Err(DeployError::NoImprovementProven { bound })
                }
            }
            other => Err(DeployError::NoFeasiblePlacement {
                reason: format!("milp terminated with {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::OptimalSolver;
    use crate::test_support::{chain_tdg, tiny_switches};

    #[test]
    fn milp_matches_exact_on_figure1() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let eps = Epsilon::loose();
        let milp_plan = MilpHermes::default().deploy(&tdg, &net, &eps).unwrap();
        let exact = OptimalSolver::default()
            .solve(&tdg, &net, &eps, &SearchContext::with_time_limit(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(milp_plan.max_inter_switch_bytes(&tdg), exact.objective);
        assert_eq!(milp_plan.max_inter_switch_bytes(&tdg), 1);
    }

    #[test]
    fn milp_solve_reports_proven_optimality() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::from_secs(30));
        let outcome = MilpHermes::default().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap();
        assert!(outcome.proven_optimal);
        assert_eq!(outcome.objective, 1);
        assert_eq!(outcome.stats.proven_bound, Some(1));
        assert_eq!(ctx.incumbent_bound(), 1, "the milp publishes its incumbent");
    }

    #[test]
    fn milp_proves_an_externally_published_optimum() {
        // Publishing the known optimum up front leaves the MILP nothing to
        // improve: it must exhaust and certify the bound, not fail.
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::from_secs(30));
        ctx.publish_incumbent(1);
        let err = MilpHermes::default().solve(&tdg, &net, &Epsilon::loose(), &ctx).unwrap_err();
        assert_eq!(err, DeployError::NoImprovementProven { bound: 1 });
    }

    #[test]
    fn milp_plan_verifies() {
        let tdg = chain_tdg(&[3, 1, 2], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let eps = Epsilon::loose();
        let plan = MilpHermes::default().deploy(&tdg, &net, &eps).unwrap();
        let violations = crate::verify::verify(&tdg, &net, &plan, &eps);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn model_shape_is_as_documented() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let (model, vars) = build_p1(&tdg, &net, &Epsilon::loose());
        // 3 nodes * 2 switches binaries + A_max + 2 edges * 2 pairs w + 2 ranks.
        assert_eq!(vars.placement.len(), 3);
        assert_eq!(model.variables().len(), 6 + 1 + 4 + 2);
        assert!(model.validate().is_ok());
    }

    #[test]
    fn zero_overhead_when_one_switch_suffices() {
        let tdg = chain_tdg(&[9, 9], 0.2);
        let net = tiny_switches(2, 12, 1.0);
        let plan = MilpHermes::default().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 0);
    }

    #[test]
    fn infeasible_capacity_is_reported() {
        // 3 x 0.5 units on a single 1-stage/0.5-capacity switch network.
        let tdg = chain_tdg(&[1, 1], 0.5);
        let net = tiny_switches(1, 1, 0.5);
        let err = MilpHermes::default().deploy(&tdg, &net, &Epsilon::loose()).unwrap_err();
        assert!(matches!(err, DeployError::NoFeasiblePlacement { .. }));
    }
}
