//! Memoized stage-feasibility oracle.
//!
//! Every solver in the portfolio asks the same question thousands of times:
//! *does this set of MATs admit a dependency-respecting stage assignment on
//! this target's pipeline?* The reference answer
//! ([`crate::stage_assign::stage_feasible`]) repacks the whole set from
//! scratch on each call. [`StageFeasCache`] memoizes the answer per
//! `(switch shape, node-set fingerprint)` and keeps the packed pipeline
//! state of each feasible set, so that the common "extend by one node"
//! probe of the branch-and-bound search is answered by a single incremental
//! `Packing::push` instead of a full repack — and repeat probes of any
//! set are O(1) hash lookups with no allocation.
//!
//! # Key scheme
//!
//! The outer key is the switch *shape* [`TargetModel::shape_key`] —
//! `(stages, stage_capacity bits, total_budget bits)`, so switches with
//! identical pipelines share one sub-cache (which is what
//! makes the symmetric-switch testbeds cache-friendly) while budgeted
//! targets can never share verdicts with budget-free ones. The inner key is the
//! node-set fingerprint: the set's membership bitset (`u64` words over
//! dense [`NodeId`] indices), an exact key rather than a lossy hash so a
//! collision can never flip a feasibility verdict.
//!
//! # Exactness of the extend fast path
//!
//! `Packing` (`crate::stage_assign`) places nodes in topological order, so
//! packing a set equals pushing its members one by one in topo order: the
//! packed state of a set
//! *is* the prefix state of any of its topo-order supersets. When a probe
//! extends a cached feasible set with a node that comes topo-after every
//! member (`last_pos` tracks this), one incremental push therefore yields
//! exactly the state a full repack would — no approximation. Any other
//! probe (topo-middle insertions from refinement moves, unseen sets, or an
//! infeasible base) falls back to a full — still memoized — repack.

use crate::stage_assign::Packing;
use hermes_net::TargetModel;
use hermes_tdg::{NodeId, Tdg};
use std::collections::{BTreeMap, BTreeSet};

/// Hard cap on cached entries across all shapes; the cache clears itself
/// when exceeded so degenerate workloads cannot grow it without bound.
const MAX_ENTRIES: usize = 1 << 20;

/// Cached pipeline state of one feasible node set.
#[derive(Debug, Clone)]
struct PackEntry {
    packing: Packing,
    /// Topo rank of the set's topo-last member plus one (0 = empty set);
    /// the extend fast path applies iff the new node's rank is `>=` this.
    last_pos_plus1: u32,
}

/// Hit/miss counters for the bench harness and `--smoke` diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCacheStats {
    /// Probes answered from the memo table alone.
    pub hits: u64,
    /// Probes answered by one incremental push onto a cached base.
    pub extends: u64,
    /// Probes that required a full repack.
    pub full_packs: u64,
}

/// Fingerprint -> verdict map for one pipeline shape (`None` = infeasible).
type ShapeMap = BTreeMap<Box<[u64]>, Option<PackEntry>>;

/// The target fingerprint keying sub-caches: [`TargetModel::shape_key`].
type ShapeKey = (usize, u64, u64);

/// Memoized stage-feasibility cache for one TDG.
///
/// Bound to the TDG it was built from (the topological order is computed
/// once at construction); callers must pass the same graph to every probe.
#[derive(Debug)]
pub struct StageFeasCache {
    node_count: usize,
    /// Rank -> node, the packing order.
    topo_order: Vec<NodeId>,
    /// Node index -> topo rank.
    topo_pos: Vec<u32>,
    /// [`TargetModel::shape_key`] -> fingerprint -> verdict.
    shapes: BTreeMap<ShapeKey, ShapeMap>,
    entries: usize,
    key_scratch: Vec<u64>,
    stats: StageCacheStats,
}

impl StageFeasCache {
    /// Builds a cache for `tdg`.
    ///
    /// # Panics
    ///
    /// Panics if `tdg` is not a DAG (TDGs always are).
    pub fn new(tdg: &Tdg) -> Self {
        let topo_order = tdg.topo_order().expect("TDGs are DAGs");
        let mut topo_pos = vec![0u32; tdg.node_count()];
        for (rank, id) in topo_order.iter().enumerate() {
            topo_pos[id.index()] = u32::try_from(rank).expect("node count fits u32");
        }
        StageFeasCache {
            node_count: tdg.node_count(),
            topo_order,
            topo_pos,
            shapes: BTreeMap::new(),
            entries: 0,
            key_scratch: Vec::new(),
            stats: StageCacheStats::default(),
        }
    }

    /// Number of `u64` words in a fingerprint for this TDG.
    pub fn word_len(&self) -> usize {
        self.node_count.div_ceil(64)
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> StageCacheStats {
        self.stats
    }

    /// Is `base ∪ {node}` stage-feasible on `model`'s pipeline? `base` is
    /// the membership bitset of the base set (exactly
    /// [`StageFeasCache::word_len`] words); `node` need not be in `base`.
    pub fn feasible_with(
        &mut self,
        tdg: &Tdg,
        model: &TargetModel,
        base: &[u64],
        node: NodeId,
    ) -> bool {
        debug_assert_eq!(base.len(), self.word_len());
        self.key_scratch.clear();
        self.key_scratch.extend_from_slice(base);
        self.key_scratch[node.index() / 64] |= 1u64 << (node.index() % 64);

        let shape = model.shape_key();
        if let Some(entry) = self.shapes.get(&shape).and_then(|m| m.get(&self.key_scratch[..])) {
            self.stats.hits += 1;
            return entry.is_some();
        }

        // Miss. Try the incremental path: a cached feasible base whose
        // members all come topo-before `node`.
        let base_entry = match self.shapes.get(&shape).and_then(|m| m.get(base)) {
            Some(e) => e.clone(),
            None => {
                let e = full_pack(&self.topo_order, tdg, model, base);
                self.stats.full_packs += 1;
                self.insert(shape, base.to_vec().into_boxed_slice(), e.clone());
                e
            }
        };
        let child = match base_entry {
            Some(mut entry) if self.topo_pos[node.index()] >= entry.last_pos_plus1 => {
                self.stats.extends += 1;
                match entry.packing.push(tdg, node, |_, _, _| {}) {
                    Ok(()) => {
                        entry.last_pos_plus1 = self.topo_pos[node.index()] + 1;
                        Some(entry)
                    }
                    Err(_) => None,
                }
            }
            _ => {
                self.stats.full_packs += 1;
                full_pack(&self.topo_order, tdg, model, &self.key_scratch)
            }
        };
        let feasible = child.is_some();
        let key = self.key_scratch.clone().into_boxed_slice();
        self.insert(shape, key, child);
        feasible
    }

    /// Memoized full feasibility check of an arbitrary fingerprint.
    pub fn feasible_words(&mut self, tdg: &Tdg, model: &TargetModel, words: &[u64]) -> bool {
        debug_assert_eq!(words.len(), self.word_len());
        let shape = model.shape_key();
        if let Some(entry) = self.shapes.get(&shape).and_then(|m| m.get(words)) {
            self.stats.hits += 1;
            return entry.is_some();
        }
        self.stats.full_packs += 1;
        let entry = full_pack(&self.topo_order, tdg, model, words);
        let feasible = entry.is_some();
        self.insert(shape, words.to_vec().into_boxed_slice(), entry);
        feasible
    }

    /// [`StageFeasCache::feasible_words`] for a `BTreeSet` of nodes — the
    /// drop-in replacement for [`crate::stage_assign::stage_feasible`] on
    /// probe-heavy paths.
    pub fn feasible_set(
        &mut self,
        tdg: &Tdg,
        model: &TargetModel,
        nodes: &BTreeSet<NodeId>,
    ) -> bool {
        let words = self.word_len();
        self.key_scratch.clear();
        self.key_scratch.resize(words, 0);
        for id in nodes {
            self.key_scratch[id.index() / 64] |= 1u64 << (id.index() % 64);
        }
        let key = std::mem::take(&mut self.key_scratch);
        let feasible = self.feasible_words(tdg, model, &key);
        self.key_scratch = key;
        feasible
    }

    fn insert(&mut self, shape: ShapeKey, key: Box<[u64]>, entry: Option<PackEntry>) {
        if self.entries >= MAX_ENTRIES {
            self.shapes.clear();
            self.entries = 0;
        }
        if self.shapes.entry(shape).or_default().insert(key, entry).is_none() {
            self.entries += 1;
        }
    }
}

/// Packs the fingerprinted set from scratch in topological order.
fn full_pack(
    topo_order: &[NodeId],
    tdg: &Tdg,
    model: &TargetModel,
    words: &[u64],
) -> Option<PackEntry> {
    let mut packing = Packing::new(model, tdg.node_count());
    let mut last_pos_plus1 = 0u32;
    for (rank, &id) in topo_order.iter().enumerate() {
        if words[id.index() / 64] & (1u64 << (id.index() % 64)) == 0 {
            continue;
        }
        packing.push(tdg, id, |_, _, _| {}).ok()?;
        last_pos_plus1 = u32::try_from(rank).expect("node count fits u32") + 1;
    }
    Some(PackEntry { packing, last_pos_plus1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage_assign::stage_feasible;
    use crate::test_support::chain_tdg;

    fn words_of(cache: &StageFeasCache, nodes: &BTreeSet<NodeId>) -> Vec<u64> {
        let mut w = vec![0u64; cache.word_len()];
        for id in nodes {
            w[id.index() / 64] |= 1u64 << (id.index() % 64);
        }
        w
    }

    #[test]
    fn agrees_with_reference_on_all_subsets() {
        let tdg = chain_tdg(&[4, 4, 4], 0.6);
        let mut cache = StageFeasCache::new(&tdg);
        let ids: Vec<NodeId> = tdg.node_ids().collect();
        for (stages, cap) in [(2usize, 1.0f64), (3, 0.7), (4, 0.3)] {
            let model = TargetModel::pipeline(stages, cap);
            for mask in 0u32..(1 << ids.len()) {
                let set: BTreeSet<NodeId> =
                    ids.iter().filter(|id| mask & (1 << id.index()) != 0).copied().collect();
                assert_eq!(
                    cache.feasible_set(&tdg, &model, &set),
                    stage_feasible(&tdg, &set, &model),
                    "mask {mask:#b} stages {stages} cap {cap}"
                );
            }
        }
    }

    #[test]
    fn extend_path_agrees_with_reference() {
        let tdg = chain_tdg(&[4, 4, 4, 4], 0.5);
        let mut cache = StageFeasCache::new(&tdg);
        let ids: Vec<NodeId> = tdg.node_ids().collect();
        // Grow a set in topo order one node at a time, as the DFS does.
        let mut base = vec![0u64; cache.word_len()];
        let mut set = BTreeSet::new();
        let model = TargetModel::pipeline(3, 1.0);
        for &id in &ids {
            let expect = {
                let mut s = set.clone();
                s.insert(id);
                stage_feasible(&tdg, &s, &model)
            };
            assert_eq!(cache.feasible_with(&tdg, &model, &base, id), expect, "extend by {id}");
            base[id.index() / 64] |= 1u64 << (id.index() % 64);
            set.insert(id);
        }
        assert!(cache.stats().extends > 0, "topo-order growth should use the fast path");
    }

    #[test]
    fn repeat_probes_hit() {
        let tdg = chain_tdg(&[4, 4], 0.5);
        let mut cache = StageFeasCache::new(&tdg);
        let set: BTreeSet<NodeId> = tdg.node_ids().collect();
        let model = TargetModel::pipeline(4, 1.0);
        assert!(cache.feasible_set(&tdg, &model, &set));
        let before = cache.stats();
        assert!(cache.feasible_set(&tdg, &model, &set));
        let after = cache.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.full_packs, before.full_packs);
    }

    #[test]
    fn shapes_are_keyed_separately() {
        let tdg = chain_tdg(&[4, 4, 4], 0.6);
        let mut cache = StageFeasCache::new(&tdg);
        let set: BTreeSet<NodeId> = tdg.node_ids().collect();
        // Same set, different pipeline shapes: verdicts must not bleed.
        assert!(!cache.feasible_set(&tdg, &TargetModel::pipeline(2, 0.6), &set));
        assert!(cache.feasible_set(&tdg, &TargetModel::pipeline(4, 0.7), &set));
        let w = words_of(&cache, &set);
        assert!(!cache.feasible_words(&tdg, &TargetModel::pipeline(2, 0.6), &w));
        assert!(cache.feasible_words(&tdg, &TargetModel::pipeline(4, 0.7), &w));
        // A budget turns the same stage shape into a different cache key.
        let mut budgeted = TargetModel::pipeline(4, 0.7);
        budgeted.total_budget = 1.0;
        assert!(!cache.feasible_words(&tdg, &budgeted, &w), "budget must not reuse verdict");
    }

    #[test]
    fn topo_middle_insertion_falls_back_to_full_pack() {
        // Chain t0 -> t1 -> t2; base {t0, t2}, insert t1 (topo-middle).
        let tdg = chain_tdg(&[4, 4], 0.9);
        let mut cache = StageFeasCache::new(&tdg);
        let ids: Vec<NodeId> = tdg.node_ids().collect();
        let base: BTreeSet<NodeId> = [ids[0], ids[2]].into();
        let base_words = words_of(&cache, &base);
        let full: BTreeSet<NodeId> = ids.iter().copied().collect();
        for stages in [2usize, 3, 4] {
            let model = TargetModel::pipeline(stages, 1.0);
            assert_eq!(
                cache.feasible_with(&tdg, &model, &base_words, ids[1]),
                stage_feasible(&tdg, &full, &model),
                "stages {stages}"
            );
        }
    }
}
