//! Staged A→B live reconfiguration scheduling.
//!
//! The deployment pipeline ends with a verified plan installed as one
//! atomic transaction; this module plans the *next* plan. Given an
//! installed plan A and a target plan B over the same TDG, a
//! [`MigrationScheduler`] searches over per-switch commit orderings and
//! returns a [`MigrationSchedule`]: an ordered sequence of per-switch
//! steps in which every intermediate (mixed) state is
//!
//! 1. **stage-feasible** — during switch `s`'s step, `s` holds its plan-A
//!    *and* plan-B MATs simultaneously (make-before-break), and that
//!    resident union must pack into `s`'s pipeline
//!    ([`StageFeasCache::feasible_set`], memoized O(1) per re-probe);
//! 2. **acyclic** — each checkpoint must be a valid standalone deployment
//!    whose switch-level dependency relation is a DAG, so the migration
//!    can pause at any checkpoint indefinitely;
//! 3. **cheap** — the objective is the *peak transient `A_max`* over all
//!    prefixes of the order, the worst per-packet coordination overhead
//!    any mid-migration state imposes.
//!
//! The intermediate state after committing a prefix `C` of the order puts
//! every node at its plan-B home when that home is in `C` and at its
//! plan-A home otherwise; stepping a switch moves exactly the nodes whose
//! plan-B home it is, so [`IncrementalEval`] maintains `A_max` and
//! acyclicity in O(moved-degree) per probe rather than O(edges).
//!
//! Mirroring the solver [`Portfolio`](crate::Portfolio), the `Auto` mode
//! races a greedy orderer against an exact branch-and-bound on scoped
//! threads under one [`SearchContext`]: greedy publishes its peak as a
//! shared incumbent, the exact search prunes any prefix whose running
//! peak already matches it, and the deterministic winner is the lowest
//! peak (ties broken by a fixed racer priority). The ascending-id order —
//! exactly the order the runtime's all-at-once transaction commits in —
//! is evaluated first and seeds the incumbent, so a returned schedule is
//! never worse than the all-at-once baseline it replaces.
//!
//! Per-packet consistency of every prefix (the mixed-epoch gate,
//! [`hermes_backend::check_transition`]) is deliberately *not* checked
//! here: it needs generated artifacts, which live in `hermes-backend`.
//! The runtime executor replays the gate over the chosen order before the
//! first commit and refuses the migration if any window could expose two
//! epochs to one packet.
//!
//! [`hermes_backend::check_transition`]: https://docs.rs/hermes-backend

use crate::deployment::DeploymentPlan;
use crate::eval::IncrementalEval;
use crate::solver::SearchContext;
use crate::stage_cache::StageFeasCache;
use hermes_net::{Network, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Above this many order-relevant switches the exact orderer refuses to
/// search (the greedy and in-order racers still produce schedules).
pub const MAX_EXACT_SWITCHES: usize = 12;

/// One A→B reconfiguration instance.
#[derive(Debug, Clone, Copy)]
pub struct MigrationProblem<'a> {
    /// The merged TDG both plans deploy (migration never changes the
    /// program set — that is a rollout, not a migration).
    pub tdg: &'a Tdg,
    /// The substrate network.
    pub net: &'a Network,
    /// The currently installed plan (A).
    pub from: &'a DeploymentPlan,
    /// The target plan (B).
    pub to: &'a DeploymentPlan,
}

/// One per-switch step of a migration schedule: the switch commits its
/// plan-B config, atomically adopting every node whose plan-B home it is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MigrationStep {
    /// The switch that commits in this step.
    pub switch: SwitchId,
    /// Nodes that move onto this switch when it commits (empty for
    /// neutral steps: unchanged or shrink-only switches).
    pub moved: Vec<NodeId>,
    /// `A_max` of the mixed state after this step commits, bytes.
    pub transient_amax: u64,
    /// Nodes resident during the step's make-before-break window (plan-A
    /// ∪ plan-B MATs of the switch); this union was proven stage-feasible.
    pub staged_nodes: usize,
}

/// An ordered, feasibility-checked commit schedule from plan A to plan B.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MigrationSchedule {
    /// Per-switch steps covering every switch the target plan occupies.
    pub steps: Vec<MigrationStep>,
    /// Worst `A_max` over all intermediate states (including both
    /// endpoints), bytes — the minimized objective.
    pub peak_transient_amax: u64,
    /// `A_max` of plan A, bytes.
    pub from_amax: u64,
    /// `A_max` of plan B, bytes.
    pub to_amax: u64,
    /// Peak transient `A_max` of the ascending-id commit order (the order
    /// an all-at-once transaction uses); `None` when that order hits a
    /// cyclic intermediate state.
    pub all_at_once_peak: Option<u64>,
    /// Which orderer produced the winning schedule.
    pub planner: String,
}

impl MigrationSchedule {
    /// The commit order, one switch per step.
    pub fn commit_order(&self) -> Vec<SwitchId> {
        self.steps.iter().map(|s| s.switch).collect()
    }

    /// `true` when the plans are identical and nothing needs to move.
    pub fn is_noop(&self) -> bool {
        self.steps.is_empty()
    }

    /// `A_max` after each prefix: `from_amax`, then one value per step.
    /// This is the transient-overhead curve the bench plots.
    pub fn transient_curve(&self) -> Vec<u64> {
        let mut curve = Vec::with_capacity(self.steps.len() + 1);
        curve.push(self.from_amax);
        curve.extend(self.steps.iter().map(|s| s.transient_amax));
        curve
    }
}

/// Why no safe migration schedule exists (or could be found in budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// A node placed in one plan has no placement in the other; the two
    /// plans do not deploy the same TDG.
    UnplacedNode(NodeId),
    /// Plan-A and plan-B MATs of this switch cannot be resident together:
    /// the make-before-break staging window overflows its pipeline.
    StagingInfeasible(SwitchId),
    /// Every candidate order reaches an intermediate state whose
    /// switch-level dependency relation is cyclic.
    NoValidOrder,
    /// The search budget expired before any complete schedule was found.
    Interrupted,
    /// An explicit order did not cover exactly the switches whose commit
    /// moves nodes.
    OrderMismatch(String),
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::UnplacedNode(n) => {
                write!(f, "node {n} is not placed by both plans; migrate requires one TDG")
            }
            MigrateError::StagingInfeasible(s) => write!(
                f,
                "switch {s} cannot hold its plan-A and plan-B MATs together; \
                 the make-before-break staging window overflows its stages"
            ),
            MigrateError::NoValidOrder => {
                write!(f, "every commit order reaches a cyclic intermediate state")
            }
            MigrateError::Interrupted => {
                write!(f, "search budget expired before any complete schedule was found")
            }
            MigrateError::OrderMismatch(detail) => write!(f, "bad explicit order: {detail}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// How the commit order is chosen.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MigrationOrder {
    /// Race greedy and exact orderers, seeded with the in-order baseline.
    #[default]
    Auto,
    /// Greedy only: repeatedly commit the switch minimizing the next
    /// state's `A_max`.
    Greedy,
    /// Exact only: branch-and-bound over permutations of the
    /// order-relevant switches.
    Exact,
    /// The ascending-id order an all-at-once transaction uses.
    InOrder,
    /// A user-supplied order of the order-relevant switches (neutral
    /// switches are prepended automatically).
    Explicit(Vec<SwitchId>),
}

/// Plans safe A→B commit schedules. See the module docs for the model.
#[derive(Debug, Clone, Default)]
pub struct MigrationScheduler {
    order: MigrationOrder,
}

impl MigrationScheduler {
    /// A scheduler racing greedy and exact orderers ([`MigrationOrder::Auto`]).
    pub fn new() -> Self {
        MigrationScheduler::default()
    }

    /// A scheduler with an explicit ordering policy.
    pub fn with_order(order: MigrationOrder) -> Self {
        MigrationScheduler { order }
    }

    /// Plans a schedule for `problem` under `ctx`'s deadline/cancellation.
    ///
    /// Identical plans yield an empty (no-op) schedule. The result is
    /// deterministic for fixed inputs: racer peaks are exact objective
    /// values, strict-improvement pruning keeps the best-found order
    /// independent of thread timing, and ties are broken by a fixed racer
    /// priority.
    pub fn plan(
        &self,
        problem: &MigrationProblem<'_>,
        ctx: &SearchContext,
    ) -> Result<MigrationSchedule, MigrateError> {
        let base = StepSim::new(problem)?;
        // The ascending-id baseline doubles as the all-at-once peak and
        // as the incumbent seed for both racers.
        let in_order: Vec<usize> = base.active.clone();
        let baseline = {
            let mut sim = base.clone();
            evaluate_order(&mut sim, &in_order)
        };
        let all_at_once_peak = baseline.as_ref().ok().map(|&(_, peak)| peak);
        if let Some(peak) = all_at_once_peak {
            ctx.publish_incumbent(peak);
        }

        let outcome: Result<(Vec<usize>, u64, &'static str), MigrateError> = match &self.order {
            MigrationOrder::InOrder => {
                baseline.clone().map(|(order, peak)| (order, peak, "in-order"))
            }
            MigrationOrder::Greedy => {
                let mut sim = base.clone();
                greedy_order(&mut sim, ctx).map(|(order, peak)| (order, peak, "greedy"))
            }
            MigrationOrder::Exact => {
                let mut sim = base.clone();
                match exact_order(&mut sim, ctx) {
                    Ok((order, peak)) => Ok((order, peak, "exact")),
                    // The searcher prunes on strict improvement against
                    // the baseline incumbent; coming back empty-handed
                    // proves the baseline itself is already optimal.
                    Err(MigrateError::NoValidOrder) => {
                        baseline.clone().map(|(order, peak)| (order, peak, "exact"))
                    }
                    Err(e) => Err(e),
                }
            }
            MigrationOrder::Explicit(switches) => {
                let order = base.resolve_explicit(switches)?;
                let mut sim = base.clone();
                evaluate_order(&mut sim, &order).map(|(order, peak)| (order, peak, "explicit"))
            }
            MigrationOrder::Auto => {
                let (greedy, exact) = std::thread::scope(|scope| {
                    let (gctx, ectx) = (ctx.clone(), ctx.clone());
                    let base_ref = &base;
                    let g = scope.spawn(move || {
                        let mut sim = base_ref.clone();
                        greedy_order(&mut sim, &gctx)
                    });
                    let e = scope.spawn(move || {
                        let mut sim = base_ref.clone();
                        exact_order(&mut sim, &ectx)
                    });
                    (
                        g.join().expect("greedy orderer panicked"),
                        e.join().expect("exact orderer panicked"),
                    )
                });
                // Deterministic winner: lowest peak, ties by fixed racer
                // priority (greedy, exact, in-order).
                let ordered = [
                    greedy.map(|(order, peak)| (order, peak, "greedy")),
                    exact.map(|(order, peak)| (order, peak, "exact")),
                    baseline.clone().map(|(order, peak)| (order, peak, "in-order")),
                ];
                let mut winner: Option<(Vec<usize>, u64, &'static str)> = None;
                let mut no_valid_order = false;
                for candidate in ordered {
                    match candidate {
                        Ok(c) => {
                            if winner.as_ref().is_none_or(|w| c.1 < w.1) {
                                winner = Some(c);
                            }
                        }
                        Err(MigrateError::NoValidOrder) => no_valid_order = true,
                        Err(_) => {}
                    }
                }
                match winner {
                    Some(w) => Ok(w),
                    // Prefer the structural verdict over Interrupted so a
                    // genuinely unorderable instance is reported as such.
                    None if no_valid_order => Err(MigrateError::NoValidOrder),
                    None => Err(MigrateError::Interrupted),
                }
            }
        };
        let (order, peak, planner) = outcome?;
        let mut sim = base;
        Ok(sim.render_schedule(&order, peak, all_at_once_peak, planner))
    }
}

/// Convenience: the peak transient `A_max` of the ascending-id commit
/// order — what an all-at-once transaction exposes mid-commit. `None`
/// when that order reaches a cyclic intermediate state.
pub fn all_at_once_peak(problem: &MigrationProblem<'_>) -> Result<Option<u64>, MigrateError> {
    let mut sim = StepSim::new(problem)?;
    let order = sim.active.clone();
    Ok(evaluate_order(&mut sim, &order).ok().map(|(_, peak)| peak))
}

/// The shared step simulator: an [`IncrementalEval`] over the union of
/// both plans' occupied switches, positioned at plan A, plus the per-slot
/// mover lists that stepping commits. Cloning it gives each racer an
/// independent O(delta) probe engine over the same instance.
#[derive(Debug, Clone)]
struct StepSim {
    /// Dense slot → switch id, ascending.
    slots: Vec<SwitchId>,
    /// Per node index: its plan-A slot.
    a_slot: Vec<usize>,
    /// Per slot: node indices whose plan-B home it is and whose plan-A
    /// home differs — exactly what moves when the slot's switch commits.
    movers: Vec<Vec<usize>>,
    /// Slots with a non-empty mover list, ascending: the only switches
    /// whose position in the order affects the objective.
    active: Vec<usize>,
    /// Occupied-in-B switches with no movers (unchanged or shrink-only),
    /// committed first as neutral steps.
    neutral: Vec<SwitchId>,
    /// Dense index → [`NodeId`] (ids are dense, so this is the inverse of
    /// [`NodeId::index`]).
    node_ids: Vec<NodeId>,
    /// Per occupied-in-B switch: resident node count during its
    /// make-before-break window (|plan-A ∪ plan-B MATs|).
    staged_nodes: BTreeMap<SwitchId, usize>,
    eval: IncrementalEval,
    from_amax: u64,
}

impl StepSim {
    fn new(problem: &MigrationProblem<'_>) -> Result<Self, MigrateError> {
        let MigrationProblem { tdg, net, from, to } = *problem;
        let slots: Vec<SwitchId> =
            from.occupied_switches().union(&to.occupied_switches()).copied().collect();
        let slot_of: BTreeMap<SwitchId, usize> =
            slots.iter().enumerate().map(|(i, &s)| (s, i)).collect();

        let n = tdg.node_count();
        let mut a_slot = vec![usize::MAX; n];
        let mut b_slot = vec![usize::MAX; n];
        for id in tdg.node_ids() {
            let a = from.switch_of(id).ok_or(MigrateError::UnplacedNode(id))?;
            let b = to.switch_of(id).ok_or(MigrateError::UnplacedNode(id))?;
            a_slot[id.index()] = slot_of[&a];
            b_slot[id.index()] = slot_of[&b];
        }

        let mut eval = IncrementalEval::new(tdg, slots.len());
        for id in tdg.node_ids() {
            eval.place(id.index(), a_slot[id.index()]);
        }
        let from_amax = eval.amax();

        let mut movers: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
        for id in tdg.node_ids() {
            let (a, b) = (a_slot[id.index()], b_slot[id.index()]);
            if a != b {
                movers[b].push(id.index());
            }
        }
        let active: Vec<usize> = (0..slots.len()).filter(|&s| !movers[s].is_empty()).collect();
        let occupied_b = to.occupied_switches();
        let neutral: Vec<SwitchId> =
            occupied_b.iter().copied().filter(|s| movers[slot_of[s]].is_empty()).collect();

        // Make-before-break staging: during its own step a switch holds
        // both plans' MATs. Prove each union packs into the pipeline once
        // up front (the verdict is order-independent; every later
        // per-step probe hits the memoized entry).
        let mut cache = StageFeasCache::new(tdg);
        let mut staged_nodes = BTreeMap::new();
        for &s in &occupied_b {
            let resident: BTreeSet<NodeId> =
                from.nodes_on(s).union(&to.nodes_on(s)).copied().collect();
            let model = net.switch(s).target_model();
            if !cache.feasible_set(tdg, &model, &resident) {
                return Err(MigrateError::StagingInfeasible(s));
            }
            staged_nodes.insert(s, resident.len());
        }

        let node_ids: Vec<NodeId> = tdg.node_ids().collect();
        Ok(StepSim {
            slots,
            a_slot,
            movers,
            active,
            neutral,
            node_ids,
            staged_nodes,
            eval,
            from_amax,
        })
    }

    /// Commits `slot`: every node whose plan-B home it is moves in.
    fn commit(&mut self, slot: usize) {
        for &n in &self.movers[slot] {
            self.eval.unplace(n);
            self.eval.place(n, slot);
        }
    }

    /// Reverts [`StepSim::commit`], restoring the movers to plan A.
    fn uncommit(&mut self, slot: usize) {
        for &n in &self.movers[slot] {
            self.eval.unplace(n);
            self.eval.place(n, self.a_slot[n]);
        }
    }

    /// Maps an explicit switch list onto active slots, requiring it to
    /// cover exactly the order-relevant switches.
    fn resolve_explicit(&self, switches: &[SwitchId]) -> Result<Vec<usize>, MigrateError> {
        let active_set: BTreeSet<SwitchId> = self.active.iter().map(|&s| self.slots[s]).collect();
        let given: BTreeSet<SwitchId> = switches.iter().copied().collect();
        if given.len() != switches.len() {
            return Err(MigrateError::OrderMismatch("a switch is listed twice".to_string()));
        }
        if given != active_set {
            let expect: Vec<String> = active_set.iter().map(ToString::to_string).collect();
            return Err(MigrateError::OrderMismatch(format!(
                "the order must list exactly the switches whose commit moves MATs: {}",
                expect.join(", ")
            )));
        }
        let slot_of: BTreeMap<SwitchId, usize> =
            self.active.iter().map(|&s| (self.slots[s], s)).collect();
        Ok(switches.iter().map(|s| slot_of[s]).collect())
    }

    /// Renders a validated active-slot order as the full step schedule:
    /// neutral switches first (ascending), then the ordered active steps.
    fn render_schedule(
        &mut self,
        order: &[usize],
        peak: u64,
        all_at_once_peak: Option<u64>,
        planner: &str,
    ) -> MigrationSchedule {
        let mut steps = Vec::with_capacity(self.neutral.len() + order.len());
        for &switch in &self.neutral {
            steps.push(MigrationStep {
                switch,
                moved: Vec::new(),
                transient_amax: self.from_amax,
                staged_nodes: self.staged_nodes[&switch],
            });
        }
        let mut to_amax = self.from_amax;
        for &slot in order {
            self.commit(slot);
            let switch = self.slots[slot];
            let moved: Vec<NodeId> = self.movers[slot].iter().map(|&n| self.node_ids[n]).collect();
            to_amax = self.eval.amax();
            steps.push(MigrationStep {
                switch,
                moved,
                transient_amax: to_amax,
                staged_nodes: self.staged_nodes[&switch],
            });
        }
        MigrationSchedule {
            steps,
            peak_transient_amax: peak.max(self.from_amax),
            from_amax: self.from_amax,
            to_amax,
            all_at_once_peak,
            planner: planner.to_string(),
        }
    }
}

/// Replays a fixed active-slot order, returning its peak transient
/// `A_max` or [`MigrateError::NoValidOrder`] on a cyclic intermediate.
/// The simulator is left back at plan A.
fn evaluate_order(sim: &mut StepSim, order: &[usize]) -> Result<(Vec<usize>, u64), MigrateError> {
    let mut peak = sim.from_amax;
    let mut committed = 0usize;
    let mut valid = true;
    for &slot in order {
        sim.commit(slot);
        committed += 1;
        if !sim.eval.is_acyclic() {
            valid = false;
            break;
        }
        peak = peak.max(sim.eval.amax());
    }
    for &slot in order[..committed].iter().rev() {
        sim.uncommit(slot);
    }
    if valid {
        Ok((order.to_vec(), peak))
    } else {
        Err(MigrateError::NoValidOrder)
    }
}

/// Greedy orderer: repeatedly commit the remaining switch whose next
/// state has the lowest `A_max` (ties: lowest switch id), skipping
/// candidates that would make the intermediate state cyclic. Publishes
/// its final peak as a shared incumbent for the exact racer.
fn greedy_order(sim: &mut StepSim, ctx: &SearchContext) -> Result<(Vec<usize>, u64), MigrateError> {
    let mut remaining = sim.active.clone();
    let mut order: Vec<usize> = Vec::with_capacity(remaining.len());
    let mut peak = sim.from_amax;
    while !remaining.is_empty() {
        if ctx.should_stop() {
            for &slot in order.iter().rev() {
                sim.uncommit(slot);
            }
            return Err(MigrateError::Interrupted);
        }
        let mut best: Option<(u64, usize)> = None;
        // `remaining` stays ascending, so strict improvement breaks ties
        // toward the lowest switch id.
        for &slot in &remaining {
            sim.commit(slot);
            let acyclic = sim.eval.is_acyclic();
            let amax = sim.eval.amax();
            sim.uncommit(slot);
            if acyclic && best.is_none_or(|(b, _)| amax < b) {
                best = Some((amax, slot));
            }
        }
        let Some((amax, slot)) = best else {
            for &s in order.iter().rev() {
                sim.uncommit(s);
            }
            return Err(MigrateError::NoValidOrder);
        };
        sim.commit(slot);
        peak = peak.max(amax);
        order.push(slot);
        remaining.retain(|&s| s != slot);
    }
    ctx.publish_incumbent(peak);
    for &slot in order.iter().rev() {
        sim.uncommit(slot);
    }
    Ok((order, peak))
}

/// Exact orderer: depth-first branch-and-bound over permutations of the
/// active slots. The running peak is monotone along a prefix, so any
/// prefix whose peak already reaches the incumbent bound is pruned;
/// strict-improvement acceptance keeps the best-found order independent
/// of racer timing (every published bound is an achieved peak at or
/// above the optimum, and the path to any strictly better leaf has
/// running peaks strictly below it, so it can never be pruned).
fn exact_order(sim: &mut StepSim, ctx: &SearchContext) -> Result<(Vec<usize>, u64), MigrateError> {
    if sim.active.len() > MAX_EXACT_SWITCHES {
        return Err(MigrateError::Interrupted);
    }
    let mut search = ExactSearch {
        ctx,
        best_peak: crate::solver::NO_BOUND,
        best_order: None,
        probes: 0,
        stopped: false,
    };
    let mut remaining = sim.active.clone();
    let mut order = Vec::with_capacity(remaining.len());
    search.dfs(sim, &mut order, &mut remaining, sim.from_amax);
    match search.best_order {
        Some(order) => {
            ctx.publish_incumbent(search.best_peak);
            Ok((order, search.best_peak))
        }
        None if search.stopped => Err(MigrateError::Interrupted),
        None => Err(MigrateError::NoValidOrder),
    }
}

struct ExactSearch<'a> {
    ctx: &'a SearchContext,
    best_peak: u64,
    best_order: Option<Vec<usize>>,
    probes: u64,
    stopped: bool,
}

impl ExactSearch<'_> {
    fn dfs(
        &mut self,
        sim: &mut StepSim,
        order: &mut Vec<usize>,
        remaining: &mut Vec<usize>,
        peak: u64,
    ) {
        if remaining.is_empty() {
            if peak < self.best_peak {
                self.best_peak = peak;
                self.best_order = Some(order.clone());
                self.ctx.publish_incumbent(peak);
            }
            return;
        }
        for i in 0..remaining.len() {
            if self.stopped {
                return;
            }
            self.probes += 1;
            if self.probes.is_multiple_of(64) && self.ctx.should_stop() {
                self.stopped = true;
                return;
            }
            let slot = remaining[i];
            sim.commit(slot);
            let acyclic = sim.eval.is_acyclic();
            let next_peak = peak.max(sim.eval.amax());
            let bound = self.best_peak.min(self.ctx.incumbent_bound());
            if acyclic && next_peak < bound {
                order.push(slot);
                remaining.remove(i);
                self.dfs(sim, order, remaining, next_peak);
                remaining.insert(i, slot);
                order.pop();
            }
            sim.uncommit(slot);
        }
    }
}
