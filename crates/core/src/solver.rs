//! The unified solver architecture: one trait, one search context, and a
//! parallel anytime portfolio runner.
//!
//! Every optimizer in the workspace — the greedy heuristic, the exact
//! branch-over-assignments search, the MILP front end, and the baseline
//! frameworks — implements [`Solver`]: it receives a [`SearchContext`]
//! carrying the *only* time budget mechanism in the stack (a deadline), a
//! cooperative [`CancelToken`], and a shared incumbent bound, and returns a
//! uniform [`SolveOutcome`].
//!
//! On top of the trait, [`Portfolio`] races any set of solvers on std
//! threads. Fast heuristics publish incumbent objectives early through
//! [`SearchContext::publish_incumbent`]; exhaustive searches prune against
//! the best bound published by *any* thread ([`SearchContext::incumbent_bound`])
//! and stop as soon as a racer proves optimality (cancel-on-proven).
//!
//! # Determinism rules
//!
//! Racing under a wall-clock budget is inherently timing-dependent, so the
//! portfolio constrains *which* result can win:
//!
//! 1. The winner is the outcome with the **lowest objective**; ties break
//!    by **fixed racer priority** (the order solvers were passed in).
//! 2. A racer's own plan must be deterministic given its inputs. The
//!    exact search qualifies even under shared-bound pruning: externally
//!    published bounds always exceed the optimum, so they can never prune
//!    the DFS path to the first optimal leaf, and later equal-valued
//!    leaves are rejected by strict improvement — the returned assignment
//!    is the first optimal leaf in DFS order regardless of timing.
//! 3. `proven_optimal` and per-racer statistics (`nodes_explored`, wall
//!    times) **are** timing-dependent; reproducibility guarantees cover
//!    the winning plan and objective, not the stats.
//!
//! Consequence: with the default `{greedy, exact}` pairing the winning
//! plan is byte-identical across runs whenever the budget either lets the
//! exact racer finish or never lets it beat the heuristic.

use crate::deployment::{DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon};
use hermes_net::Network;
use hermes_tdg::Tdg;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel stored in the shared incumbent slot when no bound has been
/// published yet.
pub const NO_BOUND: u64 = u64::MAX;

/// Wall-clock budget used when a [`Solver`] is driven through the
/// budget-less [`DeploymentAlgorithm`] API (matching the historic default
/// of the exact solver).
pub const DEFAULT_DEPLOY_BUDGET: Duration = Duration::from_secs(30);

/// Cooperative cancellation flag shared by every racer of a portfolio.
///
/// Cloning shares the underlying flag. Solvers poll
/// [`SearchContext::should_stop`] at node granularity; nothing is ever
/// interrupted preemptively.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every context sharing this token observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// The raw shared flag, for handing to lower-level searches (e.g. the
    /// `hermes-milp` branch-and-bound controls).
    pub fn as_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }
}

/// Everything a [`Solver`] may consult while searching: the deadline, the
/// cancellation token, and the shared incumbent bound.
///
/// This is the single time-budget mechanism of the solver stack — solvers
/// hold no private timers. Cloning shares the token and the bound, so a
/// portfolio hands each racer a clone of one context.
#[derive(Debug, Clone)]
pub struct SearchContext {
    deadline: Option<Instant>,
    cancel: CancelToken,
    incumbent: Arc<AtomicU64>,
    floor: Arc<AtomicU64>,
    /// Worker budget for parallel searches; `None` = available parallelism.
    /// Plain data (not shared through an `Arc`): a portfolio hands every
    /// racer a clone with its own cap so racers × workers never exceed the
    /// requested total.
    threads: Option<NonZeroUsize>,
}

impl Default for SearchContext {
    fn default() -> Self {
        SearchContext::unbounded()
    }
}

impl SearchContext {
    /// Context with no deadline: exhaustive searches run to completion.
    pub fn unbounded() -> Self {
        SearchContext {
            deadline: None,
            cancel: CancelToken::new(),
            incumbent: Arc::new(AtomicU64::new(NO_BOUND)),
            floor: Arc::new(AtomicU64::new(0)),
            threads: None,
        }
    }

    /// Context whose deadline is `limit` from now.
    pub fn with_time_limit(limit: Duration) -> Self {
        SearchContext { deadline: Some(Instant::now() + limit), ..SearchContext::unbounded() }
    }

    /// Context with an absolute deadline.
    pub fn with_deadline(deadline: Instant) -> Self {
        SearchContext { deadline: Some(deadline), ..SearchContext::unbounded() }
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The shared cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Returns this context with an explicit worker budget for parallel
    /// searches (the parallel exact solver sizes its subtree pool from it).
    /// The budget is per-clone data: capping a racer's clone does not
    /// affect the parent context.
    #[must_use]
    pub fn with_threads(mut self, threads: NonZeroUsize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The explicit worker budget, if one was set via
    /// [`SearchContext::with_threads`].
    pub fn thread_budget(&self) -> Option<NonZeroUsize> {
        self.threads
    }

    /// The worker count a parallel search should use: the explicit budget,
    /// else [`std::thread::available_parallelism`] (1 when unknown).
    pub fn worker_count(&self) -> usize {
        match self.threads {
            Some(n) => n.get(),
            None => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
        }
    }

    /// The shared incumbent slot, for lower-level searches that consume
    /// the bound directly.
    pub fn shared_incumbent(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.incumbent)
    }

    /// `true` once the deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `true` when the solver should stop searching: cancelled or past the
    /// deadline. Cheap enough to poll per search node.
    pub fn should_stop(&self) -> bool {
        self.cancel.is_cancelled() || self.deadline_exceeded()
    }

    /// The best objective published by any solver sharing this context
    /// ([`NO_BOUND`] when none has been published).
    pub fn incumbent_bound(&self) -> u64 {
        self.incumbent.load(Ordering::Relaxed)
    }

    /// Publishes `objective` as an achieved upper bound. The slot only
    /// ever decreases (`fetch_min` semantics). Returns `true` when the
    /// publication improved the shared bound.
    ///
    /// Only objectives **achieved by a feasible plan in hand** may be
    /// published — exhaustive racers prune everything at or above this
    /// bound and rely on some racer holding a plan that attains it.
    pub fn publish_incumbent(&self, objective: u64) -> bool {
        self.incumbent.fetch_min(objective, Ordering::Relaxed) > objective
    }

    /// The proven lower bound on the objective (0 when none was raised).
    ///
    /// A feasible plan whose objective reaches this floor is optimal by
    /// construction — no exhaustion proof needed.
    pub fn objective_floor(&self) -> u64 {
        self.floor.load(Ordering::Relaxed)
    }

    /// Raises the objective floor (`fetch_max` semantics — the slot only
    /// ever grows). Returns `true` when `bound` improved the floor.
    ///
    /// Only *proven* lower bounds over all feasible plans may be raised
    /// (e.g. a [`Precheck`](crate::precheck::Precheck) mandatory-cut
    /// certificate): racers treat a plan at the floor as optimal.
    pub fn raise_floor(&self, bound: u64) -> bool {
        self.floor.fetch_max(bound, Ordering::Relaxed) < bound
    }
}

/// Search effort counters attached to every [`SolveOutcome`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Branch-and-bound / DFS nodes visited (0 for constructive solvers).
    pub nodes_explored: u64,
    /// Wall-clock time the solver ran.
    pub wall: Duration,
    /// When `Some(b)`, the search *proved* that no plan with objective
    /// strictly below `b` exists (exhaustion certificate). Unlike
    /// `proven_optimal` this can certify another racer's plan.
    pub proven_bound: Option<u64>,
}

/// Uniform result of any [`Solver`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// The best plan the solver found.
    pub plan: DeploymentPlan,
    /// Its `A_max` objective in bytes (Eq. 1) — always recomputed from the
    /// plan, whatever the solver's native objective is.
    pub objective: u64,
    /// `true` iff `plan` is proven `A_max`-optimal (by this solver alone
    /// or, for portfolio outcomes, by any racer's exhaustion certificate).
    pub proven_optimal: bool,
    /// Effort counters.
    pub stats: SolveStats,
}

/// The unified solver interface.
///
/// Implementors must honour the context: poll
/// [`SearchContext::should_stop`] during long searches, prune against
/// [`SearchContext::incumbent_bound`] when exhaustive, and publish every
/// improved feasible objective via [`SearchContext::publish_incumbent`].
pub trait Solver: DeploymentAlgorithm + Send + Sync {
    /// Runs the search under `ctx` and returns the best outcome found.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] when no feasible plan was found — including
    /// [`DeployError::NoImprovementProven`] when an exhaustive racer
    /// finished without beating the shared bound (a proof, not a failure).
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError>;
}

/// Adapter giving any [`Solver`] a [`DeploymentAlgorithm`] face with an
/// explicit wall-clock budget: the one place a `Duration` becomes a
/// [`SearchContext`] for callers of the budget-less `deploy` API.
#[derive(Debug, Clone)]
pub struct Budgeted<S> {
    solver: S,
    budget: Duration,
    threads: Option<NonZeroUsize>,
}

impl<S: Solver> Budgeted<S> {
    /// Wraps `solver` so `deploy` runs under `budget`.
    pub fn new(solver: S, budget: Duration) -> Self {
        Budgeted { solver, budget, threads: None }
    }

    /// Sets the worker budget `deploy` stamps onto its [`SearchContext`]
    /// (`None` keeps the available-parallelism default).
    #[must_use]
    pub fn with_threads(mut self, threads: Option<NonZeroUsize>) -> Self {
        self.threads = threads;
        self
    }

    /// The wrapped solver.
    pub fn inner(&self) -> &S {
        &self.solver
    }

    /// The configured budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }
}

impl<S: Solver> DeploymentAlgorithm for Budgeted<S> {
    fn name(&self) -> &str {
        self.solver.name()
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        let mut ctx = SearchContext::with_time_limit(self.budget);
        if let Some(threads) = self.threads {
            ctx = ctx.with_threads(threads);
        }
        self.solver.solve(tdg, net, eps, &ctx).map(|o| o.plan)
    }

    fn is_exhaustive(&self) -> bool {
        self.solver.is_exhaustive()
    }
}

impl<S: Solver> Solver for Budgeted<S> {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        // An explicit context wins over the stored budget.
        self.solver.solve(tdg, net, eps, ctx)
    }
}

/// Per-racer entry of a [`RaceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RacerReport {
    /// The racer's display name.
    pub name: String,
    /// Objective it achieved (`None` when it returned an error).
    pub objective: Option<u64>,
    /// Whether the racer itself claimed optimality.
    pub proven_optimal: bool,
    /// Exhaustion certificate (see [`SolveStats::proven_bound`]) — also
    /// extracted from [`DeployError::NoImprovementProven`] errors.
    pub proven_bound: Option<u64>,
    /// Search nodes the racer visited.
    pub nodes_explored: u64,
    /// Wall-clock time the racer ran before returning.
    pub wall: Duration,
    /// The error message when the racer failed.
    pub error: Option<String>,
}

/// Result of [`Portfolio::race`]: the winning outcome plus per-racer
/// telemetry (objective-over-time summaries for the bench harness).
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// Index into `reports` of the winning racer.
    pub winner: usize,
    /// The winning outcome, with `proven_optimal` upgraded by any racer's
    /// exhaustion certificate.
    pub outcome: SolveOutcome,
    /// Wall-clock time of the whole race.
    pub wall: Duration,
    /// One entry per racer, in priority order.
    pub reports: Vec<RacerReport>,
}

/// Anytime portfolio runner: races solvers on std threads against one
/// shared [`SearchContext`].
///
/// Priority (for deterministic tie-breaking) is the order racers are
/// passed in — put the deterministic heuristic first.
pub struct Portfolio {
    label: String,
    racers: Vec<Box<dyn Solver>>,
    exact_workers: Option<NonZeroUsize>,
}

impl std::fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio")
            .field("label", &self.label)
            .field("racers", &self.racers.iter().map(|r| r.name().to_owned()).collect::<Vec<_>>())
            .field("exact_workers", &self.exact_workers)
            .finish()
    }
}

impl Portfolio {
    /// Portfolio over `racers` in priority order.
    pub fn new(label: impl Into<String>, racers: Vec<Box<dyn Solver>>) -> Self {
        Portfolio { label: label.into(), racers, exact_workers: None }
    }

    /// Pins the per-racer worker budget handed to parallel racers (the
    /// exact search) instead of deriving it from the race context.
    #[must_use]
    pub fn with_worker_budget(mut self, workers: NonZeroUsize) -> Self {
        self.exact_workers = Some(workers);
        self
    }

    /// The pinned per-racer worker budget, if any (set by
    /// [`Portfolio::standard`] and [`Portfolio::with_worker_budget`]).
    pub fn worker_budget(&self) -> Option<NonZeroUsize> {
        self.exact_workers
    }

    /// The worker budget each racer's child context will carry in
    /// [`Portfolio::race`]: the pinned budget when set, otherwise the
    /// context's thread count minus one OS thread per *other* racer, so
    /// racers × workers never exceeds the requested total. Every racer but
    /// the parallel exact search is single-threaded, so reserving one
    /// thread each is exact, not an estimate.
    pub fn planned_workers(&self, ctx: &SearchContext) -> NonZeroUsize {
        self.exact_workers.unwrap_or_else(|| {
            let spare = ctx.worker_count().saturating_sub(self.racers.len().saturating_sub(1));
            NonZeroUsize::new(spare.max(1)).expect("max(1) is nonzero")
        })
    }

    /// The default deterministic pairing: the greedy heuristic publishes
    /// an incumbent within milliseconds, the bare exact search (no
    /// internal heuristic seed) prunes against it.
    pub fn greedy_exact() -> Self {
        Portfolio::new(
            "Portfolio",
            vec![
                Box::new(crate::heuristic::GreedyHeuristic::new()),
                Box::new(crate::exact::OptimalSolver::bare()),
            ],
        )
    }

    /// Preset sized to `threads` total OS threads: 1 → greedy; 2 → greedy
    /// + exact; 3 → + MILP; 4 and up → + balanced-split greedy.
    ///
    /// The exact racer's internal worker pool is budgeted so racers ×
    /// workers ≤ `threads`: one OS thread per single-threaded racer, the
    /// remainder to the parallel exact search (never below 1).
    pub fn standard(threads: usize) -> Self {
        use crate::heuristic::{GreedyHeuristic, SplitStrategy};
        let mut racers: Vec<Box<dyn Solver>> = vec![Box::new(GreedyHeuristic::new())];
        if threads >= 2 {
            racers.push(Box::new(crate::exact::OptimalSolver::bare()));
        }
        if threads >= 3 {
            racers.push(Box::new(crate::milp_formulation::MilpHermes::default()));
        }
        if threads >= 4 {
            racers.push(Box::new(GreedyHeuristic::with_strategy(SplitStrategy::Balanced)));
        }
        let workers = threads.saturating_sub(racers.len().saturating_sub(1)).max(1);
        Portfolio::new(format!("Portfolio(x{})", racers.len()), racers)
            .with_worker_budget(NonZeroUsize::new(workers).expect("max(1) is nonzero"))
    }

    /// The racers' names, in priority order.
    pub fn racer_names(&self) -> Vec<&str> {
        self.racers.iter().map(|r| r.name()).collect()
    }

    /// Races every solver on its own thread under clones of `ctx` and
    /// returns the deterministic winner plus per-racer telemetry.
    ///
    /// A racer that finishes with a proven-optimal outcome cancels the
    /// rest. Racer panics are demoted to per-racer errors.
    ///
    /// # Errors
    ///
    /// Returns the highest-priority racer error when no racer produced a
    /// plan.
    pub fn race(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<RaceReport, DeployError> {
        if self.racers.is_empty() {
            return Err(DeployError::NoFeasiblePlacement {
                reason: "portfolio has no racers".to_owned(),
            });
        }
        // Pre-solve bounds: a proven-infeasible instance returns instantly
        // (certificate in hand) instead of burning the budget; a proven
        // A_max floor seeds the shared context so a racer reaching it is
        // optimal without an exhaustion proof.
        let precheck = crate::precheck::Precheck::run(tdg, net, eps);
        if let Some(cert) = precheck.infeasible() {
            return Err(DeployError::ProvenInfeasible { certificate: cert.clone() });
        }
        ctx.raise_floor(precheck.amax_floor());
        // Cap every racer's internal worker pool so the race as a whole
        // respects the requested thread budget (racers × workers ≤ total).
        let workers = self.planned_workers(ctx);
        let start = Instant::now();
        let results: Vec<Result<SolveOutcome, DeployError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .racers
                .iter()
                .map(|racer| {
                    let child = ctx.clone().with_threads(workers);
                    scope.spawn(move || {
                        let result = racer.solve(tdg, net, eps, &child);
                        if let Ok(outcome) = &result {
                            // Belt and braces: solvers publish themselves,
                            // but the race must never lose a bound.
                            child.publish_incumbent(outcome.objective);
                            // A plan at the proven objective floor cannot
                            // be beaten — stop the other racers too.
                            if outcome.proven_optimal
                                || outcome.objective <= child.objective_floor()
                            {
                                child.cancel_token().cancel();
                            }
                        }
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(DeployError::NoFeasiblePlacement {
                            reason: "solver thread panicked".to_owned(),
                        })
                    })
                })
                .collect()
        });
        let wall = start.elapsed();

        let reports: Vec<RacerReport> = self
            .racers
            .iter()
            .zip(&results)
            .map(|(racer, result)| match result {
                Ok(o) => RacerReport {
                    name: racer.name().to_owned(),
                    objective: Some(o.objective),
                    proven_optimal: o.proven_optimal,
                    proven_bound: o.stats.proven_bound,
                    nodes_explored: o.stats.nodes_explored,
                    wall: o.stats.wall,
                    error: None,
                },
                Err(e) => RacerReport {
                    name: racer.name().to_owned(),
                    objective: None,
                    proven_optimal: false,
                    proven_bound: match e {
                        DeployError::NoImprovementProven { bound } => Some(*bound),
                        _ => None,
                    },
                    nodes_explored: 0,
                    wall,
                    error: Some(e.to_string()),
                },
            })
            .collect();

        // Deterministic winner: lowest objective, then racer priority.
        let winner = match results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().ok().map(|o| (o.objective, i)))
            .min()
        {
            Some((_, i)) => i,
            None => {
                // No plan anywhere: surface the highest-priority hard
                // error (a pure exhaustion proof means the bound came
                // from outside this race).
                let err = results
                    .into_iter()
                    .map(|r| r.expect_err("no Ok result"))
                    .find(|e| !matches!(e, DeployError::NoImprovementProven { .. }))
                    .unwrap_or(DeployError::NoFeasiblePlacement {
                        reason: "every racer proved the external bound unimprovable".to_owned(),
                    });
                return Err(err);
            }
        };
        let mut outcome = results.into_iter().nth(winner).expect("winner index").expect("is Ok");
        // Any racer's exhaustion certificate at or above the winning
        // objective — or the precheck's proven floor — certifies the
        // winner optimal.
        if reports.iter().filter_map(|r| r.proven_bound).any(|b| outcome.objective <= b)
            || outcome.objective <= ctx.objective_floor()
        {
            outcome.proven_optimal = true;
        }
        Ok(RaceReport { winner, outcome, wall, reports })
    }
}

impl DeploymentAlgorithm for Portfolio {
    fn name(&self) -> &str {
        &self.label
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        self.solve(tdg, net, eps, &SearchContext::with_time_limit(DEFAULT_DEPLOY_BUDGET))
            .map(|o| o.plan)
    }

    fn is_exhaustive(&self) -> bool {
        self.racers.iter().any(|r| r.is_exhaustive())
    }
}

impl Solver for Portfolio {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        let race = self.race(tdg, net, eps, ctx)?;
        let mut outcome = race.outcome;
        outcome.stats = SolveStats {
            nodes_explored: race.reports.iter().map(|r| r.nodes_explored).sum(),
            wall: race.wall,
            proven_bound: race.reports.iter().filter_map(|r| r.proven_bound).max(),
        };
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::OptimalSolver;
    use crate::heuristic::GreedyHeuristic;
    use crate::test_support::{chain_tdg, tiny_switches};

    #[test]
    fn context_publish_is_monotone() {
        let ctx = SearchContext::unbounded();
        assert_eq!(ctx.incumbent_bound(), NO_BOUND);
        assert!(ctx.publish_incumbent(10));
        assert!(!ctx.publish_incumbent(12), "larger bound must not stick");
        assert_eq!(ctx.incumbent_bound(), 10);
        assert!(ctx.publish_incumbent(3));
        assert_eq!(ctx.incumbent_bound(), 3);
    }

    #[test]
    fn cancel_token_is_shared_by_clones() {
        let ctx = SearchContext::unbounded();
        let clone = ctx.clone();
        assert!(!ctx.should_stop());
        clone.cancel_token().cancel();
        assert!(ctx.should_stop());
    }

    #[test]
    fn deadline_in_the_past_stops_immediately() {
        let ctx = SearchContext::with_time_limit(Duration::ZERO);
        assert!(ctx.should_stop());
    }

    #[test]
    fn portfolio_matches_exact_and_proves() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let eps = Epsilon::loose();
        let race = Portfolio::greedy_exact()
            .race(&tdg, &net, &eps, &SearchContext::with_time_limit(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(race.outcome.objective, 1);
        assert!(race.outcome.proven_optimal, "{:?}", race.reports);
    }

    #[test]
    fn portfolio_never_worse_than_greedy_alone() {
        let tdg = chain_tdg(&[3, 1, 4, 1, 5], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::loose();
        let greedy = GreedyHeuristic::new()
            .solve(&tdg, &net, &eps, &SearchContext::unbounded())
            .unwrap()
            .objective;
        let portfolio = Portfolio::greedy_exact()
            .solve(&tdg, &net, &eps, &SearchContext::with_time_limit(Duration::from_secs(10)))
            .unwrap()
            .objective;
        assert!(portfolio <= greedy, "portfolio {portfolio} > greedy {greedy}");
    }

    #[test]
    fn shared_bound_prunes_the_exact_search() {
        // The same instance explored bare vs with a pre-published greedy
        // bound: the bound must strictly reduce the node count.
        let tdg = chain_tdg(&[1, 2, 3, 4, 5, 6], 0.5);
        let net = tiny_switches(4, 2, 0.5);
        let eps = Epsilon::loose();
        let bare = OptimalSolver::bare()
            .solve(&tdg, &net, &eps, &SearchContext::unbounded())
            .unwrap()
            .stats
            .nodes_explored;
        let seeded_ctx = SearchContext::unbounded();
        let greedy = GreedyHeuristic::new().solve(&tdg, &net, &eps, &seeded_ctx).unwrap().objective;
        assert!(seeded_ctx.incumbent_bound() <= greedy);
        let bounded = OptimalSolver::bare()
            .solve(&tdg, &net, &eps, &seeded_ctx)
            .map(|o| o.stats.nodes_explored)
            .unwrap_or(0);
        assert!(bounded < bare, "bound did not prune: {bounded} >= {bare}");
    }

    #[test]
    fn empty_portfolio_is_an_error() {
        let tdg = chain_tdg(&[1], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let err = Portfolio::new("empty", Vec::new())
            .race(&tdg, &net, &Epsilon::loose(), &SearchContext::unbounded())
            .unwrap_err();
        assert!(matches!(err, DeployError::NoFeasiblePlacement { .. }));
    }

    #[test]
    fn budgeted_adapter_deploys() {
        let tdg = chain_tdg(&[1, 4], 0.5);
        let net = tiny_switches(2, 2, 0.5);
        let algo = Budgeted::new(OptimalSolver::default(), Duration::from_secs(5));
        assert_eq!(algo.name(), "Optimal");
        assert!(algo.is_exhaustive());
        let plan = algo.deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 1);
    }

    #[test]
    fn standard_presets_scale_with_threads() {
        assert_eq!(Portfolio::standard(1).racer_names().len(), 1);
        assert_eq!(Portfolio::standard(2).racer_names().len(), 2);
        assert_eq!(Portfolio::standard(4).racer_names().len(), 4);
        assert_eq!(Portfolio::standard(16).racer_names().len(), 4);
    }

    #[test]
    fn standard_presets_budget_workers_within_requested_threads() {
        // racers × workers ≤ requested: every single-threaded racer
        // reserves one OS thread, the exact racer gets the remainder.
        for (threads, racers, workers) in
            [(1, 1, 1), (2, 2, 1), (3, 3, 1), (4, 4, 1), (8, 4, 5), (16, 4, 13)]
        {
            let p = Portfolio::standard(threads);
            assert_eq!(p.racer_names().len(), racers, "racers at {threads}");
            let budget = p.worker_budget().expect("standard pins a budget").get();
            assert_eq!(budget, workers, "workers at {threads}");
            assert!(budget + racers - 1 <= threads.max(1), "oversubscribed at {threads}");
            // The pinned budget wins over whatever the race context says.
            let ctx = SearchContext::unbounded()
                .with_threads(std::num::NonZeroUsize::new(64).expect("nonzero"));
            assert_eq!(p.planned_workers(&ctx).get(), workers);
        }
        // Without a pinned budget the context's thread count is split.
        let p = Portfolio::new("P", vec![]);
        let ctx = SearchContext::unbounded()
            .with_threads(std::num::NonZeroUsize::new(6).expect("nonzero"));
        assert_eq!(p.planned_workers(&ctx).get(), 6);
    }

    #[test]
    fn context_floor_is_monotone_and_shared() {
        let ctx = SearchContext::unbounded();
        assert_eq!(ctx.objective_floor(), 0);
        assert!(ctx.raise_floor(7));
        assert!(!ctx.raise_floor(5), "lower floor must not stick");
        let clone = ctx.clone();
        assert_eq!(clone.objective_floor(), 7);
        assert!(clone.raise_floor(9));
        assert_eq!(ctx.objective_floor(), 9);
    }

    #[test]
    fn portfolio_returns_proven_infeasible_instantly() {
        // eps2 = 1 but the 4 x 0.5 MATs need two 1.0-capacity switches:
        // the precheck settles it without consuming the 10 s budget.
        let tdg = chain_tdg(&[1, 1, 1], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::new(f64::INFINITY, 1);
        let start = Instant::now();
        let err = Portfolio::greedy_exact()
            .race(&tdg, &net, &eps, &SearchContext::with_time_limit(Duration::from_secs(10)))
            .unwrap_err();
        assert!(matches!(err, DeployError::ProvenInfeasible { .. }), "{err}");
        assert!(start.elapsed() < Duration::from_millis(100), "{:?}", start.elapsed());
    }

    #[test]
    fn mandatory_cut_floor_certifies_the_winner() {
        // Two 0.7 MATs cannot share a 1.0-capacity switch, so A_max >= 9;
        // any plan achieving 9 is optimal via the floor alone.
        let tdg = chain_tdg(&[9], 0.7);
        let net = tiny_switches(2, 2, 0.5);
        let ctx = SearchContext::with_time_limit(Duration::from_secs(10));
        let race = Portfolio::greedy_exact().race(&tdg, &net, &Epsilon::loose(), &ctx).unwrap();
        assert_eq!(ctx.objective_floor(), 9);
        assert_eq!(race.outcome.objective, 9);
        assert!(race.outcome.proven_optimal);
    }

    #[test]
    fn race_is_deterministic_on_small_instances() {
        let tdg = chain_tdg(&[2, 7, 1, 8, 2], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::loose();
        let run = || {
            let race = Portfolio::greedy_exact()
                .race(&tdg, &net, &eps, &SearchContext::with_time_limit(Duration::from_secs(10)))
                .unwrap();
            (race.winner, race.outcome.objective, race.outcome.plan)
        };
        let first = run();
        for _ in 0..3 {
            assert_eq!(run(), first);
        }
    }
}
