//! Pre-solve infeasibility certificates and objective floors.
//!
//! Before a portfolio burns its wall-clock budget on an instance, a handful
//! of O(V + E) bounds can already settle it: if a single MAT exceeds every
//! switch, if total demand exceeds network capacity, if the ε₂ switch
//! budget is below the provable minimum, or if ε₁ is below the latency any
//! feasible plan must pay, no search will ever find a plan. Each such
//! conclusion is a [`Certificate`] — a machine-readable proof object with a
//! stable diagnostic code — and [`Precheck::run`] collects all of them.
//!
//! Certificates come in two flavors:
//!
//! * **Infeasibility certificates** ([`Certificate::is_infeasible`] true):
//!   the instance provably has no feasible plan. [`Portfolio`] returns
//!   [`DeployError::ProvenInfeasible`] instantly instead of racing.
//! * **Objective floors** (`AmaxFloor`): a proven lower bound on `A_max`
//!   over *all* feasible plans. The portfolio seeds
//!   [`SearchContext::raise_floor`] with it; a racer whose plan reaches the
//!   floor is optimal by construction, which upgrades `proven_optimal`
//!   without waiting for an exhaustion proof.
//!
//! Every bound here must be *sound*: it may be arbitrarily loose, but a
//! certificate must never rule out a feasible instance and a floor must
//! never exceed the true optimum (`tests/audit_soundness.rs` pins both
//! against exhaustive search).
//!
//! [`Portfolio`]: crate::solver::Portfolio
//! [`DeployError::ProvenInfeasible`]: crate::deployment::DeployError::ProvenInfeasible
//! [`SearchContext::raise_floor`]: crate::solver::SearchContext::raise_floor

use crate::deployment::Epsilon;
use hermes_net::{Network, TargetModel};
use hermes_tdg::{NodeId, Tdg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Float slack for resource comparisons (capacities and demands are
/// human-scale numbers, so an absolute tolerance suffices).
const TOL: f64 = 1e-9;

/// A machine-checkable pre-solve conclusion about a deployment instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Certificate {
    /// The network has no programmable switch that is up, but the TDG has
    /// MATs to place.
    NoProgrammableSwitch {
        /// Number of MATs awaiting placement.
        nodes: usize,
    },
    /// One MAT alone exceeds the total capacity of the largest switch
    /// (violates Eq. 9 on every switch).
    MatTooLarge {
        /// Program-qualified MAT name.
        mat: String,
        /// Its resource demand.
        resource: f64,
        /// The largest per-switch total capacity available.
        max_capacity: f64,
    },
    /// Total resource demand exceeds the summed capacity of every
    /// programmable switch that is up (Eq. 9 aggregated).
    InsufficientCapacity {
        /// Σ R(a) over all MATs.
        required: f64,
        /// Σ stages · C_stage over programmable up switches.
        available: f64,
    },
    /// One MAT would fit some switch's pipeline stages, but exceeds every
    /// programmable target's total-resource *budget* — the heterogeneity
    /// generalization of `MatTooLarge` (which fires when not even the
    /// pipeline sum suffices).
    MatExceedsTargetBudget {
        /// Program-qualified MAT name.
        mat: String,
        /// Its resource demand.
        resource: f64,
        /// The largest budget-clamped per-switch capacity available.
        max_capacity: f64,
        /// The largest raw pipeline sum (`C_stage × C_res`) available —
        /// `resource` fits under this, which is what makes the budget the
        /// binding constraint.
        max_pipeline: f64,
    },
    /// Aggregate demand fits the summed pipeline stages of the
    /// programmable switches but exceeds their summed target budgets —
    /// the heterogeneity generalization of `InsufficientCapacity`.
    BudgetedCapacityInsufficient {
        /// Σ R(a) over all MATs.
        required: f64,
        /// Σ budget-clamped capacities over programmable up switches.
        available: f64,
        /// Σ raw pipeline sums over the same switches.
        pipeline_available: f64,
    },
    /// A dependency chain is longer than any switch pipeline, so the
    /// program must span at least two switches — but the network has fewer
    /// programmable switches than that.
    SwitchFloorExceedsNetwork {
        /// Minimum number of occupied switches in any feasible plan.
        needed: usize,
        /// Programmable switches that are up.
        programmable: usize,
    },
    /// The provable minimum number of occupied switches exceeds the ε₂
    /// bound (Eq. 5 can never hold).
    SwitchFloorExceedsBound {
        /// Minimum `Q_occ` over all feasible plans.
        needed: usize,
        /// The administrator's ε₂.
        bound: usize,
    },
    /// The provable minimum end-to-end coordination latency exceeds the ε₁
    /// bound (Eq. 4 can never hold).
    LatencyFloorExceedsBound {
        /// Lower bound on `t_e2e` in microseconds over all feasible plans.
        floor_us: f64,
        /// The administrator's ε₁ in microseconds.
        bound_us: f64,
    },
    /// A proven lower bound on `A_max`: some dependency edge must cross
    /// switches in every feasible plan. Not an infeasibility — the
    /// portfolio uses it as an objective floor.
    AmaxFloor {
        /// `A_max` is at least this many bytes in every feasible plan.
        bytes: u64,
        /// Human-readable witness of the mandatory cut.
        witness: String,
    },
    /// Informational: the TDG carries state-access relaxations, so some
    /// edges were exempted from the chain and cut bounds above. Not an
    /// infeasibility — it records that the instance was prechecked under
    /// relaxed semantics and the verifier must certify every relaxed edge.
    RelaxationApplied {
        /// Number of relaxed edges in the TDG.
        relaxed_edges: usize,
        /// Total edge count, for scale.
        total_edges: usize,
    },
}

impl Certificate {
    /// Stable diagnostic code (`HC3xx` block).
    pub fn code(&self) -> &'static str {
        match self {
            Certificate::NoProgrammableSwitch { .. } => "HC301",
            Certificate::MatTooLarge { .. } => "HC302",
            Certificate::InsufficientCapacity { .. } => "HC303",
            Certificate::SwitchFloorExceedsNetwork { .. } => "HC304",
            Certificate::SwitchFloorExceedsBound { .. } => "HC305",
            Certificate::LatencyFloorExceedsBound { .. } => "HC306",
            Certificate::AmaxFloor { .. } => "HC307",
            Certificate::MatExceedsTargetBudget { .. } => "HC308",
            Certificate::BudgetedCapacityInsufficient { .. } => "HC309",
            Certificate::RelaxationApplied { .. } => "HC310",
        }
    }

    /// `true` when this certificate proves the instance has no feasible
    /// plan (everything except the `AmaxFloor` objective bound and the
    /// informational `RelaxationApplied` notice).
    pub fn is_infeasible(&self) -> bool {
        !matches!(self, Certificate::AmaxFloor { .. } | Certificate::RelaxationApplied { .. })
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certificate::NoProgrammableSwitch { nodes } => {
                write!(f, "{nodes} MAT(s) to place but no programmable switch is up")
            }
            Certificate::MatTooLarge { mat, resource, max_capacity } => write!(
                f,
                "MAT `{mat}` needs R={resource:.2} but the largest switch holds {max_capacity:.2}"
            ),
            Certificate::InsufficientCapacity { required, available } => write!(
                f,
                "total demand {required:.2} exceeds total programmable capacity {available:.2}"
            ),
            Certificate::SwitchFloorExceedsNetwork { needed, programmable } => write!(
                f,
                "any plan occupies >= {needed} switches but only {programmable} are programmable"
            ),
            Certificate::SwitchFloorExceedsBound { needed, bound } => {
                write!(f, "any plan occupies >= {needed} switches but eps2 = {bound}")
            }
            Certificate::LatencyFloorExceedsBound { floor_us, bound_us } => write!(
                f,
                "any plan pays >= {floor_us:.1} us of coordination latency but eps1 = {bound_us:.1} us"
            ),
            Certificate::AmaxFloor { bytes, witness } => {
                write!(f, "A_max >= {bytes} B in every feasible plan ({witness})")
            }
            Certificate::RelaxationApplied { relaxed_edges, total_edges } => write!(
                f,
                "{relaxed_edges} of {total_edges} dependency edges relaxed by state-access \
                 analysis; bounds exempt them and the verifier must certify each"
            ),
            Certificate::MatExceedsTargetBudget { mat, resource, max_capacity, max_pipeline } => {
                write!(
                    f,
                    "MAT `{mat}` needs R={resource:.2}, within the largest pipeline sum \
                     {max_pipeline:.2} but over every target budget (best: {max_capacity:.2})"
                )
            }
            Certificate::BudgetedCapacityInsufficient {
                required,
                available,
                pipeline_available,
            } => write!(
                f,
                "total demand {required:.2} fits the summed pipelines ({pipeline_available:.2}) \
                 but exceeds the summed target budgets ({available:.2})"
            ),
        }
    }
}

/// The result of running every pre-solve bound on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Precheck {
    /// Certificates in a deterministic order (infeasibility first, floors
    /// last).
    pub certificates: Vec<Certificate>,
}

impl Precheck {
    /// Runs every bound. O(V + E + S log S) — cheap enough to run in front
    /// of every solve.
    pub fn run(tdg: &Tdg, net: &Network, eps: &Epsilon) -> Precheck {
        let mut certs = Vec::new();
        let n = tdg.node_count();
        if n == 0 {
            return Precheck { certificates: certs };
        }

        let prog = net.programmable_switches();
        if prog.is_empty() {
            certs.push(Certificate::NoProgrammableSwitch { nodes: n });
            return Precheck { certificates: certs };
        }

        // Per-switch cost models; capacities descending — the prefix-sum
        // argument below needs the greedy (largest-first) packing order.
        let models: Vec<TargetModel> = prog.iter().map(|&s| net.switch(s).target_model()).collect();
        let mut caps: Vec<f64> = models.iter().map(TargetModel::total_capacity).collect();
        caps.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let cap_max = caps[0];
        // The budget-free view: what the pipelines could hold if only
        // per-stage capacity bound. On default networks this equals the
        // clamped numbers, so the budget-specific certificates never fire.
        let pipe_max =
            models.iter().map(TargetModel::pipeline_capacity).fold(f64::NEG_INFINITY, f64::max);

        for node in tdg.nodes() {
            let r = node.mat.resource();
            if r > cap_max + TOL {
                if r <= pipe_max + TOL {
                    certs.push(Certificate::MatExceedsTargetBudget {
                        mat: node.name.clone(),
                        resource: r,
                        max_capacity: cap_max,
                        max_pipeline: pipe_max,
                    });
                } else {
                    certs.push(Certificate::MatTooLarge {
                        mat: node.name.clone(),
                        resource: r,
                        max_capacity: cap_max,
                    });
                }
            }
        }

        let required = tdg.total_resource();
        let available: f64 = caps.iter().sum();
        if required > available + TOL {
            let pipeline_available: f64 = models.iter().map(TargetModel::pipeline_capacity).sum();
            if required <= pipeline_available + TOL {
                certs.push(Certificate::BudgetedCapacityInsufficient {
                    required,
                    available,
                    pipeline_available,
                });
            } else {
                certs.push(Certificate::InsufficientCapacity { required, available });
            }
        }

        // Minimum occupied switches: even packing greedily into the
        // largest switches, `needed` of them are required to hold Σ R.
        // Any real plan fragments at least this much, so this is a valid
        // lower bound on Q_occ.
        let mut needed = 1usize;
        {
            let mut acc = 0.0;
            let mut k = 0usize;
            while acc + TOL < required && k < caps.len() {
                acc += caps[k];
                k += 1;
            }
            needed = needed.max(k.max(1));
        }

        // Chain bound: `longest` MATs in dependency sequence need strictly
        // increasing stages when co-resident (Eq. 8), so a chain longer
        // than the deepest pipeline must split across >= 2 switches —
        // and the chain's bottleneck edge byte count floors A_max. A
        // software target has no architectural stage limit
        // (`stage_limit() == None`), so its presence disables the bound.
        let max_stages = models
            .iter()
            .map(|m| m.stage_limit())
            .try_fold(0usize, |acc, limit| limit.map(|l| acc.max(l)));
        let longest = longest_chain(tdg);
        let mut amax_floor = 0u64;
        let mut witness = String::new();
        let mut route_needed = false;
        if let (Some((len, path)), Some(max_stages)) = (&longest, max_stages) {
            if *len > max_stages {
                route_needed = true;
                needed = needed.max(2);
                if prog.len() < 2 {
                    certs.push(Certificate::SwitchFloorExceedsNetwork {
                        needed: 2,
                        programmable: prog.len(),
                    });
                }
                if let Some(bottleneck) = chain_bottleneck(tdg, path) {
                    if bottleneck > amax_floor {
                        amax_floor = bottleneck;
                        witness = format!(
                            "a {len}-MAT chain exceeds the deepest {max_stages}-stage pipeline; \
                             its weakest edge carries {bottleneck} B"
                        );
                    }
                }
            }
        }

        // Pairwise bound: an edge whose endpoints cannot share even the
        // largest switch must cross in every plan, so its bytes floor
        // A_max directly. Relaxed edges still force a second switch when
        // their endpoints cannot co-reside (that part is pure resource
        // arithmetic) but they mandate no route and carry no bytes, so
        // they never raise the route count or the A_max floor.
        for e in tdg.edges() {
            let (a, b) = (tdg.node(e.from), tdg.node(e.to));
            if a.mat.resource() + b.mat.resource() > cap_max + TOL {
                needed = needed.max(2);
                if e.dep.is_relaxed() {
                    continue;
                }
                route_needed = true;
                if u64::from(e.bytes) > amax_floor {
                    amax_floor = u64::from(e.bytes);
                    witness = format!(
                        "`{}` -> `{}` cannot co-reside (R = {:.2} + {:.2} > {:.2})",
                        a.name,
                        b.name,
                        a.mat.resource(),
                        b.mat.resource(),
                        cap_max
                    );
                }
            }
        }

        if needed > eps.max_switches {
            certs.push(Certificate::SwitchFloorExceedsBound { needed, bound: eps.max_switches });
        }

        // Latency floor: every inter-switch route pays at least its two
        // (distinct, programmable) endpoint switches plus one link. A
        // weakly connected TDG spread over `needed` switches crosses at
        // least `needed - 1` distinct switch pairs.
        let strict_edges = tdg.edge_count() - relaxed_edge_count(tdg);
        let mut min_routes = usize::from(route_needed);
        if needed >= 2 && strict_edges > 0 && weakly_connected(tdg) {
            min_routes = min_routes.max(needed - 1);
        }
        if min_routes > 0 && eps.max_latency_us.is_finite() {
            let mut lats: Vec<f64> = prog.iter().map(|&s| net.switch(s).latency_us).collect();
            lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let endpoint_floor = if lats.len() >= 2 { lats[0] + lats[1] } else { lats[0] };
            let min_link = net
                .links()
                .iter()
                .filter(|l| net.is_link_up(l.a, l.b))
                .map(|l| l.latency_us)
                .fold(f64::INFINITY, f64::min);
            // No up link at all still lower-bounds each route by its
            // endpoints (the route itself is then impossible, but the
            // weaker bound keeps the certificate finite and sound).
            let link_floor = if min_link.is_finite() { min_link } else { 0.0 };
            let floor_us = min_routes as f64 * (endpoint_floor + link_floor);
            if floor_us > eps.max_latency_us {
                certs.push(Certificate::LatencyFloorExceedsBound {
                    floor_us,
                    bound_us: eps.max_latency_us,
                });
            }
        }

        if amax_floor > 0 {
            certs.push(Certificate::AmaxFloor { bytes: amax_floor, witness });
        }

        let relaxed_edges = relaxed_edge_count(tdg);
        if relaxed_edges > 0 {
            certs.push(Certificate::RelaxationApplied {
                relaxed_edges,
                total_edges: tdg.edge_count(),
            });
        }

        // Deterministic presentation: infeasibility certificates first
        // (stable within each class by construction order above).
        certs.sort_by_key(|c| usize::from(!c.is_infeasible()));
        Precheck { certificates: certs }
    }

    /// The first infeasibility certificate, if any.
    pub fn infeasible(&self) -> Option<&Certificate> {
        self.certificates.iter().find(|c| c.is_infeasible())
    }

    /// The proven lower bound on `A_max` (0 when no mandatory cut exists).
    pub fn amax_floor(&self) -> u64 {
        self.certificates
            .iter()
            .filter_map(|c| match c {
                Certificate::AmaxFloor { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Longest path in the DAG by node count, with one witness path.
/// `None` when the graph is cyclic (the audit reports that separately;
/// no chain bound is emitted then). Relaxed edges impose no Eq. 8 stage
/// ordering, so they do not extend chains — a relaxed dependency between
/// co-resident MATs never forces an extra pipeline stage.
fn longest_chain(tdg: &Tdg) -> Option<(usize, Vec<NodeId>)> {
    let order = tdg.topo_order()?;
    let n = tdg.node_count();
    // dist[v] = longest chain ending at v (in nodes); pred for the witness.
    let mut dist = vec![1usize; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    for &u in &order {
        for e in tdg.out_edges(u) {
            if e.dep.is_relaxed() {
                continue;
            }
            let v = e.to;
            if dist[u.index()] + 1 > dist[v.index()] {
                dist[v.index()] = dist[u.index()] + 1;
                pred[v.index()] = Some(u);
            }
        }
    }
    let end = order.iter().copied().max_by_key(|v| dist[v.index()])?;
    let mut path = vec![end];
    while let Some(p) = pred[path.last().unwrap().index()] {
        path.push(p);
    }
    path.reverse();
    Some((dist[end.index()], path))
}

/// The smallest edge weight along consecutive `path` hops — the bytes any
/// split of the chain must pay at minimum.
fn chain_bottleneck(tdg: &Tdg, path: &[NodeId]) -> Option<u64> {
    path.windows(2)
        .map(|w| {
            tdg.out_edges(w[0])
                .filter(|e| e.to == w[1] && !e.dep.is_relaxed())
                .map(|e| u64::from(e.bytes))
                .max()
                .unwrap_or(0)
        })
        .min()
}

/// Number of edges carrying a relaxed dependency type.
fn relaxed_edge_count(tdg: &Tdg) -> usize {
    tdg.edges().iter().filter(|e| e.dep.is_relaxed()).count()
}

/// Undirected connectivity of the dependency graph over *strict* edges
/// only. Relaxed edges mandate no route, so a graph held together solely
/// by them can legally split across switches without paying any
/// coordination latency — counting them here would make the latency
/// floor unsound.
fn weakly_connected(tdg: &Tdg) -> bool {
    let n = tdg.node_count();
    if n == 0 {
        return true;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in tdg.edges() {
        if e.dep.is_relaxed() {
            continue;
        }
        adj[e.from.index()].push(e.to.index());
        adj[e.to.index()].push(e.from.index());
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 0usize;
    while let Some(u) = stack.pop() {
        count += 1;
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_tdg, tiny_switches};
    use hermes_net::{topology, Switch};

    #[test]
    fn empty_tdg_yields_no_certificates() {
        let tdg = Tdg::new(hermes_tdg::AnalysisMode::Intersection);
        let net = tiny_switches(2, 2, 1.0);
        let pre = Precheck::run(&tdg, &net, &Epsilon::loose());
        assert!(pre.certificates.is_empty());
        assert!(pre.infeasible().is_none());
        assert_eq!(pre.amax_floor(), 0);
    }

    #[test]
    fn no_programmable_switch_is_certified() {
        let tdg = chain_tdg(&[4], 0.5);
        let mut net = hermes_net::Network::new();
        net.add_switch(Switch::legacy("l0"));
        let pre = Precheck::run(&tdg, &net, &Epsilon::loose());
        let cert = pre.infeasible().expect("infeasible");
        assert_eq!(cert.code(), "HC301");
    }

    #[test]
    fn oversized_mat_is_certified() {
        // Each switch holds 2 stages x 0.5 = 1.0; one MAT demands 3.0.
        let tdg = chain_tdg(&[4], 3.0);
        let net = tiny_switches(2, 2, 0.5);
        let pre = Precheck::run(&tdg, &net, &Epsilon::loose());
        assert!(pre.certificates.iter().any(|c| matches!(c, Certificate::MatTooLarge { .. })));
    }

    #[test]
    fn total_demand_over_capacity_is_certified() {
        // 3 MATs x 0.8 = 2.4 demand vs 2 switches x 1.0 capacity.
        let tdg = chain_tdg(&[1, 1], 0.8);
        let net = tiny_switches(2, 2, 0.5);
        let pre = Precheck::run(&tdg, &net, &Epsilon::loose());
        assert!(pre
            .certificates
            .iter()
            .any(|c| matches!(c, Certificate::InsufficientCapacity { .. })));
    }

    #[test]
    fn switch_floor_vs_eps2_is_certified() {
        // 4 MATs x 0.5 need 2 switches of capacity 1.0, eps2 = 1.
        let tdg = chain_tdg(&[1, 1, 1], 0.5);
        let net = tiny_switches(3, 2, 0.5);
        let eps = Epsilon::new(f64::INFINITY, 1);
        let pre = Precheck::run(&tdg, &net, &eps);
        let cert = pre.infeasible().expect("infeasible");
        assert_eq!(cert.code(), "HC305");
        assert!(matches!(cert, Certificate::SwitchFloorExceedsBound { needed: 2, bound: 1 }));
    }

    #[test]
    fn latency_floor_vs_eps1_is_certified() {
        // Forced split (2.4 demand over 1.0-capacity switches) and an eps1
        // below one hop of the 1 us + 10 us + 1 us linear testbed.
        let tdg = chain_tdg(&[1, 1], 0.8);
        let net = tiny_switches(4, 2, 0.5);
        let eps = Epsilon::new(5.0, usize::MAX);
        let pre = Precheck::run(&tdg, &net, &eps);
        assert!(pre
            .certificates
            .iter()
            .any(|c| matches!(c, Certificate::LatencyFloorExceedsBound { .. })));
    }

    #[test]
    fn mandatory_cut_floors_amax() {
        // Two 0.7-resource MATs cannot share a 1.0-capacity switch; the
        // 9-byte edge between them must cross.
        let tdg = chain_tdg(&[9], 0.7);
        let net = tiny_switches(2, 2, 0.5);
        let pre = Precheck::run(&tdg, &net, &Epsilon::loose());
        assert!(pre.infeasible().is_none(), "{:?}", pre.certificates);
        assert_eq!(pre.amax_floor(), 9);
    }

    #[test]
    fn chain_longer_than_pipeline_forces_split() {
        // 5-node chain vs 2-stage switches: must split; bottleneck edge
        // floors A_max at the minimum edge byte count.
        let tdg = chain_tdg(&[7, 5, 6, 8], 0.1);
        let net = tiny_switches(3, 2, 0.5);
        let pre = Precheck::run(&tdg, &net, &Epsilon::loose());
        assert!(pre.infeasible().is_none());
        assert_eq!(pre.amax_floor(), 5);
    }

    #[test]
    fn feasible_instance_yields_no_infeasibility() {
        let tdg = chain_tdg(&[1, 4], 0.2);
        let net = topology::linear(3, 10.0);
        let pre = Precheck::run(&tdg, &net, &Epsilon::loose());
        assert!(pre.infeasible().is_none(), "{:?}", pre.certificates);
    }

    #[test]
    fn relaxed_chain_is_exempt_from_split_bounds() {
        use hermes_dataplane::action::{Action, FoldOp, PrimitiveOp};
        use hermes_dataplane::fields::Field;
        use hermes_dataplane::mat::Mat;
        use hermes_tdg::{AnalysisMode, DependencyType};

        // Strict baseline: a 5-MAT chain exceeds the only switch's 2-stage
        // pipeline, so the split it forces cannot be hosted.
        let strict = chain_tdg(&[4, 4, 4, 4], 0.1);
        let net = tiny_switches(1, 2, 0.5);
        let pre = Precheck::run(&strict, &net, &Epsilon::loose());
        assert!(pre.infeasible().is_some());

        // Relaxed: the same shape over one commutative fold accumulator
        // mandates neither stage ordering nor routes — one switch suffices
        // and no A_max floor survives.
        let acc = Field::metadata("acc", 4);
        let src = Field::header("v", 4);
        let mats: Vec<(String, Mat)> = (0..5)
            .map(|i| {
                let mat = Mat::builder(format!("f{i}"))
                    .resource(0.1)
                    .capacity(8 + i)
                    .action(Action::new(format!("fold{i}")).with_op(PrimitiveOp::Fold {
                        dst: acc.clone(),
                        srcs: vec![src.clone()],
                        op: FoldOp::Add,
                    }))
                    .build()
                    .unwrap();
                (format!("p.f{i}"), mat)
            })
            .collect();
        let edges = (0..4).map(|i| (i, i + 1, DependencyType::RelaxedMatch)).collect();
        let relaxed = Tdg::from_mats_and_edges(mats, edges, AnalysisMode::RelaxedState);
        let pre = Precheck::run(&relaxed, &net, &Epsilon::loose());
        assert!(pre.infeasible().is_none(), "{:?}", pre.certificates);
        assert_eq!(pre.amax_floor(), 0);
        let notice = pre
            .certificates
            .iter()
            .find(|c| matches!(c, Certificate::RelaxationApplied { .. }))
            .expect("HC310 notice");
        assert_eq!(notice.code(), "HC310");
        assert!(!notice.is_infeasible());
    }

    #[test]
    fn relaxed_pair_still_counts_toward_switch_floor() {
        use hermes_dataplane::action::{Action, FoldOp, PrimitiveOp};
        use hermes_dataplane::fields::Field;
        use hermes_dataplane::mat::Mat;
        use hermes_tdg::{AnalysisMode, DependencyType};

        // Two 0.7-unit folders cannot share a 1.0-capacity switch. The
        // relaxed edge waives the route (no A_max floor) but the resource
        // arithmetic still needs two switches, so eps2 = 1 is infeasible.
        let acc = Field::metadata("acc", 4);
        let src = Field::header("v", 4);
        let mats: Vec<(String, Mat)> = (0..2)
            .map(|i| {
                let mat = Mat::builder(format!("f{i}"))
                    .resource(0.7)
                    .capacity(8 + i)
                    .action(Action::new(format!("fold{i}")).with_op(PrimitiveOp::Fold {
                        dst: acc.clone(),
                        srcs: vec![src.clone()],
                        op: FoldOp::Add,
                    }))
                    .build()
                    .unwrap();
                (format!("p.f{i}"), mat)
            })
            .collect();
        let edges = vec![(0, 1, DependencyType::RelaxedMatch)];
        let tdg = Tdg::from_mats_and_edges(mats, edges, AnalysisMode::RelaxedState);
        let net = tiny_switches(2, 2, 0.5);
        let eps = Epsilon::new(f64::INFINITY, 1);
        let pre = Precheck::run(&tdg, &net, &eps);
        assert!(matches!(
            pre.infeasible(),
            Some(Certificate::SwitchFloorExceedsBound { needed: 2, bound: 1 })
        ));
        assert_eq!(pre.amax_floor(), 0);
    }

    #[test]
    fn certificates_sort_infeasible_first() {
        // Oversized MAT (infeasible) + mandatory cut (floor): the
        // infeasibility must lead.
        let tdg = chain_tdg(&[9, 3], 1.5);
        let net = tiny_switches(2, 2, 0.5);
        let pre = Precheck::run(&tdg, &net, &Epsilon::loose());
        assert!(pre.certificates.len() >= 2);
        assert!(pre.certificates[0].is_infeasible());
        assert!(!pre.certificates.last().unwrap().is_infeasible());
    }
}
