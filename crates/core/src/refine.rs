//! Local-search refinement of deployment plans.
//!
//! The splitting phase of Algorithm 2 restricts placements to contiguous
//! ranges of one topological linearization. When capacity is tight that
//! restriction leaves easy wins on the table: moving a single MAT across
//! the worst switch pair often removes the pair's crossing metadata
//! entirely. This pass hill-climbs on the exact objective — per move it
//! requires strictly smaller `A_max` and full feasibility (per-switch
//! stage assignment, switch-DAG acyclicity, ε-bounds) — so it terminates
//! and can only improve a plan. It refines *any* plan, including the
//! first-fit feasibility fallback.

use crate::deployment::{DeploymentPlan, Epsilon};
use crate::exact::materialize;
use crate::stage_assign::stage_feasible;
use hermes_net::{Network, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use std::collections::{BTreeMap, BTreeSet};

/// Refines `plan` by single-node moves between its occupied switches.
/// Returns the improved plan, or the original when no strictly improving
/// move exists (or the plan has unplaced nodes).
pub fn refine(
    tdg: &Tdg,
    net: &Network,
    plan: DeploymentPlan,
    eps: &Epsilon,
    max_moves: usize,
) -> DeploymentPlan {
    let candidates: Vec<SwitchId> = plan.occupied_switches().into_iter().collect();
    if candidates.len() < 2 {
        return plan;
    }
    let index: BTreeMap<SwitchId, usize> =
        candidates.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut assign: Vec<usize> = Vec::with_capacity(tdg.node_count());
    for id in tdg.node_ids() {
        match plan.switch_of(id).and_then(|s| index.get(&s)) {
            Some(&c) => assign.push(c),
            None => return plan, // partial plans are not refined
        }
    }

    let q = candidates.len();
    let amax = |assign: &[usize]| -> u64 {
        let mut pair = vec![0u64; q * q];
        let mut best = 0;
        for e in tdg.edges() {
            let (u, v) = (assign[e.from.index()], assign[e.to.index()]);
            if u != v {
                let slot = &mut pair[u * q + v];
                *slot += u64::from(e.bytes);
                best = best.max(*slot);
            }
        }
        best
    };
    let feasible_switch = |assign: &[usize], c: usize| -> bool {
        let set: BTreeSet<NodeId> = tdg.node_ids().filter(|id| assign[id.index()] == c).collect();
        let sw = net.switch(candidates[c]);
        stage_feasible(tdg, &set, sw.stages, sw.stage_capacity)
    };
    let acyclic = |assign: &[usize]| -> bool {
        let mut indegree = vec![0usize; q];
        let mut adj = vec![BTreeSet::new(); q];
        for e in tdg.edges() {
            let (u, v) = (assign[e.from.index()], assign[e.to.index()]);
            if u != v && adj[u].insert(v) {
                indegree[v] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..q).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &v in &adj[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    stack.push(v);
                }
            }
        }
        seen == q
    };

    let mut current = amax(&assign);
    let mut moves = 0usize;
    while current > 0 && moves < max_moves {
        // The worst pair and the nodes whose edges feed it.
        let mut pair = vec![0u64; q * q];
        for e in tdg.edges() {
            let (u, v) = (assign[e.from.index()], assign[e.to.index()]);
            if u != v {
                pair[u * q + v] += u64::from(e.bytes);
            }
        }
        let worst = (0..q * q).max_by_key(|&k| pair[k]).expect("q >= 2");
        let (wu, wv) = (worst / q, worst % q);
        // Candidate movers: endpoints of edges crossing (wu, wv).
        let mut movers: BTreeSet<NodeId> = BTreeSet::new();
        for e in tdg.edges() {
            if assign[e.from.index()] == wu && assign[e.to.index()] == wv {
                movers.insert(e.from);
                movers.insert(e.to);
            }
        }
        let mut improved = false;
        'search: for &node in &movers {
            let home = assign[node.index()];
            for target in 0..q {
                if target == home {
                    continue;
                }
                let mut trial = assign.clone();
                trial[node.index()] = target;
                let gain = amax(&trial);
                if gain >= current {
                    continue;
                }
                if !feasible_switch(&trial, home)
                    || !feasible_switch(&trial, target)
                    || !acyclic(&trial)
                {
                    continue;
                }
                assign = trial;
                current = gain;
                improved = true;
                moves += 1;
                break 'search;
            }
        }
        if !improved {
            break;
        }
    }

    // Rebuild; if materialization or ε-bounds fail, keep the original.
    match materialize(tdg, net, &candidates, &assign) {
        Some(refined)
            if refined.end_to_end_latency_us() <= eps.max_latency_us
                && refined.occupied_switch_count() <= eps.max_switches
                && refined.max_inter_switch_bytes(tdg) <= plan.max_inter_switch_bytes(tdg) =>
        {
            refined
        }
        _ => plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::ProgramAnalyzer;
    use crate::deployment::DeploymentAlgorithm;
    use crate::heuristic::GreedyHeuristic;
    use crate::verify::verify;
    use hermes_dataplane::library;
    use hermes_net::topology;

    #[test]
    fn refinement_never_worsens_and_verifies() {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let before = plan.max_inter_switch_bytes(&tdg);
        let refined = refine(&tdg, &net, plan, &eps, 1_000);
        assert!(refined.max_inter_switch_bytes(&tdg) <= before);
        assert!(verify(&tdg, &net, &refined, &eps).is_empty());
    }

    #[test]
    fn single_switch_plans_pass_through() {
        let tdg = ProgramAnalyzer::new().analyze(&[library::l3_router()]);
        let net = topology::linear(2, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let refined = refine(&tdg, &net, plan.clone(), &eps, 100);
        assert_eq!(refined, plan);
    }

    #[test]
    fn zero_moves_budget_is_identity_quality() {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let before = plan.max_inter_switch_bytes(&tdg);
        let refined = refine(&tdg, &net, plan, &eps, 0);
        assert_eq!(refined.max_inter_switch_bytes(&tdg), before);
    }
}
