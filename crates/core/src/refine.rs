//! Local-search refinement of deployment plans.
//!
//! The splitting phase of Algorithm 2 restricts placements to contiguous
//! ranges of one topological linearization. When capacity is tight that
//! restriction leaves easy wins on the table: moving a single MAT across
//! the worst switch pair often removes the pair's crossing metadata
//! entirely. This pass hill-climbs on the exact objective — per move it
//! requires strictly smaller `A_max` and full feasibility (per-switch
//! stage assignment, switch-DAG acyclicity, ε-bounds) — so it terminates
//! and can only improve a plan. It refines *any* plan, including the
//! first-fit feasibility fallback.

use crate::deployment::{DeploymentPlan, Epsilon};
use crate::eval::IncrementalEval;
use crate::exact::materialize;
use crate::stage_cache::StageFeasCache;
use hermes_net::{Network, SwitchId, TargetModel};
use hermes_tdg::{NodeId, Tdg};
use std::collections::{BTreeMap, BTreeSet};

/// Refines `plan` by single-node moves between its occupied switches.
/// Returns the improved plan, or the original when no strictly improving
/// move exists (or the plan has unplaced nodes).
///
/// Each trial move is evaluated through the shared hot-path machinery: the
/// [`IncrementalEval`] updates the objective and switch-DAG acyclicity in
/// O(degree) per move/revert, and per-switch stage feasibility goes through
/// a memoized [`StageFeasCache`] — re-probing a set seen in an earlier
/// trial is a hash hit instead of a repack.
pub fn refine(
    tdg: &Tdg,
    net: &Network,
    plan: DeploymentPlan,
    eps: &Epsilon,
    max_moves: usize,
) -> DeploymentPlan {
    let candidates: Vec<SwitchId> = plan.occupied_switches().into_iter().collect();
    if candidates.len() < 2 {
        return plan;
    }
    let index: BTreeMap<SwitchId, usize> =
        candidates.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut assign: Vec<usize> = Vec::with_capacity(tdg.node_count());
    for id in tdg.node_ids() {
        match plan.switch_of(id).and_then(|s| index.get(&s)) {
            Some(&c) => assign.push(c),
            None => return plan, // partial plans are not refined
        }
    }

    let q = candidates.len();
    let shapes: Vec<TargetModel> =
        candidates.iter().map(|&id| net.switch(id).target_model()).collect();
    let mut eval = IncrementalEval::new(tdg, q);
    let mut cache = StageFeasCache::new(tdg);
    let word_len = cache.word_len();
    let mut switch_words = vec![vec![0u64; word_len]; q];
    for (node, &c) in assign.iter().enumerate() {
        eval.place(node, c);
        switch_words[c][node / 64] |= 1u64 << (node % 64);
    }

    let mut current = eval.amax();
    let mut moves = 0usize;
    while current > 0 && moves < max_moves {
        // The worst pair and the nodes whose edges feed it.
        let worst = (0..q * q).max_by_key(|&k| eval.pair_bytes(k / q, k % q)).expect("q >= 2");
        let (wu, wv) = (worst / q, worst % q);
        // Candidate movers: endpoints of edges crossing (wu, wv).
        let mut movers: BTreeSet<NodeId> = BTreeSet::new();
        for e in tdg.edges() {
            if assign[e.from.index()] == wu && assign[e.to.index()] == wv {
                movers.insert(e.from);
                movers.insert(e.to);
            }
        }
        let mut improved = false;
        'search: for &node in &movers {
            let n = node.index();
            let home = assign[n];
            for target in 0..q {
                if target == home {
                    continue;
                }
                // Trial: move the node, score, and check feasibility; on
                // rejection the move is reverted in O(degree).
                eval.unplace(n);
                eval.place(n, target);
                switch_words[home][n / 64] &= !(1u64 << (n % 64));
                switch_words[target][n / 64] |= 1u64 << (n % 64);
                let gain = eval.amax();
                let accept = gain < current
                    && cache.feasible_words(tdg, &shapes[home], &switch_words[home])
                    && cache.feasible_words(tdg, &shapes[target], &switch_words[target])
                    && eval.is_acyclic();
                if !accept {
                    eval.unplace(n);
                    eval.place(n, home);
                    switch_words[target][n / 64] &= !(1u64 << (n % 64));
                    switch_words[home][n / 64] |= 1u64 << (n % 64);
                    continue;
                }
                assign[n] = target;
                current = gain;
                improved = true;
                moves += 1;
                break 'search;
            }
        }
        if !improved {
            break;
        }
    }

    // Rebuild; if materialization or ε-bounds fail, keep the original.
    match materialize(tdg, net, &candidates, &assign) {
        Some(refined)
            if refined.end_to_end_latency_us() <= eps.max_latency_us
                && refined.occupied_switch_count() <= eps.max_switches
                && refined.max_inter_switch_bytes(tdg) <= plan.max_inter_switch_bytes(tdg) =>
        {
            refined
        }
        _ => plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::ProgramAnalyzer;
    use crate::deployment::DeploymentAlgorithm;
    use crate::heuristic::GreedyHeuristic;
    use crate::verify::verify;
    use hermes_dataplane::library;
    use hermes_net::topology;

    #[test]
    fn refinement_never_worsens_and_verifies() {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let before = plan.max_inter_switch_bytes(&tdg);
        let refined = refine(&tdg, &net, plan, &eps, 1_000);
        assert!(refined.max_inter_switch_bytes(&tdg) <= before);
        assert!(verify(&tdg, &net, &refined, &eps).is_empty());
    }

    #[test]
    fn single_switch_plans_pass_through() {
        let tdg = ProgramAnalyzer::new().analyze(&[library::l3_router()]);
        let net = topology::linear(2, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let refined = refine(&tdg, &net, plan.clone(), &eps, 100);
        assert_eq!(refined, plan);
    }

    #[test]
    fn zero_moves_budget_is_identity_quality() {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let before = plan.max_inter_switch_bytes(&tdg);
        let refined = refine(&tdg, &net, plan, &eps, 0);
        assert_eq!(refined.max_inter_switch_bytes(&tdg), before);
    }
}
