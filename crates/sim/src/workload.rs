//! Multi-flow workload generation and aggregate statistics.
//!
//! Complements the single-flow §II-B harness with DCN-style workloads:
//! many flows with realistic size distributions arriving over time, plus
//! percentile reporting — the form in which FCT results are usually
//! quoted. Also provides the INT comparison: constant piggyback overhead
//! (Hermes-style pairwise coordination) vs. per-hop accumulating headers
//! (classic INT), the contrast the paper draws against PINT.

use crate::engine::{chain, FlowStats, SimFlow, Simulation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Flow size distributions. Deterministic given a seeded RNG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowSizes {
    /// All flows carry exactly this many bytes.
    Fixed(u64),
    /// Uniform in `[min, max]` bytes.
    Uniform {
        /// Smallest flow.
        min: u64,
        /// Largest flow.
        max: u64,
    },
    /// A heavy-tailed web-search-like mix: mostly mice with elephant
    /// flows; drawn from a three-bucket quantile approximation.
    WebSearch,
}

impl FlowSizes {
    fn draw(&self, rng: &mut StdRng) -> u64 {
        match self {
            FlowSizes::Fixed(bytes) => *bytes,
            FlowSizes::Uniform { min, max } => rng.random_range(*min..=*max),
            FlowSizes::WebSearch => {
                // ~50% mice (<100 KB), ~45% medium, ~5% elephants (>10 MB).
                let r: f64 = rng.random_range(0.0..1.0);
                if r < 0.5 {
                    rng.random_range(10_000..=100_000)
                } else if r < 0.95 {
                    rng.random_range(100_000..=1_000_000)
                } else {
                    rng.random_range(10_000_000..=30_000_000)
                }
            }
        }
    }
}

/// Workload shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of flows.
    pub flows: usize,
    /// Packet size on the wire before overhead (bytes).
    pub packet_size: u32,
    /// Protocol header bytes inside `packet_size`.
    pub header_bytes: u32,
    /// Flow size distribution (application bytes).
    pub sizes: FlowSizes,
    /// Gap between consecutive flow arrivals (µs).
    pub inter_arrival_us: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            flows: 50,
            packet_size: 1024,
            header_bytes: 54,
            sizes: FlowSizes::Uniform { min: 50_000, max: 500_000 },
            inter_arrival_us: 5.0,
            seed: 1,
        }
    }
}

/// How coordination metadata rides on packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverheadModel {
    /// A constant number of bytes per packet on every hop — the
    /// deployment-coordination model Hermes minimizes (`A_max`).
    Constant(u32),
    /// INT-style: `base` bytes at the source plus `per_hop` more at every
    /// switch the packet crosses.
    PerHopAccumulating {
        /// Bytes present when the packet enters the network.
        base: u32,
        /// Bytes appended per switch hop.
        per_hop: u32,
    },
}

impl OverheadModel {
    fn initial_bytes(self) -> u32 {
        match self {
            OverheadModel::Constant(bytes) => bytes,
            OverheadModel::PerHopAccumulating { base, .. } => base,
        }
    }

    fn growth(self) -> u32 {
        match self {
            OverheadModel::Constant(_) => 0,
            OverheadModel::PerHopAccumulating { per_hop, .. } => per_hop,
        }
    }
}

/// Generates the flows of a workload along `route`.
pub fn generate_flows(
    route: &[usize],
    config: &WorkloadConfig,
    overhead: OverheadModel,
) -> Vec<SimFlow> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let payload_per_packet = u64::from(config.packet_size - config.header_bytes);
    (0..config.flows)
        .map(|i| {
            let bytes = config.sizes.draw(&mut rng);
            let packets = bytes.div_ceil(payload_per_packet).max(1);
            SimFlow {
                route: route.to_vec(),
                packets,
                wire_bytes: config.packet_size + overhead.initial_bytes(),
                wire_growth_per_hop: overhead.growth(),
                payload_bytes: config.packet_size - config.header_bytes,
                start_us: i as f64 * config.inter_arrival_us,
            }
        })
        .collect()
}

/// Builds and runs a chain-topology workload, returning per-flow stats.
///
/// # Panics
///
/// Panics if `config.packet_size <= config.header_bytes`.
pub fn run_workload(
    switches: usize,
    switch_latency_us: f64,
    rate_gbps: f64,
    link_delay_us: f64,
    config: &WorkloadConfig,
    overhead: OverheadModel,
) -> Vec<FlowStats> {
    assert!(config.packet_size > config.header_bytes, "packet must fit its headers");
    let (mut sim, route): (Simulation, Vec<usize>) =
        chain(switches, switch_latency_us, rate_gbps, link_delay_us);
    for flow in generate_flows(&route, config, overhead) {
        sim.add_flow(flow);
    }
    sim.run().expect("chain workloads are valid")
}

/// Aggregate FCT/goodput statistics over a set of flows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateStats {
    /// Mean FCT (µs).
    pub mean_fct_us: f64,
    /// Median FCT (µs).
    pub p50_fct_us: f64,
    /// 95th-percentile FCT (µs).
    pub p95_fct_us: f64,
    /// 99th-percentile FCT (µs).
    pub p99_fct_us: f64,
    /// Mean per-flow goodput (Gbit/s).
    pub mean_goodput_gbps: f64,
}

/// Computes aggregate statistics (nearest-rank percentiles).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn aggregate(stats: &[FlowStats]) -> AggregateStats {
    assert!(!stats.is_empty(), "no flows to aggregate");
    let mut fcts: Vec<f64> = stats.iter().map(|s| s.fct_us).collect();
    fcts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pct = |p: f64| -> f64 {
        let rank = ((p / 100.0) * fcts.len() as f64).ceil().max(1.0) as usize;
        fcts[rank.min(fcts.len()) - 1]
    };
    AggregateStats {
        mean_fct_us: fcts.iter().sum::<f64>() / fcts.len() as f64,
        p50_fct_us: pct(50.0),
        p95_fct_us: pct(95.0),
        p99_fct_us: pct(99.0),
        mean_goodput_gbps: stats.iter().map(|s| s.goodput_gbps).sum::<f64>() / stats.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkloadConfig {
        WorkloadConfig { flows: 10, sizes: FlowSizes::Fixed(100_000), ..Default::default() }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = run_workload(3, 1.0, 100.0, 0.5, &small(), OverheadModel::Constant(0));
        let b = run_workload(3, 1.0, 100.0, 0.5, &small(), OverheadModel::Constant(0));
        assert_eq!(a, b);
    }

    #[test]
    fn overhead_slows_the_workload() {
        let base =
            aggregate(&run_workload(3, 1.0, 100.0, 0.5, &small(), OverheadModel::Constant(0)));
        let loaded =
            aggregate(&run_workload(3, 1.0, 100.0, 0.5, &small(), OverheadModel::Constant(100)));
        assert!(loaded.mean_fct_us > base.mean_fct_us);
        assert!(loaded.mean_goodput_gbps < base.mean_goodput_gbps);
    }

    #[test]
    fn accumulating_int_headers_cost_more_than_their_base() {
        let constant =
            aggregate(&run_workload(5, 1.0, 100.0, 0.5, &small(), OverheadModel::Constant(20)));
        let int = aggregate(&run_workload(
            5,
            1.0,
            100.0,
            0.5,
            &small(),
            OverheadModel::PerHopAccumulating { base: 20, per_hop: 22 },
        ));
        assert!(int.mean_fct_us > constant.mean_fct_us, "per-hop growth must cost extra");
    }

    #[test]
    fn flow_count_and_packetization() {
        let config = small();
        let flows = generate_flows(&[0, 1, 2], &config, OverheadModel::Constant(0));
        assert_eq!(flows.len(), 10);
        // 100 kB at 970 B payload per packet.
        let expected = 100_000u64.div_ceil(u64::from(config.packet_size - config.header_bytes));
        assert!(flows.iter().all(|f| f.packets == expected));
        // Staggered arrivals.
        assert_eq!(flows[3].start_us, 15.0);
    }

    #[test]
    fn percentiles_ordered() {
        let stats = run_workload(
            3,
            1.0,
            100.0,
            0.5,
            &WorkloadConfig { flows: 40, sizes: FlowSizes::WebSearch, ..Default::default() },
            OverheadModel::Constant(0),
        );
        let agg = aggregate(&stats);
        assert!(agg.p50_fct_us <= agg.p95_fct_us);
        assert!(agg.p95_fct_us <= agg.p99_fct_us);
        assert!(agg.mean_fct_us > 0.0);
    }

    #[test]
    fn web_search_mix_is_heavy_tailed() {
        let config =
            WorkloadConfig { flows: 100, sizes: FlowSizes::WebSearch, ..Default::default() };
        let flows = generate_flows(&[0, 1, 2], &config, OverheadModel::Constant(0));
        let min = flows.iter().map(|f| f.packets).min().unwrap();
        let max = flows.iter().map(|f| f.packets).max().unwrap();
        assert!(max > min * 20, "elephants dwarf mice: {min} vs {max}");
        // Elephants are the minority.
        let big = flows.iter().filter(|f| f.packets > 1_000).count();
        assert!(big * 5 < flows.len(), "{big}/100 elephants");
    }

    #[test]
    #[should_panic(expected = "no flows")]
    fn empty_aggregate_panics() {
        let _ = aggregate(&[]);
    }
}
