//! Deterministic discrete-event packet-level network simulator.
//!
//! Stands in for the paper's PktGen/DPDK testbed: flows of fixed-size
//! packets traverse store-and-forward links and switches, and piggybacked
//! metadata inflates every packet's wire size. The simulator measures the
//! two end-to-end metrics the paper reports — flow completion time and
//! goodput — and the [`testbed`] module packages the exact §II-B
//! methodology (five switch hops, 512/1024/1500-byte packets, overhead
//! swept 28–108 bytes, results normalized to the zero-overhead run).
//!
//! # Quick start
//!
//! ```
//! use hermes_sim::testbed::{normalized_impact, TestbedConfig};
//!
//! let config = TestbedConfig { packets: 1_000, ..Default::default() };
//! let n = normalized_impact(&config, 512, 48);
//! assert!(n.fct_ratio > 1.0);       // 48 B of metadata slows the flow
//! assert!(n.goodput_ratio < 1.0);   // and costs goodput
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod testbed;
pub mod workload;

pub use engine::{chain, FlowStats, SimError, SimFlow, SimLink, SimNode, SimTime, Simulation};
pub use testbed::{
    fig2_sweep, normalized_impact, run_flow, Fig2Row, NormalizedPerf, TestbedConfig,
};
pub use workload::{
    aggregate, generate_flows, run_workload, AggregateStats, FlowSizes, OverheadModel,
    WorkloadConfig,
};
