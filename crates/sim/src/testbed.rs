//! The paper's testbed harness (§II-B and Exp#1/#4).
//!
//! Reproduces the overhead-impact measurement: a flow of fixed-size
//! packets crosses five switch hops (the paper loops one Tofino five
//! times); metadata piggybacked on every packet inflates its wire size,
//! so serialization takes longer and — with the MTU adaptively honoured —
//! end-to-end FCT rises and goodput falls. Results are reported
//! normalized against the zero-overhead run, exactly like Figure 2.

use crate::engine::{chain, FlowStats, SimFlow};
use serde::{Deserialize, Serialize};

/// Ethernet MTU (bytes).
pub const ETHERNET_MTU: u32 = 1500;
/// RDMA MTU (bytes).
pub const RDMA_MTU: u32 = 1024;
/// Typical DCN packet size (bytes) per the traffic study the paper cites.
pub const DCN_PACKET: u32 = 512;
/// Ethernet + IPv4 + TCP headers (bytes).
pub const PROTO_HEADER_BYTES: u32 = 54;
/// The three packet sizes the paper sweeps.
pub const PACKET_SIZES: [u32; 3] = [DCN_PACKET, RDMA_MTU, ETHERNET_MTU];

/// Testbed shape: §II-B defaults scaled to a deterministic simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Switch hops a packet traverses (paper: 5 within a DCN).
    pub hops: usize,
    /// Line rate in Gbit/s (paper: 100 G Tofino ports).
    pub rate_gbps: f64,
    /// Per-link propagation delay in µs.
    pub link_delay_us: f64,
    /// Per-switch forwarding latency in µs.
    pub switch_latency_us: f64,
    /// Packets per flow. The paper sends 10⁶; the default scales to 10⁴ —
    /// the normalized ratios are serialization-bound and size-independent
    /// beyond a few thousand packets.
    pub packets: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            hops: 5,
            rate_gbps: 100.0,
            link_delay_us: 0.5,
            switch_latency_us: 1.0,
            packets: 10_000,
        }
    }
}

/// Runs one flow of `packets` fixed-size packets with `overhead_bytes` of
/// piggybacked metadata per packet.
///
/// The wire size is `packet_size + overhead`; the application payload is
/// `packet_size - PROTO_HEADER_BYTES` (the paper tunes the MTU so the
/// enlarged packet is still accepted).
///
/// # Panics
///
/// Panics if `packet_size` does not exceed the protocol headers.
pub fn run_flow(config: &TestbedConfig, packet_size: u32, overhead_bytes: u32) -> FlowStats {
    assert!(packet_size > PROTO_HEADER_BYTES, "packet must fit its headers");
    let (mut sim, route) =
        chain(config.hops, config.switch_latency_us, config.rate_gbps, config.link_delay_us);
    sim.add_flow(SimFlow {
        route,
        packets: config.packets,
        wire_bytes: packet_size + overhead_bytes,
        wire_growth_per_hop: 0,
        payload_bytes: packet_size - PROTO_HEADER_BYTES,
        start_us: 0.0,
    });
    sim.run().expect("chain flows are valid")[0]
}

/// FCT and goodput of an overhead-carrying run normalized to the
/// zero-overhead run (Figure 2's y-axes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedPerf {
    /// `FCT(overhead) / FCT(0)` — ≥ 1; higher is worse.
    pub fct_ratio: f64,
    /// `goodput(overhead) / goodput(0)` — ≤ 1; lower is worse.
    pub goodput_ratio: f64,
}

/// Measures the normalized impact of `overhead_bytes` at `packet_size`.
pub fn normalized_impact(
    config: &TestbedConfig,
    packet_size: u32,
    overhead_bytes: u32,
) -> NormalizedPerf {
    let base = run_flow(config, packet_size, 0);
    let loaded = run_flow(config, packet_size, overhead_bytes);
    NormalizedPerf {
        fct_ratio: loaded.fct_us / base.fct_us,
        goodput_ratio: loaded.goodput_gbps / base.goodput_gbps,
    }
}

/// One row of the Figure 2 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Metadata bytes added to each packet.
    pub overhead_bytes: u32,
    /// Normalized (FCT, goodput) per packet size, in [`PACKET_SIZES`]
    /// order.
    pub per_size: Vec<NormalizedPerf>,
}

/// The Figure 2 sweep: overhead 28–108 bytes in steps of 20 (the paper's
/// x-axis), for 512/1024/1500-byte packets.
pub fn fig2_sweep(config: &TestbedConfig) -> Vec<Fig2Row> {
    (28..=108)
        .step_by(20)
        .map(|overhead| Fig2Row {
            overhead_bytes: overhead,
            per_size: PACKET_SIZES
                .iter()
                .map(|&size| normalized_impact(config, size, overhead))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TestbedConfig {
        TestbedConfig { packets: 2_000, ..Default::default() }
    }

    #[test]
    fn zero_overhead_is_identity() {
        let n = normalized_impact(&quick(), 1024, 0);
        assert!((n.fct_ratio - 1.0).abs() < 1e-12);
        assert!((n.goodput_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_degrades_performance_monotonically() {
        let config = quick();
        let mut last_fct = 1.0;
        let mut last_goodput = 1.0;
        for overhead in [28, 48, 68, 88, 108] {
            let n = normalized_impact(&config, 512, overhead);
            assert!(n.fct_ratio >= last_fct, "fct not monotone at {overhead}");
            assert!(n.goodput_ratio <= last_goodput, "goodput not monotone at {overhead}");
            last_fct = n.fct_ratio;
            last_goodput = n.goodput_ratio;
        }
        assert!(last_fct > 1.1, "108 B on 512 B packets must hurt: {last_fct}");
        assert!(last_goodput < 0.9);
    }

    #[test]
    fn small_packets_suffer_more() {
        let config = quick();
        let small = normalized_impact(&config, 512, 68);
        let large = normalized_impact(&config, 1500, 68);
        assert!(small.fct_ratio > large.fct_ratio);
        assert!(small.goodput_ratio < large.goodput_ratio);
    }

    #[test]
    fn fig2_sweep_has_paper_axes() {
        let rows = fig2_sweep(&TestbedConfig { packets: 500, ..Default::default() });
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].overhead_bytes, 28);
        assert_eq!(rows[4].overhead_bytes, 108);
        for r in &rows {
            assert_eq!(r.per_size.len(), 3);
        }
    }

    #[test]
    fn fct_ratio_tracks_wire_inflation() {
        // Serialization-bound flows: FCT ratio ~ (size+overhead)/size.
        let config = quick();
        let n = normalized_impact(&config, 512, 108);
        let expected = (512.0 + 108.0) / 512.0;
        assert!((n.fct_ratio - expected).abs() < 0.02, "{} vs {expected}", n.fct_ratio);
    }

    #[test]
    #[should_panic(expected = "fit its headers")]
    fn tiny_packet_panics() {
        let _ = run_flow(&quick(), 10, 0);
    }
}
