//! Discrete-event packet-level simulation engine.
//!
//! Store-and-forward semantics: each packet occupies a directed link for
//! `size / rate` (serialization), then arrives after the link's
//! propagation delay; each node adds its forwarding latency. Links carry
//! FIFO queues, so competing flows interleave realistically. Everything is
//! deterministic: ties are broken by event sequence number.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Simulation time in microseconds.
pub type SimTime = f64;

/// A node on a simulated path: a host or switch with forwarding latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimNode {
    /// Forwarding latency added per packet, in µs.
    pub latency_us: f64,
}

/// A directed link between two node indexes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimLink {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Line rate in Gbit/s.
    pub rate_gbps: f64,
    /// Propagation delay in µs.
    pub delay_us: f64,
}

impl SimLink {
    /// Serialization time for `bytes` on this link, in µs.
    pub fn tx_time_us(&self, bytes: u32) -> f64 {
        // bits / (Gbit/s) = nanoseconds / 1000 -> µs.
        (f64::from(bytes) * 8.0) / (self.rate_gbps * 1000.0)
    }
}

/// One flow: a message split into wire packets pushed along a node route.
#[derive(Debug, Clone, PartialEq)]
pub struct SimFlow {
    /// Node indexes the flow traverses (first = source host).
    pub route: Vec<usize>,
    /// Number of packets to send.
    pub packets: u64,
    /// Wire size of each packet in bytes (payload + headers + metadata).
    pub wire_bytes: u32,
    /// Extra bytes the packet gains at every switch hop (INT-style
    /// accumulating telemetry; 0 for constant-size coordination).
    pub wire_growth_per_hop: u32,
    /// Application payload bytes per packet (for goodput accounting).
    pub payload_bytes: u32,
    /// Injection start time (µs).
    pub start_us: SimTime,
}

impl SimFlow {
    /// A constant-wire-size flow (no per-hop growth).
    pub fn constant(route: Vec<usize>, packets: u64, wire_bytes: u32, payload_bytes: u32) -> Self {
        SimFlow { route, packets, wire_bytes, wire_growth_per_hop: 0, payload_bytes, start_us: 0.0 }
    }
}

/// Per-flow results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStats {
    /// Flow completion time: last-packet delivery − start, in µs.
    pub fct_us: f64,
    /// Application goodput in Gbit/s (payload bits / FCT).
    pub goodput_gbps: f64,
    /// Packets delivered.
    pub packets: u64,
}

impl fmt::Display for FlowStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FCT {:.1} us, goodput {:.3} Gbps, {} pkts",
            self.fct_us, self.goodput_gbps, self.packets
        )
    }
}

/// Errors detected while validating a simulation setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A flow route references a missing node or link.
    BrokenRoute {
        /// Index of the offending flow.
        flow: usize,
    },
    /// A flow has no packets or an empty route.
    EmptyFlow {
        /// Index of the offending flow.
        flow: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BrokenRoute { flow } => write!(f, "flow {flow} routes over a missing link"),
            SimError::EmptyFlow { flow } => write!(f, "flow {flow} is empty"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Packet {
    flow: usize,
    seq: u64,
    hop: usize, // index into the flow's route
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// Packet finished switch processing; ready to queue on its next link.
    ReadyToSend(Packet),
    /// Packet fully received at route hop `packet.hop`.
    Arrive(Packet),
    /// A link finished serializing; it may start its next queued packet.
    LinkFree(usize),
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first, then insertion order.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A complete simulation setup.
#[derive(Debug, Clone, Default)]
pub struct Simulation {
    nodes: Vec<SimNode>,
    links: Vec<SimLink>,
    flows: Vec<SimFlow>,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Simulation::default()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: SimNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds a directed link.
    pub fn add_link(&mut self, link: SimLink) {
        self.links.push(link);
    }

    /// Adds a flow, returning its index.
    pub fn add_flow(&mut self, flow: SimFlow) -> usize {
        self.flows.push(flow);
        self.flows.len() - 1
    }

    fn link_index(&self, from: usize, to: usize) -> Option<usize> {
        self.links.iter().position(|l| l.from == from && l.to == to)
    }

    fn validate(&self) -> Result<(), SimError> {
        for (i, f) in self.flows.iter().enumerate() {
            if f.packets == 0 || f.route.len() < 2 {
                return Err(SimError::EmptyFlow { flow: i });
            }
            for w in f.route.windows(2) {
                if w[0] >= self.nodes.len()
                    || w[1] >= self.nodes.len()
                    || self.link_index(w[0], w[1]).is_none()
                {
                    return Err(SimError::BrokenRoute { flow: i });
                }
            }
        }
        Ok(())
    }

    /// Runs the simulation to completion and returns per-flow statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when a flow is empty or routes over missing
    /// links.
    pub fn run(&self) -> Result<Vec<FlowStats>, SimError> {
        self.validate()?;
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut event_seq = 0u64;
        let push = |heap: &mut BinaryHeap<Event>, time: SimTime, kind: EventKind, seq: &mut u64| {
            heap.push(Event { time, seq: *seq, kind });
            *seq += 1;
        };

        // Per-directed-link FIFO and busy flag.
        let mut queues: Vec<VecDeque<Packet>> = vec![VecDeque::new(); self.links.len()];
        let mut busy: Vec<bool> = vec![false; self.links.len()];
        let mut delivered: Vec<u64> = vec![0; self.flows.len()];
        let mut last_delivery: Vec<SimTime> = vec![0.0; self.flows.len()];

        // Source injection: every packet becomes ReadyToSend at the source
        // at the flow start; the first link's FIFO serializes them.
        for (fi, f) in self.flows.iter().enumerate() {
            for seq in 0..f.packets {
                push(
                    &mut heap,
                    f.start_us,
                    EventKind::ReadyToSend(Packet { flow: fi, seq, hop: 0 }),
                    &mut event_seq,
                );
            }
        }

        while let Some(Event { time, kind, .. }) = heap.pop() {
            match kind {
                EventKind::ReadyToSend(pkt) => {
                    let f = &self.flows[pkt.flow];
                    let li =
                        self.link_index(f.route[pkt.hop], f.route[pkt.hop + 1]).expect("validated");
                    queues[li].push_back(pkt);
                    if !busy[li] {
                        self.start_tx(li, time, &mut queues, &mut busy, &mut heap, &mut event_seq);
                    }
                }
                EventKind::LinkFree(li) => {
                    // start_tx clears the busy flag itself when the queue
                    // is empty — always call it, or the link deadlocks.
                    self.start_tx(li, time, &mut queues, &mut busy, &mut heap, &mut event_seq);
                }
                EventKind::Arrive(pkt) => {
                    let f = &self.flows[pkt.flow];
                    if pkt.hop + 1 == f.route.len() - 1 {
                        // Reached the destination host.
                        delivered[pkt.flow] += 1;
                        last_delivery[pkt.flow] = last_delivery[pkt.flow].max(time);
                    } else {
                        // Forwarding latency of the intermediate node, then
                        // ready for the next link.
                        let node = &self.nodes[f.route[pkt.hop + 1]];
                        push(
                            &mut heap,
                            time + node.latency_us,
                            EventKind::ReadyToSend(Packet { hop: pkt.hop + 1, ..pkt }),
                            &mut event_seq,
                        );
                    }
                }
            }
        }

        Ok(self
            .flows
            .iter()
            .enumerate()
            .map(|(fi, f)| {
                let fct = last_delivery[fi] - f.start_us;
                let payload_bits = f.payload_bytes as f64 * f.packets as f64 * 8.0;
                FlowStats {
                    fct_us: fct,
                    // bits / µs = Mbit/s * 1e... bits per µs / 1000 = Gbps.
                    goodput_gbps: if fct > 0.0 { payload_bits / fct / 1000.0 } else { 0.0 },
                    packets: delivered[fi],
                }
            })
            .collect())
    }

    #[allow(clippy::too_many_arguments)]
    fn start_tx(
        &self,
        li: usize,
        now: SimTime,
        queues: &mut [VecDeque<Packet>],
        busy: &mut [bool],
        heap: &mut BinaryHeap<Event>,
        event_seq: &mut u64,
    ) {
        let Some(pkt) = queues[li].pop_front() else {
            busy[li] = false;
            return;
        };
        busy[li] = true;
        let link = &self.links[li];
        let flow = &self.flows[pkt.flow];
        // INT-style growth: the packet has already crossed `pkt.hop`
        // switches' worth of accumulation when it leaves route[pkt.hop].
        let size = flow.wire_bytes + flow.wire_growth_per_hop * pkt.hop as u32;
        let tx = link.tx_time_us(size);
        // The link frees after serialization; the packet arrives after
        // serialization + propagation.
        heap.push(Event { time: now + tx, seq: *event_seq, kind: EventKind::LinkFree(li) });
        *event_seq += 1;
        heap.push(Event {
            time: now + tx + link.delay_us,
            seq: *event_seq,
            kind: EventKind::Arrive(pkt),
        });
        *event_seq += 1;
    }
}

/// Builds a bidirectional-link chain simulation: `host — n switches — host`
/// with uniform link rate/delay. Returns the simulation and the node
/// route (source .. destination).
pub fn chain(
    switches: usize,
    switch_latency_us: f64,
    rate_gbps: f64,
    link_delay_us: f64,
) -> (Simulation, Vec<usize>) {
    let mut sim = Simulation::new();
    let src = sim.add_node(SimNode { latency_us: 0.0 });
    let mut route = vec![src];
    for _ in 0..switches {
        let s = sim.add_node(SimNode { latency_us: switch_latency_us });
        route.push(s);
    }
    let dst = sim.add_node(SimNode { latency_us: 0.0 });
    route.push(dst);
    for w in route.windows(2) {
        sim.add_link(SimLink { from: w[0], to: w[1], rate_gbps, delay_us: link_delay_us });
        sim.add_link(SimLink { from: w[1], to: w[0], rate_gbps, delay_us: link_delay_us });
    }
    (sim, route)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_flow(packets: u64, wire: u32, payload: u32) -> (Simulation, Vec<usize>) {
        let (mut sim, route) = chain(1, 1.0, 100.0, 0.1);
        sim.add_flow(SimFlow::constant(route.clone(), packets, wire, payload));
        (sim, route)
    }

    #[test]
    fn single_packet_latency_decomposes() {
        let (sim, _) = one_flow(1, 1000, 900);
        let stats = sim.run().unwrap();
        // Two links: tx = 8000 bits / 100 Gbps = 0.08 us each; delay 0.1 each;
        // switch latency 1.0. FCT = 2*(0.08 + 0.1) + 1.0 = 1.36.
        assert!((stats[0].fct_us - 1.36).abs() < 1e-9, "fct {}", stats[0].fct_us);
        assert_eq!(stats[0].packets, 1);
    }

    #[test]
    fn pipeline_overlaps_transmissions() {
        // N packets: FCT ~= first-packet latency + (N-1) * tx bottleneck.
        let (sim, _) = one_flow(100, 1000, 900);
        let stats = sim.run().unwrap();
        let expected = 1.36 + 99.0 * 0.08;
        assert!((stats[0].fct_us - expected).abs() < 1e-6, "fct {}", stats[0].fct_us);
    }

    #[test]
    fn larger_packets_take_longer() {
        let (a, _) = one_flow(50, 500, 450);
        let (b, _) = one_flow(50, 1500, 1450);
        assert!(b.run().unwrap()[0].fct_us > a.run().unwrap()[0].fct_us);
    }

    #[test]
    fn goodput_counts_payload_only() {
        let (sim, _) = one_flow(1000, 1500, 1000);
        let stats = sim.run().unwrap();
        // Goodput strictly below line rate * payload fraction bound.
        assert!(stats[0].goodput_gbps > 0.0);
        assert!(stats[0].goodput_gbps < 100.0 * (1000.0 / 1500.0) + 1.0);
    }

    #[test]
    fn competing_flows_share_a_link() {
        let (mut sim, route) = chain(1, 0.0, 100.0, 0.0);
        for _ in 0..2 {
            sim.add_flow(SimFlow::constant(route.clone(), 100, 1000, 1000));
        }
        let stats = sim.run().unwrap();
        // Two flows interleave on the same links: each takes about twice
        // as long as it would alone.
        let (solo, _) = chain(1, 0.0, 100.0, 0.0);
        let mut solo = solo;
        solo.add_flow(SimFlow::constant(route.clone(), 100, 1000, 1000));
        let alone = solo.run().unwrap()[0].fct_us;
        // Burst injection queues flow 0's packets ahead of flow 1's, so
        // flow 0 finishes as if alone while flow 1 waits behind it.
        assert!((stats[0].fct_us - alone).abs() < 1e-6, "{} vs {}", stats[0].fct_us, alone);
        assert!(stats[1].fct_us > 1.8 * alone, "{} vs {}", stats[1].fct_us, alone);
        assert_eq!(stats[0].packets, 100);
        assert_eq!(stats[1].packets, 100);
    }

    #[test]
    fn broken_route_rejected() {
        let mut sim = Simulation::new();
        let a = sim.add_node(SimNode { latency_us: 0.0 });
        let b = sim.add_node(SimNode { latency_us: 0.0 });
        sim.add_flow(SimFlow::constant(vec![a, b], 1, 100, 100));
        assert_eq!(sim.run(), Err(SimError::BrokenRoute { flow: 0 }));
    }

    #[test]
    fn empty_flow_rejected() {
        let (mut sim, route) = chain(1, 0.0, 100.0, 0.0);
        sim.add_flow(SimFlow::constant(route, 0, 100, 100));
        assert_eq!(sim.run(), Err(SimError::EmptyFlow { flow: 0 }));
    }

    #[test]
    fn deterministic_across_runs() {
        let (sim, _) = one_flow(500, 1200, 1100);
        let a = sim.run().unwrap();
        let b = sim.run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn staggered_start_reflected_in_fct() {
        let (mut sim, route) = chain(1, 0.0, 100.0, 0.0);
        sim.add_flow(SimFlow {
            route,
            packets: 10,
            wire_bytes: 1000,
            wire_growth_per_hop: 0,
            payload_bytes: 1000,
            start_us: 50.0,
        });
        let stats = sim.run().unwrap();
        // FCT measured relative to the flow's own start.
        assert!(stats[0].fct_us < 10.0, "fct {}", stats[0].fct_us);
    }
}
