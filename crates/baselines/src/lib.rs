//! Comparison deployment frameworks for the Hermes evaluation.
//!
//! Implements the two classes of solutions the paper compares against
//! (§VI-A):
//!
//! 1. **ILP-based frameworks** ([`ilp`]): Min-Stage, Sonata, SPEED, MTP,
//!    Flightplan, and P4All, each keeping its published objective but
//!    running on the workspace's `hermes-milp` solver in place of Gurobi.
//! 2. **Heuristic frameworks** ([`greedy`]): first fit by level (FFL) and
//!    first fit by level and size (FFLS).
//!
//! All implement [`hermes_core::DeploymentAlgorithm`], so experiments
//! iterate over one uniform suite (see [`standard_suite`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod greedy;
pub mod ilp;

pub use greedy::{FirstFitByLevel, FirstFitByLevelAndSize};
pub use ilp::{IlpBaseline, IlpConfig, IlpObjective, Sonata};

use hermes_core::{Budgeted, DeploymentAlgorithm, GreedyHeuristic, OptimalSolver};
use std::time::Duration;

/// The full algorithm suite of the paper's evaluation, in its figure
/// order: MS, Sonata, SPEED, MTP, FP, P4All, FFL, FFLS, Hermes, Optimal.
///
/// `ilp_budget` bounds each ILP-based framework's solve (and the Optimal
/// search); the paper's Gurobi runs are capped at two hours the same way.
pub fn standard_suite(ilp_budget: Duration) -> Vec<Box<dyn DeploymentAlgorithm>> {
    let config = IlpConfig { time_limit: ilp_budget, ..Default::default() };
    vec![
        Box::new(IlpBaseline::min_stage(config.clone())),
        Box::new(Sonata::new(config.clone())),
        Box::new(IlpBaseline::speed(config.clone())),
        Box::new(IlpBaseline::mtp(config.clone())),
        Box::new(IlpBaseline::flightplan(config.clone())),
        Box::new(IlpBaseline::p4all(config)),
        Box::new(FirstFitByLevel),
        Box::new(FirstFitByLevelAndSize),
        Box::new(GreedyHeuristic::new()),
        Box::new(Budgeted::new(OptimalSolver::default(), ilp_budget)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_algorithms_with_unique_names() {
        let suite = standard_suite(Duration::from_secs(1));
        assert_eq!(suite.len(), 10);
        let names: std::collections::BTreeSet<&str> = suite.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 10);
        assert!(names.contains("Hermes"));
        assert!(names.contains("Optimal"));
    }
}
