//! First-fit greedy baselines: FFL and FFLS (Jose et al. \[8\], as extended
//! by the paper to deploy on switches one by one).
//!
//! Both walk the merged TDG level by level and pack MATs into the current
//! switch until it cannot take the next one, then move to the next
//! programmable switch. They never look at metadata amounts, so dependency
//! edges get cut wherever capacity happens to run out — exactly the
//! behaviour Hermes improves on.

use hermes_core::{
    materialize, stage_feasible, DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon,
    SearchContext, SolveOutcome, SolveStats, Solver,
};
use hermes_net::Network;
use hermes_tdg::{NodeId, Tdg};
use std::collections::BTreeSet;
use std::time::Instant;

/// One-shot construction wrapped as a [`Solver`]: deploy once, publish the
/// objective as an incumbent, and claim optimality only at zero overhead.
pub(crate) fn one_shot_solve(
    algo: &dyn DeploymentAlgorithm,
    tdg: &Tdg,
    net: &Network,
    eps: &Epsilon,
    ctx: &SearchContext,
) -> Result<SolveOutcome, DeployError> {
    let start = Instant::now();
    let plan = algo.deploy(tdg, net, eps)?;
    let objective = plan.max_inter_switch_bytes(tdg);
    ctx.publish_incumbent(objective);
    Ok(SolveOutcome {
        plan,
        objective,
        proven_optimal: objective == 0,
        stats: SolveStats {
            nodes_explored: 0,
            wall: start.elapsed(),
            proven_bound: (objective == 0).then_some(0),
        },
    })
}

/// Tie-breaking order inside a dependency level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LevelOrder {
    /// FFL: plain topological/level order.
    ByLevel,
    /// FFLS: within a level, largest resource first.
    ByLevelAndSize,
}

/// First fit by level.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFitByLevel;

/// First fit by level and size.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFitByLevelAndSize;

impl DeploymentAlgorithm for FirstFitByLevel {
    fn name(&self) -> &str {
        "FFL"
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        first_fit(tdg, net, eps, LevelOrder::ByLevel)
    }
}

impl DeploymentAlgorithm for FirstFitByLevelAndSize {
    fn name(&self) -> &str {
        "FFLS"
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        first_fit(tdg, net, eps, LevelOrder::ByLevelAndSize)
    }
}

impl Solver for FirstFitByLevel {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        one_shot_solve(self, tdg, net, eps, ctx)
    }
}

impl Solver for FirstFitByLevelAndSize {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        one_shot_solve(self, tdg, net, eps, ctx)
    }
}

/// Dependency level of each node: longest path from a root, the classic
/// FFL level function.
fn levels(tdg: &Tdg) -> Vec<usize> {
    let order = tdg.topo_order().expect("TDGs are DAGs");
    let mut level = vec![0usize; tdg.node_count()];
    for &id in &order {
        for e in tdg.out_edges(id) {
            level[e.to.index()] = level[e.to.index()].max(level[id.index()] + 1);
        }
    }
    level
}

fn first_fit(
    tdg: &Tdg,
    net: &Network,
    eps: &Epsilon,
    order_kind: LevelOrder,
) -> Result<DeploymentPlan, DeployError> {
    // Restrict to the largest component so routing between consecutive
    // fill switches always exists (Table III topology 5 is disconnected).
    let component = net.largest_component();
    let candidates: Vec<_> =
        net.programmable_switches().into_iter().filter(|s| component.contains(s)).collect();
    if candidates.is_empty() {
        return Err(DeployError::NoProgrammableSwitch);
    }
    if tdg.node_count() == 0 {
        return Ok(DeploymentPlan::new());
    }

    // Order nodes by (level, tie-break), preserving dependency legality:
    // a node's level strictly exceeds all its predecessors', so a level
    // sort is a topological sort.
    let level = levels(tdg);
    let mut nodes: Vec<NodeId> = tdg.node_ids().collect();
    nodes.sort_by(|&a, &b| {
        let key_a = level[a.index()];
        let key_b = level[b.index()];
        key_a.cmp(&key_b).then_with(|| match order_kind {
            LevelOrder::ByLevel => a.cmp(&b),
            LevelOrder::ByLevelAndSize => tdg
                .node(b)
                .mat
                .resource()
                .partial_cmp(&tdg.node(a).mat.resource())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b)),
        })
    });

    // Pack greedily: try the current switch; on failure advance. Never
    // returns to an earlier switch, matching one-by-one deployment.
    let mut assign = vec![usize::MAX; tdg.node_count()];
    let mut current = 0usize;
    let mut on_current: BTreeSet<NodeId> = BTreeSet::new();
    for &id in &nodes {
        loop {
            if current >= candidates.len() || current >= eps.max_switches {
                return Err(DeployError::NoFeasiblePlacement {
                    reason: format!(
                        "first-fit ran out of switches after {current} (eps2 = {})",
                        eps.max_switches
                    ),
                });
            }
            let model = net.switch(candidates[current]).target_model();
            let mut attempt = on_current.clone();
            attempt.insert(id);
            if stage_feasible(tdg, &attempt, &model) {
                on_current = attempt;
                assign[id.index()] = current;
                break;
            }
            // A single MAT that fits no empty switch can never be placed.
            if on_current.is_empty() {
                return Err(DeployError::MatTooLarge {
                    mat: tdg.node(id).name.clone(),
                    resource: tdg.node(id).mat.resource(),
                });
            }
            current += 1;
            on_current.clear();
        }
    }

    let plan = materialize(tdg, net, &candidates, &assign).ok_or_else(|| {
        DeployError::NoFeasiblePlacement { reason: "routing failed for first-fit plan".to_owned() }
    })?;
    if plan.end_to_end_latency_us() > eps.max_latency_us {
        return Err(DeployError::NoFeasiblePlacement {
            reason: "first-fit plan exceeds eps1".to_owned(),
        });
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{verify, GreedyHeuristic, ProgramAnalyzer};
    use hermes_dataplane::library;

    fn testbed_inputs() -> (Tdg, Network) {
        hermes_core::test_support::linear_testbed(&library::real_programs())
    }

    #[test]
    fn ffl_places_everything_and_verifies() {
        let (tdg, net) = testbed_inputs();
        let eps = Epsilon::loose();
        let plan = FirstFitByLevel.deploy(&tdg, &net, &eps).unwrap();
        let violations = verify(&tdg, &net, &plan, &eps);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn ffls_places_everything_and_verifies() {
        let (tdg, net) = testbed_inputs();
        let eps = Epsilon::loose();
        let plan = FirstFitByLevelAndSize.deploy(&tdg, &net, &eps).unwrap();
        let violations = verify(&tdg, &net, &plan, &eps);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn first_fit_is_overhead_oblivious() {
        // On the testbed workload, Hermes should never be worse than FFL.
        let (tdg, net) = testbed_inputs();
        let eps = Epsilon::loose();
        let ffl = FirstFitByLevel.deploy(&tdg, &net, &eps).unwrap();
        let hermes = hermes_core::GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        assert!(
            hermes.max_inter_switch_bytes(&tdg) <= ffl.max_inter_switch_bytes(&tdg),
            "hermes {} vs ffl {}",
            hermes.max_inter_switch_bytes(&tdg),
            ffl.max_inter_switch_bytes(&tdg)
        );
        let _ = GreedyHeuristic::new();
    }

    #[test]
    fn levels_respect_dependencies() {
        let tdg = ProgramAnalyzer::new().analyze(&[library::l3_router()]);
        let l = levels(&tdg);
        for e in tdg.edges() {
            assert!(l[e.from.index()] < l[e.to.index()]);
        }
    }

    #[test]
    fn no_programmable_switch_errors() {
        let tdg = ProgramAnalyzer::new().analyze(&[library::acl()]);
        let mut net = Network::new();
        net.add_switch(hermes_net::Switch::legacy("l"));
        assert!(matches!(
            FirstFitByLevel.deploy(&tdg, &net, &Epsilon::loose()),
            Err(DeployError::NoProgrammableSwitch)
        ));
    }

    #[test]
    fn eps2_limits_switch_usage() {
        let (tdg, net) = testbed_inputs();
        let eps = Epsilon::new(f64::INFINITY, 1);
        // Ten merged programs do not fit one switch.
        let result = FirstFitByLevel.deploy(&tdg, &net, &eps);
        if let Ok(plan) = result {
            assert!(plan.occupied_switch_count() <= 1);
        }
    }
}
