//! ILP-based comparison frameworks: Min-Stage, Sonata, SPEED, MTP,
//! Flightplan, and P4All.
//!
//! Each framework keeps its published optimization objective but — like
//! the paper's re-implementations — runs on the same solver (here
//! `hermes-milp` in place of Gurobi) over the same switch-granularity
//! assignment encoding that [`hermes_core::build_p1`] uses, minus the
//! `A_max` objective none of them optimizes:
//!
//! | Framework | Objective encoded |
//! |---|---|
//! | Min-Stage (MS) | pack MATs into the lowest-indexed switches (stage-count proxy) |
//! | Sonata | per-program sequential pack-left ILPs |
//! | SPEED | minimize end-to-end coordination latency |
//! | MTP | SPEED + rule-capacity balance term (control-plane load) |
//! | Flightplan (FP) | minimize the number of cut dependency edges |
//! | P4All | minimize the maximum per-switch load (elastic headroom) |
//!
//! Exactly as in the paper, these solvers blow up on large instances;
//! every framework therefore carries (a) a wall-clock budget after which
//! the incumbent is used and (b) a documented greedy *surrogate* used when
//! the model would not even fit in memory (`size_guard`). Exp#3 measures
//! the ILP attempt time; overhead experiments consume the decisions.

use hermes_core::{
    materialize, DeployError, DeploymentAlgorithm, DeploymentPlan, Epsilon, GreedyHeuristic,
    SearchContext, SolveOutcome, Solver, SplitStrategy,
};
use hermes_milp::{
    solve_with_controls, Direction, LinExpr, Model, Sense, SolveControls, SolveStatus,
    SolverConfig, VarId,
};
use hermes_net::{shortest_path, Network, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use std::time::{Duration, Instant};

use crate::greedy::{one_shot_solve, FirstFitByLevel, FirstFitByLevelAndSize};

/// Which published objective an [`IlpBaseline`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpObjective {
    /// Min-Stage: pack into the lowest switch indexes.
    PackLeft,
    /// SPEED: minimize summed coordination latency.
    MinLatency,
    /// MTP: latency plus a rule-capacity balance epigraph.
    LatencyAndRuleBalance,
    /// Flightplan: minimize the number of cross-switch dependency edges.
    MinCutEdges,
    /// P4All: minimize the maximum per-switch resource load.
    BalanceLoad,
}

/// Shared configuration of the ILP frameworks.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Branch-and-bound budget per solve.
    pub time_limit: Duration,
    /// Skip the ILP (use the surrogate) above this many binary variables.
    pub max_binaries: usize,
    /// Skip the ILP above this many rank-linearization cells
    /// (`edges x switches²`) — the dense simplex tableau grows with the
    /// constraint count, and past this point one LP relaxation would not
    /// even fit in memory.
    pub max_rank_cells: usize,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            time_limit: Duration::from_secs(20),
            max_binaries: 4_000,
            max_rank_cells: 2_500,
        }
    }
}

/// An ILP-based deployment framework.
#[derive(Debug, Clone)]
pub struct IlpBaseline {
    name: &'static str,
    objective: IlpObjective,
    config: IlpConfig,
}

impl IlpBaseline {
    /// Min-Stage \[8\] extended network-wide.
    pub fn min_stage(config: IlpConfig) -> Self {
        IlpBaseline { name: "MS", objective: IlpObjective::PackLeft, config }
    }

    /// SPEED \[6\].
    pub fn speed(config: IlpConfig) -> Self {
        IlpBaseline { name: "SPEED", objective: IlpObjective::MinLatency, config }
    }

    /// MTP \[57\].
    pub fn mtp(config: IlpConfig) -> Self {
        IlpBaseline { name: "MTP", objective: IlpObjective::LatencyAndRuleBalance, config }
    }

    /// Flightplan \[7\].
    pub fn flightplan(config: IlpConfig) -> Self {
        IlpBaseline { name: "FP", objective: IlpObjective::MinCutEdges, config }
    }

    /// P4All \[59\].
    pub fn p4all(config: IlpConfig) -> Self {
        IlpBaseline { name: "P4All", objective: IlpObjective::BalanceLoad, config }
    }

    /// The configured objective.
    pub fn objective(&self) -> IlpObjective {
        self.objective
    }
}

impl DeploymentAlgorithm for IlpBaseline {
    fn name(&self) -> &str {
        self.name
    }

    fn is_exhaustive(&self) -> bool {
        true
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        self.deploy_inner(tdg, net, eps, None)
    }
}

impl Solver for IlpBaseline {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        let start = Instant::now();
        let plan = self.deploy_inner(tdg, net, eps, Some(ctx))?;
        let objective = plan.max_inter_switch_bytes(tdg);
        ctx.publish_incumbent(objective);
        Ok(SolveOutcome {
            plan,
            objective,
            // These frameworks optimize their own published objective, not
            // A_max, so only zero overhead is ever proven optimal.
            proven_optimal: objective == 0,
            stats: hermes_core::SolveStats {
                nodes_explored: 0,
                wall: start.elapsed(),
                proven_bound: (objective == 0).then_some(0),
            },
        })
    }
}

impl IlpBaseline {
    fn deploy_inner(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: Option<&SearchContext>,
    ) -> Result<DeploymentPlan, DeployError> {
        let component = net.largest_component();
        let candidates: Vec<SwitchId> =
            net.programmable_switches().into_iter().filter(|s| component.contains(s)).collect();
        if candidates.is_empty() {
            return Err(DeployError::NoProgrammableSwitch);
        }
        if tdg.node_count() == 0 {
            return Ok(DeploymentPlan::new());
        }
        let q = candidates.len();
        let binaries = tdg.node_count() * q;
        let rank_cells = tdg.edge_count() * q * q;
        if binaries > self.config.max_binaries || rank_cells > self.config.max_rank_cells {
            return self.surrogate(tdg, net, eps);
        }
        // Budget: the context when racing, the configured limit otherwise.
        // The shared incumbent is NOT passed down — it bounds A_max, which
        // is not what these models minimize.
        let controls = match ctx {
            Some(ctx) => SolveControls {
                deadline: ctx.deadline(),
                stop: Some(ctx.cancel_token().as_flag()),
                upper_bound: None,
            },
            None => SolveControls {
                deadline: Some(Instant::now() + self.config.time_limit),
                ..Default::default()
            },
        };
        match solve_assignment(tdg, net, eps, &candidates, self.objective, &controls) {
            Some(assign) => materialize(tdg, net, &candidates, &assign)
                .filter(|p| p.end_to_end_latency_us() <= eps.max_latency_us)
                .map(Ok)
                .unwrap_or_else(|| self.surrogate(tdg, net, eps)),
            None => self.surrogate(tdg, net, eps),
        }
    }

    /// Greedy fallback used beyond the size guard or when the ILP returns
    /// nothing within budget. Each surrogate mimics the objective's shape.
    fn surrogate(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        match self.objective {
            IlpObjective::PackLeft => FirstFitByLevel.deploy(tdg, net, eps),
            IlpObjective::MinLatency | IlpObjective::LatencyAndRuleBalance => {
                FirstFitByLevelAndSize.deploy(tdg, net, eps)
            }
            IlpObjective::MinCutEdges => {
                // Flightplan: split where the fewest edges cross, not the
                // fewest bytes — plan on a unit-weight clone of the TDG.
                let unit = tdg.with_uniform_edge_bytes(1);
                GreedyHeuristic::new().deploy(&unit, net, eps)
            }
            IlpObjective::BalanceLoad => {
                GreedyHeuristic::with_strategy(SplitStrategy::Balanced).deploy(tdg, net, eps)
            }
        }
    }
}

/// Builds and solves the assignment model, returning `assign[node] ->
/// candidate index` or `None` when no incumbent was found in budget.
#[allow(clippy::needless_range_loop)] // candidate-column index `c` is semantic in the encoding
fn solve_assignment(
    tdg: &Tdg,
    net: &Network,
    eps: &Epsilon,
    candidates: &[SwitchId],
    objective: IlpObjective,
    controls: &SolveControls,
) -> Option<Vec<usize>> {
    let q = candidates.len();
    let n = tdg.node_count();
    let mut model = Model::new("baseline-assignment");
    let nodes: Vec<NodeId> = tdg.node_ids().collect();

    let z: Vec<Vec<VarId>> =
        (0..n).map(|a| (0..q).map(|c| model.binary(format!("z_{a}_{c}"))).collect()).collect();

    for (a, vars) in z.iter().enumerate() {
        model.add_constraint(
            format!("place_{a}"),
            LinExpr::sum(vars.iter().map(|&v| (v, 1.0))),
            Sense::Eq,
            1.0,
        );
    }
    for (c, &sw) in candidates.iter().enumerate() {
        let cap = net.switch(sw).total_capacity();
        let load = LinExpr::sum((0..n).map(|a| (z[a][c], tdg.node(nodes[a]).mat.resource())));
        model.add_constraint(format!("cap_{c}"), load, Sense::Le, cap);
    }

    // Chainability ranks (same encoding as P#1).
    let big_m = (q + 1) as f64;
    let ranks: Vec<VarId> =
        (0..q).map(|c| model.continuous(format!("r_{c}"), 0.0, q as f64)).collect();
    for (ei, e) in tdg.edges().iter().enumerate() {
        for u in 0..q {
            for v in 0..q {
                if u == v {
                    continue;
                }
                model.add_constraint(
                    format!("rank_{ei}_{u}_{v}"),
                    LinExpr::from(ranks[u]) - LinExpr::from(ranks[v])
                        + LinExpr::from(z[e.from.index()][u]) * big_m
                        + LinExpr::from(z[e.to.index()][v]) * big_m,
                    Sense::Le,
                    2.0 * big_m - 1.0,
                );
            }
        }
    }

    // ε₂ (only when binding).
    if eps.max_switches < q {
        let occ: Vec<VarId> = (0..q).map(|c| model.binary(format!("occ_{c}"))).collect();
        for (a, vars) in z.iter().enumerate() {
            for c in 0..q {
                model.add_constraint(
                    format!("occ_{a}_{c}"),
                    LinExpr::from(occ[c]) - LinExpr::from(vars[c]),
                    Sense::Ge,
                    0.0,
                );
            }
        }
        model.add_constraint(
            "eps2",
            LinExpr::sum(occ.iter().map(|&v| (v, 1.0))),
            Sense::Le,
            eps.max_switches as f64,
        );
    }

    // Objective-specific machinery.
    match objective {
        IlpObjective::PackLeft => {
            let obj = LinExpr::sum(
                z.iter()
                    .flat_map(|vars| vars.iter().enumerate().map(|(c, &v)| (v, (c + 1) as f64))),
            );
            model.set_objective(Direction::Minimize, obj);
        }
        IlpObjective::MinLatency | IlpObjective::LatencyAndRuleBalance => {
            // cut edge (e, u, v) contributes shortest-path latency.
            let mut obj = LinExpr::new();
            for (ei, e) in tdg.edges().iter().enumerate() {
                for u in 0..q {
                    for v in 0..q {
                        if u == v {
                            continue;
                        }
                        let Some(p) = shortest_path(net, candidates[u], candidates[v]) else {
                            continue;
                        };
                        let w = model.continuous(format!("w_{ei}_{u}_{v}"), 0.0, 1.0);
                        model.add_constraint(
                            format!("wlin_{ei}_{u}_{v}"),
                            LinExpr::from(w)
                                - LinExpr::from(z[e.from.index()][u])
                                - LinExpr::from(z[e.to.index()][v]),
                            Sense::Ge,
                            -1.0,
                        );
                        obj += LinExpr::from(w) * p.latency_us;
                    }
                }
            }
            if objective == IlpObjective::LatencyAndRuleBalance {
                // Control-plane balance: epigraph over per-switch rule
                // capacity, lightly weighted against latency.
                let l = model.continuous("rule_load_max", 0.0, f64::INFINITY);
                for c in 0..q {
                    let load = LinExpr::sum(
                        (0..n).map(|a| (z[a][c], tdg.node(nodes[a]).mat.capacity() as f64)),
                    );
                    model.add_constraint(
                        format!("bal_{c}"),
                        LinExpr::from(l) - load,
                        Sense::Ge,
                        0.0,
                    );
                }
                obj += LinExpr::from(l) * 1e-3;
            }
            model.set_objective(Direction::Minimize, obj);
        }
        IlpObjective::MinCutEdges => {
            let mut obj = LinExpr::new();
            for (ei, e) in tdg.edges().iter().enumerate() {
                let cut = model.continuous(format!("cut_{ei}"), 0.0, 1.0);
                for c in 0..q {
                    // cut >= z(a,c) - z(b,c): 1 whenever endpoints differ.
                    model.add_constraint(
                        format!("cut_{ei}_{c}"),
                        LinExpr::from(cut) - LinExpr::from(z[e.from.index()][c])
                            + LinExpr::from(z[e.to.index()][c]),
                        Sense::Ge,
                        0.0,
                    );
                }
                obj += LinExpr::from(cut);
            }
            model.set_objective(Direction::Minimize, obj);
        }
        IlpObjective::BalanceLoad => {
            let l = model.continuous("load_max", 0.0, f64::INFINITY);
            for c in 0..q {
                let load =
                    LinExpr::sum((0..n).map(|a| (z[a][c], tdg.node(nodes[a]).mat.resource())));
                model.add_constraint(format!("bal_{c}"), LinExpr::from(l) - load, Sense::Ge, 0.0);
            }
            model.set_objective(Direction::Minimize, LinExpr::from(l));
        }
    }

    let solution = solve_with_controls(&model, &SolverConfig::default(), controls).ok()?;
    match solution.status {
        SolveStatus::Optimal | SolveStatus::Feasible => {}
        _ => return None,
    }
    Some((0..n).map(|a| (0..q).find(|&c| solution.value(z[a][c]) > 0.5).expect("placed")).collect())
}

/// Sonata \[4\]: deploys programs one at a time, each through its own small
/// pack-left ILP against the capacity left by earlier programs.
#[derive(Debug, Clone)]
pub struct Sonata {
    config: IlpConfig,
}

impl Sonata {
    /// Sonata with the given per-program solve budget.
    pub fn new(config: IlpConfig) -> Self {
        Sonata { config }
    }
}

impl Default for Sonata {
    fn default() -> Self {
        Sonata::new(IlpConfig::default())
    }
}

impl DeploymentAlgorithm for Sonata {
    fn name(&self) -> &str {
        "Sonata"
    }

    fn is_exhaustive(&self) -> bool {
        true
    }

    fn deploy(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
    ) -> Result<DeploymentPlan, DeployError> {
        let component = net.largest_component();
        let candidates: Vec<SwitchId> =
            net.programmable_switches().into_iter().filter(|s| component.contains(s)).collect();
        if candidates.is_empty() {
            return Err(DeployError::NoProgrammableSwitch);
        }
        if tdg.node_count() == 0 {
            return Ok(DeploymentPlan::new());
        }
        // Program order: first occurrence over node indexes.
        let mut programs: Vec<String> = Vec::new();
        for id in tdg.node_ids() {
            for p in &tdg.node(id).programs {
                if !programs.contains(p) {
                    programs.push(p.clone());
                }
            }
        }
        let q = candidates.len();
        let mut assign = vec![usize::MAX; tdg.node_count()];
        let mut used = vec![0.0f64; q];
        for prog in &programs {
            let members: Vec<NodeId> = tdg
                .node_ids()
                .filter(|&id| assign[id.index()] == usize::MAX)
                .filter(|&id| tdg.node(id).programs.contains(prog))
                .collect();
            if members.is_empty() {
                continue;
            }
            let partial = solve_program_packing(tdg, net, &candidates, &members, &assign, &used)
                .ok_or_else(|| DeployError::NoFeasiblePlacement {
                    reason: format!("sonata could not place program `{prog}`"),
                })?;
            for (&id, &c) in members.iter().zip(&partial) {
                assign[id.index()] = c;
                used[c] += tdg.node(id).mat.resource();
            }
        }
        let _ = &self.config;
        materialize(tdg, net, &candidates, &assign)
            .filter(|p| {
                p.end_to_end_latency_us() <= eps.max_latency_us
                    && p.occupied_switch_count() <= eps.max_switches
            })
            .ok_or_else(|| DeployError::NoFeasiblePlacement {
                reason: "sonata placement violated ε-bounds or staging".to_owned(),
            })
    }
}

impl Solver for Sonata {
    fn solve(
        &self,
        tdg: &Tdg,
        net: &Network,
        eps: &Epsilon,
        ctx: &SearchContext,
    ) -> Result<SolveOutcome, DeployError> {
        one_shot_solve(self, tdg, net, eps, ctx)
    }
}

/// Greedy pack-left of one program's nodes given fixed prior placements.
/// (Sonata's per-query planning is tiny, so a direct greedy matching its
/// pack-left ILP optimum is used; the network-wide ILPs above exercise the
/// solver.)
fn solve_program_packing(
    tdg: &Tdg,
    net: &Network,
    candidates: &[SwitchId],
    members: &[NodeId],
    assign: &[usize],
    used: &[f64],
) -> Option<Vec<usize>> {
    let q = candidates.len();
    let mut used = used.to_vec();
    let mut local_assign = assign.to_vec();
    // Current node sets per switch (for stage-feasibility checks).
    let mut on_switch: Vec<std::collections::BTreeSet<NodeId>> = vec![Default::default(); q];
    for id in tdg.node_ids() {
        let c = local_assign[id.index()];
        if c != usize::MAX {
            on_switch[c].insert(id);
        }
    }
    let mut out = Vec::with_capacity(members.len());
    // Members arrive in node-id order == topological order per program.
    for &id in members {
        let resource = tdg.node(id).mat.resource();
        // Earliest switch after every placed predecessor (chain order).
        let min_c = tdg
            .in_edges(id)
            .map(|e| local_assign[e.from.index()])
            .filter(|&c| c != usize::MAX)
            .max()
            .unwrap_or(0);
        let c = (min_c..q).find(|&c| {
            let model = net.switch(candidates[c]).target_model();
            if used[c] + resource > model.total_capacity() + 1e-9 {
                return false;
            }
            let mut attempt = on_switch[c].clone();
            attempt.insert(id);
            hermes_core::stage_feasible(tdg, &attempt, &model)
        })?;
        used[c] += resource;
        local_assign[id.index()] = c;
        on_switch[c].insert(id);
        out.push(c);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::verify;
    use hermes_dataplane::library;

    fn small_inputs() -> (Tdg, Network) {
        // Three programs keep the ILPs tiny enough for exact solves.
        hermes_core::test_support::linear_testbed(&[
            library::l3_router(),
            library::acl(),
            library::cm_sketch(),
        ])
    }

    fn fast() -> IlpConfig {
        IlpConfig { time_limit: Duration::from_secs(5), ..Default::default() }
    }

    #[test]
    fn every_ilp_baseline_produces_verified_plans() {
        let (tdg, net) = small_inputs();
        let eps = Epsilon::loose();
        let baselines: Vec<IlpBaseline> = vec![
            IlpBaseline::min_stage(fast()),
            IlpBaseline::speed(fast()),
            IlpBaseline::mtp(fast()),
            IlpBaseline::flightplan(fast()),
            IlpBaseline::p4all(fast()),
        ];
        for b in baselines {
            let plan = b.deploy(&tdg, &net, &eps).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let violations = verify(&tdg, &net, &plan, &eps);
            assert!(violations.is_empty(), "{}: {violations:?}", b.name());
        }
    }

    #[test]
    fn sonata_places_programs_sequentially() {
        let (tdg, net) = small_inputs();
        let eps = Epsilon::loose();
        let plan = Sonata::default().deploy(&tdg, &net, &eps).unwrap();
        let violations = verify(&tdg, &net, &plan, &eps);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn size_guard_falls_back_to_surrogate() {
        let (tdg, net) = small_inputs();
        let eps = Epsilon::loose();
        let tiny_guard = IlpConfig { max_binaries: 1, ..fast() };
        let plan = IlpBaseline::min_stage(tiny_guard).deploy(&tdg, &net, &eps).unwrap();
        assert!(verify(&tdg, &net, &plan, &eps).is_empty());
    }

    #[test]
    fn hermes_no_worse_than_any_baseline_on_testbed() {
        let (tdg, net) = small_inputs();
        let eps = Epsilon::loose();
        let hermes = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let h = hermes.max_inter_switch_bytes(&tdg);
        for plan in [
            IlpBaseline::min_stage(fast()).deploy(&tdg, &net, &eps).unwrap(),
            Sonata::default().deploy(&tdg, &net, &eps).unwrap(),
        ] {
            assert!(h <= plan.max_inter_switch_bytes(&tdg));
        }
    }

    #[test]
    fn p4all_balances_load() {
        let (tdg, net) = small_inputs();
        let eps = Epsilon::loose();
        let plan = IlpBaseline::p4all(fast()).deploy(&tdg, &net, &eps).unwrap();
        // The balanced objective should occupy more than one switch even
        // though everything could fit on one.
        assert!(plan.occupied_switch_count() >= 2);
    }

    #[test]
    fn min_stage_packs_left() {
        let (tdg, net) = small_inputs();
        let eps = Epsilon::loose();
        let plan = IlpBaseline::min_stage(fast()).deploy(&tdg, &net, &eps).unwrap();
        // Everything fits the first switch (total R small), so pack-left
        // should use exactly one switch.
        assert_eq!(plan.occupied_switch_count(), 1);
        assert_eq!(plan.max_inter_switch_bytes(&tdg), 0);
    }
}
