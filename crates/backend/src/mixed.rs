//! Reitblatt-style per-packet consistency across a mixed-epoch window.
//!
//! When the runtime commits a new deployment switch by switch over a
//! lossy control channel, acks land at different virtual times: for a
//! while the network serves a *mix* of the old and the new epoch. During
//! that window traffic still follows the **old** plan's coordinated route
//! (routes flip atomically when the controller activates the new epoch),
//! but each visited switch executes whichever config it currently serves
//! — new if its commit already landed, old otherwise.
//!
//! Per-packet consistency demands that a packet crossing that window is
//! indistinguishable from one processed end to end by a single epoch.
//! [`check_transition`] replays the deterministic packet seeds against
//! every prefix of the intended commit order and compares the mixed
//! execution's observable outcome (headers + drop status) to the
//! reference program semantics; the runtime refuses to issue the first
//! commit — rolling the transaction back — when any window would diverge.
//!
//! Transitions that keep every MAT on its switch are trivially
//! consistent; transitions that move a MAT generally are not (the window
//! double-executes or skips it), which is exactly the class of rollouts
//! that must be rolled back rather than committed gradually.

use crate::config::DeploymentArtifacts;
use crate::emulator::{
    execute_switch, run_reference, same_observable, test_packet, transitive_piggyback, Packet,
    Registers,
};
use hermes_core::DeploymentPlan;
use hermes_net::SwitchId;
use hermes_tdg::Tdg;
use std::collections::BTreeSet;
use std::fmt;

/// The old and new sides of one epoch transition, borrowed from the
/// runtime's active deployment and the transaction being committed.
#[derive(Debug, Clone, Copy)]
pub struct EpochTransition<'a> {
    /// The program both epochs realize.
    pub tdg: &'a Tdg,
    /// The plan serving before the transition.
    pub old_plan: &'a DeploymentPlan,
    /// Per-switch configs of the old plan.
    pub old_artifacts: &'a DeploymentArtifacts,
    /// The plan being committed.
    pub new_plan: &'a DeploymentPlan,
    /// Per-switch configs of the new plan.
    pub new_artifacts: &'a DeploymentArtifacts,
}

/// Why a mixed-epoch window is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedEpochViolation {
    /// With exactly `committed` switches on the new epoch, `packet_seed`'s
    /// observable outcome diverges from the single-epoch reference.
    Divergence {
        /// The diverging packet seed.
        packet_seed: u64,
        /// The committed set of the violating window.
        committed: Vec<SwitchId>,
    },
    /// The old plan's switch dependency graph has no topological order,
    /// so no window can be replayed (never the case for a plan that
    /// passed verification).
    UnorderedOldPlan,
}

impl fmt::Display for MixedEpochViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixedEpochViolation::Divergence { packet_seed, committed } => write!(
                f,
                "packet seed {packet_seed} observes both epochs with {} switch(es) committed ({:?})",
                committed.len(),
                committed
            ),
            MixedEpochViolation::UnorderedOldPlan => {
                f.write_str("old plan has a cyclic switch dependency graph")
            }
        }
    }
}

impl std::error::Error for MixedEpochViolation {}

/// Runs one packet through the mixed window: old-plan route, per-switch
/// epoch chosen by the committed set, egress stripping per the serving
/// epoch's piggyback contract.
fn run_mixed(
    t: &EpochTransition<'_>,
    committed: &BTreeSet<SwitchId>,
    mut pkt: Packet,
) -> Result<Packet, MixedEpochViolation> {
    let order = t
        .old_artifacts
        .switch_visit_order(t.tdg, t.old_plan)
        .ok_or(MixedEpochViolation::UnorderedOldPlan)?;
    let mut regs = Registers::default();
    for (i, &switch) in order.iter().enumerate() {
        let serving_new =
            committed.contains(&switch) && t.new_artifacts.switches.contains_key(&switch);
        let (config, plan) = if serving_new {
            (&t.new_artifacts.switches[&switch], t.new_plan)
        } else {
            (&t.old_artifacts.switches[&switch], t.old_plan)
        };
        execute_switch(t.tdg, config, &mut pkt, &mut regs);
        // Egress keeps what the *serving* epoch believes later switches
        // still consume — a committed switch applies its new append
        // contract even though traffic still follows the old route.
        let piggyback = transitive_piggyback(t.tdg, plan, &order[..=i], &order[i + 1..]);
        pkt.retain_for_wire(&piggyback);
    }
    Ok(pkt)
}

/// Checks one window: with exactly `committed` switches serving the new
/// epoch, every packet seed must be observably identical to the
/// single-epoch reference execution.
///
/// # Errors
///
/// Returns the first [`MixedEpochViolation`] found.
pub fn check_window(
    t: &EpochTransition<'_>,
    committed: &BTreeSet<SwitchId>,
    packet_seeds: &[u64],
) -> Result<(), MixedEpochViolation> {
    for &seed in packet_seeds {
        let mixed = run_mixed(t, committed, test_packet(seed))?;
        let reference = run_reference(t.tdg, test_packet(seed));
        if !same_observable(&mixed, &reference) {
            return Err(MixedEpochViolation::Divergence {
                packet_seed: seed,
                committed: committed.iter().copied().collect(),
            });
        }
    }
    Ok(())
}

/// Checks every window the intended `commit_order` can realize: after
/// each prefix of commits has landed (including the full set, which is
/// the state just before routes flip at activation), packets must stay
/// per-packet consistent. Returns the number of windows checked.
///
/// The runtime calls this *before issuing the first commit*: a violating
/// order means the transition cannot be committed gradually and must
/// roll back instead.
///
/// # Errors
///
/// Returns the first violating window's [`MixedEpochViolation`] — the
/// same window the sequential prefix loop would report. Windows are
/// replayed in parallel (they are independent of each other); the scan
/// over the collected results stays in commit order, so the outcome is
/// deterministic regardless of thread scheduling.
pub fn check_transition(
    t: &EpochTransition<'_>,
    commit_order: &[SwitchId],
    packet_seeds: &[u64],
) -> Result<usize, MixedEpochViolation> {
    let prefixes: Vec<BTreeSet<SwitchId>> =
        (1..=commit_order.len()).map(|n| commit_order[..n].iter().copied().collect()).collect();
    if prefixes.is_empty() {
        return Ok(0);
    }
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get()).min(prefixes.len());
    let mut results: Vec<Result<(), MixedEpochViolation>> = vec![Ok(()); prefixes.len()];
    if workers <= 1 {
        for (slot, committed) in results.iter_mut().zip(&prefixes) {
            *slot = check_window(t, committed, packet_seeds);
        }
    } else {
        let chunk = prefixes.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (res_chunk, pre_chunk) in results.chunks_mut(chunk).zip(prefixes.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, committed) in res_chunk.iter_mut().zip(pre_chunk) {
                        *slot = check_window(t, committed, packet_seeds);
                    }
                });
            }
        });
    }
    for r in results {
        r?;
    }
    Ok(prefixes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::generate;
    use hermes_core::{
        DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer, StagePlacement,
    };
    use hermes_dataplane::action::{Action, PrimitiveOp};
    use hermes_dataplane::fields::{headers, Field};
    use hermes_dataplane::library;
    use hermes_dataplane::mat::{Mat, MatchKind};
    use hermes_dataplane::program::Program;
    use hermes_net::{paths, topology, Network};
    use hermes_tdg::AnalysisMode;

    /// Two-MAT chain: `a` hashes a header into metadata, `b` copies the
    /// metadata into a header — the canonical dependency whose placement
    /// is observable.
    fn chain_tdg() -> Tdg {
        let idx = Field::metadata("meta.idx", 4);
        let a =
            Mat::builder("a")
                .action(Action::new("hash").with_op(PrimitiveOp::Hash {
                    dst: idx.clone(),
                    srcs: vec![headers::ipv4_src()],
                }))
                .resource(0.5)
                .build()
                .unwrap();
        let b = Mat::builder("b")
            .match_field(idx.clone(), MatchKind::Exact)
            .action(
                Action::new("stamp")
                    .with_op(PrimitiveOp::Copy { dst: headers::ipv4_dst(), src: idx }),
            )
            .resource(0.5)
            .build()
            .unwrap();
        let p = Program::builder("p").table(a).table(b).build().unwrap();
        Tdg::from_program(&p, AnalysisMode::PaperLiteral)
    }

    /// Places node 0 on `home_a` and node 1 on `home_b` (with a route when
    /// they differ).
    fn chain_plan(net: &Network, home_a: SwitchId, home_b: SwitchId, tdg: &Tdg) -> DeploymentPlan {
        let order = tdg.topo_order().unwrap();
        let mut plan = DeploymentPlan::new();
        plan.place(StagePlacement { node: order[0], switch: home_a, stage: 0, fraction: 0.5 });
        plan.place(StagePlacement { node: order[1], switch: home_b, stage: 1, fraction: 0.5 });
        if home_a != home_b {
            let path = paths::shortest_path(net, home_a, home_b).unwrap();
            plan.route(hermes_core::PlanRoute { from: home_a, to: home_b, path });
        }
        plan
    }

    #[test]
    fn identity_transition_is_consistent_in_every_window() {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let art = generate(&tdg, &net, &plan);
        let t = EpochTransition {
            tdg: &tdg,
            old_plan: &plan,
            old_artifacts: &art,
            new_plan: &plan,
            new_artifacts: &art,
        };
        let order: Vec<SwitchId> = plan.occupied_switches().into_iter().collect();
        let windows = check_transition(&t, &order, &[0, 1, 2, 3]).expect("identity is consistent");
        assert_eq!(windows, order.len());
    }

    #[test]
    fn empty_window_equals_the_old_deployment() {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let art = generate(&tdg, &net, &plan);
        let t = EpochTransition {
            tdg: &tdg,
            old_plan: &plan,
            old_artifacts: &art,
            new_plan: &plan,
            new_artifacts: &art,
        };
        // Zero commits landed: the mixed execution IS the old deployment,
        // which passed validation — so the empty window must check clean.
        check_window(&t, &BTreeSet::new(), &[0, 1, 2, 3]).expect("old deployment is consistent");
    }

    #[test]
    fn moving_a_mat_violates_some_window() {
        // Old epoch: a@s0, b@s1. New epoch: both on s0. When s0's commit
        // lands first, a packet on the old route runs (a, b) on s0 under
        // the new config — stripping meta.idx per the new (single-switch)
        // contract — then runs the OLD b again on s1 with the metadata
        // gone: it observed both epochs and diverges.
        let tdg = chain_tdg();
        let net = topology::linear(2, 10.0);
        let ids: Vec<SwitchId> = net.switch_ids().collect();
        let old_plan = chain_plan(&net, ids[0], ids[1], &tdg);
        let new_plan = chain_plan(&net, ids[0], ids[0], &tdg);
        let old_art = generate(&tdg, &net, &old_plan);
        let new_art = generate(&tdg, &net, &new_plan);
        let t = EpochTransition {
            tdg: &tdg,
            old_plan: &old_plan,
            old_artifacts: &old_art,
            new_plan: &new_plan,
            new_artifacts: &new_art,
        };
        let err = check_transition(&t, &[ids[0]], &[0, 1, 2, 3])
            .expect_err("a moved MAT must break some window");
        match err {
            MixedEpochViolation::Divergence { committed, .. } => {
                assert_eq!(committed, vec![ids[0]]);
            }
            other => panic!("unexpected violation: {other}"),
        }
    }

    #[test]
    fn violation_renders_usefully() {
        let v = MixedEpochViolation::Divergence { packet_seed: 7, committed: vec![] };
        assert!(v.to_string().contains("packet seed 7"), "{v}");
    }
}
