//! A functional emulator of the distributed pipeline.
//!
//! Executes packets through a deployed program the way the real testbed
//! would: the packet visits the occupied switches in dependency order; on
//! each switch its stages run in sequence, every MAT executing its first
//! action over a symbolic field store (hashes, copies, register reads);
//! when the packet leaves a switch, **only header fields and the
//! piggyback contract survive** — any metadata the deployment forgot to
//! piggyback is lost, exactly as it would be on hardware.
//!
//! Two things fall out of this:
//!
//! 1. **Semantic validation of Goal #2** — running the same packet through
//!    the distributed deployment and through a single giant logical switch
//!    must produce identical final field values ([`equivalent`]).
//! 2. **True on-wire accounting** — metadata produced on switch 1 but
//!    consumed on switch 3 must also transit switch 2, so the bytes on a
//!    hop can exceed the paper's pairwise `A_max` ([`Trace::wire_bytes`]).

use crate::config::DeploymentArtifacts;
use hermes_core::DeploymentPlan;
use hermes_dataplane::action::{FoldOp, PrimitiveOp};
use hermes_dataplane::fields::Field;
use hermes_dataplane::Mat;
use hermes_net::SwitchId;
use hermes_tdg::{NodeId, Tdg};
use std::collections::BTreeMap;

/// A packet as the pipeline sees it: symbolic 64-bit field values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Packet {
    fields: BTreeMap<Field, u64>,
    dropped: bool,
}

impl Packet {
    /// A packet with the given initial header values.
    pub fn with_headers<I: IntoIterator<Item = (Field, u64)>>(headers: I) -> Self {
        Packet { fields: headers.into_iter().collect(), dropped: false }
    }

    /// Current value of a field (absent fields read as 0, like
    /// uninitialized metadata in a real pipeline).
    pub fn get(&self, field: &Field) -> u64 {
        self.fields.get(field).copied().unwrap_or(0)
    }

    /// Sets a field.
    pub fn set(&mut self, field: Field, value: u64) {
        self.fields.insert(field, value);
    }

    /// Whether some MAT dropped the packet.
    pub fn is_dropped(&self) -> bool {
        self.dropped
    }

    /// All fields currently on the packet.
    pub fn fields(&self) -> &BTreeMap<Field, u64> {
        &self.fields
    }

    /// Keeps headers plus the given metadata set; all other metadata is
    /// stripped (what happens on egress without a piggyback entry).
    pub(crate) fn retain_for_wire(&mut self, piggyback: &std::collections::BTreeSet<Field>) {
        self.fields.retain(|f, _| f.is_header() || piggyback.contains(f));
    }
}

/// Deterministic "hash": good enough to detect value mismatches.
fn mix(seed: u64, value: u64) -> u64 {
    let mut z = seed ^ value.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn name_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100000001b3))
}

/// Per-deployment register state: each stateful table owns an array.
#[derive(Debug, Clone, Default)]
pub struct Registers {
    arrays: BTreeMap<String, BTreeMap<u64, u64>>,
}

impl Registers {
    fn read_modify(&mut self, table: &str, index: u64) -> u64 {
        let slot = self.arrays.entry(table.to_owned()).or_default().entry(index).or_insert(0);
        *slot += 1;
        *slot
    }
}

/// Executes one MAT over the packet: the first action of the table runs
/// (rule lookup is control-plane state; data-plane semantics — who writes
/// what from what — are what equivalence needs).
fn execute_mat(mat: &Mat, table_name: &str, pkt: &mut Packet, regs: &mut Registers) {
    let Some(action) = mat.actions().first() else {
        return;
    };
    for op in action.ops() {
        match op {
            PrimitiveOp::SetConst { dst } => {
                pkt.set(dst.clone(), name_seed(action.name()));
            }
            PrimitiveOp::Copy { dst, src } => {
                let v = pkt.get(src);
                pkt.set(dst.clone(), v);
            }
            PrimitiveOp::Compute { dst, srcs } => {
                let mut v = name_seed(action.name());
                for s in srcs {
                    v = mix(v, pkt.get(s));
                }
                pkt.set(dst.clone(), v);
            }
            PrimitiveOp::Hash { dst, srcs } => {
                let mut v = 0;
                for s in srcs {
                    v = mix(v, pkt.get(s));
                }
                pkt.set(dst.clone(), v);
            }
            PrimitiveOp::RegisterOp { index, out } => {
                let idx = pkt.get(index);
                let value = regs.read_modify(table_name, idx);
                if let Some(out) = out {
                    pkt.set(out.clone(), value);
                }
            }
            PrimitiveOp::Fold { dst, srcs, op } => {
                // The per-packet contribution is a pure function of the
                // sources; it combines into the accumulator through the
                // actual monoid so that fold order is unobservable — the
                // property the state-access relaxation relies on.
                let contrib = srcs.iter().fold(0u64, |v, s| mix(v, pkt.get(s)));
                let v = if pkt.fields().contains_key(dst) {
                    let acc = pkt.get(dst);
                    match op {
                        FoldOp::Add => acc.wrapping_add(contrib),
                        FoldOp::Max => acc.max(contrib),
                        FoldOp::Min => acc.min(contrib),
                        FoldOp::Or => acc | contrib,
                    }
                } else {
                    contrib // monoid identity: first fold installs the value
                };
                pkt.set(dst.clone(), v);
            }
            PrimitiveOp::Drop => {
                pkt.dropped = true;
            }
            PrimitiveOp::Forward { port } => {
                let v = pkt.get(port);
                pkt.set(port.clone(), v);
            }
        }
    }
}

/// Execution record of one packet through a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Final packet state.
    pub packet: Packet,
    /// Switches visited, in order.
    pub visits: Vec<SwitchId>,
    /// Metadata bytes on the wire after each visited switch (the packet's
    /// real piggyback load per hop, pass-through included).
    pub wire_bytes: Vec<u32>,
}

impl Trace {
    /// The largest piggyback load on any hop.
    pub fn max_wire_bytes(&self) -> u32 {
        self.wire_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// Runs `pkt` through the distributed deployment.
///
/// Per visited switch, MATs execute in stage order (ties: placement
/// order); on egress the packet keeps headers plus every metadata field
/// that any *later* switch still consumes (the generated piggyback
/// contract, transitively closed over pass-through hops).
///
/// # Panics
///
/// Panics if the plan's switch-level dependency graph is cyclic — such
/// plans never pass [`hermes_core::verify()`].
pub fn run_distributed(
    tdg: &Tdg,
    plan: &DeploymentPlan,
    artifacts: &DeploymentArtifacts,
    mut pkt: Packet,
) -> Trace {
    let order =
        artifacts.switch_visit_order(tdg, plan).expect("verified plans have an acyclic switch DAG");
    let mut regs = Registers::default();
    let mut visits = Vec::with_capacity(order.len());
    let mut wire_bytes = Vec::with_capacity(order.len());

    for (i, &switch) in order.iter().enumerate() {
        visits.push(switch);
        execute_switch(tdg, &artifacts.switches[&switch], &mut pkt, &mut regs);
        // Egress: strip everything later switches do not consume.
        let remaining: Vec<SwitchId> = order[i + 1..].to_vec();
        let piggyback = transitive_piggyback(tdg, plan, &order[..=i], &remaining);
        pkt.retain_for_wire(&piggyback);
        wire_bytes.push(piggyback.iter().map(Field::size_bytes).sum());
    }
    Trace { packet: pkt, visits, wire_bytes }
}

/// Executes every MAT of one switch config over the packet, in stage
/// order; a MAT split over several stages runs once, at its first slice.
pub(crate) fn execute_switch(
    tdg: &Tdg,
    config: &crate::config::SwitchConfig,
    pkt: &mut Packet,
    regs: &mut Registers,
) {
    let mut executed: std::collections::BTreeSet<NodeId> = Default::default();
    let mut items: Vec<(usize, &crate::config::StageEntry)> = config
        .stages
        .iter()
        .flat_map(|(stage, list)| list.iter().map(move |e| (*stage, e)))
        .collect();
    items.sort_by_key(|(stage, e)| (*stage, e.node));
    for (_, entry) in items {
        if executed.insert(entry.node) {
            let mat = &tdg.node(entry.node).mat;
            execute_mat(mat, &entry.table, pkt, regs);
        }
    }
}

/// Metadata written on any already-visited switch and still consumed by a
/// MAT on any remaining switch: what genuinely must ride the wire now.
pub(crate) fn transitive_piggyback(
    tdg: &Tdg,
    plan: &DeploymentPlan,
    visited: &[SwitchId],
    remaining: &[SwitchId],
) -> std::collections::BTreeSet<Field> {
    let mut out = std::collections::BTreeSet::new();
    if remaining.is_empty() {
        return out;
    }
    for e in tdg.edges() {
        let (Some(u), Some(v)) = (plan.switch_of(e.from), plan.switch_of(e.to)) else {
            continue;
        };
        if visited.contains(&u) && remaining.contains(&v) {
            out.extend(tdg.node(e.from).mat.written_metadata());
        }
    }
    out
}

/// The field-level analogue of the paper's pairwise `A_max`: for each
/// ordered switch pair, the byte size of the *union* of metadata fields
/// written by sources of its crossing edges. Unlike the per-edge sum
/// (which double-counts a field shared by several crossing edges), this is
/// a true lower bound on what must ride the wire between the pair.
pub fn pairwise_field_bytes(tdg: &Tdg, plan: &DeploymentPlan) -> u64 {
    let mut per_pair: BTreeMap<(SwitchId, SwitchId), std::collections::BTreeSet<Field>> =
        BTreeMap::new();
    for e in tdg.edges() {
        let (Some(u), Some(v)) = (plan.switch_of(e.from), plan.switch_of(e.to)) else {
            continue;
        };
        if u != v && e.bytes > 0 {
            per_pair.entry((u, v)).or_default().extend(tdg.node(e.from).mat.written_metadata());
        }
    }
    per_pair
        .values()
        .map(|fields| fields.iter().map(|f| u64::from(f.size_bytes())).sum())
        .max()
        .unwrap_or(0)
}

/// Runs `pkt` through the *reference* deployment: every MAT on a single
/// giant logical switch in topological order (the semantics of the
/// original merged program).
pub fn run_reference(tdg: &Tdg, mut pkt: Packet) -> Packet {
    let mut regs = Registers::default();
    for id in tdg.topo_order().expect("TDGs are DAGs") {
        let node = tdg.node(id);
        execute_mat(&node.mat, &node.name, &mut pkt, &mut regs);
    }
    pkt
}

/// `true` iff the distributed execution ends with exactly the same field
/// values as the reference execution — dependency preservation (Goal #2),
/// observed rather than assumed.
pub fn equivalent(
    tdg: &Tdg,
    plan: &DeploymentPlan,
    artifacts: &DeploymentArtifacts,
    pkt: Packet,
) -> bool {
    let reference = run_reference(tdg, pkt.clone());
    let distributed = run_distributed(tdg, plan, artifacts, pkt);
    same_observable(&reference, &distributed.packet)
}

/// Observable equality of two final packet states: header fields plus
/// drop status. Metadata is pipeline-internal and legitimately stripped
/// at the final egress, so it does not participate.
pub(crate) fn same_observable(a: &Packet, b: &Packet) -> bool {
    let headers = |p: &Packet| -> BTreeMap<Field, u64> {
        p.fields().iter().filter(|(f, _)| f.is_header()).map(|(f, v)| (f.clone(), *v)).collect()
    };
    headers(a) == headers(b) && a.is_dropped() == b.is_dropped()
}

/// The canonical test packet: every header field of the library programs,
/// seeded deterministically.
pub fn test_packet(seed: u64) -> Packet {
    use hermes_dataplane::fields::headers as h;
    let fields = [
        h::eth_src(),
        h::eth_dst(),
        h::eth_type(),
        h::ipv4_src(),
        h::ipv4_dst(),
        h::ipv4_ttl(),
        h::ipv4_dscp(),
        h::ipv4_proto(),
        h::l4_sport(),
        h::l4_dport(),
        h::tcp_flags(),
        h::vlan_id(),
    ];
    Packet::with_headers(fields.into_iter().enumerate().map(|(i, f)| (f, mix(seed, i as u64))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::generate;
    use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
    use hermes_dataplane::library;
    use hermes_net::topology;

    fn deployed() -> (Tdg, DeploymentPlan, DeploymentArtifacts) {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let art = generate(&tdg, &net, &plan);
        (tdg, plan, art)
    }

    #[test]
    fn distributed_equals_reference_for_many_packets() {
        let (tdg, plan, art) = deployed();
        for seed in 0..20u64 {
            assert!(
                equivalent(&tdg, &plan, &art, test_packet(seed)),
                "packet {seed} diverged: the deployment broke a dependency"
            );
        }
    }

    #[test]
    fn dropping_piggybacked_metadata_breaks_semantics() {
        // A two-MAT chain: `a` hashes headers into meta.idx, `b` copies the
        // metadata into a header field. Splitting them across switches
        // WITHOUT piggybacking meta.idx must corrupt the result.
        use hermes_dataplane::action::{Action, PrimitiveOp};
        use hermes_dataplane::fields::headers;
        use hermes_dataplane::mat::{Mat, MatchKind};
        use hermes_dataplane::program::Program;
        use hermes_tdg::AnalysisMode;

        let idx = Field::metadata("meta.idx", 4);
        let a =
            Mat::builder("a")
                .action(Action::new("hash").with_op(PrimitiveOp::Hash {
                    dst: idx.clone(),
                    srcs: vec![headers::ipv4_src()],
                }))
                .resource(0.5)
                .build()
                .unwrap();
        let b = Mat::builder("b")
            .match_field(idx.clone(), MatchKind::Exact)
            .action(
                Action::new("stamp")
                    .with_op(PrimitiveOp::Copy { dst: headers::ipv4_dst(), src: idx.clone() }),
            )
            .resource(0.5)
            .build()
            .unwrap();
        let p = Program::builder("p").table(a).table(b).build().unwrap();
        let tdg = Tdg::from_program(&p, AnalysisMode::PaperLiteral);
        let reference = run_reference(&tdg, test_packet(9));

        // "Broken deployment": execute a, strip ALL metadata, execute b.
        let mut pkt = test_packet(9);
        let mut regs = Registers::default();
        let order = tdg.topo_order().unwrap();
        execute_mat(&tdg.node(order[0]).mat, "a", &mut pkt, &mut regs);
        pkt.retain_for_wire(&Default::default()); // no piggyback contract
        execute_mat(&tdg.node(order[1]).mat, "b", &mut pkt, &mut regs);
        assert_ne!(
            reference.get(&headers::ipv4_dst()),
            pkt.get(&headers::ipv4_dst()),
            "losing meta.idx must corrupt b's output"
        );
    }

    #[test]
    fn wire_bytes_at_least_pairwise_field_union() {
        let (tdg, plan, art) = deployed();
        let trace = run_distributed(&tdg, &plan, &art, test_packet(1));
        // Pass-through hops can only add to the per-pair field union.
        // (The paper's per-edge sum can exceed the wire load when several
        // crossing edges share a field — the union is the true bound.)
        assert!(
            u64::from(trace.max_wire_bytes()) >= pairwise_field_bytes(&tdg, &plan),
            "wire {} < field union {}",
            trace.max_wire_bytes(),
            pairwise_field_bytes(&tdg, &plan)
        );
    }

    #[test]
    fn visits_cover_every_occupied_switch() {
        let (tdg, plan, art) = deployed();
        let trace = run_distributed(&tdg, &plan, &art, test_packet(2));
        assert_eq!(trace.visits.len(), plan.occupied_switch_count());
    }

    #[test]
    fn reference_execution_is_deterministic() {
        let (tdg, ..) = deployed();
        let a = run_reference(&tdg, test_packet(3));
        let b = run_reference(&tdg, test_packet(3));
        assert_eq!(a, b);
    }

    #[test]
    fn register_state_accumulates() {
        let mut regs = Registers::default();
        assert_eq!(regs.read_modify("t", 5), 1);
        assert_eq!(regs.read_modify("t", 5), 2);
        assert_eq!(regs.read_modify("t", 6), 1);
        assert_eq!(regs.read_modify("u", 5), 1);
    }

    #[test]
    fn packet_reads_absent_fields_as_zero() {
        let pkt = Packet::default();
        assert_eq!(pkt.get(&Field::metadata("meta.x", 4)), 0);
        assert!(!pkt.is_dropped());
    }
}
