//! Deployment backend: from decision variables to running pipelines.
//!
//! The paper's implementation section describes a backend that takes the
//! optimizer's decision variables, determines which MATs and dependencies
//! each switch realizes, compiles per-switch configurations, and has the
//! controller steer traffic through the coordinated switch sequence. This
//! crate reproduces that layer in two parts:
//!
//! - [`config`] — [`config::generate`] turns a verified
//!   [`DeploymentPlan`](hermes_core::DeploymentPlan) into per-switch
//!   configurations (stage layouts, parse/append piggyback contracts) and
//!   a controller route table, all serializable.
//! - [`emulator`] — a functional pipeline emulator that pushes packets
//!   through the distributed deployment, stripping non-piggybacked
//!   metadata at every egress. [`emulator::equivalent`]
//!   checks that the distributed execution matches a single logical
//!   switch — Goal #2 of the paper, *observed* instead of assumed — and
//!   [`Trace::wire_bytes`](emulator::Trace) reports the true per-hop
//!   metadata load including pass-through carriage.
//! - [`mixed`] — Reitblatt-style per-packet consistency across the
//!   mixed-epoch window a staggered commit opens:
//!   [`mixed::check_transition`] replays packet seeds against every
//!   prefix of a commit order (old route, per-switch epoch mix) so the
//!   runtime can refuse transitions that cannot be committed gradually.
//!
//! # Example
//!
//! ```
//! use hermes_backend::{config::generate, emulator};
//! use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
//! use hermes_dataplane::library;
//! use hermes_net::topology;
//!
//! let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
//! let net = topology::linear(3, 10.0);
//! let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose())?;
//! let artifacts = generate(&tdg, &net, &plan);
//! assert!(emulator::equivalent(&tdg, &plan, &artifacts, emulator::test_packet(0)));
//! # Ok::<(), hermes_core::DeployError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod emulator;
pub mod mixed;
pub mod simulate;
pub mod validate;

pub use config::{generate, DeploymentArtifacts, RouteEntry, StageEntry, SwitchConfig};
pub use emulator::{
    equivalent, pairwise_field_bytes, run_distributed, run_reference, test_packet, Packet,
    Registers, Trace,
};
pub use mixed::{check_transition, check_window, EpochTransition, MixedEpochViolation};
pub use simulate::{simulate_plan, PlanFlowConfig, PlanSimResult};
pub use validate::{validate_plan, ValidationFailure, ValidationReport};
