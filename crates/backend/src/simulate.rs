//! End-to-end simulation of a concrete deployment.
//!
//! The bench harness evaluates plans on the abstract five-hop testbed of
//! §II-B. This module instead simulates the *actual* deployment: the flow
//! follows the plan's switch visit order, traverses every intermediate
//! switch of the installed coordination paths with the network's real
//! per-link latencies, and carries the piggyback load the emulator
//! derives for the plan (the paper's measurement: the maximum metadata
//! between any switch pair rides every packet).

use crate::config::DeploymentArtifacts;
use crate::emulator::{run_distributed, test_packet};
use hermes_core::DeploymentPlan;
use hermes_net::{shortest_path, Network, SwitchId};
use hermes_sim::engine::{FlowStats, SimFlow, SimLink, SimNode, Simulation};
use hermes_tdg::Tdg;

/// Flow parameters for a deployment simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFlowConfig {
    /// Packets in the flow.
    pub packets: u64,
    /// Application packet size in bytes (headers included, metadata not).
    pub packet_size: u32,
    /// Protocol header bytes within `packet_size`.
    pub header_bytes: u32,
    /// Line rate of every link, Gbit/s (the substrate model carries
    /// latencies but not rates; Tofino ports are 100 G).
    pub rate_gbps: f64,
}

impl Default for PlanFlowConfig {
    fn default() -> Self {
        PlanFlowConfig { packets: 5_000, packet_size: 1024, header_bytes: 54, rate_gbps: 100.0 }
    }
}

/// Result of simulating one flow through a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSimResult {
    /// Stats of the flow carrying the plan's metadata.
    pub loaded: FlowStats,
    /// Stats of the identical flow with zero metadata (baseline).
    pub baseline: FlowStats,
    /// Metadata bytes carried per packet (the emulator's max wire load).
    pub overhead_bytes: u32,
    /// Every switch the flow traverses, coordination path hops included.
    pub traversed: Vec<SwitchId>,
}

impl PlanSimResult {
    /// `FCT(loaded) / FCT(baseline)`.
    pub fn fct_ratio(&self) -> f64 {
        self.loaded.fct_us / self.baseline.fct_us
    }

    /// `goodput(loaded) / goodput(baseline)`.
    pub fn goodput_ratio(&self) -> f64 {
        self.loaded.goodput_gbps / self.baseline.goodput_gbps
    }
}

/// Simulates a flow through the deployment's coordination chain.
///
/// Returns `None` when the plan occupies no switch or a coordination hop
/// has no path (never the case for verified plans on connected components).
pub fn simulate_plan(
    tdg: &Tdg,
    net: &Network,
    plan: &DeploymentPlan,
    artifacts: &DeploymentArtifacts,
    config: &PlanFlowConfig,
) -> Option<PlanSimResult> {
    let order = artifacts.switch_visit_order(tdg, plan)?;
    if order.is_empty() {
        return None;
    }
    // Expand the visit order into the physical switch sequence: installed
    // route hops where available, shortest paths otherwise.
    let mut traversed: Vec<SwitchId> = vec![order[0]];
    for w in order.windows(2) {
        let hops = match plan.route_between(w[0], w[1]) {
            Some(r) => r.path.hops.clone(),
            None => shortest_path(net, w[0], w[1])?.hops,
        };
        traversed.extend(hops.into_iter().skip(1));
    }

    // The realized per-packet metadata load (pass-through included).
    let trace = run_distributed(tdg, plan, artifacts, test_packet(0));
    let overhead = trace.max_wire_bytes();

    let run = |overhead: u32| -> FlowStats {
        let mut sim = Simulation::new();
        let src = sim.add_node(SimNode { latency_us: 0.0 });
        let mut nodes = vec![src];
        for &s in &traversed {
            nodes.push(sim.add_node(SimNode { latency_us: net.switch(s).latency_us }));
        }
        let dst = sim.add_node(SimNode { latency_us: 0.0 });
        nodes.push(dst);
        for (i, w) in nodes.windows(2).enumerate() {
            // Host links get a nominal 1 us; switch-switch links use the
            // substrate latency.
            let delay = if i == 0 || i + 2 == nodes.len() {
                1.0
            } else {
                net.link_between(traversed[i - 1], traversed[i]).map_or(1.0, |l| l.latency_us)
            };
            sim.add_link(SimLink {
                from: w[0],
                to: w[1],
                rate_gbps: config.rate_gbps,
                delay_us: delay,
            });
        }
        sim.add_flow(SimFlow::constant(
            nodes,
            config.packets,
            config.packet_size + overhead,
            config.packet_size - config.header_bytes,
        ));
        sim.run().expect("chain flows are valid")[0]
    };

    Some(PlanSimResult {
        loaded: run(overhead),
        baseline: run(0),
        overhead_bytes: overhead,
        traversed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::generate;
    use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
    use hermes_dataplane::library;
    use hermes_net::topology;

    fn deployed() -> (Tdg, Network, DeploymentPlan, DeploymentArtifacts) {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let art = generate(&tdg, &net, &plan);
        (tdg, net, plan, art)
    }

    #[test]
    fn simulates_the_whole_coordination_chain() {
        let (tdg, net, plan, art) = deployed();
        let config = PlanFlowConfig { packets: 500, ..Default::default() };
        let result = simulate_plan(&tdg, &net, &plan, &art, &config).unwrap();
        assert_eq!(result.loaded.packets, 500);
        assert!(result.traversed.len() >= plan.occupied_switch_count());
        assert!(result.fct_ratio() >= 1.0);
        assert!(result.goodput_ratio() <= 1.0);
    }

    #[test]
    fn zero_overhead_plan_shows_no_degradation() {
        let tdg = ProgramAnalyzer::new().analyze(&[library::l3_router()]);
        let net = topology::linear(2, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let art = generate(&tdg, &net, &plan);
        let config = PlanFlowConfig { packets: 200, ..Default::default() };
        let result = simulate_plan(&tdg, &net, &plan, &art, &config).unwrap();
        assert_eq!(result.overhead_bytes, 0);
        assert!((result.fct_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heavier_plans_degrade_more() {
        // Compare the heuristic against a deliberately bad (balanced)
        // split on the same workload and network.
        use hermes_core::SplitStrategy;
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let eps = Epsilon::loose();
        let config = PlanFlowConfig { packets: 500, ..Default::default() };

        let good_plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        let good_art = generate(&tdg, &net, &good_plan);
        let good = simulate_plan(&tdg, &net, &good_plan, &good_art, &config).unwrap();

        let bad_plan = GreedyHeuristic::with_strategy(SplitStrategy::Balanced)
            .deploy(&tdg, &net, &eps)
            .unwrap();
        let bad_art = generate(&tdg, &net, &bad_plan);
        let bad = simulate_plan(&tdg, &net, &bad_plan, &bad_art, &config).unwrap();

        assert!(good.overhead_bytes <= bad.overhead_bytes);
        assert!(good.fct_ratio() <= bad.fct_ratio() + 1e-9);
    }
}
