//! Switch configuration generation.
//!
//! The Hermes backend (paper §VI-A, "Implementation") consumes the
//! optimizer's decision variables and produces, per programmable switch,
//! the artifact an off-the-shelf switch compiler would be fed: which MATs
//! sit on which stages, which rules they hold, and — crucially — the
//! **piggyback contract** of every inter-switch hop: the exact metadata
//! fields the egress pipeline must append to each packet so downstream
//! switches can keep processing it. A controller config carries the
//! routes (`y(u, v, p)`) used to steer coordinated traffic.

use hermes_core::DeploymentPlan;
use hermes_dataplane::fields::Field;
use hermes_net::{Network, SwitchId};
use hermes_tdg::{NodeId, Tdg};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One MAT slice installed on a concrete stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageEntry {
    /// Program-qualified MAT name.
    pub table: String,
    /// TDG node the entry realizes.
    pub node: NodeId,
    /// Fraction of the stage consumed.
    pub fraction: f64,
}

/// The compiled configuration of one switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// The switch this config loads onto.
    pub switch: SwitchId,
    /// Human-readable switch name.
    pub switch_name: String,
    /// Per-stage table slices, indexed by stage.
    pub stages: BTreeMap<usize, Vec<StageEntry>>,
    /// Metadata fields this switch must parse from incoming packets
    /// (piggybacked by upstream switches).
    pub parses: BTreeSet<Field>,
    /// Metadata fields this switch must append to departing packets,
    /// keyed by next-hop switch.
    pub appends: BTreeMap<SwitchId, BTreeSet<Field>>,
}

impl SwitchConfig {
    /// Total bytes this switch appends toward `next` (its share of the
    /// per-packet byte overhead on that pair).
    pub fn append_bytes(&self, next: SwitchId) -> u32 {
        self.appends.get(&next).map_or(0, |fields| fields.iter().map(Field::size_bytes).sum())
    }

    /// Number of distinct MATs installed.
    pub fn table_count(&self) -> usize {
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for entries in self.stages.values() {
            for e in entries {
                names.insert(&e.table);
            }
        }
        names.len()
    }
}

impl fmt::Display for SwitchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} tables over {} stages, parses {} fields",
            self.switch_name,
            self.table_count(),
            self.stages.len(),
            self.parses.len()
        )
    }
}

/// One controller routing entry: steer coordinated traffic from `from` to
/// `to` along `path`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Upstream switch.
    pub from: SwitchId,
    /// Downstream switch.
    pub to: SwitchId,
    /// Switch-id sequence of the installed path.
    pub path: Vec<SwitchId>,
}

/// Everything the deployment produces: per-switch configs plus the
/// controller's routing table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentArtifacts {
    /// Per-switch configurations, keyed by switch.
    pub switches: BTreeMap<SwitchId, SwitchConfig>,
    /// Controller routes realizing `y(u, v, p)`.
    pub routes: Vec<RouteEntry>,
}

impl DeploymentArtifacts {
    /// The switches the packet must visit, in dependency (topological)
    /// order of the switch-level DAG. Returns `None` if the plan's
    /// switch-level dependencies are cyclic (never the case for verified
    /// plans).
    pub fn switch_visit_order(&self, tdg: &Tdg, plan: &DeploymentPlan) -> Option<Vec<SwitchId>> {
        let occupied: Vec<SwitchId> = self.switches.keys().copied().collect();
        let index: BTreeMap<SwitchId, usize> =
            occupied.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let n = occupied.len();
        let mut adj = vec![BTreeSet::new(); n];
        let mut indegree = vec![0usize; n];
        for e in tdg.edges() {
            let (Some(u), Some(v)) = (plan.switch_of(e.from), plan.switch_of(e.to)) else {
                continue;
            };
            if u != v && adj[index[&u]].insert(index[&v]) {
                indegree[index[&v]] += 1;
            }
        }
        let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            order.push(occupied[i]);
            for &j in &adj[i].clone() {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.insert(j);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Maximum bytes appended on any single inter-switch hop — the
    /// realized per-packet byte overhead of the generated configs. Equals
    /// the plan's `A_max` by construction.
    pub fn max_append_bytes(&self) -> u32 {
        self.switches
            .values()
            .flat_map(|c| c.appends.keys().map(|&next| c.append_bytes(next)))
            .max()
            .unwrap_or(0)
    }
}

/// Generates the deployment artifacts for a verified plan.
///
/// The piggyback contract of a pair `(u, v)` is the set of metadata fields
/// written by MATs on `u` whose dependent MATs sit on `v` — exactly the
/// fields Algorithm 1 counted into `A(a, b)`.
pub fn generate(tdg: &Tdg, net: &Network, plan: &DeploymentPlan) -> DeploymentArtifacts {
    let mut switches: BTreeMap<SwitchId, SwitchConfig> = BTreeMap::new();
    for p in plan.placements() {
        let config = switches.entry(p.switch).or_insert_with(|| SwitchConfig {
            switch: p.switch,
            switch_name: net.switch(p.switch).name.clone(),
            stages: BTreeMap::new(),
            parses: BTreeSet::new(),
            appends: BTreeMap::new(),
        });
        config.stages.entry(p.stage).or_default().push(StageEntry {
            table: tdg.node(p.node).name.clone(),
            node: p.node,
            fraction: p.fraction,
        });
    }

    // Piggyback contracts from cross-switch dependency edges.
    for e in tdg.edges() {
        let (Some(u), Some(v)) = (plan.switch_of(e.from), plan.switch_of(e.to)) else {
            continue;
        };
        if u == v || e.bytes == 0 {
            continue;
        }
        let carried: BTreeSet<Field> =
            tdg.node(e.from).mat.written_metadata().into_iter().collect();
        if let Some(config) = switches.get_mut(&u) {
            config.appends.entry(v).or_default().extend(carried.iter().cloned());
        }
        if let Some(config) = switches.get_mut(&v) {
            config.parses.extend(carried);
        }
    }

    let routes = plan
        .routes()
        .iter()
        .map(|r| RouteEntry { from: r.from, to: r.to, path: r.path.hops.clone() })
        .collect();
    DeploymentArtifacts { switches, routes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{DeploymentAlgorithm, Epsilon, GreedyHeuristic, ProgramAnalyzer};
    use hermes_dataplane::library;
    use hermes_net::topology;

    fn artifacts() -> (Tdg, Network, DeploymentPlan, DeploymentArtifacts) {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(3, 10.0);
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &Epsilon::loose()).unwrap();
        let art = generate(&tdg, &net, &plan);
        (tdg, net, plan, art)
    }

    #[test]
    fn every_placement_appears_in_a_config() {
        let (tdg, _, plan, art) = artifacts();
        let installed: usize = art.switches.values().map(SwitchConfig::table_count).sum();
        let placed: BTreeSet<NodeId> = plan.placements().iter().map(|p| p.node).collect();
        assert_eq!(installed, placed.len());
        let _ = tdg;
    }

    #[test]
    fn append_bytes_match_plan_overhead() {
        let (tdg, _, plan, art) = artifacts();
        // The realized max append can only match or exceed per-edge
        // accounting; for PaperLiteral mode they coincide per pair.
        assert_eq!(u64::from(art.max_append_bytes()), plan.max_inter_switch_bytes(&tdg));
    }

    #[test]
    fn visit_order_is_dependency_consistent() {
        let (tdg, _, plan, art) = artifacts();
        let order = art.switch_visit_order(&tdg, &plan).expect("verified plans are acyclic");
        assert_eq!(order.len(), plan.occupied_switch_count());
        let rank: BTreeMap<SwitchId, usize> =
            order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for e in tdg.edges() {
            let (u, v) = (plan.switch_of(e.from).unwrap(), plan.switch_of(e.to).unwrap());
            if u != v {
                assert!(rank[&u] < rank[&v]);
            }
        }
    }

    #[test]
    fn parses_cover_upstream_appends() {
        let (_, _, _, art) = artifacts();
        for config in art.switches.values() {
            for (next, fields) in &config.appends {
                let downstream = &art.switches[next];
                for f in fields {
                    assert!(downstream.parses.contains(f), "{} not parsed downstream", f.name());
                }
            }
        }
    }

    #[test]
    fn artifacts_serialize() {
        let (_, _, _, art) = artifacts();
        let json = serde_json::to_string(&art).unwrap();
        let back: DeploymentArtifacts = serde_json::from_str(&json).unwrap();
        assert_eq!(art, back);
    }
}
