//! Pre-activation plan validation — the gate the failure-aware runtime
//! runs before switching traffic onto a new plan.
//!
//! A candidate plan (fresh deployment or healed layout) must pass two
//! independent checks before activation:
//!
//! 1. the static constraint verifier ([`hermes_core::verify()`], Eq. 4–9 of
//!    the paper), and
//! 2. packet-level equivalence against the single-logical-switch
//!    reference ([`crate::emulator::equivalent`]) over a battery of
//!    deterministic test packets.
//!
//! Both are reported through one serializable [`ValidationReport`] so the
//! runtime event log can record exactly why an activation was refused.

use crate::config::{generate, DeploymentArtifacts};
use crate::emulator;
use hermes_core::{verify, DeploymentPlan, Epsilon};
use hermes_net::Network;
use hermes_tdg::Tdg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One reason a candidate plan failed validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValidationFailure {
    /// A static constraint of the paper's formulation was violated
    /// (rendered through the verifier's own `Display`).
    Constraint {
        /// Human-readable violation description.
        violation: String,
    },
    /// The distributed execution diverged from the single-logical-switch
    /// reference for one of the test packets.
    Divergence {
        /// The seed of the diverging [`emulator::test_packet`].
        packet_seed: u64,
    },
}

impl fmt::Display for ValidationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationFailure::Constraint { violation } => {
                write!(f, "constraint violated: {violation}")
            }
            ValidationFailure::Divergence { packet_seed } => {
                write!(f, "distributed execution diverged on packet seed {packet_seed}")
            }
        }
    }
}

impl std::error::Error for ValidationFailure {}

/// Outcome of [`validate_plan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Everything that failed; empty means the plan may be activated.
    pub failures: Vec<ValidationFailure>,
    /// How many test packets were pushed through the emulator.
    pub packets_checked: usize,
}

impl ValidationReport {
    /// `true` iff the plan passed every check.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(f, "valid ({} packets checked)", self.packets_checked)
        } else {
            write!(f, "{} failure(s), first: {}", self.failures.len(), self.failures[0])
        }
    }
}

/// Validates a candidate plan: static constraints (Eq. 4–9) plus
/// packet-level equivalence for every seed in `packet_seeds`. Returns the
/// report together with the generated artifacts so a passing plan can be
/// activated without regenerating configurations.
pub fn validate_plan(
    tdg: &Tdg,
    net: &Network,
    plan: &DeploymentPlan,
    eps: &Epsilon,
    packet_seeds: &[u64],
) -> (ValidationReport, DeploymentArtifacts) {
    let mut failures: Vec<ValidationFailure> = verify(tdg, net, plan, eps)
        .into_iter()
        .map(|v| ValidationFailure::Constraint { violation: v.to_string() })
        .collect();
    let artifacts = generate(tdg, net, plan);
    // Equivalence is only meaningful for structurally sound plans; a plan
    // with constraint violations is already rejected.
    if failures.is_empty() {
        for &seed in packet_seeds {
            if !emulator::equivalent(tdg, plan, &artifacts, emulator::test_packet(seed)) {
                failures.push(ValidationFailure::Divergence { packet_seed: seed });
            }
        }
    }
    (ValidationReport { failures, packets_checked: packet_seeds.len() }, artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{DeploymentAlgorithm, GreedyHeuristic, ProgramAnalyzer};
    use hermes_dataplane::library;
    use hermes_net::topology;

    fn deployed() -> (Tdg, Network, DeploymentPlan, Epsilon) {
        let tdg = ProgramAnalyzer::new().analyze(&library::real_programs());
        let net = topology::linear(4, 10.0);
        let eps = Epsilon::loose();
        let plan = GreedyHeuristic::new().deploy(&tdg, &net, &eps).unwrap();
        (tdg, net, plan, eps)
    }

    #[test]
    fn sound_plan_validates() {
        let (tdg, net, plan, eps) = deployed();
        let (report, artifacts) = validate_plan(&tdg, &net, &plan, &eps, &[0, 1, 2, 3]);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.packets_checked, 4);
        assert!(!artifacts.switches.is_empty());
    }

    #[test]
    fn epsilon_violation_is_reported() {
        let (tdg, net, plan, _) = deployed();
        let tight = Epsilon::new(0.0, usize::MAX);
        let (report, _) = validate_plan(&tdg, &net, &plan, &tight, &[0]);
        assert!(!report.is_ok());
        assert!(matches!(report.failures[0], ValidationFailure::Constraint { .. }));
        assert!(report.to_string().contains("failure"));
    }

    #[test]
    fn plan_over_failed_switch_is_rejected() {
        let (tdg, mut net, plan, eps) = deployed();
        let dead = *plan.occupied_switches().iter().next().unwrap();
        net.fail_switch(dead);
        let (report, _) = validate_plan(&tdg, &net, &plan, &eps, &[0]);
        assert!(!report.is_ok(), "a plan using a dead switch must not validate");
    }

    #[test]
    fn report_round_trips_through_json() {
        let (tdg, net, plan, eps) = deployed();
        let (report, _) = validate_plan(&tdg, &net, &plan, &eps, &[0]);
        let text = serde_json::to_string(&report).unwrap();
        let back: ValidationReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report, back);
    }
}
