//! Substrate network model for the Hermes deployment framework.
//!
//! Models the network `G = (V_G, E_G)` of the paper's §V-A: switches with
//! programmability, pipeline stages, per-stage resource capacity, and
//! latency; undirected links with latency; path sets with the paper's
//! latency formula; and generators for the evaluation topologies.
//!
//! - [`graph`] — [`Network`], [`Switch`], [`Link`].
//! - [`paths`] — Dijkstra shortest paths, Yen's k-shortest paths
//!   (materializing `P(u, v)`), nearest-programmable queries.
//! - [`topology`] — linear testbed, Table III WANs, fat-tree, star.
//!
//! # Quick start
//!
//! ```
//! use hermes_net::{topology, paths};
//!
//! let net = topology::linear(3, 10.0);
//! let ids: Vec<_> = net.switch_ids().collect();
//! let p = paths::shortest_path(&net, ids[0], ids[2]).unwrap();
//! assert_eq!(p.hops.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod paths;
pub mod target;
pub mod topology;

pub use graph::{Link, Network, NetworkError, Switch, SwitchId, TOFINO_STAGES};
pub use paths::{k_shortest_paths, nearest_programmable, shortest_path, Path};
pub use target::{
    builtin_targets, parse_target, TargetKind, TargetModel, TargetSpec, TargetSpecError, CAP_TOL,
};
