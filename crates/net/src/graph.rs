//! The substrate network: switches, links, and their properties.
//!
//! Matches the paper's network model (§V-A): an undirected graph
//! `G = (V_G, E_G)` where each switch `u` has a programmability flag
//! `P(u)`, a stage count `C_stage`, a per-stage resource capacity `C_res`,
//! and a maximum transmission latency `t_s(u)`; each link has a
//! transmission latency `t_l(u, v)`.

use crate::target::{TargetKind, TargetModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Number of match-action pipeline stages of a Tofino-class switch.
pub const TOFINO_STAGES: usize = 12;

/// Identifier of a switch within one [`Network`]; a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub(crate) usize);

impl SwitchId {
    /// The dense index of this switch.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One switch of the substrate network.
///
/// `Serialize`/`Deserialize` are hand-written: the two target-model fields
/// are emitted only when they differ from the paper defaults and default
/// when absent, so default (paper-model) switches round-trip byte-identically
/// to the pre-target wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct Switch {
    /// Human-readable name (unique within the network).
    pub name: String,
    /// `P(u)` — whether the switch is programmable (can host MATs).
    pub programmable: bool,
    /// `C_stage` — number of pipeline stages (only meaningful when
    /// programmable).
    pub stages: usize,
    /// `C_res` — per-stage resource capacity in normalized units
    /// (1.0 = the capacity one "full stage" MAT consumes).
    pub stage_capacity: f64,
    /// `t_s(u)` — maximum transmission latency through the switch, in
    /// microseconds.
    pub latency_us: f64,
    /// Target-model family ([`TargetKind::Pipeline`] is the paper's default
    /// hardware model; the field is skipped in serialization so default
    /// switches round-trip byte-identically to the pre-target format).
    pub target: TargetKind,
    /// Per-switch total resource budget in normalized units; `INFINITY`
    /// (the default, skipped in serialization) means only the pipeline sum
    /// `C_stage × C_res` bounds the switch.
    pub total_budget: f64,
}

impl Serialize for Switch {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_owned(), self.name.to_value()),
            ("programmable".to_owned(), self.programmable.to_value()),
            ("stages".to_owned(), self.stages.to_value()),
            ("stage_capacity".to_owned(), self.stage_capacity.to_value()),
            ("latency_us".to_owned(), self.latency_us.to_value()),
        ];
        if !self.target.is_pipeline() {
            fields.push(("target".to_owned(), self.target.to_value()));
        }
        if self.total_budget.is_finite() {
            fields.push(("total_budget".to_owned(), self.total_budget.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for Switch {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Switch {
            name: Deserialize::from_value(v.get_field("name")?)?,
            programmable: Deserialize::from_value(v.get_field("programmable")?)?,
            stages: Deserialize::from_value(v.get_field("stages")?)?,
            stage_capacity: Deserialize::from_value(v.get_field("stage_capacity")?)?,
            latency_us: Deserialize::from_value(v.get_field("latency_us")?)?,
            target: match v.get_field("target") {
                Ok(t) => Deserialize::from_value(t)?,
                Err(_) => TargetKind::Pipeline,
            },
            total_budget: match v.get_field("total_budget") {
                Ok(b) => Deserialize::from_value(b)?,
                Err(_) => f64::INFINITY,
            },
        })
    }
}

impl Switch {
    /// A Tofino-like programmable switch: 12 stages of unit capacity, 1 µs.
    pub fn tofino(name: impl Into<String>) -> Self {
        Switch {
            name: name.into(),
            programmable: true,
            stages: TOFINO_STAGES,
            stage_capacity: 1.0,
            latency_us: 1.0,
            target: TargetKind::Pipeline,
            total_budget: f64::INFINITY,
        }
    }

    /// A SmartNIC-like programmable switch: fewer, deeper stages plus a
    /// per-switch total-resource budget (see [`TargetModel::smartnic`]).
    pub fn smartnic(name: impl Into<String>) -> Self {
        let mut sw = Switch::tofino(name);
        TargetModel::smartnic().apply_to(&mut sw);
        sw
    }

    /// A software switch: no architectural stage limit (packing depth
    /// [`crate::target::SOFT_STAGES`]), a total budget, and a latency
    /// multiplier (see [`TargetModel::software`]).
    pub fn software(name: impl Into<String>) -> Self {
        let mut sw = Switch::tofino(name);
        TargetModel::software().apply_to(&mut sw);
        sw
    }

    /// A legacy (non-programmable) switch that only forwards, 1 µs.
    pub fn legacy(name: impl Into<String>) -> Self {
        Switch {
            name: name.into(),
            programmable: false,
            stages: 0,
            stage_capacity: 0.0,
            latency_us: 1.0,
            target: TargetKind::Pipeline,
            total_budget: f64::INFINITY,
        }
    }

    /// This switch's pipeline cost model — the one authority every
    /// capacity/fit decision routes through. A cheap `Copy` view; safe to
    /// construct inside hot loops.
    pub fn target_model(&self) -> TargetModel {
        let name = match self.target {
            TargetKind::SmartNic => "smartnic",
            TargetKind::Software => "soft",
            TargetKind::Pipeline if !self.programmable => "legacy",
            TargetKind::Pipeline
                if self.stages == TOFINO_STAGES
                    && self.stage_capacity == 1.0
                    && self.total_budget.is_infinite() =>
            {
                "tofino"
            }
            TargetKind::Pipeline => "pipeline",
        };
        TargetModel {
            name,
            kind: self.target,
            stages: self.stages,
            stage_capacity: self.stage_capacity,
            total_budget: self.total_budget,
            latency_us: self.latency_us,
        }
    }

    /// Total resource capacity across all stages: `C_stage * C_res`,
    /// clamped by the target budget when one is set (delegates to
    /// [`TargetModel::total_capacity`], the single definition of "fits").
    pub fn total_capacity(&self) -> f64 {
        self.target_model().total_capacity()
    }
}

/// An undirected link with a transmission latency `t_l(u, v)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: SwitchId,
    /// The other endpoint.
    pub b: SwitchId,
    /// Transmission latency in microseconds.
    pub latency_us: f64,
}

impl Link {
    /// The endpoint opposite `s`, or `None` if `s` is not an endpoint.
    pub fn other(&self, s: SwitchId) -> Option<SwitchId> {
        if s == self.a {
            Some(self.b)
        } else if s == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Errors from network construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A link endpoint referenced a switch id not in the network.
    UnknownSwitch {
        /// The invalid index.
        index: usize,
    },
    /// A link connects a switch to itself.
    SelfLoop {
        /// The switch in question.
        switch: usize,
    },
    /// The same unordered switch pair was linked twice.
    DuplicateLink {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownSwitch { index } => write!(f, "unknown switch index {index}"),
            NetworkError::SelfLoop { switch } => write!(f, "self-loop on switch {switch}"),
            NetworkError::DuplicateLink { a, b } => write!(f, "duplicate link {a} <-> {b}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// The substrate network `G = (V_G, E_G)`.
///
/// # Examples
///
/// ```
/// use hermes_net::{Network, Switch};
///
/// let mut net = Network::new();
/// let a = net.add_switch(Switch::tofino("a"));
/// let b = net.add_switch(Switch::tofino("b"));
/// net.add_link(a, b, 1000.0)?;
/// assert_eq!(net.switch_count(), 2);
/// assert!(net.is_connected());
/// # Ok::<(), hermes_net::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Network {
    switches: Vec<Switch>,
    links: Vec<Link>,
    /// adjacency: per switch, indices into `links`.
    adjacency: Vec<Vec<usize>>,
    /// Failed switches (indices). Down switches keep their id (the id space
    /// stays dense) but disappear from `neighbors`, `programmable_switches`,
    /// `link_between`, and connectivity queries.
    down_switches: BTreeSet<usize>,
    /// Failed links (indices into `links`).
    down_links: BTreeSet<usize>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a switch, returning its id.
    pub fn add_switch(&mut self, switch: Switch) -> SwitchId {
        self.switches.push(switch);
        self.adjacency.push(Vec::new());
        SwitchId(self.switches.len() - 1)
    }

    /// Adds an undirected link with the given latency (µs).
    ///
    /// # Errors
    ///
    /// Rejects self-loops, unknown endpoints, and duplicate links.
    pub fn add_link(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        latency_us: f64,
    ) -> Result<(), NetworkError> {
        if a.0 >= self.switches.len() {
            return Err(NetworkError::UnknownSwitch { index: a.0 });
        }
        if b.0 >= self.switches.len() {
            return Err(NetworkError::UnknownSwitch { index: b.0 });
        }
        if a == b {
            return Err(NetworkError::SelfLoop { switch: a.0 });
        }
        if self.link_slot_between(a, b).is_some() {
            return Err(NetworkError::DuplicateLink { a: a.0, b: b.0 });
        }
        self.links.push(Link { a, b, latency_us });
        let idx = self.links.len() - 1;
        self.adjacency[a.0].push(idx);
        self.adjacency[b.0].push(idx);
        Ok(())
    }

    /// Number of switches `Q = |V_G|`.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of links `N = |E_G|`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All switches, indexable by [`SwitchId::index`].
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The switch with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.0]
    }

    /// Mutable access to a switch (e.g. to toggle programmability in tests).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn switch_mut(&mut self, id: SwitchId) -> &mut Switch {
        &mut self.switches[id.0]
    }

    /// Iterator over all switch ids in index order.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> + '_ {
        (0..self.switches.len()).map(SwitchId)
    }

    /// Ids of the programmable switches that are up.
    pub fn programmable_switches(&self) -> Vec<SwitchId> {
        self.switch_ids().filter(|&s| self.is_switch_up(s) && self.switch(s).programmable).collect()
    }

    /// Index of the link slot between `a` and `b`, ignoring down states
    /// (construction-time duplicate detection must see failed links too).
    fn link_slot_between(&self, a: SwitchId, b: SwitchId) -> Option<usize> {
        self.adjacency.get(a.0)?.iter().copied().find(|&i| self.links[i].other(a) == Some(b))
    }

    /// The *usable* link between `a` and `b`: `None` if no such link exists,
    /// if the link is down, or if either endpoint is down.
    pub fn link_between(&self, a: SwitchId, b: SwitchId) -> Option<&Link> {
        if !self.is_switch_up(a) || !self.is_switch_up(b) {
            return None;
        }
        let idx = self.link_slot_between(a, b)?;
        if self.down_links.contains(&idx) {
            return None;
        }
        Some(&self.links[idx])
    }

    /// Neighbors of `s` reachable over up links, with the connecting link
    /// latency. Empty if `s` itself is down.
    pub fn neighbors(&self, s: SwitchId) -> impl Iterator<Item = (SwitchId, f64)> + '_ {
        let s_up = self.is_switch_up(s);
        self.adjacency[s.0]
            .iter()
            .filter(move |_| s_up)
            .filter(|&&i| !self.down_links.contains(&i))
            .filter_map(move |&i| {
                let l = &self.links[i];
                l.other(s).filter(|&o| self.is_switch_up(o)).map(|o| (o, l.latency_us))
            })
    }

    /// Marks a switch as failed. Idempotent. All its links become unusable;
    /// the switch disappears from [`Network::programmable_switches`],
    /// [`Network::neighbors`], and connectivity queries but keeps its id.
    ///
    /// # Panics
    ///
    /// Panics if `s` does not belong to this network.
    pub fn fail_switch(&mut self, s: SwitchId) {
        assert!(s.0 < self.switches.len(), "unknown switch {s}");
        self.down_switches.insert(s.0);
    }

    /// Brings a failed switch back up. Idempotent.
    pub fn restore_switch(&mut self, s: SwitchId) {
        self.down_switches.remove(&s.0);
    }

    /// `true` iff the switch exists and is not failed.
    pub fn is_switch_up(&self, s: SwitchId) -> bool {
        s.0 < self.switches.len() && !self.down_switches.contains(&s.0)
    }

    /// Marks the link between `a` and `b` as failed. Returns `false` (and
    /// changes nothing) if no such link exists. Idempotent.
    pub fn fail_link(&mut self, a: SwitchId, b: SwitchId) -> bool {
        match self.link_slot_between(a, b) {
            Some(idx) => {
                self.down_links.insert(idx);
                true
            }
            None => false,
        }
    }

    /// Brings the link between `a` and `b` back up. Returns `false` if no
    /// such link exists. Idempotent.
    pub fn restore_link(&mut self, a: SwitchId, b: SwitchId) -> bool {
        match self.link_slot_between(a, b) {
            Some(idx) => {
                self.down_links.remove(&idx);
                true
            }
            None => false,
        }
    }

    /// `true` iff a link between `a` and `b` exists, is up, and both
    /// endpoints are up.
    pub fn is_link_up(&self, a: SwitchId, b: SwitchId) -> bool {
        self.link_between(a, b).is_some()
    }

    /// Ids of currently failed switches, ascending.
    pub fn down_switches(&self) -> Vec<SwitchId> {
        self.down_switches.iter().map(|&i| SwitchId(i)).collect()
    }

    /// Number of switches currently up.
    pub fn up_switch_count(&self) -> usize {
        self.switches.len() - self.down_switches.len()
    }

    /// Looks a switch up by name.
    pub fn switch_by_name(&self, name: &str) -> Option<SwitchId> {
        self.switches.iter().position(|s| s.name == name).map(SwitchId)
    }

    /// The switches of the largest connected component (ties: the one
    /// containing the smallest switch index). Deployment algorithms that
    /// fill switches in index order restrict themselves to this set so a
    /// disconnected WAN (e.g. Table III topology 5) stays deployable.
    pub fn largest_component(&self) -> Vec<SwitchId> {
        let n = self.switches.len();
        let mut component = vec![usize::MAX; n];
        let mut best: (usize, usize) = (0, usize::MAX); // (size, id)
        let mut next = 0usize;
        for start in 0..n {
            if component[start] != usize::MAX || !self.is_switch_up(SwitchId(start)) {
                continue;
            }
            let id = next;
            next += 1;
            let mut size = 0usize;
            let mut stack = vec![start];
            component[start] = id;
            while let Some(u) = stack.pop() {
                size += 1;
                for (v, _) in self.neighbors(SwitchId(u)) {
                    if component[v.0] == usize::MAX {
                        component[v.0] = id;
                        stack.push(v.0);
                    }
                }
            }
            if size > best.0 {
                best = (size, id);
            }
        }
        (0..n).filter(|&i| component[i] == best.1).map(SwitchId).collect()
    }

    /// `true` iff every *up* switch can reach every other up switch (or no
    /// switch is up).
    pub fn is_connected(&self) -> bool {
        let Some(first_up) = self.switch_ids().find(|&s| self.is_switch_up(s)) else {
            return true;
        };
        let mut seen = BTreeSet::from([first_up.0]);
        let mut stack = vec![first_up];
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if seen.insert(v.0) {
                    stack.push(v);
                }
            }
        }
        seen.len() == self.up_switch_count()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network({} switches / {} programmable, {} links)",
            self.switch_count(),
            self.programmable_switches().len(),
            self.link_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Network, SwitchId, SwitchId, SwitchId) {
        let mut net = Network::new();
        let a = net.add_switch(Switch::tofino("a"));
        let b = net.add_switch(Switch::tofino("b"));
        let c = net.add_switch(Switch::legacy("c"));
        net.add_link(a, b, 10.0).unwrap();
        net.add_link(b, c, 20.0).unwrap();
        net.add_link(a, c, 30.0).unwrap();
        (net, a, b, c)
    }

    #[test]
    fn construction_and_lookup() {
        let (net, a, b, c) = triangle();
        assert_eq!(net.switch_count(), 3);
        assert_eq!(net.link_count(), 3);
        assert_eq!(net.switch_by_name("b"), Some(b));
        assert_eq!(net.programmable_switches(), vec![a, b]);
        assert!(net.switch(c).stages == 0);
    }

    #[test]
    fn self_loop_rejected() {
        let mut net = Network::new();
        let a = net.add_switch(Switch::tofino("a"));
        assert_eq!(net.add_link(a, a, 1.0), Err(NetworkError::SelfLoop { switch: 0 }));
    }

    #[test]
    fn duplicate_link_rejected() {
        let (mut net, a, b, _) = triangle();
        assert_eq!(net.add_link(a, b, 5.0), Err(NetworkError::DuplicateLink { a: 0, b: 1 }));
        assert_eq!(net.add_link(b, a, 5.0), Err(NetworkError::DuplicateLink { a: 1, b: 0 }));
    }

    #[test]
    fn unknown_switch_rejected() {
        let mut net = Network::new();
        let a = net.add_switch(Switch::tofino("a"));
        let ghost = SwitchId(7);
        assert_eq!(net.add_link(a, ghost, 1.0), Err(NetworkError::UnknownSwitch { index: 7 }));
    }

    #[test]
    fn neighbors_symmetric() {
        let (net, a, b, _) = triangle();
        let from_a: Vec<_> = net.neighbors(a).collect();
        assert_eq!(from_a.len(), 2);
        assert!(net.neighbors(b).any(|(n, lat)| n == a && lat == 10.0));
    }

    #[test]
    fn connectivity() {
        let (net, ..) = triangle();
        assert!(net.is_connected());
        let mut disconnected = Network::new();
        disconnected.add_switch(Switch::tofino("x"));
        disconnected.add_switch(Switch::tofino("y"));
        assert!(!disconnected.is_connected());
        assert!(Network::new().is_connected());
    }

    #[test]
    fn failed_switch_disappears_from_queries() {
        let (mut net, a, b, c) = triangle();
        net.fail_switch(b);
        assert!(!net.is_switch_up(b));
        assert_eq!(net.programmable_switches(), vec![a]);
        assert_eq!(net.up_switch_count(), 2);
        assert_eq!(net.down_switches(), vec![b]);
        assert!(net.neighbors(b).next().is_none(), "down switch has no neighbors");
        assert!(net.neighbors(a).all(|(n, _)| n != b));
        assert!(net.link_between(a, b).is_none());
        // a -- c still up: the triangle minus b stays connected.
        assert!(net.is_link_up(a, c));
        assert!(net.is_connected());
        net.restore_switch(b);
        assert_eq!(net.programmable_switches(), vec![a, b]);
        assert!(net.is_link_up(a, b));
    }

    #[test]
    fn failed_link_disconnects_and_restores() {
        let (mut net, a, b, c) = triangle();
        assert!(net.fail_link(a, b));
        assert!(net.fail_link(b, a), "direction-insensitive");
        assert!(!net.is_link_up(a, b));
        assert!(net.link_between(a, b).is_none());
        assert!(net.neighbors(a).all(|(n, _)| n != b));
        assert!(net.is_connected(), "detour via c remains");
        assert!(net.fail_link(b, c));
        assert!(!net.is_connected(), "b is now isolated");
        assert_eq!(net.largest_component(), vec![a, c]);
        assert!(net.restore_link(a, b));
        assert!(net.is_link_up(a, b));
        assert!(net.is_connected());
        // Unknown pairs are reported, not silently accepted.
        let ghost = SwitchId(9);
        assert!(!net.fail_link(a, ghost));
        assert!(!net.restore_link(a, ghost));
    }

    #[test]
    fn down_states_do_not_perturb_healthy_queries() {
        let (mut net, a, b, c) = triangle();
        let before: Vec<_> = net.neighbors(a).collect();
        net.fail_switch(b);
        net.restore_switch(b);
        net.fail_link(b, c);
        net.restore_link(b, c);
        assert_eq!(net.neighbors(a).collect::<Vec<_>>(), before);
        assert_eq!(net.largest_component(), vec![a, b, c]);
    }

    #[test]
    fn tofino_defaults() {
        let s = Switch::tofino("t");
        assert_eq!(s.stages, TOFINO_STAGES);
        assert_eq!(s.total_capacity(), 12.0);
        assert!(s.programmable);
    }
}
