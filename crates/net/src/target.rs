//! Per-switch pipeline cost models ("targets").
//!
//! The paper collapses switch resources into one uniform `C_stage × C_res`
//! pair ("without losing generality, we use a single variable C_res").
//! This module makes that pair a pluggable per-target cost model so one
//! workload can be planned across heterogeneous hardware:
//!
//! | target     | stages            | per-stage cap | total budget | latency |
//! |------------|-------------------|---------------|--------------|---------|
//! | `tofino`   | 12                | 1.0           | —            | 1 µs    |
//! | `smartnic` | 4 (deeper stages) | 2.0           | 6.0          | 2 µs    |
//! | `soft`     | unbounded         | 1.0           | 64.0         | 20 µs   |
//!
//! [`TargetModel`] answers the questions the planning stack used to compute
//! inline from `Switch::stages` / `Switch::stage_capacity`: per-stage
//! capacity, stage count, whether a resource demand fits a stage, total
//! capacity, and per-target latency. **It is the one place that defines
//! "fits"** — `stage_assign`, `StageFeasCache`, `precheck`, the MILP
//! capacity rows, and the verifier all route their capacity math through
//! it. A default (paper-model) switch yields a model whose every answer is
//! bit-for-bit what the scalar expressions used to produce, so the default
//! unit-Tofino pipeline stays byte-identical.
//!
//! The software target has no architectural stage limit
//! ([`TargetModel::stage_limit`] returns `None`, so chain-length
//! certificates never fire against it); packing still needs a finite
//! depth, which resolves to [`SOFT_STAGES`] — deep enough for any workload
//! whose total demand fits the target's total budget.

use crate::graph::{Switch, TOFINO_STAGES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Absolute slack for resource-capacity comparisons (capacities are
/// human-scale numbers, so an absolute tolerance suffices). This is the
/// single tolerance every "fits" decision in the workspace uses.
pub const CAP_TOL: f64 = 1e-9;

/// Pipeline stage count of the SmartNIC-like target (fewer, deeper stages).
pub const SMARTNIC_STAGES: usize = 4;
/// Per-stage capacity of the SmartNIC-like target.
pub const SMARTNIC_STAGE_CAPACITY: f64 = 2.0;
/// Per-switch total resource budget of the SmartNIC-like target (binds
/// before the 4 × 2.0 pipeline sum does).
pub const SMARTNIC_BUDGET: f64 = 6.0;
/// Switch transmission latency of the SmartNIC-like target, µs.
pub const SMARTNIC_LATENCY_US: f64 = 2.0;

/// Resolved packing depth of the software target. The target is
/// semantically unbounded ([`TargetModel::stage_limit`] is `None`); this
/// constant only bounds the concrete first-fit pipeline state, and any
/// workload within [`SOFT_TOTAL_BUDGET`] total units fits inside it.
pub const SOFT_STAGES: usize = 256;
/// Per-stage capacity of the software target.
pub const SOFT_STAGE_CAPACITY: f64 = 1.0;
/// Per-switch total resource budget of the software target.
pub const SOFT_TOTAL_BUDGET: f64 = 64.0;
/// Latency multiplier of the software target over a 1 µs hardware switch.
pub const SOFT_LATENCY_FACTOR: f64 = 20.0;

/// Which family of pipeline a switch belongs to. Only [`TargetKind::Software`]
/// changes *semantics* (no architectural stage limit); the numeric knobs
/// (stages, capacity, budget, latency) live on the switch itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TargetKind {
    /// The paper's hardware pipeline model: a hard stage count, per-stage
    /// capacity, and (optionally) a total budget. Tofino-like switches are
    /// the 12 × 1.0 instance of this kind.
    #[default]
    Pipeline,
    /// SmartNIC-like: fewer, deeper stages plus a per-switch total budget.
    SmartNic,
    /// Software switch: no architectural stage limit, higher latency.
    Software,
}

impl TargetKind {
    /// `true` for the default paper-model kind (serde skips the field).
    pub fn is_pipeline(&self) -> bool {
        matches!(self, TargetKind::Pipeline)
    }
}

/// A per-switch pipeline cost model: the one authority on what fits where.
///
/// Derived from a [`Switch`] via [`Switch::target_model`] (it is a cheap
/// `Copy` view, safe to construct inside hot loops) or built directly via
/// the named constructors. All capacity comparisons use [`CAP_TOL`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetModel {
    /// Display name of the model family (`tofino`, `smartnic`, `soft`,
    /// `pipeline`, `legacy`).
    pub name: &'static str,
    /// Semantic family.
    pub kind: TargetKind,
    /// Resolved packing depth. For [`TargetKind::Software`] this is the
    /// finite depth packing state uses, not an architectural limit — see
    /// [`TargetModel::stage_limit`].
    pub stages: usize,
    /// `C_res` — per-stage resource capacity in normalized units.
    pub stage_capacity: f64,
    /// Per-switch total resource budget; `f64::INFINITY` = no budget
    /// beyond the pipeline sum.
    pub total_budget: f64,
    /// `t_s(u)` — transmission latency through the switch, µs.
    pub latency_us: f64,
}

impl TargetModel {
    /// The anonymous paper model: `stages` × `stage_capacity`, no budget.
    /// Every answer is bit-identical to the pre-model scalar expressions.
    pub fn pipeline(stages: usize, stage_capacity: f64) -> Self {
        TargetModel {
            name: "pipeline",
            kind: TargetKind::Pipeline,
            stages,
            stage_capacity,
            total_budget: f64::INFINITY,
            latency_us: 1.0,
        }
    }

    /// Tofino-like: 12 stages of unit capacity, 1 µs, no extra budget.
    pub fn tofino() -> Self {
        TargetModel {
            name: "tofino",
            stage_capacity: 1.0,
            ..TargetModel::pipeline(TOFINO_STAGES, 1.0)
        }
    }

    /// SmartNIC-like: 4 deeper stages, total budget 6.0, 2 µs.
    pub fn smartnic() -> Self {
        TargetModel {
            name: "smartnic",
            kind: TargetKind::SmartNic,
            stages: SMARTNIC_STAGES,
            stage_capacity: SMARTNIC_STAGE_CAPACITY,
            total_budget: SMARTNIC_BUDGET,
            latency_us: SMARTNIC_LATENCY_US,
        }
    }

    /// Software switch: no stage limit (depth resolves to [`SOFT_STAGES`]),
    /// total budget 64.0, 20 µs (the [`SOFT_LATENCY_FACTOR`] multiplier
    /// over a 1 µs hardware switch).
    pub fn software() -> Self {
        TargetModel {
            name: "soft",
            kind: TargetKind::Software,
            stages: SOFT_STAGES,
            stage_capacity: SOFT_STAGE_CAPACITY,
            total_budget: SOFT_TOTAL_BUDGET,
            latency_us: SOFT_LATENCY_FACTOR,
        }
    }

    /// The architectural stage limit: `None` for software targets (a chain
    /// of any length can be ordered), `Some(stages)` for hardware.
    pub fn stage_limit(&self) -> Option<usize> {
        match self.kind {
            TargetKind::Software => None,
            TargetKind::Pipeline | TargetKind::SmartNic => Some(self.stages),
        }
    }

    /// Total usable resource across the pipeline: `C_stage × C_res`,
    /// clamped by the total budget when one is set. Bit-identical to
    /// `stages as f64 * stage_capacity` for budget-free targets.
    pub fn total_capacity(&self) -> f64 {
        let pipeline = self.stages as f64 * self.stage_capacity;
        if self.total_budget < pipeline {
            self.total_budget
        } else {
            pipeline
        }
    }

    /// The pipeline sum `C_stage × C_res` ignoring any budget — what the
    /// stages could hold if only per-stage capacity bound.
    pub fn pipeline_capacity(&self) -> f64 {
        self.stages as f64 * self.stage_capacity
    }

    /// Does a total resource demand fit this target? **The** definition of
    /// the quick-fit check (Algorithm 2 line 2: `Σ R(a) <= C_stage × C_res`,
    /// extended by the budget clamp).
    pub fn fits_total(&self, demand: f64) -> bool {
        demand <= self.total_capacity() + CAP_TOL
    }

    /// Does a resource demand fit within one stage (no splitting)?
    pub fn fits_stage(&self, demand: f64) -> bool {
        demand <= self.stage_capacity + CAP_TOL
    }

    /// Stage count usable before the budget binds: `min(stages,
    /// ⌊budget / C_res⌋)`. The heuristic's conservative split shape uses
    /// this so chunks sized for the pipeline do not blow the budget.
    pub fn effective_stages(&self) -> usize {
        if self.total_budget.is_finite() && self.stage_capacity > 0.0 {
            let by_budget = (self.total_budget / self.stage_capacity).floor() as usize;
            self.stages.min(by_budget.max(1))
        } else {
            self.stages
        }
    }

    /// Exact cache/shape key: feasibility of a node set on this target is a
    /// function of exactly these three values (depth, per-stage capacity
    /// bits, budget bits). Targets with equal keys share packing verdicts.
    pub fn shape_key(&self) -> (usize, u64, u64) {
        (self.stages, self.stage_capacity.to_bits(), self.total_budget.to_bits())
    }

    /// `true` when plans on the two targets are interchangeable — the
    /// exact solver's candidate-symmetry test. Matches the historical
    /// scalar check (stage count plus capacity within 1e-12) extended by
    /// budget bits and kind.
    pub fn symmetric_to(&self, other: &TargetModel) -> bool {
        self.kind == other.kind
            && self.stages == other.stages
            && (self.stage_capacity - other.stage_capacity).abs() < 1e-12
            && self.total_budget.to_bits() == other.total_budget.to_bits()
    }

    /// Copies this model's parameters onto a switch (keeps name and
    /// programmability).
    pub fn apply_to(&self, switch: &mut Switch) {
        switch.stages = self.stages;
        switch.stage_capacity = self.stage_capacity;
        switch.latency_us = self.latency_us;
        switch.target = self.kind;
        switch.total_budget = self.total_budget;
    }
}

impl fmt::Display for TargetModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        match self.stage_limit() {
            Some(s) => write!(f, "{s} stages")?,
            None => write!(f, "unbounded stages (packs {} deep)", self.stages)?,
        }
        write!(f, " x {:.2} units", self.stage_capacity)?;
        if self.total_budget.is_finite() {
            write!(f, ", budget {:.2}", self.total_budget)?;
        }
        write!(f, ", {:.0} us", self.latency_us)
    }
}

/// The built-in named targets, in display order for `hermes targets`.
pub fn builtin_targets() -> Vec<TargetModel> {
    vec![TargetModel::tofino(), TargetModel::smartnic(), TargetModel::software()]
}

/// `--target` got a malformed or out-of-range spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSpecError {
    /// The rejected spec, as given.
    pub spec: String,
    /// What is wrong with it.
    pub detail: String,
}

impl fmt::Display for TargetSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "target spec `{}`: {}", self.spec, self.detail)
    }
}

impl std::error::Error for TargetSpecError {}

/// A parsed `--target` value: one model per programmable switch, assigned
/// round-robin (a single-model spec retargets every programmable switch).
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    /// The model cycle; never empty.
    pub models: Vec<TargetModel>,
}

impl TargetSpec {
    /// Retargets every programmable switch of `net`, cycling through the
    /// spec's models in switch-index order. Non-programmable switches are
    /// untouched.
    pub fn apply(&self, net: &mut crate::graph::Network) {
        let prog = net.programmable_switches();
        for (i, s) in prog.into_iter().enumerate() {
            self.models[i % self.models.len()].apply_to(net.switch_mut(s));
        }
    }
}

/// Parses a `--target` spec: a built-in name (`tofino`, `smartnic`,
/// `soft`), a name with `key=value` knobs after a colon
/// (`smartnic:stages=4,budget=20`; knobs are `stages`, `cap`, `budget`,
/// `latency`), or `mix:` plus a `+`-separated list of such specs assigned
/// round-robin across programmable switches
/// (`mix:tofino+smartnic+soft`).
///
/// # Errors
///
/// Returns [`TargetSpecError`] on unknown names, unknown knobs, or
/// out-of-range values.
pub fn parse_target(spec: &str) -> Result<TargetSpec, TargetSpecError> {
    let bad = |detail: String| TargetSpecError { spec: spec.to_owned(), detail };
    if let Some(list) = spec.strip_prefix("mix:") {
        let mut models = Vec::new();
        for part in list.split('+') {
            if part.starts_with("mix:") {
                return Err(bad("mix specs do not nest".to_owned()));
            }
            models.extend(parse_target(part).map_err(|e| bad(e.detail))?.models);
        }
        if models.is_empty() {
            return Err(bad("mix needs at least one target".to_owned()));
        }
        return Ok(TargetSpec { models });
    }
    let (name, knobs) = match spec.split_once(':') {
        Some((n, k)) => (n, Some(k)),
        None => (spec, None),
    };
    let mut model = match name {
        "tofino" => TargetModel::tofino(),
        "smartnic" => TargetModel::smartnic(),
        "soft" | "software" => TargetModel::software(),
        other => {
            return Err(bad(format!("unknown target `{other}` (tofino, smartnic, soft, mix:...)")))
        }
    };
    if let Some(knobs) = knobs {
        for part in knobs.split(',') {
            let (key, value) =
                part.split_once('=').ok_or_else(|| bad(format!("`{part}` is not `key=value`")))?;
            let num: f64 = value
                .parse()
                .map_err(|_| bad(format!("knob `{key}` needs a number, got `{value}`")))?;
            if !num.is_finite() || num <= 0.0 {
                return Err(bad(format!("knob `{key}` must be finite and positive")));
            }
            match key {
                "stages" => {
                    if num.fract() != 0.0 || num > 4096.0 {
                        return Err(bad("`stages` must be an integer in 1..=4096".to_owned()));
                    }
                    model.stages = num as usize;
                }
                "cap" | "capacity" => model.stage_capacity = num,
                "budget" => model.total_budget = num,
                "latency" => model.latency_us = num,
                other => {
                    return Err(bad(format!(
                        "unknown knob `{other}` (stages, cap, budget, latency)"
                    )))
                }
            }
        }
    }
    Ok(TargetSpec { models: vec![model] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn default_pipeline_math_is_bit_identical_to_scalars() {
        let m = TargetModel::tofino();
        assert_eq!(m.total_capacity().to_bits(), (12.0f64).to_bits());
        assert_eq!(m.total_capacity().to_bits(), (m.stages as f64 * m.stage_capacity).to_bits());
        assert_eq!(m.shape_key(), (12, 1.0f64.to_bits(), f64::INFINITY.to_bits()));
        assert_eq!(m.effective_stages(), 12);
        assert_eq!(m.stage_limit(), Some(12));
        assert!(m.fits_total(12.0) && !m.fits_total(12.1));
    }

    #[test]
    fn smartnic_budget_binds_before_the_pipeline_sum() {
        let m = TargetModel::smartnic();
        assert_eq!(m.pipeline_capacity(), 8.0);
        assert_eq!(m.total_capacity(), 6.0);
        assert!(m.fits_total(6.0) && !m.fits_total(6.5));
        assert_eq!(m.effective_stages(), 3, "floor(6.0 / 2.0)");
        assert_eq!(m.stage_limit(), Some(SMARTNIC_STAGES));
    }

    #[test]
    fn software_has_no_stage_limit_but_a_budget_and_latency_factor() {
        let m = TargetModel::software();
        assert_eq!(m.stage_limit(), None);
        assert_eq!(m.total_capacity(), SOFT_TOTAL_BUDGET);
        assert_eq!(m.latency_us, SOFT_LATENCY_FACTOR);
        assert!(m.stages >= 64, "packing depth must dwarf hardware pipelines");
    }

    #[test]
    fn symmetry_requires_matching_budget_and_kind() {
        let a = TargetModel::tofino();
        assert!(a.symmetric_to(&TargetModel::tofino()));
        let mut b = a;
        b.total_budget = 6.0;
        assert!(!a.symmetric_to(&b));
        assert!(!TargetModel::smartnic().symmetric_to(&TargetModel::software()));
    }

    #[test]
    fn specs_parse_and_apply() {
        assert_eq!(parse_target("tofino").unwrap().models, vec![TargetModel::tofino()]);
        assert_eq!(parse_target("soft").unwrap().models, vec![TargetModel::software()]);
        let custom = parse_target("smartnic:stages=8,budget=20,cap=1.5,latency=3").unwrap();
        let m = custom.models[0];
        assert_eq!((m.stages, m.stage_capacity, m.total_budget, m.latency_us), (8, 1.5, 20.0, 3.0));
        assert_eq!(m.kind, TargetKind::SmartNic);

        let mix = parse_target("mix:tofino+smartnic+soft").unwrap();
        assert_eq!(mix.models.len(), 3);
        let mut net = topology::linear(4, 10.0);
        mix.apply(&mut net);
        let kinds: Vec<TargetKind> = net.switches().iter().map(|s| s.target).collect();
        assert_eq!(
            kinds,
            vec![
                TargetKind::Pipeline,
                TargetKind::SmartNic,
                TargetKind::Software,
                TargetKind::Pipeline
            ]
        );
        assert_eq!(net.switches()[1].total_budget, SMARTNIC_BUDGET);
        assert_eq!(net.switches()[2].latency_us, SOFT_LATENCY_FACTOR);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "quantum",
            "smartnic:stages",
            "smartnic:stages=four",
            "smartnic:widgets=3",
            "smartnic:stages=0",
            "smartnic:stages=2.5",
            "smartnic:budget=-1",
            "soft:latency=inf",
            "mix:",
            "mix:tofino+mix:soft",
        ] {
            let e = parse_target(bad).unwrap_err();
            assert_eq!(e.spec, bad, "{e}");
        }
        let e = parse_target("quantum").unwrap_err();
        assert!(e.to_string().contains("unknown target `quantum`"), "{e}");
    }

    #[test]
    fn builtin_listing_displays_every_model() {
        let all = builtin_targets();
        assert_eq!(all.len(), 3);
        let text: Vec<String> = all.iter().map(ToString::to_string).collect();
        assert!(text[0].starts_with("tofino: 12 stages"), "{}", text[0]);
        assert!(text[1].contains("budget 6.00"), "{}", text[1]);
        assert!(text[2].contains("unbounded stages"), "{}", text[2]);
    }

    #[test]
    fn switch_round_trip_through_serde_keeps_target_fields() {
        let mut sw = Switch::tofino("t");
        // Default switches serialize without any target field at all.
        let json = serde_json::to_string(&sw).unwrap();
        assert!(!json.contains("target") && !json.contains("budget"), "{json}");
        TargetModel::smartnic().apply_to(&mut sw);
        let json = serde_json::to_string(&sw).unwrap();
        let back: Switch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sw);
        assert_eq!(back.target_model(), TargetModel::smartnic());
    }
}
