//! Topology generators.
//!
//! Provides the linear testbed of the paper's Exp#1, the ten WAN topologies
//! of Table III (seeded random graphs with the table's exact node/edge
//! counts, standing in for the Internet Topology Zoo graphs), and generic
//! fat-tree/star generators for the examples.

use crate::graph::{Network, Switch, SwitchId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Node/edge counts of the ten WAN topologies (paper Table III).
pub const TABLE3: [(usize, usize); 10] = [
    (79, 147),
    (70, 85),
    (78, 84),
    (75, 90),
    (73, 70),
    (75, 88),
    (68, 92),
    (65, 78),
    (74, 92),
    (69, 98),
];

/// Evaluation settings of the paper's §VI-A used when generating WANs.
#[derive(Debug, Clone, PartialEq)]
pub struct WanConfig {
    /// Fraction of switches that are programmable. Paper: 0.5.
    pub programmable_fraction: f64,
    /// Switch transmission latency in µs. Paper: 1 µs.
    pub switch_latency_us: f64,
    /// Minimum link latency in µs. Paper: 1 ms.
    pub link_latency_min_us: f64,
    /// Maximum link latency in µs. Paper: 10 ms.
    pub link_latency_max_us: f64,
}

impl Default for WanConfig {
    fn default() -> Self {
        WanConfig {
            programmable_fraction: 0.5,
            switch_latency_us: 1.0,
            link_latency_min_us: 1_000.0,
            link_latency_max_us: 10_000.0,
        }
    }
}

/// A linear chain of `n` Tofino-like switches with `link_latency_us` links —
/// the shape of the paper's three-switch testbed.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn linear(n: usize, link_latency_us: f64) -> Network {
    assert!(n > 0, "a linear topology needs at least one switch");
    let mut net = Network::new();
    let ids: Vec<SwitchId> =
        (0..n).map(|i| net.add_switch(Switch::tofino(format!("sw{i}")))).collect();
    for w in ids.windows(2) {
        net.add_link(w[0], w[1], link_latency_us).expect("chain links are unique");
    }
    net
}

/// A star: one programmable hub and `spokes` programmable leaves.
///
/// # Panics
///
/// Panics if `spokes` is zero.
pub fn star(spokes: usize, link_latency_us: f64) -> Network {
    assert!(spokes > 0, "a star needs at least one spoke");
    let mut net = Network::new();
    let hub = net.add_switch(Switch::tofino("hub"));
    for i in 0..spokes {
        let leaf = net.add_switch(Switch::tofino(format!("leaf{i}")));
        net.add_link(hub, leaf, link_latency_us).expect("star links are unique");
    }
    net
}

/// A `k`-ary fat-tree (k pods, `5k²/4` switches), all programmable, with
/// `link_latency_us` on every link. `k` must be even and ≥ 2.
///
/// # Panics
///
/// Panics if `k` is odd or < 2.
pub fn fat_tree(k: usize, link_latency_us: f64) -> Network {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even and >= 2");
    let half = k / 2;
    let mut net = Network::new();
    let core: Vec<SwitchId> =
        (0..half * half).map(|i| net.add_switch(Switch::tofino(format!("core{i}")))).collect();
    for pod in 0..k {
        let aggs: Vec<SwitchId> =
            (0..half).map(|j| net.add_switch(Switch::tofino(format!("agg{pod}_{j}")))).collect();
        let edges: Vec<SwitchId> =
            (0..half).map(|j| net.add_switch(Switch::tofino(format!("edge{pod}_{j}")))).collect();
        for &a in &aggs {
            for &e in &edges {
                net.add_link(a, e, link_latency_us).expect("pod links unique");
            }
        }
        for (j, &a) in aggs.iter().enumerate() {
            for c in 0..half {
                net.add_link(a, core[j * half + c], link_latency_us).expect("core links unique");
            }
        }
    }
    net
}

/// A seeded random WAN with exactly `nodes` switches and `edges` links.
///
/// When `edges >= nodes - 1` the graph is connected (random spanning tree
/// plus random extra links). Otherwise — which happens for topology 5 of
/// Table III (73 nodes, 70 edges), mirroring the disconnected Topology Zoo
/// graphs — the generator builds one tree over the first `edges + 1`
/// switches and leaves the rest isolated.
///
/// # Panics
///
/// Panics if `nodes` is zero or `edges` exceeds the simple-graph maximum.
pub fn random_wan(nodes: usize, edges: usize, seed: u64, config: &WanConfig) -> Network {
    assert!(nodes > 0, "need at least one node");
    assert!(edges <= nodes * (nodes - 1) / 2, "too many edges for a simple graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();

    // Choose which switches are programmable: a seeded shuffle of exactly
    // the configured fraction.
    let programmable_count = ((nodes as f64) * config.programmable_fraction).round() as usize;
    let mut flags = vec![false; nodes];
    for f in flags.iter_mut().take(programmable_count) {
        *f = true;
    }
    flags.shuffle(&mut rng);

    for (i, &programmable) in flags.iter().enumerate() {
        let mut sw = if programmable {
            Switch::tofino(format!("wan{i}"))
        } else {
            Switch::legacy(format!("wan{i}"))
        };
        sw.latency_us = config.switch_latency_us;
        net.add_switch(sw);
    }

    let link_latency = |rng: &mut StdRng| {
        rng.random_range(config.link_latency_min_us..=config.link_latency_max_us)
    };

    // Spanning tree over as many nodes as the edge budget allows.
    let tree_nodes = (edges + 1).min(nodes);
    let mut order: Vec<usize> = (0..nodes).collect();
    order.shuffle(&mut rng);
    let mut used = 0usize;
    for i in 1..tree_nodes {
        let parent = order[rng.random_range(0..i)];
        let lat = link_latency(&mut rng);
        net.add_link(SwitchId(order[i]), SwitchId(parent), lat).expect("tree links unique");
        used += 1;
    }
    // Random extra links up to the budget.
    let mut guard = 0usize;
    while used < edges {
        let a = rng.random_range(0..nodes);
        let b = rng.random_range(0..nodes);
        guard += 1;
        assert!(guard < 1_000_000, "failed to place extra links (graph too dense?)");
        if a == b {
            continue;
        }
        let (a, b) = (SwitchId(a), SwitchId(b));
        if net.link_between(a, b).is_some() {
            continue;
        }
        let lat = link_latency(&mut rng);
        net.add_link(a, b, lat).expect("checked for duplicates");
        used += 1;
    }
    net
}

/// A Waxman random graph: switches scattered on a unit square, each pair
/// linked with probability `alpha * exp(-d / (beta * L))` where `d` is
/// Euclidean distance and `L` the diagonal — the classic WAN generator
/// the Topology Zoo graphs resemble. Isolated switches are connected to
/// their nearest neighbour so the result is usable for deployment.
///
/// # Panics
///
/// Panics if `nodes` is zero or the parameters leave `(0, 1]`.
pub fn waxman(nodes: usize, alpha: f64, beta: f64, seed: u64, config: &WanConfig) -> Network {
    assert!(nodes > 0, "need at least one node");
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0, 1]");
    assert!(beta > 0.0 && beta <= 1.0, "beta in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();

    let programmable_count = ((nodes as f64) * config.programmable_fraction).round() as usize;
    let mut flags = vec![false; nodes];
    for f in flags.iter_mut().take(programmable_count) {
        *f = true;
    }
    flags.shuffle(&mut rng);

    let positions: Vec<(f64, f64)> =
        (0..nodes).map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))).collect();
    for (i, &programmable) in flags.iter().enumerate() {
        let mut sw = if programmable {
            Switch::tofino(format!("wax{i}"))
        } else {
            Switch::legacy(format!("wax{i}"))
        };
        sw.latency_us = config.switch_latency_us;
        net.add_switch(sw);
    }
    let diag = 2.0f64.sqrt();
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            let d = ((positions[i].0 - positions[j].0).powi(2)
                + (positions[i].1 - positions[j].1).powi(2))
            .sqrt();
            if rng.random_bool((alpha * (-d / (beta * diag)).exp()).clamp(0.0, 1.0)) {
                let lat = rng.random_range(config.link_latency_min_us..=config.link_latency_max_us);
                net.add_link(SwitchId(i), SwitchId(j), lat).expect("pairs visited once");
            }
        }
    }
    // Attach isolated switches to their nearest neighbour.
    for i in 0..nodes {
        if net.neighbors(SwitchId(i)).next().is_none() && nodes > 1 {
            let nearest = (0..nodes)
                .filter(|&j| j != i)
                .min_by(|&a, &b| {
                    let da = (positions[i].0 - positions[a].0).powi(2)
                        + (positions[i].1 - positions[a].1).powi(2);
                    let db = (positions[i].0 - positions[b].0).powi(2)
                        + (positions[i].1 - positions[b].1).powi(2);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("nodes > 1");
            let lat = rng.random_range(config.link_latency_min_us..=config.link_latency_max_us);
            net.add_link(SwitchId(i), SwitchId(nearest), lat).expect("was isolated");
        }
    }
    net
}

/// The `index`-th (0-based) Table III WAN topology with paper-default
/// settings and a deterministic per-topology seed.
///
/// # Panics
///
/// Panics if `index >= 10`.
pub fn table3_wan(index: usize) -> Network {
    let (nodes, edges) = TABLE3[index];
    random_wan(nodes, edges, 0xC0FFEE + index as u64, &WanConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_testbed_shape() {
        let net = linear(3, 10.0);
        assert_eq!(net.switch_count(), 3);
        assert_eq!(net.link_count(), 2);
        assert!(net.is_connected());
        assert_eq!(net.programmable_switches().len(), 3);
    }

    #[test]
    fn star_shape() {
        let net = star(4, 5.0);
        assert_eq!(net.switch_count(), 5);
        assert_eq!(net.link_count(), 4);
        assert!(net.is_connected());
    }

    #[test]
    fn fat_tree_k4_counts() {
        let net = fat_tree(4, 10.0);
        // 4 core + 4 pods * (2 agg + 2 edge) = 20 switches.
        assert_eq!(net.switch_count(), 20);
        // Per pod: 4 edge-agg + 4 agg-core = 8; 4 pods = 32 links.
        assert_eq!(net.link_count(), 32);
        assert!(net.is_connected());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_fat_tree_panics() {
        let _ = fat_tree(3, 10.0);
    }

    #[test]
    fn table3_counts_match_paper() {
        for (i, &(nodes, edges)) in TABLE3.iter().enumerate() {
            let net = table3_wan(i);
            assert_eq!(net.switch_count(), nodes, "topology {i} nodes");
            assert_eq!(net.link_count(), edges, "topology {i} edges");
        }
    }

    #[test]
    fn wan_is_deterministic() {
        let a = table3_wan(0);
        let b = table3_wan(0);
        assert_eq!(a, b);
    }

    #[test]
    fn wan_half_programmable() {
        let net = table3_wan(1); // 70 nodes
        assert_eq!(net.programmable_switches().len(), 35);
    }

    #[test]
    fn wan_connected_when_edges_allow() {
        for i in [0usize, 1, 3, 6, 9] {
            assert!(table3_wan(i).is_connected(), "topology {i}");
        }
    }

    #[test]
    fn sparse_wan_leaves_isolated_switches() {
        // Topology 5 (index 4): 73 nodes, 70 edges — cannot be connected.
        let net = table3_wan(4);
        assert!(!net.is_connected());
        assert_eq!(net.link_count(), 70);
    }

    #[test]
    fn link_latencies_in_configured_range() {
        let net = table3_wan(2);
        for l in net.links() {
            assert!((1_000.0..=10_000.0).contains(&l.latency_us));
        }
    }

    #[test]
    fn waxman_is_deterministic_and_sized() {
        let config = WanConfig::default();
        let a = waxman(50, 0.4, 0.3, 9, &config);
        let b = waxman(50, 0.4, 0.3, 9, &config);
        assert_eq!(a, b);
        assert_eq!(a.switch_count(), 50);
        // Every switch participates in at least one link.
        for s in a.switch_ids() {
            assert!(a.neighbors(s).next().is_some(), "{s} isolated");
        }
    }

    #[test]
    fn waxman_density_grows_with_alpha() {
        let config = WanConfig::default();
        let sparse = waxman(60, 0.1, 0.3, 5, &config);
        let dense = waxman(60, 0.9, 0.3, 5, &config);
        assert!(dense.link_count() > sparse.link_count());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn waxman_rejects_bad_alpha() {
        let _ = waxman(10, 1.5, 0.3, 0, &WanConfig::default());
    }

    #[test]
    fn wan_latency_settings_applied() {
        let net = table3_wan(0);
        for s in net.switches() {
            assert_eq!(s.latency_us, 1.0);
        }
    }
}
