//! Path enumeration between switches.
//!
//! The MILP formulation needs the path sets `P(u, v)` and each path's
//! latency `t_p(p)` (paper §V-A), while the greedy heuristic needs shortest
//! paths and nearest-programmable-switch queries. Path latency follows the
//! paper: the sum of `t_s` over every switch **on** the path (endpoints
//! included) plus `t_l` over every link.

use crate::graph::{Network, SwitchId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simple (loop-free) path: the switch sequence from source to target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Switches in traversal order; `hops[0]` is the source.
    pub hops: Vec<SwitchId>,
    /// `t_p(p)` — total latency in microseconds (switches + links).
    pub latency_us: f64,
}

impl Path {
    /// Number of links traversed.
    pub fn link_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// Source switch.
    ///
    /// # Panics
    ///
    /// Panics on an empty path, which [`shortest_path`] never produces.
    pub fn source(&self) -> SwitchId {
        self.hops[0]
    }

    /// Target switch.
    ///
    /// # Panics
    ///
    /// Panics on an empty path, which [`shortest_path`] never produces.
    pub fn target(&self) -> SwitchId {
        *self.hops.last().expect("paths are non-empty")
    }

    /// `true` iff the given switch lies on the path (the `E(a, p)`
    /// indicator of the paper).
    pub fn contains(&self, s: SwitchId) -> bool {
        self.hops.contains(&s)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on dist; ties on node index for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Recomputes a path's latency from the network (switch + link latencies).
///
/// # Panics
///
/// Panics if consecutive hops are not linked in `net`.
pub fn path_latency(net: &Network, hops: &[SwitchId]) -> f64 {
    let switch_lat: f64 = hops.iter().map(|&s| net.switch(s).latency_us).sum();
    let link_lat: f64 = hops
        .windows(2)
        .map(|w| {
            net.link_between(w[0], w[1])
                .unwrap_or_else(|| panic!("hops {} and {} are not linked", w[0], w[1]))
                .latency_us
        })
        .sum();
    switch_lat + link_lat
}

/// Dijkstra shortest path (by latency) from `src` to `dst`, or `None` if
/// unreachable. `banned` switches are treated as absent (used by Yen's
/// algorithm); `src` itself is never banned.
pub fn shortest_path_avoiding(
    net: &Network,
    src: SwitchId,
    dst: SwitchId,
    banned: &[bool],
) -> Option<Path> {
    let n = net.switch_count();
    if src.index() >= n || dst.index() >= n {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    dist[src.index()] = net.switch(src).latency_us;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { dist: dist[src.index()], node: src.index() });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == dst.index() {
            break;
        }
        for (v, link_lat) in net.neighbors(SwitchId(u)) {
            if banned.get(v.index()).copied().unwrap_or(false) {
                continue;
            }
            let nd = d + link_lat + net.switch(v).latency_us;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = u;
                heap.push(HeapEntry { dist: nd, node: v.index() });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    let mut hops = vec![dst];
    let mut cur = dst.index();
    while cur != src.index() {
        cur = prev[cur];
        if cur == usize::MAX {
            return None; // src == dst handled below; broken chain otherwise
        }
        hops.push(SwitchId(cur));
    }
    hops.reverse();
    Some(Path { hops, latency_us: dist[dst.index()] })
}

/// Dijkstra shortest path by latency, or `None` if unreachable.
/// For `src == dst` the path is the single switch with latency `t_s(src)`.
pub fn shortest_path(net: &Network, src: SwitchId, dst: SwitchId) -> Option<Path> {
    let banned = vec![false; net.switch_count()];
    shortest_path_avoiding(net, src, dst, &banned)
}

/// Yen's algorithm: up to `k` loop-free shortest paths from `src` to `dst`
/// in non-decreasing latency order. This materializes the path set
/// `P(u, v)` consumed by the MILP formulation.
pub fn k_shortest_paths(net: &Network, src: SwitchId, dst: SwitchId, k: usize) -> Vec<Path> {
    let Some(first) = shortest_path(net, src, dst) else {
        return Vec::new();
    };
    if k == 0 {
        return Vec::new();
    }
    let mut paths = vec![first];
    let mut candidates: Vec<Path> = Vec::new();
    while paths.len() < k {
        let last = paths.last().expect("non-empty").clone();
        for i in 0..last.hops.len().saturating_sub(1) {
            let spur = last.hops[i];
            let root = &last.hops[..=i];
            // Ban switches on the root (except the spur) to keep paths simple,
            // and ban next-hops of paths sharing this root.
            let mut banned = vec![false; net.switch_count()];
            for &s in &root[..i] {
                banned[s.index()] = true;
            }
            let mut banned_next: Vec<SwitchId> = Vec::new();
            for p in paths.iter().chain(candidates.iter()) {
                if p.hops.len() > i + 1 && p.hops[..=i] == *root {
                    banned_next.push(p.hops[i + 1]);
                }
            }
            for s in banned_next {
                banned[s.index()] = true;
            }
            if let Some(spur_path) = shortest_path_avoiding(net, spur, dst, &banned) {
                let mut hops = root[..i].to_vec();
                hops.extend(spur_path.hops);
                let latency = path_latency(net, &hops);
                let candidate = Path { hops, latency_us: latency };
                let duplicate =
                    paths.iter().chain(candidates.iter()).any(|p| p.hops == candidate.hops);
                if !duplicate {
                    candidates.push(candidate);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the lowest-latency candidate (ties: lexicographic hops).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.latency_us
                    .partial_cmp(&b.latency_us)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| a.hops.cmp(&b.hops))
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        paths.push(candidates.swap_remove(best));
    }
    paths
}

/// The programmable switches nearest to `origin` by shortest-path latency
/// (excluding `origin` itself), capped at `count` and at `max_latency_us`.
/// This is the `SELECT_SWITCHES` primitive of the greedy heuristic
/// (Algorithm 2, line 23).
pub fn nearest_programmable(
    net: &Network,
    origin: SwitchId,
    count: usize,
    max_latency_us: f64,
) -> Vec<(SwitchId, f64)> {
    let mut reachable: Vec<(SwitchId, f64)> = net
        .programmable_switches()
        .into_iter()
        .filter(|&s| s != origin)
        .filter_map(|s| shortest_path(net, origin, s).map(|p| (s, p.latency_us)))
        .filter(|&(_, lat)| lat <= max_latency_us)
        .collect();
    reachable.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal).then_with(|| a.0.cmp(&b.0))
    });
    reachable.truncate(count);
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Network, Switch};

    /// a -1- b -1- d, a -5- c -1- d : two a->d paths (3-hop cheap, detour).
    fn diamond() -> (Network, [SwitchId; 4]) {
        let mut net = Network::new();
        let a = net.add_switch(Switch::tofino("a"));
        let b = net.add_switch(Switch::tofino("b"));
        let c = net.add_switch(Switch::tofino("c"));
        let d = net.add_switch(Switch::tofino("d"));
        net.add_link(a, b, 1.0).unwrap();
        net.add_link(b, d, 1.0).unwrap();
        net.add_link(a, c, 5.0).unwrap();
        net.add_link(c, d, 1.0).unwrap();
        (net, [a, b, c, d])
    }

    #[test]
    fn shortest_path_picks_cheapest() {
        let (net, [a, b, _, d]) = diamond();
        let p = shortest_path(&net, a, d).unwrap();
        assert_eq!(p.hops, vec![a, b, d]);
        // 3 switches * 1us + links 1 + 1 = 5.
        assert_eq!(p.latency_us, 5.0);
    }

    #[test]
    fn path_to_self_is_single_switch() {
        let (net, [a, ..]) = diamond();
        let p = shortest_path(&net, a, a).unwrap();
        assert_eq!(p.hops, vec![a]);
        assert_eq!(p.latency_us, 1.0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = Network::new();
        let a = net.add_switch(Switch::tofino("a"));
        let b = net.add_switch(Switch::tofino("b"));
        assert!(shortest_path(&net, a, b).is_none());
    }

    #[test]
    fn k_shortest_enumerates_both_diamond_paths() {
        let (net, [a, b, c, d]) = diamond();
        let paths = k_shortest_paths(&net, a, d, 5);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops, vec![a, b, d]);
        assert_eq!(paths[1].hops, vec![a, c, d]);
        assert!(paths[0].latency_us <= paths[1].latency_us);
    }

    #[test]
    fn k_limits_output() {
        let (net, [a, _, _, d]) = diamond();
        assert_eq!(k_shortest_paths(&net, a, d, 1).len(), 1);
        assert!(k_shortest_paths(&net, a, d, 0).is_empty());
    }

    #[test]
    fn paths_are_simple() {
        let (net, [a, _, _, d]) = diamond();
        for p in k_shortest_paths(&net, a, d, 10) {
            let mut hops = p.hops.clone();
            hops.sort();
            hops.dedup();
            assert_eq!(hops.len(), p.hops.len(), "loop in {:?}", p.hops);
        }
    }

    #[test]
    fn path_latency_matches_paper_formula() {
        let (net, [a, b, _, d]) = diamond();
        assert_eq!(path_latency(&net, &[a, b, d]), 5.0);
    }

    #[test]
    fn nearest_programmable_sorted_and_bounded() {
        let (mut net, [a, b, c, d]) = diamond();
        net.switch_mut(c).programmable = false;
        let near = nearest_programmable(&net, a, 10, f64::INFINITY);
        assert_eq!(near.first().map(|x| x.0), Some(b));
        assert!(near.iter().all(|&(s, _)| s != c && s != a));
        assert_eq!(near.len(), 2);
        // Tight latency bound keeps only b (3us); d costs 5us.
        let near = nearest_programmable(&net, a, 10, 3.0);
        assert_eq!(near.iter().map(|x| x.0).collect::<Vec<_>>(), vec![b]);
        // Count bound.
        let near = nearest_programmable(&net, a, 1, f64::INFINITY);
        assert_eq!(near.len(), 1);
        let _ = d;
    }
}
